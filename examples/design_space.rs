//! Design-space exploration: how the dynamic-segment length shapes the
//! response times of dynamic messages (the Fig. 7 phenomenon), and how
//! the curve-fitting heuristic exploits it.
//!
//! Run with: `cargo run --release --example design_space`

use flexray::gen::fig7_system;
use flexray::opt::{assign_frame_ids_by_criticality, determine_dyn_length, Evaluator};
use flexray::*;

fn main() -> Result<(), ModelError> {
    let (platform, app) = fig7_system()?;
    let phy = PhyParams::bmw_like();

    // Fixed static segment, like the paper's Fig. 7 setup.
    let mut bus = BusConfig::new(phy);
    bus.static_slot_len = Time::from_us(258.0);
    bus.static_slot_owners = platform.nodes().collect();
    bus.frame_ids = assign_frame_ids_by_criticality(&platform, &app, &bus);

    // Sweep the dynamic-segment length and print the mean response of
    // the dynamic messages.
    println!("DYNbus(µs)  gdCycle(µs)  mean DYN response (µs)");
    let mut sys = System {
        platform: platform.clone(),
        app: app.clone(),
        bus: bus.clone(),
    };
    let dyn_msgs: Vec<_> = app.messages_of_class(MessageClass::Dynamic).collect();
    let cfg = AnalysisConfig::default();
    let mut best = (f64::INFINITY, 0u32);
    for n_minislots in (600..=6000).step_by(600) {
        sys.bus.n_minislots = n_minislots;
        if sys.bus.validate_for(&sys.app, sys.platform.len()).is_err() {
            continue;
        }
        let analysis = analyse(&sys, &cfg)?;
        let mean: f64 = dyn_msgs
            .iter()
            .map(|&m| analysis.response(m).as_us())
            .sum::<f64>()
            / dyn_msgs.len() as f64;
        if mean < best.0 {
            best = (mean, n_minislots);
        }
        println!(
            "{:>9.0} {:>12.0} {:>18.0}",
            sys.bus.dyn_bus().as_us(),
            sys.bus.gd_cycle().as_us(),
            mean
        );
    }
    println!(
        "\nsweet spot around {} minislots ({} µs) — both shorter and longer segments inflate delays",
        best.1,
        f64::from(best.1) * phy.gd_minislot.as_us()
    );

    // Now let the curve-fitting heuristic find it with a few analyses.
    let mut ev = Evaluator::new(platform, app, AnalysisConfig::default());
    let params = OptParams {
        dyn_step: 8,
        ..OptParams::default()
    };
    let choice = determine_dyn_length(&mut ev, &bus, &params, DynSearch::CurveFit)
        .expect("system has dynamic messages");
    println!(
        "curve fitting picked {} minislots with {} full analyses (cost {:+.1})",
        choice.n_minislots,
        ev.evaluations(),
        choice.cost.value()
    );
    Ok(())
}
