//! The vehicle cruise-controller case study of Section 7 as a library
//! walk-through: build the 54-task model, run all four optimisers,
//! inspect the winning configuration, and replay it on the simulator.
//!
//! Run with: `cargo run --release --example cruise_control`

use flexray::gen::cruise_controller;
use flexray::*;

fn main() -> Result<(), ModelError> {
    let (platform, app) = cruise_controller(150.0)?;
    println!(
        "cruise controller: {} nodes, {} graphs, {} activities",
        platform.len(),
        app.graphs().len(),
        app.activities().len()
    );

    let phy = PhyParams::bmw_like();
    let params = OptParams::default();
    let sa_params = SaParams {
        iterations: 300,
        ..SaParams::default()
    };

    let runs = vec![
        ("BBC", bbc(&platform, &app, phy, &params)),
        (
            "OBCCF",
            obc(&platform, &app, phy, &params, DynSearch::CurveFit),
        ),
        (
            "OBCEE",
            obc(&platform, &app, phy, &params, DynSearch::Exhaustive),
        ),
        (
            "SA",
            simulated_annealing(&platform, &app, phy, &params, &sa_params),
        ),
    ];
    println!("\nalgorithm  schedulable  cost(µs)      time     analyses");
    for (name, r) in &runs {
        println!(
            "{name:<10} {:<12} {:>12.1} {:>9.2?} {:>8}",
            r.is_schedulable(),
            r.cost.value(),
            r.elapsed,
            r.evaluations
        );
    }

    // Pick the best schedulable configuration and replay it.
    let best = runs
        .iter()
        .filter(|(_, r)| r.is_schedulable())
        .min_by(|a, b| {
            a.1.cost
                .value()
                .partial_cmp(&b.1.cost.value())
                .expect("finite costs")
        });
    let Some((winner, result)) = best else {
        println!("\nno algorithm found a schedulable configuration");
        return Ok(());
    };
    println!(
        "\nwinner: {winner} — {} static slots × {}, DYN {} minislots, gdCycle {}",
        result.bus.static_slot_count(),
        result.bus.static_slot_len,
        result.bus.n_minislots,
        result.bus.gd_cycle()
    );

    let sys = System::validated(platform, app, result.bus.clone())?;
    let report = simulate_default(&sys)?;
    println!(
        "simulation: {}/{} jobs completed, {} violations",
        report.completed_jobs,
        report.total_jobs,
        report.violations.len()
    );
    let analysis = analyse(&sys, &AnalysisConfig::default())?;
    let worst = sys
        .app
        .ids()
        .map(|id| {
            let margin = sys.app.deadline_of(id) - analysis.response(id);
            (margin, sys.app.activity(id).name.clone())
        })
        .min()
        .expect("non-empty app");
    println!(
        "tightest activity: '{}' with {:.0} µs of margin",
        worst.1,
        worst.0.as_us()
    );
    Ok(())
}
