//! Quickstart: model a small distributed system, optimise its FlexRay
//! bus configuration, verify it with the analysis and the simulator.
//!
//! Run with: `cargo run --example quickstart`

use flexray::*;

fn main() -> Result<(), ModelError> {
    // ── 1. Model ─────────────────────────────────────────────────────
    // Two ECUs on a FlexRay channel. A time-triggered control loop
    // (sense → plan → act) and an event-triggered diagnostic path.
    let mut app = Application::new();

    let control = app.add_graph("control", Time::from_us(5_000.0), Time::from_us(4_000.0));
    let sense = app.add_task(
        control,
        "sense",
        NodeId::new(0),
        Time::from_us(80.0),
        SchedPolicy::Scs,
        0,
    );
    let plan = app.add_task(
        control,
        "plan",
        NodeId::new(1),
        Time::from_us(150.0),
        SchedPolicy::Scs,
        0,
    );
    let act = app.add_task(
        control,
        "act",
        NodeId::new(0),
        Time::from_us(60.0),
        SchedPolicy::Scs,
        0,
    );
    let m_sp = app.add_message(control, "m_sense_plan", 8, MessageClass::Static, 0);
    let m_pa = app.add_message(control, "m_plan_act", 4, MessageClass::Static, 0);
    app.connect(sense, m_sp, plan)?;
    app.connect(plan, m_pa, act)?;

    let diag = app.add_graph(
        "diagnostics",
        Time::from_us(10_000.0),
        Time::from_us(9_000.0),
    );
    let probe = app.add_task(
        diag,
        "probe",
        NodeId::new(1),
        Time::from_us(40.0),
        SchedPolicy::Fps,
        3,
    );
    let log = app.add_task(
        diag,
        "log",
        NodeId::new(0),
        Time::from_us(90.0),
        SchedPolicy::Fps,
        2,
    );
    let m_d = app.add_message(diag, "m_diag", 16, MessageClass::Dynamic, 1);
    app.connect(probe, m_d, log)?;

    let platform = Platform::with_nodes(2);
    let phy = PhyParams::bmw_like();

    // ── 2. Optimise the bus access ───────────────────────────────────
    let params = OptParams::default();
    let basic = bbc(&platform, &app, phy, &params);
    println!(
        "BBC:   schedulable={} cost={:+.1} ({} analyses in {:?})",
        basic.is_schedulable(),
        basic.cost.value(),
        basic.evaluations,
        basic.elapsed
    );
    let tuned = obc(&platform, &app, phy, &params, DynSearch::CurveFit);
    println!(
        "OBCCF: schedulable={} cost={:+.1} ({} analyses in {:?})",
        tuned.is_schedulable(),
        tuned.cost.value(),
        tuned.evaluations,
        tuned.elapsed
    );
    let best = if tuned.cost.better_than(&basic.cost) {
        tuned
    } else {
        basic
    };
    println!(
        "chosen bus: {} static slots of {}, {} minislots, gdCycle = {}",
        best.bus.static_slot_count(),
        best.bus.static_slot_len,
        best.bus.n_minislots,
        best.bus.gd_cycle()
    );

    // ── 3. Verify: analysis bound and simulated behaviour ────────────
    let sys = System::validated(platform, app, best.bus)?;
    let analysis = analyse(&sys, &AnalysisConfig::default())?;
    let report = simulate_default(&sys)?;
    println!("\nactivity          WCRT(µs)   simulated(µs)  deadline(µs)");
    for id in sys.app.ids() {
        let name = &sys.app.activity(id).name;
        let wcrt = analysis.response(id).as_us();
        let simulated = report.response(id).map_or(f64::NAN, |t| t.as_us());
        let deadline = sys.app.deadline_of(id).as_us();
        println!("{name:<16} {wcrt:>9.1} {simulated:>14.1} {deadline:>12.1}");
        assert!(simulated <= wcrt, "analysis must bound the simulation");
    }
    println!("\nall simulated responses within the analysed worst case ✓");
    Ok(())
}
