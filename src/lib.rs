//! # flexray
//!
//! Facade crate for the reproduction of *Pop, Pop, Eles, Peng — "Bus
//! Access Optimisation for FlexRay-based Distributed Embedded Systems",
//! DATE 2007*.
//!
//! The implementation is split over six crates, re-exported here as
//! modules:
//!
//! * [`model`] — system/application/bus-configuration model (Sections
//!   2–4 of the paper);
//! * [`analysis`] — holistic scheduling and schedulability analysis
//!   (Section 5);
//! * [`sim`] — discrete-event simulator of the FlexRay MAC and node
//!   CPUs (substitutes for the authors' testbed);
//! * [`gen`] — seeded benchmark generation (Section 7's synthetic sets,
//!   the cruise-controller case study and the Fig. 7 workload);
//! * [`opt`] — the paper's contribution: BBC, OBCCF, OBCEE and the SA
//!   baseline (Section 6);
//! * [`serve`] — the crash-safe analysis-as-a-service daemon behind the
//!   `flexray-serve` binary (file-based job queue, append-only
//!   replayable journal).
//!
//! The most common items are re-exported at the crate root.
//!
//! ## Quickstart
//!
//! ```
//! use flexray::*;
//!
//! // Model a two-node system with one static and one dynamic message.
//! let mut app = Application::new();
//! let g = app.add_graph("control", Time::from_us(4000.0), Time::from_us(3000.0));
//! let sense = app.add_task(g, "sense", NodeId::new(0), Time::from_us(20.0), SchedPolicy::Scs, 0);
//! let plan = app.add_task(g, "plan", NodeId::new(1), Time::from_us(30.0), SchedPolicy::Scs, 0);
//! let m = app.add_message(g, "m", 8, MessageClass::Static, 0);
//! app.connect(sense, m, plan)?;
//!
//! // Let the Basic Bus Configuration derive a bus layout and check it.
//! let result = bbc(&Platform::with_nodes(2), &app, PhyParams::bmw_like(), &OptParams::default());
//! assert!(result.is_schedulable());
//! # Ok::<(), ModelError>(())
//! ```

#![warn(missing_docs)]

pub use flexray_analysis as analysis;
pub use flexray_gen as gen;
pub use flexray_model as model;
pub use flexray_opt as opt;
pub use flexray_serve as serve;
pub use flexray_sim as sim;

pub use flexray_analysis::{
    analyse, Analysis, AnalysisConfig, AnalysisSession, Cost, ScheduleTable,
};
pub use flexray_model::{
    Application, BusConfig, FrameId, MessageClass, ModelError, NodeId, PhyParams, Platform,
    SchedPolicy, SlotId, System, SystemView, Time,
};
pub use flexray_opt::{bbc, obc, simulated_annealing, DynSearch, OptParams, OptResult, SaParams};
pub use flexray_sim::{
    simulate, simulate_configured, simulate_default, ExecutionOrder, SimConfig, SimReport,
};
