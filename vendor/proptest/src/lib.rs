//! Minimal, dependency-free stand-in for the subset of `proptest` this
//! workspace uses: the `proptest!` macro, integer-range strategies,
//! `any::<bool>()`, `prop::collection::vec`, `prop::sample::select`,
//! `ProptestConfig::with_cases` and the `prop_assert*` macros.
//!
//! The container has no crates.io access, so the real `proptest`
//! cannot be fetched. This shim runs each property as plain randomised
//! testing: a deterministic per-test RNG drives the strategies for
//! `cases` iterations. There is **no shrinking** — a failure reports
//! the raw inputs of the failing case instead of a minimised one,
//! which is sufficient for CI-style verification.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration, as in `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is executed with.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case, as in `proptest::test_runner::TestCaseError`.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// The deterministic RNG driving strategy generation.
pub type TestRng = StdRng;

/// Builds the per-test RNG from the test's name, so each property has
/// a reproducible input stream independent of execution order.
pub fn rng_for(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// A generator of random values, as in `proptest::strategy::Strategy`
/// (generation only — no value trees, no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy for a whole type's value space, as in `proptest::arbitrary`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

impl Strategy for Any<u32> {
    type Value = u32;
    fn generate(&self, rng: &mut TestRng) -> u32 {
        rng.gen_range(0..=u32::MAX)
    }
}

/// Combinator namespace, as in `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use rand::Rng;

        /// Strategy producing `Vec`s of `element` with a length drawn
        /// from `len`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: core::ops::Range<usize>,
        }

        /// `prop::collection::vec(element, len_range)`.
        pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = rng.gen_range(self.len.clone());
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::{Strategy, TestRng};
        use rand::seq::SliceRandom;

        /// Strategy choosing uniformly among fixed values.
        #[derive(Debug, Clone)]
        pub struct Select<T> {
            values: Vec<T>,
        }

        /// `prop::sample::select(values)` — one of `values`, uniformly.
        pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
            assert!(!values.is_empty(), "select: empty value set");
            Select { values }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.values
                    .choose(rng)
                    .expect("select: empty value set")
                    .clone()
            }
        }
    }
}

/// Everything a `proptest!` test needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{any, Any, ProptestConfig, Strategy, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current property case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Defines property tests, as in `proptest::proptest!`.
///
/// Each `fn name(arg in strategy, ...) { body }` item becomes a
/// `#[test]` that draws inputs from a deterministic RNG for the
/// configured number of cases and runs the body. The user-written
/// `#[test]` attribute (and any doc comments) are captured as ordinary
/// metas, exactly as the real macro does.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let inputs = format!(
                        concat!($("  ", stringify!($arg), " = {:?}\n",)*),
                        $(&$arg),*
                    );
                    let result: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body #[allow(unreachable_code)] Ok(()) })();
                    if let Err(e) = result {
                        panic!(
                            "property '{}' failed at case {}/{}: {}\ninputs:\n{}",
                            stringify!($name), case + 1, config.cases, e, inputs
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Range strategies stay inside their bounds.
        #[test]
        fn ranges_in_bounds(x in 1u32..10, y in -4i64..=4) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((-4..=4).contains(&y));
        }

        /// Vec strategy respects the length range.
        #[test]
        fn vec_len_in_bounds(v in prop::collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for e in &v {
                prop_assert!(*e < 5);
            }
        }

        /// Select only yields members, and early return is accepted.
        #[test]
        fn select_yields_members(p in prop::sample::select(vec![500u32, 1000, 2000]), b in any::<bool>()) {
            if b {
                return Ok(());
            }
            prop_assert!(p == 500 || p == 1000 || p == 2000);
            prop_assert_eq!(p % 500, 0);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::rng_for("x::y");
        let mut b = crate::rng_for("x::y");
        use rand::Rng;
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }
}
