//! No-op `Serialize`/`Deserialize` derive macros for the offline
//! `serde` shim. The marker traits in the shim are blanket-implemented,
//! so the derives have nothing to emit — they exist only so the seed's
//! `#[derive(Serialize, Deserialize)]` lists compile unchanged.

use proc_macro::TokenStream;

/// No-op derive: the shim's `Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op derive: the shim's `Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
