//! Minimal, dependency-free stand-in for `serde`.
//!
//! The container has no crates.io access, so the real `serde` cannot be
//! fetched. The workspace only ever *derives* `Serialize`/`Deserialize`
//! (no serialisation is performed anywhere outside a feature-gated
//! round-trip test in `flexray-model`), so this shim provides:
//!
//! * marker traits [`Serialize`] and [`Deserialize`] with blanket
//!   implementations, satisfying any `T: Serialize` bound; and
//! * no-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros
//!   (from the sibling `serde_derive` shim) so the seed's derive lists
//!   compile unchanged.
//!
//! When a real serialisation backend is vendored later, this crate can
//! be replaced without touching any call site.

pub use serde_derive::{Deserialize, Serialize};

/// Marker for serialisable types. Blanket-implemented: every type
/// satisfies `T: Serialize` under this shim.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker for deserialisable types. Blanket-implemented: every type
/// satisfies `T: Deserialize<'de>` under this shim.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
