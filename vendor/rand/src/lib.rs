//! Minimal, dependency-free stand-in for the subset of the `rand 0.8`
//! API this workspace uses (`StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool}`, `seq::SliceRandom::shuffle`).
//!
//! The container has no crates.io access, so the real `rand` cannot be
//! fetched; this shim keeps the public call sites source-compatible.
//! The generator is xoshiro256**, seeded through SplitMix64 — high
//! quality for test/benchmark workloads and fully deterministic per
//! seed, which is all the workspace requires (synthetic benchmark
//! generation and the SA optimiser baseline).

/// Core random number generation: a 64-bit output stream.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Draws a value from the rng's output stream.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::from_rng(rng) * (hi - lo)
    }
}

/// Convenience sampling methods, as in `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the generator.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        f64::from_rng(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, as in `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64. (The real `StdRng` is ChaCha12; callers here only
    /// rely on determinism-per-seed, not on the exact stream.)
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, as in `rand::seq`.
pub mod seq {
    use super::RngCore;

    /// Slice shuffling, as in `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(10..100);
            assert!((10..100).contains(&x));
            let y: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25..=0.75);
            assert!((0.25..=0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
