//! Minimal, dependency-free stand-in for the subset of `criterion`
//! this workspace's benches use (`criterion_group!`/`criterion_main!`,
//! `Criterion::benchmark_group`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, `black_box`).
//!
//! The container has no crates.io access, so the real `criterion`
//! cannot be fetched. This shim times each benchmark with plain
//! wall-clock measurement — warm-up, then as many iterations as fit in
//! the measurement window — and prints mean time per iteration. No
//! outlier analysis, no plots, no HTML reports; enough to compare
//! optimiser implementations on the same machine.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier, as in `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// Per-benchmark measurement driver, as in `criterion::Bencher`.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    /// Mean nanoseconds per iteration of the last `iter` call.
    result_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, storing the mean time per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up window elapses.
        let start = Instant::now();
        while start.elapsed() < self.warm_up {
            hint::black_box(routine());
        }
        // Measurement: count iterations inside the window.
        let mut iters: u64 = 0;
        let start = Instant::now();
        loop {
            hint::black_box(routine());
            iters += 1;
            if start.elapsed() >= self.measurement {
                break;
            }
        }
        self.result_ns = start.elapsed().as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

/// A named group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Sets the warm-up window.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Accepted for API compatibility; the shim sizes its sample by
    /// the measurement window instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs `routine` as benchmark `id` with `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            warm_up: self.effective_warm_up(),
            measurement: self.effective_measurement(),
            result_ns: 0.0,
            iters: 0,
        };
        routine(&mut b, input);
        println!(
            "{}/{}: {:>12} per iter ({} iters)",
            self.name,
            id.name,
            format_ns(b.result_ns),
            b.iters
        );
        self
    }

    /// Runs `routine` as benchmark `id` (no input).
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up: self.effective_warm_up(),
            measurement: self.effective_measurement(),
            result_ns: 0.0,
            iters: 0,
        };
        routine(&mut b);
        println!(
            "{}/{}: {:>12} per iter ({} iters)",
            self.name,
            id.into(),
            format_ns(b.result_ns),
            b.iters
        );
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}

    fn effective_warm_up(&self) -> Duration {
        if self.criterion.test_mode {
            Duration::ZERO
        } else {
            self.warm_up
        }
    }

    fn effective_measurement(&self) -> Duration {
        if self.criterion.test_mode {
            // One-shot: just check the routine runs.
            Duration::ZERO
        } else {
            self.measurement
        }
    }
}

/// Benchmark manager, as in `criterion::Criterion`.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test --benches` passes `--test`: run every routine
        // once instead of timing it.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Opens a named [`BenchmarkGroup`].
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            warm_up: Duration::from_secs(1),
            measurement: Duration::from_secs(3),
            criterion: self,
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a benchmark group function, as in `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main`, as in `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
