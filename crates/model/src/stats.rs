//! Workload statistics: the *achieved* structural and utilisation
//! figures of an application, for experiment reporting.
//!
//! The synthetic generator aims at configured utilisation and topology
//! targets; what a generated instance actually achieves (after payload
//! clamping, WCET rounding and relay insertion) is what an experiment
//! report has to carry per point. [`WorkloadStats`] collects those
//! achieved figures from any `(platform, application, phy)` triple, so
//! the generator, the grid-sweep engine and the cross-validation tests
//! all measure with the same ruler.

use crate::{Application, Census, MessageClass, ModelError, PhyParams, Platform};

/// Minimum / mean / maximum summary of a per-node quantity.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UtilSummary {
    /// Smallest value observed.
    pub min: f64,
    /// Arithmetic mean over all values.
    pub mean: f64,
    /// Largest value observed.
    pub max: f64,
}

impl UtilSummary {
    /// Summarises an iterator of values; an empty iterator yields all
    /// zeros.
    #[must_use]
    pub fn of<I: IntoIterator<Item = f64>>(values: I) -> Self {
        let mut n = 0usize;
        let mut sum = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for v in values {
            n += 1;
            sum += v;
            min = min.min(v);
            max = max.max(v);
        }
        if n == 0 {
            return UtilSummary::default();
        }
        UtilSummary {
            min,
            mean: sum / n as f64,
            max,
        }
    }
}

/// Achieved structural and utilisation statistics of one workload.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkloadStats {
    /// Activity counts by class (SCS/FPS tasks, static/dynamic
    /// messages).
    pub census: Census,
    /// Number of task graphs.
    pub graphs: usize,
    /// Achieved per-node CPU utilisation (`Σ C_i / T_i` per node),
    /// summarised over every platform node (nodes without tasks count
    /// as zero).
    pub node_util: UtilSummary,
    /// Achieved bus utilisation: total frame-transmission demand per
    /// hyperperiod divided by the hyperperiod (message payloads through
    /// [`PhyParams::frame_duration`]; slot overhead is not counted).
    pub bus_util: f64,
    /// Task-depth histogram over the graphs: `depth_histogram[d]` is the
    /// number of graphs whose longest task chain has `d` tasks (index 0
    /// stays zero for any non-empty graph).
    pub depth_histogram: Vec<usize>,
}

impl WorkloadStats {
    /// Collects the statistics of an application on a platform, using
    /// `phy` to convert message payloads to bus time.
    ///
    /// # Errors
    ///
    /// Propagates hyperperiod errors ([`Application::hyperperiod`]) and
    /// topology errors ([`Application::depth_histogram`]).
    pub fn collect(
        platform: &Platform,
        app: &Application,
        phy: &PhyParams,
    ) -> Result<Self, ModelError> {
        let census = Census::of(app);
        let util = app.node_utilisation();
        let node_util = UtilSummary::of(
            platform
                .nodes()
                .map(|n| util.get(&n).copied().unwrap_or(0.0)),
        );
        let h = app.hyperperiod()?;
        let mut demand = 0.0;
        for class in [MessageClass::Static, MessageClass::Dynamic] {
            for m in app.messages_of_class(class) {
                let size = app.activity(m).as_message().expect("message").size_bytes;
                let inst = h / app.period_of(m);
                demand += phy.frame_duration(size).as_ns() as f64 * inst as f64;
            }
        }
        Ok(WorkloadStats {
            census,
            graphs: app.graphs().len(),
            node_util,
            bus_util: demand / h.as_ns() as f64,
            depth_histogram: app.depth_histogram()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NodeId, SchedPolicy, Time};

    fn sample() -> (Platform, Application) {
        let mut app = Application::new();
        let g = app.add_graph("g", Time::from_us(100.0), Time::from_us(100.0));
        let t1 = app.add_task(
            g,
            "t1",
            NodeId::new(0),
            Time::from_us(10.0),
            SchedPolicy::Scs,
            0,
        );
        let t2 = app.add_task(
            g,
            "t2",
            NodeId::new(1),
            Time::from_us(20.0),
            SchedPolicy::Fps,
            3,
        );
        let m = app.add_message(g, "m", 8, MessageClass::Dynamic, 1);
        app.connect(t1, m, t2).expect("edges");
        (Platform::with_nodes(3), app)
    }

    #[test]
    fn util_summary_of_values() {
        let s = UtilSummary::of([0.2, 0.4, 0.6]);
        assert_eq!(s.min, 0.2);
        assert!((s.mean - 0.4).abs() < 1e-12);
        assert_eq!(s.max, 0.6);
        assert_eq!(UtilSummary::of([]), UtilSummary::default());
    }

    #[test]
    fn collect_measures_the_sample() {
        let (platform, app) = sample();
        let stats = WorkloadStats::collect(&platform, &app, &PhyParams::unit()).expect("collect");
        assert_eq!(stats.census.scs_tasks, 1);
        assert_eq!(stats.census.fps_tasks, 1);
        assert_eq!(stats.census.dyn_messages, 1);
        assert_eq!(stats.graphs, 1);
        // node 2 carries no task, so min utilisation is zero
        assert_eq!(stats.node_util.min, 0.0);
        assert!((stats.node_util.max - 0.2).abs() < 1e-12, "20µs / 100µs");
        assert!(stats.bus_util > 0.0);
        // one graph with a two-task chain
        assert_eq!(stats.depth_histogram, vec![0, 0, 1]);
    }

    #[test]
    fn bus_util_matches_system_level_computation() {
        use crate::{BusConfig, FrameId, PhyParams, System};
        let (platform, app) = sample();
        let phy = PhyParams::unit();
        let stats = WorkloadStats::collect(&platform, &app, &phy).expect("collect");
        let m = app.find("m").expect("m");
        let mut bus = BusConfig::new(phy);
        bus.static_slot_len = Time::from_us(4.0);
        bus.static_slot_owners = vec![NodeId::new(0)];
        bus.n_minislots = 40;
        bus.frame_ids.insert(m, FrameId::new(1));
        let sys = System::validated(platform, app, bus).expect("valid");
        let sys_util = sys.bus_utilisation().expect("bus utilisation");
        assert!(
            (stats.bus_util - sys_util).abs() < 1e-12,
            "{} vs {sys_util}",
            stats.bus_util
        );
    }
}
