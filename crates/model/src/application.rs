//! Application model: polar acyclic task graphs of tasks and messages.
//!
//! Following Section 4 of the paper, an application is a set of directed
//! acyclic graphs. Graph nodes are *activities*: computation tasks mapped
//! to processing nodes, or messages inserted on every edge that crosses a
//! node boundary. All activities of a graph share the graph's period and
//! deadline; individual release times and deadlines may be attached on
//! top.

use crate::{ActivityId, GraphId, ModelError, NodeId, Time};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet, VecDeque};

/// Scheduling policy of a task (Section 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedPolicy {
    /// Static cyclic scheduling: non-preemptable, start times fixed
    /// off-line in the schedule table.
    Scs,
    /// Fixed-priority preemptive scheduling in the slack of the SCS table.
    Fps,
}

/// Transmission class of a message (Section 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MessageClass {
    /// Sent in the static (TDMA) segment, from the off-line schedule table.
    Static,
    /// Sent in the dynamic (FTDMA) segment, arbitrated by frame identifier
    /// and local priority.
    Dynamic,
}

/// A computation task.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Node the task is mapped to.
    pub node: NodeId,
    /// Worst-case execution time on that node.
    pub wcet: Time,
    /// SCS or FPS.
    pub policy: SchedPolicy,
    /// Priority for FPS tasks (higher value = higher priority). Ignored
    /// for SCS tasks.
    pub priority: u32,
}

/// A message exchanged between tasks on different nodes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageSpec {
    /// Payload size in bytes; converted to bus time via
    /// [`PhyParams::frame_duration`](crate::PhyParams::frame_duration).
    pub size_bytes: u32,
    /// Static or dynamic segment.
    pub class: MessageClass,
    /// Priority among dynamic messages sharing a frame identifier on the
    /// same node (higher value = higher priority). Ignored for static
    /// messages.
    pub priority: u32,
}

/// What an activity is: a task or a message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActivityKind {
    /// A computation task.
    Task(TaskSpec),
    /// A communication task (message) on an inter-node edge.
    Message(MessageSpec),
}

/// One node of a task graph: a task or a message, plus its timing
/// attributes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Activity {
    /// Human-readable name (unique within the application by convention,
    /// not enforced).
    pub name: String,
    /// Owning task graph.
    pub graph: GraphId,
    /// Task or message payload.
    pub kind: ActivityKind,
    /// Release offset relative to the graph activation (0 for most).
    pub release: Time,
    /// Individual deadline relative to the graph activation; falls back
    /// to the graph deadline when `None`.
    pub deadline: Option<Time>,
}

impl Activity {
    /// The task spec, if this activity is a task.
    #[must_use]
    pub fn as_task(&self) -> Option<&TaskSpec> {
        match &self.kind {
            ActivityKind::Task(t) => Some(t),
            ActivityKind::Message(_) => None,
        }
    }

    /// The message spec, if this activity is a message.
    #[must_use]
    pub fn as_message(&self) -> Option<&MessageSpec> {
        match &self.kind {
            ActivityKind::Message(m) => Some(m),
            ActivityKind::Task(_) => None,
        }
    }

    /// `true` if this activity is time-triggered (an SCS task or a static
    /// message).
    #[must_use]
    pub fn is_time_triggered(&self) -> bool {
        match &self.kind {
            ActivityKind::Task(t) => t.policy == SchedPolicy::Scs,
            ActivityKind::Message(m) => m.class == MessageClass::Static,
        }
    }
}

/// A task graph: a polar DAG of activities sharing one period and
/// deadline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskGraph {
    /// Name for reporting.
    pub name: String,
    /// Activation period `T_Gi`.
    pub period: Time,
    /// End-to-end deadline `D_Gi` relative to activation.
    pub deadline: Time,
    /// Members, in insertion order.
    pub members: Vec<ActivityId>,
}

/// The application: all task graphs plus the global precedence relation.
///
/// Activities are stored in one flat arena indexed by [`ActivityId`];
/// edges are kept both as a list and as per-activity adjacency for O(1)
/// predecessor/successor queries.
///
/// # Examples
///
/// ```
/// use flexray_model::*;
///
/// let mut app = Application::new();
/// let g = app.add_graph("control", Time::from_us(100.0), Time::from_us(100.0));
/// let sense = app.add_task(g, "sense", NodeId::new(0), Time::from_us(5.0), SchedPolicy::Scs, 0);
/// let act = app.add_task(g, "act", NodeId::new(1), Time::from_us(5.0), SchedPolicy::Scs, 0);
/// let msg = app.add_message(g, "m", 4, MessageClass::Static, 0);
/// app.add_edge(sense, msg)?;
/// app.add_edge(msg, act)?;
/// app.validate()?;
/// assert_eq!(app.sender_of(msg), Some(NodeId::new(0)));
/// # Ok::<(), ModelError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Application {
    activities: Vec<Activity>,
    graphs: Vec<TaskGraph>,
    edges: Vec<(ActivityId, ActivityId)>,
    preds: Vec<Vec<ActivityId>>,
    succs: Vec<Vec<ActivityId>>,
}

impl Application {
    /// Creates an empty application.
    #[must_use]
    pub fn new() -> Self {
        Application::default()
    }

    /// Adds a task graph with the given period and end-to-end deadline.
    pub fn add_graph(&mut self, name: &str, period: Time, deadline: Time) -> GraphId {
        let id = GraphId::new(self.graphs.len());
        self.graphs.push(TaskGraph {
            name: name.to_owned(),
            period,
            deadline,
            members: Vec::new(),
        });
        id
    }

    fn push_activity(&mut self, activity: Activity) -> ActivityId {
        let id = ActivityId::new(self.activities.len());
        self.graphs[activity.graph.index()].members.push(id);
        self.activities.push(activity);
        self.preds.push(Vec::new());
        self.succs.push(Vec::new());
        id
    }

    /// Adds a computation task to `graph`.
    ///
    /// # Panics
    ///
    /// Panics if `graph` does not exist.
    pub fn add_task(
        &mut self,
        graph: GraphId,
        name: &str,
        node: NodeId,
        wcet: Time,
        policy: SchedPolicy,
        priority: u32,
    ) -> ActivityId {
        assert!(graph.index() < self.graphs.len(), "unknown graph {graph}");
        self.push_activity(Activity {
            name: name.to_owned(),
            graph,
            kind: ActivityKind::Task(TaskSpec {
                node,
                wcet,
                policy,
                priority,
            }),
            release: Time::ZERO,
            deadline: None,
        })
    }

    /// Adds a message to `graph`.
    ///
    /// # Panics
    ///
    /// Panics if `graph` does not exist.
    pub fn add_message(
        &mut self,
        graph: GraphId,
        name: &str,
        size_bytes: u32,
        class: MessageClass,
        priority: u32,
    ) -> ActivityId {
        assert!(graph.index() < self.graphs.len(), "unknown graph {graph}");
        self.push_activity(Activity {
            name: name.to_owned(),
            graph,
            kind: ActivityKind::Message(MessageSpec {
                size_bytes,
                class,
                priority,
            }),
            release: Time::ZERO,
            deadline: None,
        })
    }

    /// Adds a precedence edge `from → to`.
    ///
    /// # Errors
    ///
    /// Returns an error if either endpoint is unknown, the endpoints live
    /// in different graphs, or the edge is a self-loop.
    pub fn add_edge(&mut self, from: ActivityId, to: ActivityId) -> Result<(), ModelError> {
        let a = self
            .activities
            .get(from.index())
            .ok_or(ModelError::UnknownActivity(from))?;
        let b = self
            .activities
            .get(to.index())
            .ok_or(ModelError::UnknownActivity(to))?;
        if a.graph != b.graph {
            return Err(ModelError::MalformedGraph(format!(
                "edge {from}->{to} crosses graphs {} and {}",
                a.graph, b.graph
            )));
        }
        if from == to {
            return Err(ModelError::MalformedGraph(format!("self-loop on {from}")));
        }
        self.edges.push((from, to));
        self.succs[from.index()].push(to);
        self.preds[to.index()].push(from);
        Ok(())
    }

    /// Convenience: wires `sender → message → receiver` in one call.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`Application::add_edge`].
    pub fn connect(
        &mut self,
        sender: ActivityId,
        message: ActivityId,
        receiver: ActivityId,
    ) -> Result<(), ModelError> {
        self.add_edge(sender, message)?;
        self.add_edge(message, receiver)
    }

    /// Convenience: wires gateway traffic
    /// `sender → m_in → relay → m_out → receiver` in one call.
    ///
    /// The relay is an ordinary task mapped to the gateway node, so the
    /// holistic analysis and the simulator apply to gateway traffic
    /// unchanged — the relayed dependency is just two hops with a
    /// store-and-forward task in between.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`Application::add_edge`].
    pub fn connect_relayed(
        &mut self,
        sender: ActivityId,
        m_in: ActivityId,
        relay: ActivityId,
        m_out: ActivityId,
        receiver: ActivityId,
    ) -> Result<(), ModelError> {
        self.connect(sender, m_in, relay)?;
        self.connect(relay, m_out, receiver)
    }

    /// Sets an individual release offset on an activity.
    ///
    /// # Panics
    ///
    /// Panics if the activity does not exist.
    pub fn set_release(&mut self, id: ActivityId, release: Time) {
        self.activities[id.index()].release = release;
    }

    /// Sets an individual deadline (relative to graph activation).
    ///
    /// # Panics
    ///
    /// Panics if the activity does not exist.
    pub fn set_deadline(&mut self, id: ActivityId, deadline: Time) {
        self.activities[id.index()].deadline = Some(deadline);
    }

    /// All activities, indexable by [`ActivityId::index`].
    #[must_use]
    pub fn activities(&self) -> &[Activity] {
        &self.activities
    }

    /// All task graphs, indexable by [`GraphId::index`].
    #[must_use]
    pub fn graphs(&self) -> &[TaskGraph] {
        &self.graphs
    }

    /// All precedence edges.
    #[must_use]
    pub fn edges(&self) -> &[(ActivityId, ActivityId)] {
        &self.edges
    }

    /// The activity with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn activity(&self, id: ActivityId) -> &Activity {
        &self.activities[id.index()]
    }

    /// The graph an activity belongs to.
    #[must_use]
    pub fn graph_of(&self, id: ActivityId) -> &TaskGraph {
        &self.graphs[self.activities[id.index()].graph.index()]
    }

    /// Direct predecessors of an activity.
    #[must_use]
    pub fn preds(&self, id: ActivityId) -> &[ActivityId] {
        &self.preds[id.index()]
    }

    /// Direct successors of an activity.
    #[must_use]
    pub fn succs(&self, id: ActivityId) -> &[ActivityId] {
        &self.succs[id.index()]
    }

    /// Period of the graph the activity belongs to.
    #[must_use]
    pub fn period_of(&self, id: ActivityId) -> Time {
        self.graph_of(id).period
    }

    /// Effective deadline of an activity: its individual deadline if set,
    /// otherwise the graph deadline.
    #[must_use]
    pub fn deadline_of(&self, id: ActivityId) -> Time {
        let a = &self.activities[id.index()];
        a.deadline.unwrap_or(self.graphs[a.graph.index()].deadline)
    }

    /// The node that executes the sender task of a message, i.e. the node
    /// that transmits the message. `None` for tasks or unconnected
    /// messages.
    #[must_use]
    pub fn sender_of(&self, message: ActivityId) -> Option<NodeId> {
        self.activities[message.index()].as_message()?;
        self.preds(message)
            .iter()
            .find_map(|&p| self.activities[p.index()].as_task().map(|t| t.node))
    }

    /// The nodes that receive a message (nodes of its successor tasks).
    #[must_use]
    pub fn receivers_of(&self, message: ActivityId) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self
            .succs(message)
            .iter()
            .filter_map(|&s| self.activities[s.index()].as_task().map(|t| t.node))
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// Iterator over ids of all activities.
    pub fn ids(&self) -> impl Iterator<Item = ActivityId> + '_ {
        (0..self.activities.len()).map(ActivityId::new)
    }

    /// Ids of all messages of the given class.
    pub fn messages_of_class(&self, class: MessageClass) -> impl Iterator<Item = ActivityId> + '_ {
        self.ids().filter(move |&id| {
            self.activities[id.index()].as_message().map(|m| m.class) == Some(class)
        })
    }

    /// Ids of all tasks with the given policy.
    pub fn tasks_with_policy(&self, policy: SchedPolicy) -> impl Iterator<Item = ActivityId> + '_ {
        self.ids().filter(move |&id| {
            self.activities[id.index()].as_task().map(|t| t.policy) == Some(policy)
        })
    }

    /// Ids of all tasks mapped to `node`.
    pub fn tasks_on(&self, node: NodeId) -> impl Iterator<Item = ActivityId> + '_ {
        self.ids()
            .filter(move |&id| self.activities[id.index()].as_task().map(|t| t.node) == Some(node))
    }

    /// A topological order of all activities (Kahn's algorithm).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::MalformedGraph`] if the precedence relation
    /// has a cycle.
    pub fn topological_order(&self) -> Result<Vec<ActivityId>, ModelError> {
        let n = self.activities.len();
        let mut indegree: Vec<usize> = (0..n).map(|i| self.preds[i].len()).collect();
        let mut queue: VecDeque<ActivityId> = (0..n)
            .filter(|&i| indegree[i] == 0)
            .map(ActivityId::new)
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(id) = queue.pop_front() {
            order.push(id);
            for &s in &self.succs[id.index()] {
                indegree[s.index()] -= 1;
                if indegree[s.index()] == 0 {
                    queue.push_back(s);
                }
            }
        }
        if order.len() != n {
            return Err(ModelError::MalformedGraph(
                "precedence relation contains a cycle".into(),
            ));
        }
        Ok(order)
    }

    /// Hyperperiod: the least common multiple of all graph periods.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::HyperperiodOverflow`] if the LCM overflows,
    /// and [`ModelError::NonPositiveTime`] if any period is non-positive.
    pub fn hyperperiod(&self) -> Result<Time, ModelError> {
        let mut h = Time::from_ns(1);
        for g in &self.graphs {
            if g.period <= Time::ZERO {
                return Err(ModelError::NonPositiveTime {
                    what: format!("period of graph '{}'", g.name),
                    value: g.period,
                });
            }
            h = h.lcm(g.period).ok_or(ModelError::HyperperiodOverflow)?;
        }
        Ok(h)
    }

    /// Validates the structural invariants of the application:
    ///
    /// * the precedence relation is acyclic;
    /// * every message has at least one predecessor and one successor,
    ///   all of which are tasks (messages never chain directly);
    /// * all sender tasks of a message are on one node, and no receiver
    ///   task is on the sender node (inter-node communication only);
    /// * WCETs, sizes, periods and deadlines are positive;
    /// * releases and deadlines fit inside the graph period/deadline.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), ModelError> {
        self.topological_order()?;
        self.hyperperiod()?;
        for g in &self.graphs {
            if g.deadline <= Time::ZERO {
                return Err(ModelError::NonPositiveTime {
                    what: format!("deadline of graph '{}'", g.name),
                    value: g.deadline,
                });
            }
        }
        for id in self.ids() {
            let a = &self.activities[id.index()];
            match &a.kind {
                ActivityKind::Task(t) => {
                    if t.wcet <= Time::ZERO {
                        return Err(ModelError::NonPositiveTime {
                            what: format!("wcet of task '{}'", a.name),
                            value: t.wcet,
                        });
                    }
                }
                ActivityKind::Message(m) => {
                    if m.size_bytes == 0 {
                        return Err(ModelError::MalformedGraph(format!(
                            "message '{}' has zero size",
                            a.name
                        )));
                    }
                    let preds = self.preds(id);
                    let succs = self.succs(id);
                    if preds.is_empty() || succs.is_empty() {
                        return Err(ModelError::MalformedGraph(format!(
                            "message '{}' must connect a sender and a receiver",
                            a.name
                        )));
                    }
                    let mut sender_nodes = HashSet::new();
                    for &p in preds {
                        match self.activities[p.index()].as_task() {
                            Some(t) => {
                                sender_nodes.insert(t.node);
                            }
                            None => {
                                return Err(ModelError::MalformedGraph(format!(
                                    "message '{}' has a message predecessor",
                                    a.name
                                )))
                            }
                        }
                    }
                    if sender_nodes.len() != 1 {
                        return Err(ModelError::MalformedGraph(format!(
                            "message '{}' has senders on {} nodes",
                            a.name,
                            sender_nodes.len()
                        )));
                    }
                    let sender = *sender_nodes.iter().next().expect("one sender");
                    for &s in succs {
                        match self.activities[s.index()].as_task() {
                            Some(t) if t.node == sender => {
                                return Err(ModelError::MalformedGraph(format!(
                                    "message '{}' is local to node {sender}; intra-node \
                                     communication is part of the task wcet",
                                    a.name
                                )))
                            }
                            Some(_) => {}
                            None => {
                                return Err(ModelError::MalformedGraph(format!(
                                    "message '{}' has a message successor",
                                    a.name
                                )))
                            }
                        }
                    }
                }
            }
            if a.release < Time::ZERO {
                return Err(ModelError::NonPositiveTime {
                    what: format!("release of '{}'", a.name),
                    value: a.release,
                });
            }
            if let Some(d) = a.deadline {
                if d <= Time::ZERO {
                    return Err(ModelError::NonPositiveTime {
                        what: format!("deadline of '{}'", a.name),
                        value: d,
                    });
                }
            }
        }
        Ok(())
    }

    /// Replaces the specification of a task (used by generators to
    /// rescale execution times to utilisation targets).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a task.
    pub fn replace_task_spec(&mut self, id: ActivityId, spec: TaskSpec) {
        match &mut self.activities[id.index()].kind {
            ActivityKind::Task(t) => *t = spec,
            ActivityKind::Message(_) => panic!("{id} is a message, not a task"),
        }
    }

    /// Replaces the specification of a message (used by generators to
    /// rescale payload sizes to bus-utilisation targets).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a message.
    pub fn replace_message_spec(&mut self, id: ActivityId, spec: MessageSpec) {
        match &mut self.activities[id.index()].kind {
            ActivityKind::Message(m) => *m = spec,
            ActivityKind::Task(_) => panic!("{id} is a task, not a message"),
        }
    }

    /// Looks up an activity by name (linear scan; intended for tests and
    /// examples).
    #[must_use]
    pub fn find(&self, name: &str) -> Option<ActivityId> {
        self.ids()
            .find(|&id| self.activities[id.index()].name == name)
    }

    /// Task-wise depth of a graph: the number of tasks on the longest
    /// precedence path through it (messages do not count). A chain of
    /// `k` tasks has depth `k`; the paper's random graphs of 5 have
    /// depth ≤ 5.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::MalformedGraph`] if the precedence relation
    /// has a cycle.
    pub fn task_depth(&self, graph: GraphId) -> Result<usize, ModelError> {
        let order = self.topological_order()?;
        let mut depth = vec![0usize; self.activities.len()];
        let mut max = 0;
        for id in order {
            let a = &self.activities[id.index()];
            if a.graph != graph {
                continue;
            }
            let inherited = self.preds[id.index()]
                .iter()
                .map(|p| depth[p.index()])
                .max()
                .unwrap_or(0);
            let own = usize::from(a.as_task().is_some());
            depth[id.index()] = inherited + own;
            max = max.max(depth[id.index()]);
        }
        Ok(max)
    }

    /// Task-depth histogram over all graphs: entry `d` is the number of
    /// graphs whose [`Application::task_depth`] is `d`. One topological
    /// sort covers every graph, so this is cheaper than calling
    /// `task_depth` per graph.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::MalformedGraph`] if the precedence relation
    /// has a cycle.
    pub fn depth_histogram(&self) -> Result<Vec<usize>, ModelError> {
        let order = self.topological_order()?;
        let mut depth = vec![0usize; self.activities.len()];
        let mut graph_depth = vec![0usize; self.graphs.len()];
        for id in order {
            let a = &self.activities[id.index()];
            let inherited = self.preds[id.index()]
                .iter()
                .map(|p| depth[p.index()])
                .max()
                .unwrap_or(0);
            let own = usize::from(a.as_task().is_some());
            depth[id.index()] = inherited + own;
            let g = a.graph.index();
            graph_depth[g] = graph_depth[g].max(depth[id.index()]);
        }
        let mut hist = vec![0usize; graph_depth.iter().max().map_or(0, |&d| d + 1)];
        for d in graph_depth {
            hist[d] += 1;
        }
        Ok(hist)
    }

    /// Per-node utilisation of all tasks: `Σ C_i / T_i` grouped by node.
    #[must_use]
    pub fn node_utilisation(&self) -> HashMap<NodeId, f64> {
        let mut u = HashMap::new();
        for id in self.ids() {
            if let Some(t) = self.activities[id.index()].as_task() {
                let period = self.period_of(id);
                *u.entry(t.node).or_insert(0.0) += t.wcet.as_ns() as f64 / period.as_ns() as f64;
            }
        }
        u
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node_app() -> (Application, ActivityId, ActivityId, ActivityId) {
        let mut app = Application::new();
        let g = app.add_graph("g", Time::from_us(100.0), Time::from_us(80.0));
        let t1 = app.add_task(
            g,
            "t1",
            NodeId::new(0),
            Time::from_us(5.0),
            SchedPolicy::Scs,
            0,
        );
        let t2 = app.add_task(
            g,
            "t2",
            NodeId::new(1),
            Time::from_us(7.0),
            SchedPolicy::Fps,
            3,
        );
        let m = app.add_message(g, "m", 8, MessageClass::Dynamic, 1);
        app.connect(t1, m, t2).expect("valid edges");
        (app, t1, t2, m)
    }

    #[test]
    fn build_and_query() {
        let (app, t1, t2, m) = two_node_app();
        assert!(app.validate().is_ok());
        assert_eq!(app.sender_of(m), Some(NodeId::new(0)));
        assert_eq!(app.receivers_of(m), vec![NodeId::new(1)]);
        assert_eq!(app.preds(m), &[t1]);
        assert_eq!(app.succs(m), &[t2]);
        assert_eq!(app.deadline_of(t2), Time::from_us(80.0));
        assert_eq!(app.period_of(t1), Time::from_us(100.0));
    }

    #[test]
    fn individual_deadline_overrides_graph() {
        let (mut app, _, t2, _) = two_node_app();
        app.set_deadline(t2, Time::from_us(50.0));
        assert_eq!(app.deadline_of(t2), Time::from_us(50.0));
    }

    #[test]
    fn topological_order_respects_edges() {
        let (app, t1, t2, m) = two_node_app();
        let order = app.topological_order().expect("acyclic");
        let pos = |id: ActivityId| order.iter().position(|&x| x == id).expect("present");
        assert!(pos(t1) < pos(m));
        assert!(pos(m) < pos(t2));
    }

    #[test]
    fn cycle_is_rejected() {
        let (mut app, t1, t2, _) = two_node_app();
        // close a cycle t2 -> t1
        app.add_edge(t2, t1).expect("edge insert");
        assert!(matches!(app.validate(), Err(ModelError::MalformedGraph(_))));
    }

    #[test]
    fn cross_graph_edge_is_rejected() {
        let mut app = Application::new();
        let g1 = app.add_graph("g1", Time::from_us(10.0), Time::from_us(10.0));
        let g2 = app.add_graph("g2", Time::from_us(20.0), Time::from_us(20.0));
        let a = app.add_task(
            g1,
            "a",
            NodeId::new(0),
            Time::from_us(1.0),
            SchedPolicy::Scs,
            0,
        );
        let b = app.add_task(
            g2,
            "b",
            NodeId::new(0),
            Time::from_us(1.0),
            SchedPolicy::Scs,
            0,
        );
        assert!(app.add_edge(a, b).is_err());
    }

    #[test]
    fn local_message_is_rejected() {
        let mut app = Application::new();
        let g = app.add_graph("g", Time::from_us(10.0), Time::from_us(10.0));
        let a = app.add_task(
            g,
            "a",
            NodeId::new(0),
            Time::from_us(1.0),
            SchedPolicy::Scs,
            0,
        );
        let b = app.add_task(
            g,
            "b",
            NodeId::new(0),
            Time::from_us(1.0),
            SchedPolicy::Scs,
            0,
        );
        let m = app.add_message(g, "m", 2, MessageClass::Static, 0);
        app.connect(a, m, b).expect("edges");
        assert!(matches!(app.validate(), Err(ModelError::MalformedGraph(_))));
    }

    #[test]
    fn dangling_message_is_rejected() {
        let mut app = Application::new();
        let g = app.add_graph("g", Time::from_us(10.0), Time::from_us(10.0));
        let _m = app.add_message(g, "m", 2, MessageClass::Static, 0);
        assert!(matches!(app.validate(), Err(ModelError::MalformedGraph(_))));
    }

    #[test]
    fn hyperperiod_is_lcm_of_periods() {
        let mut app = Application::new();
        app.add_graph("a", Time::from_us(6.0), Time::from_us(6.0));
        app.add_graph("b", Time::from_us(4.0), Time::from_us(4.0));
        assert_eq!(app.hyperperiod().expect("lcm"), Time::from_us(12.0));
    }

    #[test]
    fn class_and_policy_filters() {
        let (app, t1, t2, m) = two_node_app();
        let dyns: Vec<_> = app.messages_of_class(MessageClass::Dynamic).collect();
        assert_eq!(dyns, vec![m]);
        let scs: Vec<_> = app.tasks_with_policy(SchedPolicy::Scs).collect();
        assert_eq!(scs, vec![t1]);
        let fps: Vec<_> = app.tasks_with_policy(SchedPolicy::Fps).collect();
        assert_eq!(fps, vec![t2]);
        assert_eq!(app.tasks_on(NodeId::new(1)).collect::<Vec<_>>(), vec![t2]);
    }

    #[test]
    fn utilisation_accumulates_per_node() {
        let (app, ..) = two_node_app();
        let u = app.node_utilisation();
        assert!((u[&NodeId::new(0)] - 0.05).abs() < 1e-9);
        assert!((u[&NodeId::new(1)] - 0.07).abs() < 1e-9);
    }

    #[test]
    fn find_by_name() {
        let (app, t1, ..) = two_node_app();
        assert_eq!(app.find("t1"), Some(t1));
        assert_eq!(app.find("nope"), None);
    }

    #[test]
    fn relayed_connection_validates_and_deepens_the_graph() {
        let (mut app, t1, t2, m) = two_node_app();
        let g = app.activity(t1).graph;
        assert_eq!(app.task_depth(g).expect("acyclic"), 2);
        // relay t1 → t2 traffic through a gateway on node 2
        let relay = app.add_task(
            g,
            "gw",
            NodeId::new(2),
            Time::from_us(1.0),
            SchedPolicy::Fps,
            9,
        );
        let m_in = app.add_message(g, "m_in", 4, MessageClass::Dynamic, 2);
        let m_out = app.add_message(g, "m_out", 4, MessageClass::Dynamic, 2);
        app.connect_relayed(t1, m_in, relay, m_out, t2)
            .expect("relay wires up");
        app.validate().expect("relayed app validates");
        assert_eq!(app.sender_of(m_in), Some(NodeId::new(0)));
        assert_eq!(app.receivers_of(m_in), vec![NodeId::new(2)]);
        assert_eq!(app.sender_of(m_out), Some(NodeId::new(2)));
        assert_eq!(app.receivers_of(m_out), vec![NodeId::new(1)]);
        // t1 → relay → t2 is now the longest task path
        assert_eq!(app.task_depth(g).expect("acyclic"), 3);
        let _ = m;
    }

    #[test]
    fn task_depth_of_chain_counts_tasks_only() {
        let mut app = Application::new();
        let g = app.add_graph("chain", Time::from_us(100.0), Time::from_us(100.0));
        let mut prev = None;
        for i in 0..4 {
            let t = app.add_task(
                g,
                &format!("t{i}"),
                NodeId::new(i % 2),
                Time::from_us(1.0),
                SchedPolicy::Scs,
                0,
            );
            if let Some(p) = prev {
                let m = app.add_message(g, &format!("m{i}"), 2, MessageClass::Static, 0);
                app.connect(p, m, t).expect("edges");
            }
            prev = Some(t);
        }
        assert_eq!(app.task_depth(g).expect("acyclic"), 4);
        // an unknown-but-well-formed graph id simply has depth 0
        let empty = app.add_graph("empty", Time::from_us(100.0), Time::from_us(100.0));
        assert_eq!(app.task_depth(empty).expect("acyclic"), 0);
    }
}
