//! The complete system: platform + application + bus configuration.

use crate::{
    ActivityId, Application, BusConfig, MessageClass, ModelError, NodeId, SchedPolicy, Time,
};
use serde::{Deserialize, Serialize};

/// The hardware platform: a set of named processing nodes on one FlexRay
/// channel.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Platform {
    node_names: Vec<String>,
}

impl Platform {
    /// A platform of `n` nodes named `N0`, `N1`, ….
    #[must_use]
    pub fn with_nodes(n: usize) -> Self {
        Platform {
            node_names: (0..n).map(|i| format!("N{i}")).collect(),
        }
    }

    /// A platform with explicit node names.
    #[must_use]
    pub fn from_names<I: IntoIterator<Item = S>, S: Into<String>>(names: I) -> Self {
        Platform {
            node_names: names.into_iter().map(Into::into).collect(),
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.node_names.len()
    }

    /// `true` if the platform has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.node_names.is_empty()
    }

    /// Name of a node.
    #[must_use]
    pub fn name(&self, node: NodeId) -> &str {
        &self.node_names[node.index()]
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_names.len()).map(NodeId::new)
    }
}

/// A fully specified distributed system, ready for analysis.
///
/// Construction through [`System::validated`] guarantees that the
/// application is well-formed and the bus configuration is consistent
/// with it, so the analysis crates can index freely.
///
/// The fields stay public for the optimisation loops, which repeatedly
/// swap [`System::bus`] and re-analyse; call [`System::validate`] after
/// manual edits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct System {
    /// The processing nodes.
    pub platform: Platform,
    /// The task graphs.
    pub app: Application,
    /// The FlexRay bus configuration under evaluation.
    pub bus: BusConfig,
}

impl System {
    /// A borrowed [`SystemView`](crate::SystemView) over this system —
    /// the form the analysis crates consume.
    #[must_use]
    pub fn view(&self) -> crate::SystemView<'_> {
        crate::SystemView::from(self)
    }

    /// Builds a system and validates every layer.
    ///
    /// # Errors
    ///
    /// Propagates [`Application::validate`] and
    /// [`BusConfig::validate_for`] failures, and rejects tasks mapped to
    /// nodes outside the platform.
    pub fn validated(
        platform: Platform,
        app: Application,
        bus: BusConfig,
    ) -> Result<Self, ModelError> {
        let sys = System { platform, app, bus };
        sys.validate()?;
        Ok(sys)
    }

    /// Re-runs all validation (application structure, node mapping, bus
    /// configuration, protocol limits).
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), ModelError> {
        self.app.validate()?;
        for id in self.app.ids() {
            if let Some(t) = self.app.activity(id).as_task() {
                if t.node.index() >= self.platform.len() {
                    return Err(ModelError::UnknownNode(t.node));
                }
            }
        }
        self.bus.validate_for(&self.app, self.platform.len())
    }

    /// The application hyperperiod (LCM of all graph periods).
    ///
    /// # Errors
    ///
    /// See [`Application::hyperperiod`].
    pub fn hyperperiod(&self) -> Result<Time, ModelError> {
        self.app.hyperperiod()
    }

    /// Number of bus cycles needed to cover the hyperperiod (the static
    /// schedule horizon), rounding up.
    ///
    /// # Errors
    ///
    /// Propagates hyperperiod errors; also fails if the cycle is empty.
    pub fn cycles_in_horizon(&self) -> Result<i64, ModelError> {
        let h = self.hyperperiod()?;
        let cycle = self.bus.gd_cycle();
        if cycle <= Time::ZERO {
            return Err(ModelError::ProtocolLimit(
                "bus cycle has zero length".into(),
            ));
        }
        Ok(h.div_ceil(cycle))
    }

    /// Transmission time `C_m` of a message (Eq. (1)).
    #[must_use]
    pub fn comm_time(&self, message: ActivityId) -> Time {
        self.view().comm_time(message)
    }

    /// Worst-case execution/transmission time of any activity: task WCET
    /// or message communication time.
    #[must_use]
    pub fn duration_of(&self, id: ActivityId) -> Time {
        self.view().duration_of(id)
    }

    /// Nodes that send at least one static message.
    #[must_use]
    pub fn st_sender_nodes(&self) -> Vec<NodeId> {
        self.view().st_sender_nodes()
    }

    /// Dynamic messages sorted by frame identifier (then priority,
    /// descending) — the order the dynamic slot counter serves them.
    #[must_use]
    pub fn dyn_messages_by_frame(&self) -> Vec<ActivityId> {
        self.view().dyn_messages_by_frame()
    }

    /// Bus utilisation: total bus time demanded per hyperperiod divided
    /// by the hyperperiod (message transmissions only; slot overhead is
    /// not counted).
    ///
    /// # Errors
    ///
    /// Propagates hyperperiod errors.
    pub fn bus_utilisation(&self) -> Result<f64, ModelError> {
        let h = self.hyperperiod()?;
        let mut demand = 0.0;
        for m in self.app.messages_of_class(MessageClass::Static) {
            let inst = h / self.app.period_of(m);
            demand += self.comm_time(m).as_ns() as f64 * inst as f64;
        }
        for m in self.app.messages_of_class(MessageClass::Dynamic) {
            let inst = h / self.app.period_of(m);
            demand += self.comm_time(m).as_ns() as f64 * inst as f64;
        }
        Ok(demand / h.as_ns() as f64)
    }

    /// Count of activities by convenience class, for reporting.
    #[must_use]
    pub fn census(&self) -> Census {
        Census::of(&self.app)
    }

    /// Achieved workload statistics (census, node/bus utilisation,
    /// depth histogram) of this system, measured with the bus's
    /// physical layer.
    ///
    /// # Errors
    ///
    /// See [`crate::WorkloadStats::collect`].
    pub fn workload_stats(&self) -> Result<crate::WorkloadStats, ModelError> {
        crate::WorkloadStats::collect(&self.platform, &self.app, &self.bus.phy)
    }
}

/// Activity counts of a system, for experiment reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Census {
    /// Statically (time-triggered) scheduled tasks.
    pub scs_tasks: usize,
    /// Fixed-priority (event-triggered) tasks.
    pub fps_tasks: usize,
    /// Static-segment messages.
    pub st_messages: usize,
    /// Dynamic-segment messages.
    pub dyn_messages: usize,
}

impl Census {
    /// Counts the activities of an application by class.
    #[must_use]
    pub fn of(app: &Application) -> Census {
        let mut census = Census::default();
        for id in app.ids() {
            match &app.activity(id).kind {
                crate::ActivityKind::Task(t) => match t.policy {
                    SchedPolicy::Scs => census.scs_tasks += 1,
                    SchedPolicy::Fps => census.fps_tasks += 1,
                },
                crate::ActivityKind::Message(m) => match m.class {
                    MessageClass::Static => census.st_messages += 1,
                    MessageClass::Dynamic => census.dyn_messages += 1,
                },
            }
        }
        census
    }

    /// Total number of activities.
    #[must_use]
    pub fn total(&self) -> usize {
        self.scs_tasks + self.fps_tasks + self.st_messages + self.dyn_messages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FrameId, PhyParams};

    fn small_system() -> System {
        let mut app = Application::new();
        let g = app.add_graph("g", Time::from_us(100.0), Time::from_us(100.0));
        let t1 = app.add_task(
            g,
            "t1",
            NodeId::new(0),
            Time::from_us(5.0),
            SchedPolicy::Scs,
            0,
        );
        let t2 = app.add_task(
            g,
            "t2",
            NodeId::new(1),
            Time::from_us(5.0),
            SchedPolicy::Scs,
            0,
        );
        let t3 = app.add_task(
            g,
            "t3",
            NodeId::new(0),
            Time::from_us(3.0),
            SchedPolicy::Fps,
            2,
        );
        let t4 = app.add_task(
            g,
            "t4",
            NodeId::new(1),
            Time::from_us(3.0),
            SchedPolicy::Fps,
            2,
        );
        let st = app.add_message(g, "st", 4, MessageClass::Static, 0);
        let dy = app.add_message(g, "dy", 2, MessageClass::Dynamic, 1);
        app.connect(t1, st, t2).expect("edges");
        app.connect(t3, dy, t4).expect("edges");
        let mut bus = BusConfig::new(PhyParams::unit());
        bus.static_slot_len = Time::from_us(4.0);
        bus.static_slot_owners = vec![NodeId::new(0), NodeId::new(1)];
        bus.n_minislots = 10;
        bus.frame_ids.insert(dy, FrameId::new(1));
        System::validated(Platform::with_nodes(2), app, bus).expect("valid system")
    }

    #[test]
    fn validated_construction() {
        let sys = small_system();
        assert_eq!(sys.platform.len(), 2);
        assert_eq!(sys.census().total(), 6);
        assert_eq!(sys.census().scs_tasks, 2);
        assert_eq!(sys.census().dyn_messages, 1);
    }

    #[test]
    fn rejects_task_on_missing_node() {
        let mut sys = small_system();
        let g = sys.app.activity(crate::ActivityId::new(0)).graph;
        sys.app.add_task(
            g,
            "bad",
            NodeId::new(9),
            Time::from_us(1.0),
            SchedPolicy::Fps,
            0,
        );
        assert!(matches!(sys.validate(), Err(ModelError::UnknownNode(_))));
    }

    #[test]
    fn horizon_and_cycles() {
        let sys = small_system();
        assert_eq!(sys.hyperperiod().expect("h"), Time::from_us(100.0));
        // gdCycle = 2*4 + 10 = 18µs, ceil(100/18) = 6
        assert_eq!(sys.cycles_in_horizon().expect("cycles"), 6);
    }

    #[test]
    fn st_senders_and_dyn_order() {
        let sys = small_system();
        assert_eq!(sys.st_sender_nodes(), vec![NodeId::new(0)]);
        let dyns = sys.dyn_messages_by_frame();
        assert_eq!(dyns.len(), 1);
    }

    #[test]
    fn durations() {
        let sys = small_system();
        let st = sys.app.find("st").expect("st");
        let t1 = sys.app.find("t1").expect("t1");
        assert_eq!(sys.duration_of(t1), Time::from_us(5.0));
        assert_eq!(sys.duration_of(st), sys.comm_time(st));
        assert!(sys.comm_time(st) > Time::ZERO);
    }

    #[test]
    fn bus_utilisation_positive_and_below_one() {
        let sys = small_system();
        let u = sys.bus_utilisation().expect("utilisation");
        assert!(u > 0.0 && u < 1.0, "got {u}");
    }

    #[test]
    fn platform_names() {
        let p = Platform::from_names(["ecu-a", "ecu-b"]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.name(NodeId::new(1)), "ecu-b");
        assert!(!p.is_empty());
        assert_eq!(p.nodes().count(), 2);
    }
}

// These round-trip tests need a real serialisation backend
// (serde + serde_json). The build environment has no crates.io access
// and links the no-op `serde` shim from vendor/, so the module is
// gated behind the (off-by-default) `serde-json` feature rather than
// deleted: enable it once real serde/serde_json are available and the
// tests apply unchanged.
#[cfg(all(test, feature = "serde-json"))]
mod serde_tests {
    use super::*;
    use crate::{BusConfig, FrameId, MessageClass, PhyParams, SchedPolicy};

    fn sample_system() -> System {
        let mut app = Application::new();
        let g = app.add_graph("g", Time::from_us(100.0), Time::from_us(90.0));
        let a = app.add_task(
            g,
            "a",
            NodeId::new(0),
            Time::from_us(5.0),
            SchedPolicy::Scs,
            0,
        );
        let b = app.add_task(
            g,
            "b",
            NodeId::new(1),
            Time::from_us(5.0),
            SchedPolicy::Fps,
            2,
        );
        let m = app.add_message(g, "m", 4, MessageClass::Dynamic, 1);
        app.connect(a, m, b).expect("edges");
        let mut bus = BusConfig::new(PhyParams::unit());
        bus.n_minislots = 10;
        bus.frame_ids.insert(m, FrameId::new(1));
        System::validated(Platform::with_nodes(2), app, bus).expect("valid")
    }

    #[test]
    fn system_round_trips_through_json() {
        let sys = sample_system();
        let json = serde_json::to_string(&sys).expect("serialises");
        let back: System = serde_json::from_str(&json).expect("deserialises");
        assert_eq!(back, sys);
        back.validate().expect("still valid after round trip");
    }

    #[test]
    fn bus_config_round_trips_through_json() {
        let sys = sample_system();
        let json = serde_json::to_string(&sys.bus).expect("serialises");
        let back: BusConfig = serde_json::from_str(&json).expect("deserialises");
        assert_eq!(back, sys.bus);
        assert_eq!(back.gd_cycle(), sys.bus.gd_cycle());
    }

    #[test]
    fn time_serialises_as_plain_integer() {
        let json = serde_json::to_string(&Time::from_us(8.0)).expect("serialises");
        assert_eq!(json, "8000");
    }
}
