//! # flexray-model
//!
//! System, application and bus-configuration model for the reproduction
//! of *Pop, Pop, Eles, Peng — "Bus Access Optimisation for FlexRay-based
//! Distributed Embedded Systems", DATE 2007*.
//!
//! The model mirrors Sections 2–4 of the paper:
//!
//! * a [`Platform`] of processing nodes on one FlexRay channel;
//! * an [`Application`] of polar acyclic task graphs whose nodes are
//!   [`Activity`] values — SCS/FPS tasks and static/dynamic messages;
//! * a [`BusConfig`] fixing the static-segment slot table, the
//!   dynamic-segment length and the frame-identifier assignment — the
//!   design variables of the optimisation;
//! * a [`System`] bundling all three with cross-validation.
//!
//! Everything is exact integer time ([`Time`], nanosecond resolution) and
//! protocol limits (1023 static slots, 7994 minislots, 661-macrotick
//! slots, 16 ms cycles) are enforced at validation.
//!
//! ## Example
//!
//! ```
//! use flexray_model::*;
//!
//! // Two nodes exchanging one static and one dynamic message.
//! let mut app = Application::new();
//! let g = app.add_graph("control", Time::from_us(200.0), Time::from_us(200.0));
//! let sense = app.add_task(g, "sense", NodeId::new(0), Time::from_us(10.0), SchedPolicy::Scs, 0);
//! let plan = app.add_task(g, "plan", NodeId::new(1), Time::from_us(20.0), SchedPolicy::Scs, 0);
//! let act = app.add_task(g, "act", NodeId::new(0), Time::from_us(5.0), SchedPolicy::Fps, 7);
//! let m_sp = app.add_message(g, "m_sp", 8, MessageClass::Static, 0);
//! let m_pa = app.add_message(g, "m_pa", 4, MessageClass::Dynamic, 1);
//! app.connect(sense, m_sp, plan)?;
//! app.connect(plan, m_pa, act)?;
//!
//! let mut bus = BusConfig::new(PhyParams::bmw_like());
//! bus.static_slot_len = Time::from_us(20.0);
//! bus.static_slot_owners = vec![NodeId::new(0), NodeId::new(1)];
//! bus.n_minislots = 40;
//! bus.frame_ids.insert(m_pa, FrameId::new(1));
//!
//! let sys = System::validated(Platform::with_nodes(2), app, bus)?;
//! assert_eq!(sys.census().total(), 5);
//! # Ok::<(), ModelError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod application;
mod bus;
mod error;
mod fingerprint;
mod ids;
mod network;
mod protocol;
mod stats;
mod system;
mod time;
mod view;

pub use application::{
    Activity, ActivityKind, Application, MessageClass, MessageSpec, SchedPolicy, TaskGraph,
    TaskSpec,
};
pub use bus::BusConfig;
pub use error::ModelError;
pub use fingerprint::{mix64, mix_words, Fingerprint, SplitMix64};
pub use ids::{ActivityId, FrameId, GraphId, NodeId, SlotId};
pub use network::{derive_msg_clusters, Network};
pub use protocol::{
    PhyParams, BITS_PER_PAYLOAD_GRANULE, MAX_CYCLE, MAX_MINISLOTS, MAX_STATIC_SLOTS,
    MAX_STATIC_SLOT_MACROTICKS, PAYLOAD_GRANULARITY_BYTES,
};
pub use stats::{UtilSummary, WorkloadStats};
pub use system::{Census, Platform, System};
pub use time::Time;
pub use view::SystemView;
