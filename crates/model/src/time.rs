//! Integer time arithmetic.
//!
//! All protocol and application quantities are represented as an exact
//! number of nanoseconds inside a [`Time`] newtype. The schedulers and the
//! schedulability analysis never touch floating point; fractional
//! microsecond inputs (the paper quotes e.g. a DYN segment of 2285.4 µs)
//! are converted once, on construction.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Rem, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// A signed time value or duration with nanosecond resolution.
///
/// `Time` is used both for instants (offsets from the start of the
/// schedule table) and durations; the analysis code never needs to
/// distinguish them and a single type keeps the arithmetic simple.
/// Negative values are permitted — they appear transiently as laxities
/// (`R - D`) in the cost function of Eq. (5).
///
/// # Examples
///
/// ```
/// use flexray_model::Time;
///
/// let slot = Time::from_us(8.0);
/// let cycle = slot * 2 + Time::from_us(4.0);
/// assert_eq!(cycle.as_us(), 20.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Time(i64);

impl Time {
    /// Zero-length duration / origin instant.
    pub const ZERO: Time = Time(0);
    /// Largest representable time; used as "unschedulable / never".
    pub const MAX: Time = Time(i64::MAX);
    /// One nanosecond.
    pub const NANOSECOND: Time = Time(1);
    /// One microsecond.
    pub const MICROSECOND: Time = Time(1_000);
    /// One millisecond.
    pub const MILLISECOND: Time = Time(1_000_000);

    /// Creates a time from integer nanoseconds.
    #[must_use]
    pub const fn from_ns(ns: i64) -> Self {
        Time(ns)
    }

    /// Creates a time from a (possibly fractional) number of microseconds.
    ///
    /// The value is rounded to the nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `us` is not finite or overflows the `i64` nanosecond range.
    #[must_use]
    pub fn from_us(us: f64) -> Self {
        assert!(us.is_finite(), "time must be finite, got {us}");
        let ns = (us * 1_000.0).round();
        assert!(
            ns >= i64::MIN as f64 && ns <= i64::MAX as f64,
            "time out of range: {us} µs"
        );
        Time(ns as i64)
    }

    /// Creates a time from integer milliseconds.
    #[must_use]
    pub const fn from_ms(ms: i64) -> Self {
        Time(ms * 1_000_000)
    }

    /// The raw nanosecond count.
    #[must_use]
    pub const fn as_ns(self) -> i64 {
        self.0
    }

    /// The value in microseconds (lossy, for reporting only).
    #[must_use]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The value in milliseconds (lossy, for reporting only).
    #[must_use]
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// `true` if the value is exactly zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// `true` if the value is negative.
    #[must_use]
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Saturating addition (sticks at [`Time::MAX`]).
    #[must_use]
    pub const fn saturating_add(self, rhs: Time) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }

    /// Saturating multiplication by an integer factor.
    #[must_use]
    pub const fn saturating_mul(self, k: i64) -> Time {
        Time(self.0.saturating_mul(k))
    }

    /// Checked addition returning `None` on overflow.
    #[must_use]
    pub const fn checked_add(self, rhs: Time) -> Option<Time> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Time(v)),
            None => None,
        }
    }

    /// `max(self, ZERO)` — clamps negative laxities to zero.
    #[must_use]
    pub const fn clamp_non_negative(self) -> Time {
        if self.0 < 0 {
            Time::ZERO
        } else {
            self
        }
    }

    /// Number of whole `unit`s contained in `self`, rounding up.
    ///
    /// This is the ubiquitous `⌈t / T⌉` of response-time analysis.
    ///
    /// # Panics
    ///
    /// Panics if `unit` is not strictly positive or `self` is negative.
    #[must_use]
    pub fn div_ceil(self, unit: Time) -> i64 {
        assert!(unit.0 > 0, "div_ceil by non-positive time {unit}");
        assert!(self.0 >= 0, "div_ceil of negative time {self}");
        self.0.div_euclid(unit.0) + i64::from(self.0.rem_euclid(unit.0) != 0)
    }

    /// Number of whole `unit`s contained in `self`, rounding down.
    ///
    /// # Panics
    ///
    /// Panics if `unit` is not strictly positive.
    #[must_use]
    pub fn div_floor(self, unit: Time) -> i64 {
        assert!(unit.0 > 0, "div_floor by non-positive time {unit}");
        self.0.div_euclid(unit.0)
    }

    /// Rounds `self` up to the next multiple of `unit`.
    ///
    /// # Panics
    ///
    /// Panics if `unit` is not strictly positive or `self` is negative.
    #[must_use]
    pub fn round_up_to(self, unit: Time) -> Time {
        Time(self.div_ceil(unit) * unit.0)
    }

    /// Least common multiple of two strictly positive times.
    ///
    /// Returns `None` on overflow.
    #[must_use]
    pub fn lcm(self, other: Time) -> Option<Time> {
        if self.0 <= 0 || other.0 <= 0 {
            return None;
        }
        let g = gcd(self.0, other.0);
        (self.0 / g).checked_mul(other.0).map(Time)
    }
}

/// Greatest common divisor of two positive integers.
fn gcd(mut a: i64, mut b: i64) -> i64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 % 1_000 == 0 {
            write!(f, "{}µs", self.0 / 1_000)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl Add for Time {
    type Output = Time;
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Neg for Time {
    type Output = Time;
    fn neg(self) -> Time {
        Time(-self.0)
    }
}

impl Mul<i64> for Time {
    type Output = Time;
    fn mul(self, rhs: i64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Mul<Time> for i64 {
    type Output = Time;
    fn mul(self, rhs: Time) -> Time {
        Time(self * rhs.0)
    }
}

impl Div<Time> for Time {
    type Output = i64;
    /// Truncating division: how many whole `rhs` fit in `self`.
    fn div(self, rhs: Time) -> i64 {
        self.0 / rhs.0
    }
}

impl Div<i64> for Time {
    type Output = Time;
    fn div(self, rhs: i64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Rem<Time> for Time {
    type Output = Time;
    fn rem(self, rhs: Time) -> Time {
        Time(self.0 % rhs.0)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(Time::from_us(8.0).as_ns(), 8_000);
        assert_eq!(Time::from_ms(16).as_us(), 16_000.0);
        assert_eq!(Time::from_ns(1).as_ns(), 1);
        assert_eq!(Time::from_us(2285.4).as_ns(), 2_285_400);
    }

    #[test]
    fn fractional_us_rounds_to_nearest_ns() {
        assert_eq!(Time::from_us(0.000_4).as_ns(), 0);
        assert_eq!(Time::from_us(0.000_6).as_ns(), 1);
    }

    #[test]
    fn arithmetic() {
        let a = Time::from_us(10.0);
        let b = Time::from_us(4.0);
        assert_eq!((a + b).as_us(), 14.0);
        assert_eq!((a - b).as_us(), 6.0);
        assert_eq!((a * 3).as_us(), 30.0);
        assert_eq!(a / b, 2);
        assert_eq!((a % b).as_us(), 2.0);
        assert_eq!(-(a - b), b - a);
    }

    #[test]
    fn div_ceil_and_floor() {
        let t = Time::from_ns(10);
        let u = Time::from_ns(4);
        assert_eq!(t.div_ceil(u), 3);
        assert_eq!(t.div_floor(u), 2);
        assert_eq!(Time::ZERO.div_ceil(u), 0);
        assert_eq!(Time::from_ns(8).div_ceil(u), 2);
    }

    #[test]
    #[should_panic(expected = "div_ceil by non-positive")]
    fn div_ceil_rejects_zero_unit() {
        let _ = Time::from_ns(1).div_ceil(Time::ZERO);
    }

    #[test]
    fn round_up() {
        let u = Time::from_us(5.0);
        assert_eq!(Time::from_us(12.0).round_up_to(u), Time::from_us(15.0));
        assert_eq!(Time::from_us(15.0).round_up_to(u), Time::from_us(15.0));
        assert_eq!(Time::ZERO.round_up_to(u), Time::ZERO);
    }

    #[test]
    fn lcm_basic() {
        let a = Time::from_us(6.0);
        let b = Time::from_us(4.0);
        assert_eq!(a.lcm(b), Some(Time::from_us(12.0)));
        assert_eq!(a.lcm(Time::ZERO), None);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(Time::MAX.saturating_add(Time::from_ns(1)), Time::MAX);
        assert_eq!(Time::MAX.saturating_mul(2), Time::MAX);
        assert_eq!(Time::from_ns(2).saturating_mul(3), Time::from_ns(6));
    }

    #[test]
    fn clamp_non_negative() {
        assert_eq!((-Time::from_ns(5)).clamp_non_negative(), Time::ZERO);
        assert_eq!(Time::from_ns(5).clamp_non_negative(), Time::from_ns(5));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Time::from_us(8.0).to_string(), "8µs");
        assert_eq!(Time::from_ns(1_500).to_string(), "1500ns");
    }

    #[test]
    fn sum_iterator() {
        let total: Time = [1.0, 2.0, 3.0].iter().map(|&u| Time::from_us(u)).sum();
        assert_eq!(total, Time::from_us(6.0));
    }
}
