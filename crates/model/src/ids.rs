//! Typed identifiers.
//!
//! Every entity of the system model — processing nodes, task graphs,
//! activities (tasks and messages), static slots and dynamic frame
//! identifiers — gets its own index newtype, so the analysis code cannot
//! accidentally index the wrong table.

use core::fmt;
use serde::{Deserialize, Serialize};

macro_rules! index_newtype {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
            Serialize, Deserialize,
        )]
        pub struct $name(usize);

        impl $name {
            /// Wraps a raw zero-based index.
            #[must_use]
            pub const fn new(index: usize) -> Self {
                Self(index)
            }

            /// The raw zero-based index.
            #[must_use]
            pub const fn index(self) -> usize {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            fn from(index: usize) -> Self {
                Self(index)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.0
            }
        }
    };
}

index_newtype!(
    /// A processing node (CPU + FlexRay communication controller).
    NodeId,
    "N"
);
index_newtype!(
    /// A task graph within the application.
    GraphId,
    "G"
);
index_newtype!(
    /// An activity — a task or a message — within the application.
    ///
    /// Activity ids are global across graphs (they index
    /// [`Application::activities`](crate::Application::activities)).
    ActivityId,
    "a"
);

/// A static-segment slot number.
///
/// FlexRay numbers static slots starting from 1; the model keeps that
/// convention (`SlotId::new(1)` is the first slot of the cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SlotId(u16);

impl SlotId {
    /// Wraps a 1-based static slot number.
    ///
    /// # Panics
    ///
    /// Panics if `number` is zero (FlexRay slot counting starts at 1).
    #[must_use]
    pub fn new(number: u16) -> Self {
        assert!(number >= 1, "static slot numbers start at 1");
        SlotId(number)
    }

    /// The 1-based slot number.
    #[must_use]
    pub const fn number(self) -> u16 {
        self.0
    }

    /// The zero-based position of the slot within the static segment.
    #[must_use]
    pub const fn offset(self) -> usize {
        self.0 as usize - 1
    }
}

impl fmt::Display for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot{}", self.0)
    }
}

/// A dynamic-segment frame identifier.
///
/// Frame identifiers are 1-based, as in the FlexRay specification: the
/// dynamic slot counter starts at 1 at the beginning of the dynamic
/// segment and each dynamic slot carries the frame whose identifier
/// matches the counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FrameId(u16);

impl FrameId {
    /// Wraps a 1-based frame identifier.
    ///
    /// # Panics
    ///
    /// Panics if `number` is zero.
    #[must_use]
    pub fn new(number: u16) -> Self {
        assert!(number >= 1, "frame identifiers start at 1");
        FrameId(number)
    }

    /// The 1-based identifier value.
    #[must_use]
    pub const fn number(self) -> u16 {
        self.0
    }

    /// Number of dynamic slots that precede this one in a cycle.
    #[must_use]
    pub const fn preceding_slots(self) -> usize {
        self.0 as usize - 1
    }
}

impl fmt::Display for FrameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FrameID {}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trip() {
        let n = NodeId::new(3);
        assert_eq!(n.index(), 3);
        assert_eq!(usize::from(n), 3);
        assert_eq!(NodeId::from(3), n);
        assert_eq!(n.to_string(), "N3");
    }

    #[test]
    fn activity_and_graph_display() {
        assert_eq!(ActivityId::new(7).to_string(), "a7");
        assert_eq!(GraphId::new(0).to_string(), "G0");
    }

    #[test]
    fn slot_id_is_one_based() {
        let s = SlotId::new(1);
        assert_eq!(s.number(), 1);
        assert_eq!(s.offset(), 0);
        assert_eq!(SlotId::new(4).offset(), 3);
    }

    #[test]
    #[should_panic(expected = "start at 1")]
    fn slot_zero_rejected() {
        let _ = SlotId::new(0);
    }

    #[test]
    fn frame_id_is_one_based() {
        let f = FrameId::new(2);
        assert_eq!(f.number(), 2);
        assert_eq!(f.preceding_slots(), 1);
        assert_eq!(f.to_string(), "FrameID 2");
    }

    #[test]
    #[should_panic(expected = "start at 1")]
    fn frame_zero_rejected() {
        let _ = FrameId::new(0);
    }

    #[test]
    fn ordering_matches_numbers() {
        assert!(FrameId::new(1) < FrameId::new(2));
        assert!(SlotId::new(2) < SlotId::new(3));
        assert!(NodeId::new(0) < NodeId::new(1));
    }
}
