//! Exact state fingerprints and deterministic bit mixers.
//!
//! The simulator's hyperperiod compression compares the *complete*
//! engine state at hyperperiod boundaries: every component appends its
//! (boundary-normalised) state to a [`Fingerprint`], and two boundaries
//! are equivalent **iff their word streams are equal**. Equality is
//! exact — no hashing is involved in the comparison, so a fast-forward
//! can never be triggered by a hash collision.
//!
//! [`mix64`] and [`SplitMix64`] provide the *stateless* pseudo-random
//! streams the fuzzed execution order draws from: every same-instant
//! batch derives its permutation purely from `(order seed, position in
//! the hyperperiod, phase, batch size)`, never from a sequential RNG,
//! so equal boundary states evolve identically and compression stays
//! sound under fuzzing.

use crate::time::Time;

/// SplitMix64 finalizer: a cheap, well-dispersed `u64 -> u64` mix.
///
/// Used to fold several seed components into one without a sequential
/// RNG state (see the module docs).
#[must_use]
pub const fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Folds a slice of words into a single seed via iterated [`mix64`].
#[must_use]
pub fn mix_words(words: &[u64]) -> u64 {
    let mut acc = 0x243F_6A88_85A3_08D3; // pi, for lack of an opinion
    for &w in words {
        acc = mix64(acc ^ w);
    }
    acc
}

/// The SplitMix64 generator: a tiny deterministic `u64` stream for
/// seeded shuffles. Unlike the `rand` shim this is `const`-friendly,
/// dependency-free and cheap enough to re-seed per event batch.
#[derive(Debug, Clone, Copy)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A stream seeded from `seed`.
    #[must_use]
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next word of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(self.state)
    }

    /// An unbiased-enough draw in `0..n` (`n > 0`) for shuffle indices.
    pub fn next_below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        // Modulo bias is ~n/2^64 — irrelevant for permutation fuzzing.
        usize::try_from(self.next_u64() % (n as u64)).unwrap_or(0)
    }
}

/// An exact engine-state fingerprint: an append-only `u64` word stream.
///
/// Producers must append the same state in the same order for two
/// fingerprints to be comparable; all times must be normalised relative
/// to the boundary they are taken at, and all hyperperiod indices
/// relative to the boundary's index, so that identical steady-state
/// cycles produce identical streams at different absolute times.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Fingerprint {
    words: Vec<u64>,
}

impl Fingerprint {
    /// An empty fingerprint.
    #[must_use]
    pub fn new() -> Self {
        Fingerprint::default()
    }

    /// Appends one raw word.
    pub fn push(&mut self, word: u64) {
        self.words.push(word);
    }

    /// Appends a signed value (bit-cast; exact round trip).
    pub fn push_i64(&mut self, value: i64) {
        self.words.push(value as u64);
    }

    /// Appends a (boundary-relative) time.
    pub fn push_time(&mut self, value: Time) {
        self.push_i64(value.as_ns());
    }

    /// Appends a length/index.
    pub fn push_usize(&mut self, value: usize) {
        self.words.push(value as u64);
    }

    /// The accumulated words.
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Consumes the fingerprint into its word stream (map key form).
    #[must_use]
    pub fn into_words(self) -> Vec<u64> {
        self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_disperses_and_is_deterministic() {
        assert_eq!(mix64(0), mix64(0));
        assert_ne!(mix64(0), mix64(1));
        assert_ne!(mix64(1), mix64(2));
        // different word orders give different folds
        assert_ne!(mix_words(&[1, 2]), mix_words(&[2, 1]));
        assert_eq!(mix_words(&[]), mix_words(&[]));
    }

    #[test]
    fn splitmix_streams_are_reproducible() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
        for n in 1..10 {
            assert!(a.next_below(n) < n);
        }
    }

    #[test]
    fn fingerprints_compare_exactly() {
        let mut a = Fingerprint::new();
        let mut b = Fingerprint::new();
        a.push_time(Time::from_us(5.0));
        a.push_i64(-3);
        b.push_time(Time::from_us(5.0));
        b.push_i64(-3);
        assert_eq!(a, b);
        b.push(0);
        assert_ne!(a, b);
        assert_eq!(a.words().len(), 2);
        // exact i64 round trip through the bit cast
        assert_eq!(a.words()[1] as i64, -3);
    }
}
