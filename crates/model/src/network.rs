//! Multi-cluster FlexRay networks: several buses joined by gateways.
//!
//! The source paper fixes one FlexRay bus per system. Real automotive
//! architectures federate several buses ("clusters") through gateway
//! nodes that are attached to more than one of them and relay frames
//! between them. A [`Network`] holds one [`BusConfig`] per cluster, a
//! home cluster per node, and the set of gateway nodes; every message
//! is routed on its *home cluster*, derived from its endpoints, so the
//! existing single-bus analysis applies per cluster through
//! [`SystemView::with_network`](crate::SystemView::with_network).

use crate::{Application, BusConfig, MessageClass, ModelError, NodeId, Platform, SystemView, Time};
use serde::{Deserialize, Serialize};

/// Derives the home cluster of every activity from the message
/// endpoints: a message sent by a regular node lives on that node's
/// cluster; a message sent by a gateway lives on its receivers' common
/// cluster (falling back to the gateway's own home when the receivers
/// disagree or are all gateways). Tasks keep the placeholder 0 — tasks
/// never touch a bus.
///
/// `node_cluster[n]` is node `n`'s home cluster; nodes listed in
/// `gateways` are attached to *every* cluster in addition to their
/// home.
#[must_use]
pub fn derive_msg_clusters(
    app: &Application,
    node_cluster: &[u16],
    gateways: &[NodeId],
) -> Vec<u16> {
    let home = |n: NodeId| node_cluster.get(n.index()).copied().unwrap_or(0);
    let is_gateway = |n: NodeId| gateways.contains(&n);
    app.ids()
        .map(|id| {
            if app.activity(id).as_message().is_none() {
                return 0;
            }
            let Some(sender) = app.sender_of(id) else {
                return 0;
            };
            if !is_gateway(sender) {
                return home(sender);
            }
            let mut receiver_homes = app
                .receivers_of(id)
                .into_iter()
                .filter(|&r| !is_gateway(r))
                .map(home);
            match receiver_homes.next() {
                Some(first) if receiver_homes.all(|c| c == first) => first,
                _ => home(sender),
            }
        })
        .collect()
}

/// A multi-cluster FlexRay network: one bus configuration per cluster,
/// joined by gateway nodes.
///
/// Fields are public like [`System`](crate::System)'s; call
/// [`Network::validate`] after manual edits. [`Network::new`] derives
/// the per-message cluster map and validates in one step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    /// The processing nodes (across all clusters).
    pub platform: Platform,
    /// The task graphs.
    pub app: Application,
    /// Bus configuration of each cluster; index 0 is cluster 0. Never
    /// empty.
    pub clusters: Vec<BusConfig>,
    /// Home cluster of each node, indexed by node.
    pub node_cluster: Vec<u16>,
    /// Gateway nodes, attached to every cluster. Sorted, deduplicated.
    pub gateways: Vec<NodeId>,
    /// Home cluster of each activity (derived; tasks hold 0).
    pub msg_cluster: Vec<u16>,
}

impl Network {
    /// Builds and validates a network, deriving the message cluster
    /// map from the endpoints.
    ///
    /// # Errors
    ///
    /// See [`Network::validate`].
    pub fn new(
        platform: Platform,
        app: Application,
        clusters: Vec<BusConfig>,
        node_cluster: Vec<u16>,
        mut gateways: Vec<NodeId>,
    ) -> Result<Self, ModelError> {
        gateways.sort_unstable();
        gateways.dedup();
        let msg_cluster = derive_msg_clusters(&app, &node_cluster, &gateways);
        let net = Network {
            platform,
            app,
            clusters,
            node_cluster,
            gateways,
            msg_cluster,
        };
        net.validate()?;
        Ok(net)
    }

    /// Wraps a single-bus [`System`](crate::System) into the degenerate
    /// one-cluster network.
    #[must_use]
    pub fn single(sys: crate::System) -> Self {
        let n = sys.platform.len();
        let msg_cluster = vec![0; sys.app.activities().len()];
        Network {
            platform: sys.platform,
            app: sys.app,
            clusters: vec![sys.bus],
            node_cluster: vec![0; n],
            gateways: Vec::new(),
            msg_cluster,
        }
    }

    /// Number of clusters.
    #[must_use]
    pub fn n_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// `true` if `node` is attached to `cluster` (home or gateway).
    #[must_use]
    pub fn attached(&self, node: NodeId, cluster: u16) -> bool {
        self.node_cluster.get(node.index()).copied() == Some(cluster)
            || self.gateways.contains(&node)
    }

    /// The borrowed analysis view over this network: cluster 0's bus is
    /// the view's `bus`, the rest ride as network extensions.
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is empty (rejected by [`Network::validate`]).
    #[must_use]
    pub fn view(&self) -> SystemView<'_> {
        SystemView::with_network(
            &self.platform,
            &self.app,
            &self.clusters[0],
            &self.clusters[1..],
            &self.msg_cluster,
        )
    }

    /// Re-derives `msg_cluster` after editing the application or the
    /// node/gateway maps.
    pub fn rederive_msg_clusters(&mut self) {
        self.msg_cluster = derive_msg_clusters(&self.app, &self.node_cluster, &self.gateways);
    }

    /// The application hyperperiod (LCM of all graph periods).
    ///
    /// # Errors
    ///
    /// See [`Application::hyperperiod`].
    pub fn hyperperiod(&self) -> Result<Time, ModelError> {
        self.app.hyperperiod()
    }

    /// Validates the whole network: the application, the node/gateway
    /// maps, message endpoint attachment, and each cluster's bus
    /// against the messages homed on it.
    ///
    /// # Errors
    ///
    /// * [`ModelError::InvalidConfig`] — no clusters, a cluster map of
    ///   the wrong length or naming an unknown cluster, or a message
    ///   whose endpoints are not attached to its home cluster;
    /// * [`ModelError::UnknownNode`] — a gateway outside the platform;
    /// * everything [`Application::validate`] and
    ///   [`BusConfig::validate_for_cluster`] report.
    pub fn validate(&self) -> Result<(), ModelError> {
        self.app.validate()?;
        if self.clusters.is_empty() {
            return Err(ModelError::InvalidConfig("network has no clusters".into()));
        }
        let n_clusters = u16::try_from(self.clusters.len()).map_err(|_| {
            ModelError::InvalidConfig(format!("{} clusters exceed u16", self.clusters.len()))
        })?;
        if self.node_cluster.len() != self.platform.len() {
            return Err(ModelError::InvalidConfig(format!(
                "node_cluster has {} entries for {} nodes",
                self.node_cluster.len(),
                self.platform.len()
            )));
        }
        for (n, &c) in self.node_cluster.iter().enumerate() {
            if c >= n_clusters {
                return Err(ModelError::InvalidConfig(format!(
                    "node {n} homed on unknown cluster {c} (of {n_clusters})"
                )));
            }
        }
        for w in self.gateways.windows(2) {
            if w[0] == w[1] {
                return Err(ModelError::InvalidConfig(format!(
                    "duplicate gateway node {}",
                    w[0]
                )));
            }
        }
        for &g in &self.gateways {
            if g.index() >= self.platform.len() {
                return Err(ModelError::UnknownNode(g));
            }
        }
        if self.msg_cluster.len() != self.app.activities().len() {
            return Err(ModelError::InvalidConfig(format!(
                "msg_cluster has {} entries for {} activities",
                self.msg_cluster.len(),
                self.app.activities().len()
            )));
        }
        // Every message's endpoints must be attached to its home
        // cluster — a frame is only visible on the bus it is sent on.
        for m in self
            .app
            .messages_of_class(MessageClass::Static)
            .chain(self.app.messages_of_class(MessageClass::Dynamic))
        {
            let c = self.msg_cluster[m.index()];
            if c >= n_clusters {
                return Err(ModelError::InvalidConfig(format!(
                    "message '{}' homed on unknown cluster {c}",
                    self.app.activity(m).name
                )));
            }
            if let Some(sender) = self.app.sender_of(m) {
                if !self.attached(sender, c) {
                    return Err(ModelError::InvalidConfig(format!(
                        "message '{}' on cluster {c} sent from node {sender} of cluster {}",
                        self.app.activity(m).name,
                        self.node_cluster[sender.index()]
                    )));
                }
            }
            for r in self.app.receivers_of(m) {
                if !self.attached(r, c) {
                    return Err(ModelError::InvalidConfig(format!(
                        "message '{}' on cluster {c} received by node {r} of cluster {}",
                        self.app.activity(m).name,
                        self.node_cluster[r.index()]
                    )));
                }
            }
        }
        for (c, bus) in self.clusters.iter().enumerate() {
            bus.validate_for_cluster(
                &self.app,
                self.platform.len(),
                &self.msg_cluster,
                u16::try_from(c).expect("checked above"),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ActivityId, FrameId, PhyParams, SchedPolicy};

    /// Two clusters of two nodes each, joined by gateway node 4:
    /// `t0 (N0, c0) --st0--> gw_in (N4) --dy1--> t1 (N2, c1)`.
    fn two_cluster_net() -> Network {
        let mut app = Application::new();
        let g = app.add_graph("g", Time::from_us(1000.0), Time::from_us(1000.0));
        let t0 = app.add_task(
            g,
            "t0",
            NodeId::new(0),
            Time::from_us(5.0),
            SchedPolicy::Scs,
            0,
        );
        let relay = app.add_task(
            g,
            "relay",
            NodeId::new(4),
            Time::from_us(2.0),
            SchedPolicy::Fps,
            3,
        );
        let t1 = app.add_task(
            g,
            "t1",
            NodeId::new(2),
            Time::from_us(5.0),
            SchedPolicy::Fps,
            2,
        );
        let st0 = app.add_message(g, "st0", 4, MessageClass::Static, 0);
        let dy1 = app.add_message(g, "dy1", 4, MessageClass::Dynamic, 1);
        app.connect(t0, st0, relay).expect("edges");
        app.connect(relay, dy1, t1).expect("edges");

        let mut bus0 = BusConfig::new(PhyParams::unit());
        bus0.static_slot_len = Time::from_us(8.0);
        bus0.static_slot_owners = vec![NodeId::new(0)];
        bus0.n_minislots = 0;
        let mut bus1 = BusConfig::new(PhyParams::unit());
        bus1.n_minislots = 10;
        bus1.frame_ids.insert(dy1, FrameId::new(1));

        Network::new(
            Platform::with_nodes(5),
            app,
            vec![bus0, bus1],
            vec![0, 0, 1, 1, 0],
            vec![NodeId::new(4)],
        )
        .expect("valid network")
    }

    #[test]
    fn clusters_derive_from_endpoints() {
        let net = two_cluster_net();
        let st0 = net.app.find("st0").expect("st0");
        let dy1 = net.app.find("dy1").expect("dy1");
        assert_eq!(net.msg_cluster[st0.index()], 0);
        // sent by the gateway, received on cluster 1
        assert_eq!(net.msg_cluster[dy1.index()], 1);
    }

    #[test]
    fn view_routes_per_cluster() {
        let net = two_cluster_net();
        let view = net.view();
        let st0 = net.app.find("st0").expect("st0");
        let dy1 = net.app.find("dy1").expect("dy1");
        assert_eq!(view.n_clusters(), 2);
        assert_eq!(view.cluster_of(st0), 0);
        assert_eq!(view.cluster_of(dy1), 1);
        assert!(std::ptr::eq(view.bus_of(st0), &net.clusters[0]));
        assert!(std::ptr::eq(view.bus_of(dy1), &net.clusters[1]));
        // focusing clears the network extensions
        let f = view.focused(dy1);
        assert_eq!(f.n_clusters(), 1);
        assert!(std::ptr::eq(f.bus, &net.clusters[1]));
        assert_eq!(f.comm_time(dy1), view.comm_time(dy1));
    }

    #[test]
    fn unattached_endpoint_is_rejected() {
        let mut net = two_cluster_net();
        // strip the gateway: the relay task on N4 (cluster 0) now
        // receives st0 fine but sends dy1 across without attachment
        net.gateways.clear();
        net.rederive_msg_clusters();
        let err = net.validate().expect_err("must reject");
        assert!(matches!(err, ModelError::InvalidConfig(_)));
    }

    #[test]
    fn frame_id_on_foreign_cluster_is_rejected() {
        let mut net = two_cluster_net();
        let dy1 = net.app.find("dy1").expect("dy1");
        // cluster 0's bus claims cluster 1's message
        net.clusters[0].n_minislots = 10;
        net.clusters[0].frame_ids.insert(dy1, FrameId::new(1));
        let err = net.validate().expect_err("must reject");
        assert!(matches!(err, ModelError::FrameAssignment(_)));
    }

    #[test]
    fn wrong_cluster_map_length_is_rejected() {
        let mut net = two_cluster_net();
        net.node_cluster.pop();
        assert!(matches!(net.validate(), Err(ModelError::InvalidConfig(_))));
    }

    #[test]
    fn single_wraps_a_system() {
        let mut app = Application::new();
        let g = app.add_graph("g", Time::from_us(100.0), Time::from_us(100.0));
        let t0 = app.add_task(
            g,
            "a",
            NodeId::new(0),
            Time::from_us(5.0),
            SchedPolicy::Scs,
            0,
        );
        let t1 = app.add_task(
            g,
            "b",
            NodeId::new(1),
            Time::from_us(5.0),
            SchedPolicy::Fps,
            1,
        );
        let st = app.add_message(g, "m", 4, MessageClass::Static, 0);
        app.connect(t0, st, t1).expect("edges");
        let mut bus = BusConfig::new(PhyParams::unit());
        bus.static_slot_len = Time::from_us(8.0);
        bus.static_slot_owners = vec![NodeId::new(0)];
        let sys = crate::System::validated(Platform::with_nodes(2), app, bus).expect("valid");
        let net = Network::single(sys);
        assert_eq!(net.n_clusters(), 1);
        net.validate().expect("stays valid");
        assert_eq!(net.view().cluster_of(ActivityId::new(0)), 0);
    }
}
