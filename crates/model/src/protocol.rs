//! FlexRay protocol constants and global timing parameters.
//!
//! The limits come from the FlexRay specification as cited by the paper:
//! at most 1023 static slots and 7994 minislots per cycle, a static slot
//! of at most 661 macroticks, a bus cycle of at most 16 ms, and frame
//! payloads that grow in 2-byte increments (20 `gdBit` on the bus).

use crate::{ModelError, Time};
use serde::{Deserialize, Serialize};

/// Maximum number of static slots in a communication cycle
/// (`gdNumberOfStaticSlots` ≤ 1023).
pub const MAX_STATIC_SLOTS: u16 = 1023;

/// Maximum number of minislots in the dynamic segment
/// (`gNumberOfMinislots` ≤ 7994).
pub const MAX_MINISLOTS: u32 = 7994;

/// Maximum static slot length in macroticks (`gdStaticSlot` ≤ 661).
pub const MAX_STATIC_SLOT_MACROTICKS: u32 = 661;

/// Maximum communication cycle length (`gdCycle` ≤ 16 ms).
pub const MAX_CYCLE: Time = Time::from_ms(16);

/// Frame payload granularity in bytes: payloads grow in 2-byte steps.
pub const PAYLOAD_GRANULARITY_BYTES: u32 = 2;

/// On-bus cost of one payload granule, in bit times (2 bytes ≙ 20 gdBit,
/// i.e. 10 bit times per byte once the byte start sequence is included).
pub const BITS_PER_PAYLOAD_GRANULE: u32 = 20;

/// Physical-layer and frame-format parameters shared by the whole cluster.
///
/// These fix the conversion between "message size in bytes" and "time on
/// the bus" (Eq. (1) of the paper: `C_m = frame_size(m) / bus_speed`).
///
/// # Examples
///
/// ```
/// use flexray_model::{PhyParams, Time};
///
/// let phy = PhyParams::bmw_like(); // 10 Mbit/s, 1 µs macrotick
/// assert_eq!(phy.gd_bit, Time::from_ns(100));
/// // an 8-byte payload costs the frame overhead plus 8 bytes * 10 bit-times
/// let c = phy.frame_duration(8);
/// assert!(c > Time::from_ns(80 * 100));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PhyParams {
    /// Duration of one bit on the bus (`gdBit`).
    pub gd_bit: Time,
    /// Duration of one macrotick (`gdMacrotick`); static slot lengths are
    /// expressed in macroticks.
    pub gd_macrotick: Time,
    /// Duration of one minislot (`gdMinislot`).
    pub gd_minislot: Time,
    /// Frame header + trailer overhead, in bytes (FlexRay: 5-byte header,
    /// 3-byte CRC trailer).
    pub frame_overhead_bytes: u32,
}

impl PhyParams {
    /// A 10 Mbit/s cluster with 1 µs macroticks and 2 µs minislots —
    /// representative of early automotive FlexRay deployments.
    #[must_use]
    pub fn bmw_like() -> Self {
        PhyParams {
            gd_bit: Time::from_ns(100),
            gd_macrotick: Time::MICROSECOND,
            gd_minislot: Time::from_us(2.0),
            frame_overhead_bytes: 8,
        }
    }

    /// An idealised physical layer where one byte costs exactly one
    /// macrotick and frames have no overhead.
    ///
    /// The paper's illustrative examples (Figs. 3 and 4) quote message
    /// sizes directly as slot-time units; this profile reproduces that
    /// accounting exactly.
    #[must_use]
    pub fn unit() -> Self {
        PhyParams {
            gd_bit: Time::from_ns(100),
            gd_macrotick: Time::MICROSECOND,
            gd_minislot: Time::MICROSECOND,
            frame_overhead_bytes: 0,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidPhy`] if any duration is non-positive
    /// or the minislot is shorter than a bit time.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.gd_bit <= Time::ZERO
            || self.gd_macrotick <= Time::ZERO
            || self.gd_minislot <= Time::ZERO
        {
            return Err(ModelError::InvalidPhy(
                "gdBit, gdMacrotick and gdMinislot must be positive".into(),
            ));
        }
        if self.gd_minislot < self.gd_bit {
            return Err(ModelError::InvalidPhy(
                "gdMinislot must be at least one bit time".into(),
            ));
        }
        Ok(())
    }

    /// Rounds a payload size up to the 2-byte frame granularity.
    #[must_use]
    pub fn padded_payload(payload_bytes: u32) -> u32 {
        payload_bytes.div_ceil(PAYLOAD_GRANULARITY_BYTES) * PAYLOAD_GRANULARITY_BYTES
    }

    /// Transmission time of a frame carrying `payload_bytes` of payload
    /// (Eq. (1)): overhead plus padded payload, at 10 bit-times per byte.
    #[must_use]
    pub fn frame_duration(&self, payload_bytes: u32) -> Time {
        let padded = Self::padded_payload(payload_bytes);
        let granules = (padded + self.frame_overhead_bytes).div_ceil(PAYLOAD_GRANULARITY_BYTES);
        self.gd_bit * i64::from(granules * BITS_PER_PAYLOAD_GRANULE)
    }

    /// Number of minislots needed to transmit a frame of the given
    /// duration (at least one).
    #[must_use]
    pub fn minislots_for(&self, frame_duration: Time) -> u32 {
        if frame_duration <= Time::ZERO {
            return 1;
        }
        u32::try_from(frame_duration.div_ceil(self.gd_minislot)).unwrap_or(u32::MAX)
    }

    /// The bus time of one increment of `gdStaticSlot` exploration in the
    /// OBC heuristic: 2 payload bytes ≙ `20 · gdBit` (Fig. 6, line 4).
    #[must_use]
    pub fn static_slot_step(&self) -> Time {
        self.gd_bit * i64::from(BITS_PER_PAYLOAD_GRANULE)
    }
}

impl Default for PhyParams {
    fn default() -> Self {
        PhyParams::bmw_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_spec() {
        assert_eq!(MAX_STATIC_SLOTS, 1023);
        assert_eq!(MAX_MINISLOTS, 7994);
        assert_eq!(MAX_STATIC_SLOT_MACROTICKS, 661);
        assert_eq!(MAX_CYCLE, Time::from_us(16_000.0));
    }

    #[test]
    fn payload_padding() {
        assert_eq!(PhyParams::padded_payload(0), 0);
        assert_eq!(PhyParams::padded_payload(1), 2);
        assert_eq!(PhyParams::padded_payload(2), 2);
        assert_eq!(PhyParams::padded_payload(7), 8);
    }

    #[test]
    fn frame_duration_scales_with_payload() {
        let phy = PhyParams::bmw_like();
        let short = phy.frame_duration(2);
        let long = phy.frame_duration(16);
        assert!(long > short);
        // 2-byte payload + 8-byte overhead = 5 granules * 20 bits * 100ns
        assert_eq!(short, Time::from_ns(5 * 20 * 100));
    }

    #[test]
    fn unit_phy_is_identity_per_byte() {
        let phy = PhyParams::unit();
        // 2 bytes = 1 granule = 20 bits * 100ns = 2µs? No: unit profile has
        // zero overhead, so 4 bytes -> 2 granules.
        assert_eq!(phy.frame_duration(4), phy.frame_duration(3));
        assert!(phy.frame_duration(4) > phy.frame_duration(2));
    }

    #[test]
    fn minislot_count_rounds_up() {
        let phy = PhyParams::bmw_like(); // 2µs minislot
        assert_eq!(phy.minislots_for(Time::from_us(2.0)), 1);
        assert_eq!(phy.minislots_for(Time::from_us(2.1)), 2);
        assert_eq!(phy.minislots_for(Time::ZERO), 1);
    }

    #[test]
    fn validation_rejects_bad_phy() {
        let mut phy = PhyParams::bmw_like();
        phy.gd_minislot = Time::ZERO;
        assert!(phy.validate().is_err());
        let mut phy = PhyParams::bmw_like();
        phy.gd_minislot = Time::from_ns(10); // < gdBit
        assert!(phy.validate().is_err());
        assert!(PhyParams::bmw_like().validate().is_ok());
    }

    #[test]
    fn static_slot_step_is_twenty_bits() {
        let phy = PhyParams::bmw_like();
        assert_eq!(phy.static_slot_step(), Time::from_ns(20 * 100));
    }
}
