//! Borrowed view of a system: platform + application + one candidate
//! bus configuration.
//!
//! The optimisers evaluate thousands of candidate [`BusConfig`]s against
//! one fixed platform/application pair. [`SystemView`] lets the analysis
//! crates run against a *borrowed* candidate without cloning it into a
//! [`System`] first — the per-candidate `sys.bus = bus.clone()` that
//! used to dominate the evaluator's constant costs.
//!
//! A `SystemView` is `Copy` and exposes the same derived quantities as
//! [`System`]; `System` itself delegates to its view, so the two can
//! never drift apart.

use crate::{
    ActivityId, Application, BusConfig, MessageClass, ModelError, NodeId, Platform, System, Time,
};

/// A borrowed `(platform, application, bus)` triple — the input of one
/// analysis run.
///
/// Obtain one from [`System::view`] or directly from borrowed parts via
/// [`SystemView::new`]; every analysis entry point accepts either a
/// `&System` or a `SystemView` through `impl Into<SystemView>`.
///
/// A view may additionally describe a **multi-cluster network** (see
/// [`crate::Network`]): `bus` is cluster 0's configuration, further
/// clusters ride in a private slice, and a per-activity cluster map
/// routes every message to its home bus. Both extensions default to
/// empty, in which case the view is exactly the single-bus triple it
/// always was.
#[derive(Debug, Clone, Copy)]
pub struct SystemView<'a> {
    /// The processing nodes.
    pub platform: &'a Platform,
    /// The task graphs.
    pub app: &'a Application,
    /// The bus configuration under evaluation (cluster 0).
    pub bus: &'a BusConfig,
    /// Bus configurations of clusters `1..` (empty for a single bus).
    extra: &'a [BusConfig],
    /// Home cluster of each activity, indexed by activity id (empty
    /// means everything lives on cluster 0). Only message entries are
    /// meaningful; tasks keep the placeholder 0.
    msg_cluster: &'a [u16],
}

impl<'a> From<&'a System> for SystemView<'a> {
    fn from(sys: &'a System) -> Self {
        SystemView {
            platform: &sys.platform,
            app: &sys.app,
            bus: &sys.bus,
            extra: &[],
            msg_cluster: &[],
        }
    }
}

impl<'a> From<&SystemView<'a>> for SystemView<'a> {
    fn from(view: &SystemView<'a>) -> Self {
        *view
    }
}

impl<'a> SystemView<'a> {
    /// Assembles a view from borrowed parts.
    #[must_use]
    pub fn new(platform: &'a Platform, app: &'a Application, bus: &'a BusConfig) -> Self {
        SystemView {
            platform,
            app,
            bus,
            extra: &[],
            msg_cluster: &[],
        }
    }

    /// Assembles a multi-cluster view: `bus` is cluster 0, `extra`
    /// holds clusters `1..`, and `msg_cluster[activity]` names each
    /// message's home cluster (tasks keep 0).
    #[must_use]
    pub fn with_network(
        platform: &'a Platform,
        app: &'a Application,
        bus: &'a BusConfig,
        extra: &'a [BusConfig],
        msg_cluster: &'a [u16],
    ) -> Self {
        SystemView {
            platform,
            app,
            bus,
            extra,
            msg_cluster,
        }
    }

    /// Number of clusters in the network (1 for a plain view).
    #[must_use]
    pub fn n_clusters(&self) -> usize {
        1 + self.extra.len()
    }

    /// Home cluster of an activity (0 when no cluster map is present).
    #[must_use]
    pub fn cluster_of(&self, id: ActivityId) -> u16 {
        self.msg_cluster.get(id.index()).copied().unwrap_or(0)
    }

    /// The bus configuration an activity's home cluster runs on.
    #[must_use]
    pub fn bus_of(&self, id: ActivityId) -> &'a BusConfig {
        self.bus_of_cluster(self.cluster_of(id))
    }

    /// The bus configuration of cluster `c`.
    #[must_use]
    pub fn bus_of_cluster(&self, c: u16) -> &'a BusConfig {
        match c.checked_sub(1) {
            None => self.bus,
            Some(i) => &self.extra[i as usize],
        }
    }

    /// A single-bus view focused on the home cluster of `id`: `bus` is
    /// `bus_of(id)` and the network extensions are cleared. The
    /// identity on single-cluster views; idempotent. Safe because each
    /// cluster's `frame_ids` map only names that cluster's own dynamic
    /// messages (enforced by [`crate::Network::validate`]), so every
    /// per-bus iteration stays within the cluster.
    #[must_use]
    pub fn focused(&self, id: ActivityId) -> SystemView<'a> {
        self.focused_cluster(self.cluster_of(id))
    }

    /// A single-bus view focused on cluster `c` (see [`Self::focused`]).
    #[must_use]
    pub fn focused_cluster(&self, c: u16) -> SystemView<'a> {
        SystemView {
            platform: self.platform,
            app: self.app,
            bus: self.bus_of_cluster(c),
            extra: &[],
            msg_cluster: &[],
        }
    }

    /// The application hyperperiod (LCM of all graph periods).
    ///
    /// # Errors
    ///
    /// See [`Application::hyperperiod`].
    pub fn hyperperiod(&self) -> Result<Time, ModelError> {
        self.app.hyperperiod()
    }

    /// Transmission time `C_m` of a message (Eq. (1)), measured on the
    /// message's home cluster.
    #[must_use]
    pub fn comm_time(&self, message: ActivityId) -> Time {
        self.bus_of(message).comm_time(self.app, message)
    }

    /// Worst-case execution/transmission time of any activity: task WCET
    /// or message communication time.
    #[must_use]
    pub fn duration_of(&self, id: ActivityId) -> Time {
        match self.app.activity(id).as_task() {
            Some(t) => t.wcet,
            None => self.comm_time(id),
        }
    }

    /// Nodes that send at least one static message.
    #[must_use]
    pub fn st_sender_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self
            .app
            .messages_of_class(MessageClass::Static)
            .filter_map(|m| self.app.sender_of(m))
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// Achieved workload statistics (census, node/bus utilisation,
    /// depth histogram), measured with the bus's physical layer.
    ///
    /// # Errors
    ///
    /// See [`crate::WorkloadStats::collect`].
    pub fn workload_stats(&self) -> Result<crate::WorkloadStats, ModelError> {
        crate::WorkloadStats::collect(self.platform, self.app, &self.bus.phy)
    }

    /// Dynamic messages sorted by home cluster, then frame identifier,
    /// then priority (descending) — the order each cluster's dynamic
    /// slot counter serves them.
    #[must_use]
    pub fn dyn_messages_by_frame(&self) -> Vec<ActivityId> {
        let mut msgs: Vec<ActivityId> = self.app.messages_of_class(MessageClass::Dynamic).collect();
        msgs.sort_by_key(|&m| {
            let fid = self
                .bus_of(m)
                .frame_id_of(m)
                .map_or(u16::MAX, |f| f.number());
            let prio = self.app.activity(m).as_message().map_or(0, |s| s.priority);
            (self.cluster_of(m), fid, core::cmp::Reverse(prio))
        });
        msgs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FrameId, PhyParams, SchedPolicy};

    fn small_system() -> System {
        let mut app = Application::new();
        let g = app.add_graph("g", Time::from_us(100.0), Time::from_us(100.0));
        let t1 = app.add_task(
            g,
            "t1",
            NodeId::new(0),
            Time::from_us(5.0),
            SchedPolicy::Scs,
            0,
        );
        let t2 = app.add_task(
            g,
            "t2",
            NodeId::new(1),
            Time::from_us(5.0),
            SchedPolicy::Fps,
            2,
        );
        let st = app.add_message(g, "st", 4, MessageClass::Static, 0);
        let dy = app.add_message(g, "dy", 2, MessageClass::Dynamic, 1);
        app.connect(t1, st, t2).expect("edges");
        let t3 = app.add_task(
            g,
            "t3",
            NodeId::new(0),
            Time::from_us(3.0),
            SchedPolicy::Fps,
            1,
        );
        app.connect(t2, dy, t3).expect("edges");
        let mut bus = BusConfig::new(PhyParams::unit());
        bus.static_slot_len = Time::from_us(4.0);
        bus.static_slot_owners = vec![NodeId::new(0)];
        bus.n_minislots = 10;
        bus.frame_ids.insert(dy, FrameId::new(1));
        System::validated(Platform::with_nodes(2), app, bus).expect("valid")
    }

    #[test]
    fn view_matches_system_helpers() {
        let sys = small_system();
        let view = sys.view();
        assert_eq!(
            view.hyperperiod().expect("h"),
            sys.hyperperiod().expect("h")
        );
        assert_eq!(view.st_sender_nodes(), sys.st_sender_nodes());
        assert_eq!(view.dyn_messages_by_frame(), sys.dyn_messages_by_frame());
        for id in sys.app.ids() {
            assert_eq!(view.duration_of(id), sys.duration_of(id));
        }
    }

    #[test]
    fn view_over_borrowed_candidate_bus() {
        let sys = small_system();
        let mut candidate = sys.bus.clone();
        candidate.n_minislots = 20;
        let view = SystemView::new(&sys.platform, &sys.app, &candidate);
        assert_eq!(view.bus.n_minislots, 20);
        // the view is Copy: both copies observe the same bus
        let copy = view;
        assert_eq!(copy.bus.n_minislots, view.bus.n_minislots);
    }
}
