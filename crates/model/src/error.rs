//! Model validation errors.

use crate::{ActivityId, FrameId, NodeId, Time};
use core::fmt;

/// Errors reported while constructing or validating the system model.
///
/// Every constructor that can reject its input returns this type, so a
/// malformed system is caught once at the model boundary and the
/// analysis/optimisation crates can assume well-formed input.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A physical-layer parameter set is inconsistent.
    InvalidPhy(String),
    /// A bus-configuration parameter violates the FlexRay specification
    /// (slot counts, minislot counts, cycle length, slot length).
    ProtocolLimit(String),
    /// An activity id does not exist in the application.
    UnknownActivity(ActivityId),
    /// A node id does not exist in the platform.
    UnknownNode(NodeId),
    /// The task-graph structure is malformed (cycles, cross-graph edges,
    /// messages without sender/receiver, task on the wrong side of a
    /// message, ...).
    MalformedGraph(String),
    /// A period, deadline or execution time is non-positive.
    NonPositiveTime {
        /// Which quantity was rejected.
        what: String,
        /// The offending value.
        value: Time,
    },
    /// A dynamic message lacks a frame identifier, or a frame identifier
    /// is assigned inconsistently (shared across nodes).
    FrameAssignment(String),
    /// A static message's sender node owns no static slot.
    MissingStaticSlot(NodeId),
    /// A frame does not fit its slot or segment.
    FrameTooLarge {
        /// The offending message.
        message: ActivityId,
        /// Where it was supposed to fit.
        context: String,
    },
    /// Two activities conflict (e.g. duplicate frame identifier on
    /// different nodes).
    Conflict {
        /// Frame identifier both messages claim.
        frame: FrameId,
        /// Explanation.
        detail: String,
    },
    /// The application hyperperiod cannot be represented.
    HyperperiodOverflow,
    /// A configuration parameter set (e.g. of the benchmark generator)
    /// is internally inconsistent.
    InvalidConfig(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidPhy(msg) => write!(f, "invalid physical-layer parameters: {msg}"),
            ModelError::ProtocolLimit(msg) => write!(f, "flexray protocol limit violated: {msg}"),
            ModelError::UnknownActivity(id) => write!(f, "unknown activity {id}"),
            ModelError::UnknownNode(id) => write!(f, "unknown node {id}"),
            ModelError::MalformedGraph(msg) => write!(f, "malformed task graph: {msg}"),
            ModelError::NonPositiveTime { what, value } => {
                write!(f, "{what} must be positive, got {value}")
            }
            ModelError::FrameAssignment(msg) => write!(f, "frame identifier assignment: {msg}"),
            ModelError::MissingStaticSlot(node) => {
                write!(
                    f,
                    "node {node} sends static messages but owns no static slot"
                )
            }
            ModelError::FrameTooLarge { message, context } => {
                write!(f, "message {message} does not fit {context}")
            }
            ModelError::Conflict { frame, detail } => {
                write!(f, "conflicting use of {frame}: {detail}")
            }
            ModelError::HyperperiodOverflow => {
                write!(f, "application hyperperiod overflows the time range")
            }
            ModelError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = ModelError::NonPositiveTime {
            what: "period".into(),
            value: Time::ZERO,
        };
        let s = e.to_string();
        assert!(s.contains("period"));
        assert!(s.contains("positive"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }

    #[test]
    fn conflict_mentions_frame() {
        let e = ModelError::Conflict {
            frame: FrameId::new(4),
            detail: "two nodes".into(),
        };
        assert!(e.to_string().contains("FrameID 4"));
    }
}
