//! FlexRay bus configuration: the design variables of the optimisation.
//!
//! A bus configuration fixes, per Section 6 of the paper:
//! (1) the length of a static slot, (2) the number of static slots,
//! (3) their assignment to nodes, (4) the length of the dynamic segment,
//! and (5)–(6) the assignment of dynamic slots (frame identifiers) to
//! nodes and messages.

use crate::{
    ActivityId, Application, FrameId, MessageClass, ModelError, NodeId, PhyParams, SlotId, Time,
    MAX_CYCLE, MAX_MINISLOTS, MAX_STATIC_SLOTS, MAX_STATIC_SLOT_MACROTICKS,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A complete FlexRay bus configuration.
///
/// Fields are public: the optimisers in `flexray-opt` mutate
/// configurations in tight loops. [`BusConfig::validate_for`] checks the
/// protocol limits and the consistency with a given application; the
/// analysis crates call it once per evaluated configuration.
///
/// # Examples
///
/// ```
/// use flexray_model::*;
///
/// let phy = PhyParams::unit();
/// let mut bus = BusConfig::new(phy);
/// bus.static_slot_len = Time::from_us(8.0);
/// bus.static_slot_owners = vec![NodeId::new(0), NodeId::new(1)];
/// bus.n_minislots = 10;
/// assert_eq!(bus.st_bus(), Time::from_us(16.0));
/// assert_eq!(bus.gd_cycle(), Time::from_us(26.0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusConfig {
    /// Physical-layer parameters (bit time, macrotick, minislot).
    pub phy: PhyParams,
    /// Length of one static slot (`gdStaticSlot`); must be a positive
    /// whole number of macroticks when static slots exist.
    pub static_slot_len: Time,
    /// Owner of each static slot; index 0 is slot 1. The same node may
    /// own several slots.
    pub static_slot_owners: Vec<NodeId>,
    /// Length of the dynamic segment in minislots
    /// (`gNumberOfMinislots`).
    pub n_minislots: u32,
    /// Frame identifier of every dynamic message. Messages of the same
    /// node may share a frame identifier (arbitrated by priority);
    /// messages of different nodes must not.
    pub frame_ids: BTreeMap<ActivityId, FrameId>,
}

impl BusConfig {
    /// An empty configuration (no slots, no dynamic segment) over the
    /// given physical layer.
    #[must_use]
    pub fn new(phy: PhyParams) -> Self {
        BusConfig {
            phy,
            static_slot_len: Time::ZERO,
            static_slot_owners: Vec::new(),
            n_minislots: 0,
            frame_ids: BTreeMap::new(),
        }
    }

    /// Number of static slots per cycle (`gdNumberOfStaticSlots`).
    #[must_use]
    pub fn static_slot_count(&self) -> usize {
        self.static_slot_owners.len()
    }

    /// Length of the static segment (`STbus`).
    #[must_use]
    pub fn st_bus(&self) -> Time {
        self.static_slot_len * self.static_slot_count() as i64
    }

    /// Length of the dynamic segment (`DYNbus`).
    #[must_use]
    pub fn dyn_bus(&self) -> Time {
        self.phy.gd_minislot * i64::from(self.n_minislots)
    }

    /// Communication cycle length (`gdCycle = STbus + DYNbus`).
    #[must_use]
    pub fn gd_cycle(&self) -> Time {
        self.st_bus() + self.dyn_bus()
    }

    /// The static slots owned by `node`, in slot order.
    #[must_use]
    pub fn slots_of(&self, node: NodeId) -> Vec<SlotId> {
        self.static_slot_owners
            .iter()
            .enumerate()
            .filter(|&(_, &owner)| owner == node)
            .map(|(i, _)| SlotId::new(u16::try_from(i + 1).expect("validated slot count")))
            .collect()
    }

    /// Owner of a static slot.
    #[must_use]
    pub fn owner_of(&self, slot: SlotId) -> Option<NodeId> {
        self.static_slot_owners.get(slot.offset()).copied()
    }

    /// Start offset of a static slot within the cycle.
    #[must_use]
    pub fn slot_start(&self, slot: SlotId) -> Time {
        self.static_slot_len * slot.offset() as i64
    }

    /// Frame identifier assigned to a dynamic message.
    #[must_use]
    pub fn frame_id_of(&self, message: ActivityId) -> Option<FrameId> {
        self.frame_ids.get(&message).copied()
    }

    /// Number of dynamic slots per cycle: the largest assigned frame
    /// identifier (the dynamic slot counter runs at least this far).
    #[must_use]
    pub fn dyn_slot_count(&self) -> u16 {
        self.frame_ids
            .values()
            .map(|f| f.number())
            .max()
            .unwrap_or(0)
    }

    /// Transmission time `C_m` of a message on this bus (Eq. (1)).
    ///
    /// # Panics
    ///
    /// Panics if `message` is not a message of `app`.
    #[must_use]
    pub fn comm_time(&self, app: &Application, message: ActivityId) -> Time {
        let spec = app
            .activity(message)
            .as_message()
            .expect("comm_time of a task");
        self.phy.frame_duration(spec.size_bytes)
    }

    /// Number of minislots the dynamic frame of `message` occupies.
    #[must_use]
    pub fn minislots_of(&self, app: &Application, message: ActivityId) -> u32 {
        self.phy.minislots_for(self.comm_time(app, message))
    }

    /// `pLatestTx` for `node`: the largest minislot-counter value at which
    /// the node may still start a transmission, fixed at design time from
    /// the largest dynamic frame the node sends (Section 3).
    ///
    /// A node that sends no dynamic message gets `n_minislots` (it never
    /// transmits anyway).
    #[must_use]
    pub fn p_latest_tx(&self, app: &Application, node: NodeId) -> u32 {
        let largest = self
            .frame_ids
            .keys()
            .filter(|&&m| app.sender_of(m) == Some(node))
            .map(|&m| self.minislots_of(app, m))
            .max();
        match largest {
            Some(l) => self.n_minislots.saturating_sub(l) + 1,
            None => self.n_minislots,
        }
    }

    /// Smallest dynamic-segment length (in minislots) on which every
    /// dynamic message of `app` can be transmitted at all under the
    /// current frame-identifier assignment: slot `FrameID_m` must still
    /// begin early enough for the whole frame to fit
    /// (`(FrameID_m − 1) + len_m ≤ n_minislots` in the empty-bus case),
    /// and the segment must have at least one minislot per dynamic slot.
    #[must_use]
    pub fn min_minislots(&self, app: &Application) -> u32 {
        let mut need = u32::from(self.dyn_slot_count());
        for (&m, &fid) in &self.frame_ids {
            let lm = self.minislots_of(app, m);
            need = need.max(u32::try_from(fid.preceding_slots()).expect("u16 fits") + lm);
        }
        need
    }

    /// Validates the configuration against the protocol limits and an
    /// application.
    ///
    /// # Errors
    ///
    /// * [`ModelError::ProtocolLimit`] — slot count/length, minislot
    ///   count or cycle length out of specification;
    /// * [`ModelError::MissingStaticSlot`] — a node sends static messages
    ///   but owns no slot;
    /// * [`ModelError::FrameTooLarge`] — a static frame exceeds the slot
    ///   or a dynamic frame cannot fit the dynamic segment;
    /// * [`ModelError::FrameAssignment`] / [`ModelError::Conflict`] —
    ///   missing or cross-node frame identifiers;
    /// * [`ModelError::UnknownNode`] — a slot owner outside the platform.
    pub fn validate_for(&self, app: &Application, n_nodes: usize) -> Result<(), ModelError> {
        self.validate_for_cluster(app, n_nodes, &[], 0)
    }

    /// Validates the configuration as the bus of one cluster of a
    /// multi-cluster network (see [`crate::Network`]): identical to
    /// [`Self::validate_for`], but only the messages whose
    /// `msg_cluster` entry equals `cluster` are checked against this
    /// bus, and every `frame_ids` key must belong to the cluster. An
    /// empty `msg_cluster` puts every message on cluster 0, which makes
    /// `validate_for` the single-bus special case.
    ///
    /// # Errors
    ///
    /// See [`Self::validate_for`]; additionally
    /// [`ModelError::FrameAssignment`] when a `frame_ids` key names a
    /// message homed on another cluster.
    pub fn validate_for_cluster(
        &self,
        app: &Application,
        n_nodes: usize,
        msg_cluster: &[u16],
        cluster: u16,
    ) -> Result<(), ModelError> {
        let cluster_of = |m: ActivityId| msg_cluster.get(m.index()).copied().unwrap_or(0);
        self.phy.validate()?;
        if self.static_slot_count() > usize::from(MAX_STATIC_SLOTS) {
            return Err(ModelError::ProtocolLimit(format!(
                "{} static slots exceed the maximum of {MAX_STATIC_SLOTS}",
                self.static_slot_count()
            )));
        }
        if self.n_minislots > MAX_MINISLOTS {
            return Err(ModelError::ProtocolLimit(format!(
                "{} minislots exceed the maximum of {MAX_MINISLOTS}",
                self.n_minislots
            )));
        }
        if self.gd_cycle() > MAX_CYCLE {
            return Err(ModelError::ProtocolLimit(format!(
                "gdCycle {} exceeds the 16 ms maximum",
                self.gd_cycle()
            )));
        }
        for &owner in &self.static_slot_owners {
            if owner.index() >= n_nodes {
                return Err(ModelError::UnknownNode(owner));
            }
        }
        if self.static_slot_count() > 0 {
            if self.static_slot_len <= Time::ZERO {
                return Err(ModelError::ProtocolLimit(
                    "static slots exist but gdStaticSlot is zero".into(),
                ));
            }
            if !(self.static_slot_len % self.phy.gd_macrotick).is_zero() {
                return Err(ModelError::ProtocolLimit(format!(
                    "gdStaticSlot {} is not a whole number of macroticks",
                    self.static_slot_len
                )));
            }
            let macroticks = self.static_slot_len / self.phy.gd_macrotick;
            if macroticks > i64::from(MAX_STATIC_SLOT_MACROTICKS) {
                return Err(ModelError::ProtocolLimit(format!(
                    "gdStaticSlot of {macroticks} macroticks exceeds the maximum of \
                     {MAX_STATIC_SLOT_MACROTICKS}"
                )));
            }
        }

        // Static messages: sender owns a slot, frame fits the slot.
        for m in app.messages_of_class(MessageClass::Static) {
            if cluster_of(m) != cluster {
                continue;
            }
            let sender = app.sender_of(m).ok_or_else(|| {
                ModelError::MalformedGraph(format!(
                    "static message '{}' has no sender",
                    app.activity(m).name
                ))
            })?;
            if self.slots_of(sender).is_empty() {
                return Err(ModelError::MissingStaticSlot(sender));
            }
            if self.comm_time(app, m) > self.static_slot_len {
                return Err(ModelError::FrameTooLarge {
                    message: m,
                    context: format!("static slot of length {}", self.static_slot_len),
                });
            }
        }

        // Dynamic messages: assigned, single node per frame id, fits.
        let mut frame_nodes: BTreeMap<FrameId, NodeId> = BTreeMap::new();
        for m in app.messages_of_class(MessageClass::Dynamic) {
            if cluster_of(m) != cluster {
                continue;
            }
            let fid = self.frame_id_of(m).ok_or_else(|| {
                ModelError::FrameAssignment(format!(
                    "dynamic message '{}' has no frame identifier",
                    app.activity(m).name
                ))
            })?;
            let sender = app.sender_of(m).ok_or_else(|| {
                ModelError::MalformedGraph(format!(
                    "dynamic message '{}' has no sender",
                    app.activity(m).name
                ))
            })?;
            if let Some(&other) = frame_nodes.get(&fid) {
                if other != sender {
                    return Err(ModelError::Conflict {
                        frame: fid,
                        detail: format!("assigned to both {other} and {sender}"),
                    });
                }
            } else {
                frame_nodes.insert(fid, sender);
            }
            let lm = self.minislots_of(app, m);
            let need = u32::try_from(fid.preceding_slots()).expect("u16 fits") + lm;
            if need > self.n_minislots {
                return Err(ModelError::FrameTooLarge {
                    message: m,
                    context: format!(
                        "dynamic segment of {} minislots (needs {need})",
                        self.n_minislots
                    ),
                });
            }
        }
        for &m in self.frame_ids.keys() {
            if app
                .activities()
                .get(m.index())
                .and_then(|a| a.as_message())
                .map(|s| s.class)
                != Some(MessageClass::Dynamic)
            {
                return Err(ModelError::FrameAssignment(format!(
                    "frame identifier assigned to non-dynamic activity {m}"
                )));
            }
            if cluster_of(m) != cluster {
                return Err(ModelError::FrameAssignment(format!(
                    "frame identifier on cluster {cluster} assigned to activity {m} of \
                     cluster {}",
                    cluster_of(m)
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SchedPolicy;

    fn app_with_messages() -> (Application, ActivityId, ActivityId) {
        let mut app = Application::new();
        let g = app.add_graph("g", Time::from_us(1000.0), Time::from_us(1000.0));
        let t1 = app.add_task(
            g,
            "t1",
            NodeId::new(0),
            Time::from_us(5.0),
            SchedPolicy::Scs,
            0,
        );
        let t2 = app.add_task(
            g,
            "t2",
            NodeId::new(1),
            Time::from_us(5.0),
            SchedPolicy::Scs,
            0,
        );
        let t3 = app.add_task(
            g,
            "t3",
            NodeId::new(1),
            Time::from_us(5.0),
            SchedPolicy::Fps,
            1,
        );
        let t4 = app.add_task(
            g,
            "t4",
            NodeId::new(0),
            Time::from_us(5.0),
            SchedPolicy::Fps,
            1,
        );
        let st = app.add_message(g, "st", 4, MessageClass::Static, 0);
        let dy = app.add_message(g, "dy", 4, MessageClass::Dynamic, 1);
        app.connect(t1, st, t2).expect("edges");
        app.connect(t3, dy, t4).expect("edges");
        app.validate().expect("valid app");
        (app, st, dy)
    }

    fn unit_bus() -> BusConfig {
        let mut bus = BusConfig::new(PhyParams::unit());
        bus.static_slot_len = Time::from_us(8.0);
        bus.static_slot_owners = vec![NodeId::new(0), NodeId::new(1)];
        bus.n_minislots = 10;
        bus
    }

    #[test]
    fn segment_lengths() {
        let bus = unit_bus();
        assert_eq!(bus.st_bus(), Time::from_us(16.0));
        assert_eq!(bus.dyn_bus(), Time::from_us(10.0));
        assert_eq!(bus.gd_cycle(), Time::from_us(26.0));
        assert_eq!(bus.static_slot_count(), 2);
    }

    #[test]
    fn slot_queries() {
        let bus = unit_bus();
        assert_eq!(bus.slots_of(NodeId::new(0)), vec![SlotId::new(1)]);
        assert_eq!(bus.owner_of(SlotId::new(2)), Some(NodeId::new(1)));
        assert_eq!(bus.owner_of(SlotId::new(3)), None);
        assert_eq!(bus.slot_start(SlotId::new(2)), Time::from_us(8.0));
    }

    #[test]
    fn validate_accepts_consistent_config() {
        let (app, _, dy) = app_with_messages();
        let mut bus = unit_bus();
        bus.frame_ids.insert(dy, FrameId::new(1));
        bus.validate_for(&app, 2).expect("valid config");
    }

    #[test]
    fn missing_frame_id_is_rejected() {
        let (app, _, _) = app_with_messages();
        let bus = unit_bus();
        assert!(matches!(
            bus.validate_for(&app, 2),
            Err(ModelError::FrameAssignment(_))
        ));
    }

    #[test]
    fn cross_node_frame_sharing_is_rejected() {
        let (mut app, _, dy) = app_with_messages();
        // add a second dynamic message from node 0
        let g = app.graphs()[0].members[0];
        let graph = app.activity(g).graph;
        let t1 = app.find("t1").expect("t1");
        let t3 = app.find("t3").expect("t3");
        let dy2 = app.add_message(graph, "dy2", 4, MessageClass::Dynamic, 2);
        app.connect(t1, dy2, t3).expect("edges");
        let mut bus = unit_bus();
        bus.frame_ids.insert(dy, FrameId::new(1)); // sender node 1
        bus.frame_ids.insert(dy2, FrameId::new(1)); // sender node 0
        assert!(matches!(
            bus.validate_for(&app, 2),
            Err(ModelError::Conflict { .. })
        ));
    }

    #[test]
    fn st_frame_must_fit_slot() {
        let (app, _, dy) = app_with_messages();
        let mut bus = unit_bus();
        bus.frame_ids.insert(dy, FrameId::new(1));
        bus.static_slot_len = Time::from_us(1.0); // 4-byte frame needs 2µs
        assert!(matches!(
            bus.validate_for(&app, 2),
            Err(ModelError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn dyn_frame_must_fit_segment() {
        let (app, _, dy) = app_with_messages();
        let mut bus = unit_bus();
        bus.frame_ids.insert(dy, FrameId::new(10));
        bus.n_minislots = 5; // frame id 10 can never start
        assert!(matches!(
            bus.validate_for(&app, 2),
            Err(ModelError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn protocol_limits_enforced() {
        let (app, _, dy) = app_with_messages();
        let mut bus = unit_bus();
        bus.frame_ids.insert(dy, FrameId::new(1));
        bus.n_minislots = MAX_MINISLOTS + 1;
        assert!(matches!(
            bus.validate_for(&app, 2),
            Err(ModelError::ProtocolLimit(_))
        ));

        let mut bus = unit_bus();
        bus.frame_ids.insert(dy, FrameId::new(1));
        bus.static_slot_len = Time::from_us(8000.0); // cycle over 16ms
        assert!(bus.validate_for(&app, 2).is_err());
    }

    #[test]
    fn missing_static_slot_detected() {
        let (app, _, dy) = app_with_messages();
        let mut bus = unit_bus();
        bus.frame_ids.insert(dy, FrameId::new(1));
        bus.static_slot_owners = vec![NodeId::new(1)]; // node 0 sends 'st'
        assert!(matches!(
            bus.validate_for(&app, 2),
            Err(ModelError::MissingStaticSlot(n)) if n == NodeId::new(0)
        ));
    }

    #[test]
    fn p_latest_tx_accounts_for_largest_frame() {
        let (app, _, dy) = app_with_messages();
        let mut bus = unit_bus();
        bus.frame_ids.insert(dy, FrameId::new(1));
        // 'dy' is 4 bytes => 2 granules * 20 bits * 100ns = 4µs = 4 minislots
        let lm = bus.minislots_of(&app, dy);
        assert_eq!(bus.p_latest_tx(&app, NodeId::new(1)), 10 - lm + 1);
        // node 0 sends no dynamic messages
        assert_eq!(bus.p_latest_tx(&app, NodeId::new(0)), 10);
    }

    #[test]
    fn min_minislots_covers_position_and_length() {
        let (app, _, dy) = app_with_messages();
        let mut bus = unit_bus();
        bus.frame_ids.insert(dy, FrameId::new(3));
        let lm = bus.minislots_of(&app, dy);
        assert_eq!(bus.min_minislots(&app), 2 + lm);
    }

    #[test]
    fn dyn_slot_count_is_max_frame_id() {
        let (app, _, dy) = app_with_messages();
        let mut bus = unit_bus();
        assert_eq!(bus.dyn_slot_count(), 0);
        bus.frame_ids.insert(dy, FrameId::new(5));
        assert_eq!(bus.dyn_slot_count(), 5);
        let _ = app;
    }
}
