//! List scheduler building the static schedule table (Fig. 2 of the
//! paper).
//!
//! SCS tasks and ST messages are extracted from a ready list ordered by
//! the modified critical-path priority and placed at the earliest
//! feasible time: tasks in the first sufficient gap of their node,
//! messages in the first static-slot instance of their sender node with
//! enough remaining frame capacity. Frames deliver at slot end, several
//! messages may share one frame (Fig. 3.c), and instances that cannot be
//! placed inside the hyperperiod are recorded with synthetic overflow
//! times so the cost function still grades the configuration.
//!
//! # Reusable builder
//!
//! The greedy ready-list *selection order* never consults placement
//! times: a job is eligible once all its time-triggered predecessors are
//! placed, and ties are broken purely by the critical-path priority (a
//! function of the durations, hence of the application and the physical
//! layer only) and the instance number. The order is therefore identical
//! for every candidate bus configuration sharing one `PhyParams`, which
//! is exactly the shape of the optimiser loops — thousands of candidates
//! differing only in slot layout or dynamic-segment length.
//! [`ScheduleBuilder`] exploits this: it computes the order once, keyed
//! on the physical layer, and each `build_into` call is a linear
//! placement pass over it reusing all scratch allocations. The one-shot
//! [`build_schedule`] entry point simply runs a fresh builder once.

use crate::availability::Availability;
use crate::priority::longest_path_to_sink;
use crate::table::{MessageEntry, ScheduleTable, TaskEntry};
use flexray_model::{ActivityId, ModelError, PhyParams, SchedPolicy, SlotId, SystemView, Time};
use std::collections::HashMap;

/// How SCS task instances are placed in the static schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScsPlacement {
    /// First sufficient gap after the ASAP time — fast, and the
    /// behaviour most reproductions assume.
    #[default]
    Asap,
    /// Fig. 2, line 11: among the first few feasible gaps, pick the one
    /// that minimises the worst-case response times of the FPS tasks on
    /// the node (evaluated with a jitter-free response-time analysis).
    /// Slower, but recovers slack fragmentation that starves FPS tasks.
    MinimiseFpsImpact,
}

/// A single job: the `instance`-th activation of a time-triggered
/// activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Job {
    activity: ActivityId,
    instance: i64,
}

/// Reusable list-scheduler state: the precomputed placement order plus
/// every per-build scratch allocation.
///
/// A builder is tied to one application (the job set and order are
/// derived from it); feed it systems over the same application only.
/// The order is re-derived automatically when the physical layer of the
/// presented bus differs from the one it was computed for.
#[derive(Debug, Default)]
pub(crate) struct ScheduleBuilder {
    /// Physical layer the placement order was computed for.
    order_key: Option<PhyParams>,
    /// Greedy ready-list selection order over all TT jobs.
    order: Vec<Job>,
    /// Flat job index base per activity (`usize::MAX` for ET activities).
    offsets: Vec<usize>,
    /// Instances per activity within the hyperperiod (0 for ET).
    counts: Vec<i64>,
    n_jobs: usize,
    // ---- per-build scratch ----
    ready: Vec<Time>,
    node_busy: Vec<Vec<(Time, Time)>>,
    slot_usage: HashMap<(u16, i64, SlotId), Time>,
}

impl ScheduleBuilder {
    /// Flat index of a job, `None` when the activity is event-triggered
    /// or the instance is out of range (mixed-period edges).
    fn flat(&self, activity: ActivityId, instance: i64) -> Option<usize> {
        let base = self.offsets[activity.index()];
        (base != usize::MAX && instance < self.counts[activity.index()])
            .then(|| base + usize::try_from(instance).expect("non-negative instance"))
    }

    /// (Re)computes the job set and the greedy selection order for the
    /// given physical layer. Replays exactly the ready-list loop of
    /// Fig. 2: among eligible jobs (all TT predecessors placed), the
    /// first minimum under the critical-path priority wins.
    fn ensure_order(&mut self, sys: SystemView<'_>, horizon: Time) -> Result<(), ModelError> {
        if self.order_key == Some(sys.bus.phy) {
            return Ok(());
        }
        let n = sys.app.activities().len();
        let lp = longest_path_to_sink(sys);

        let mut jobs: Vec<Job> = Vec::new();
        self.offsets = vec![usize::MAX; n];
        self.counts = vec![0; n];
        for id in sys.app.ids() {
            if !sys.app.activity(id).is_time_triggered() {
                continue;
            }
            let period = sys.app.period_of(id);
            let instances = horizon / period;
            self.offsets[id.index()] = jobs.len();
            self.counts[id.index()] = instances;
            for k in 0..instances {
                jobs.push(Job {
                    activity: id,
                    instance: k,
                });
            }
        }
        self.n_jobs = jobs.len();

        let mut pending: Vec<usize> = jobs
            .iter()
            .map(|j| {
                sys.app
                    .preds(j.activity)
                    .iter()
                    .filter(|&&p| sys.app.activity(p).is_time_triggered())
                    .count()
            })
            .collect();
        let mut placed = vec![false; self.n_jobs];
        self.order.clear();
        self.order.reserve(self.n_jobs);
        while self.order.len() < self.n_jobs {
            let best = jobs
                .iter()
                .enumerate()
                .filter(|&(fi, _)| !placed[fi] && pending[fi] == 0)
                .min_by(|a, b| {
                    crate::priority::ready_list_order(&lp, a.1.activity, b.1.activity)
                        .then(a.1.instance.cmp(&b.1.instance))
                });
            let Some((fi, &job)) = best else {
                // All remaining jobs are blocked — cannot happen on an
                // acyclic application, but guard against it.
                self.order_key = None;
                return Err(ModelError::MalformedGraph(
                    "list scheduler deadlocked on blocked jobs".into(),
                ));
            };
            placed[fi] = true;
            self.order.push(job);
            for &s in sys.app.succs(job.activity) {
                if !sys.app.activity(s).is_time_triggered() {
                    continue;
                }
                if let Some(sf) = self.flat(s, job.instance) {
                    pending[sf] -= 1;
                }
            }
        }
        self.order_key = Some(sys.bus.phy);
        Ok(())
    }

    /// Builds the static schedule for `sys` into `table`, reusing the
    /// precomputed order and all scratch buffers.
    ///
    /// `et_finish_bound` gives, per activity id, the current bound on the
    /// completion (relative to graph activation) of event-triggered
    /// activities; it is consulted when a time-triggered activity depends
    /// on an event-triggered predecessor.
    pub(crate) fn build_into(
        &mut self,
        sys: SystemView<'_>,
        et_finish_bound: &[Time],
        placement: ScsPlacement,
        table: &mut ScheduleTable,
    ) -> Result<(), ModelError> {
        let horizon = sys.hyperperiod()?;
        table.reset(horizon);
        self.ensure_order(sys, horizon)?;

        // Initial ready times: activation + release, pushed out by the
        // current completion bounds of event-triggered predecessors.
        self.ready.clear();
        self.ready.resize(self.n_jobs, Time::ZERO);
        for id in sys.app.ids() {
            let base = self.offsets[id.index()];
            if base == usize::MAX {
                continue;
            }
            let a = sys.app.activity(id);
            let period = sys.app.period_of(id);
            for k in 0..self.counts[id.index()] {
                let activation = period * k;
                let mut r = activation + a.release;
                for &p in sys.app.preds(id) {
                    if !sys.app.activity(p).is_time_triggered() {
                        r = r.max(activation + et_finish_bound[p.index()]);
                    }
                }
                self.ready[base + usize::try_from(k).expect("non-negative")] = r;
            }
        }

        // Per-node busy intervals and per-slot-instance frame usage.
        let n_nodes = sys.platform.len().max(
            sys.app
                .ids()
                .filter_map(|id| sys.app.activity(id).as_task().map(|t| t.node.index() + 1))
                .max()
                .unwrap_or(0),
        );
        if self.node_busy.len() < n_nodes {
            self.node_busy.resize_with(n_nodes, Vec::new);
        }
        for busy in &mut self.node_busy {
            busy.clear();
        }
        self.slot_usage.clear();

        for oi in 0..self.order.len() {
            let job = self.order[oi];
            let asap = self.ready[self.flat(job.activity, job.instance).expect("ordered job")];
            let finish = match sys.app.activity(job.activity).as_task() {
                Some(task) => place_task(
                    sys,
                    table,
                    &mut self.node_busy,
                    job,
                    task.node,
                    asap,
                    horizon,
                    placement,
                ),
                None => place_message(sys, table, &mut self.slot_usage, job, asap, horizon)?,
            };
            for &s in sys.app.succs(job.activity) {
                if !sys.app.activity(s).is_time_triggered() {
                    continue;
                }
                if let Some(sf) = self.flat(s, job.instance) {
                    self.ready[sf] = self.ready[sf].max(finish);
                }
            }
        }
        Ok(())
    }
}

/// Builds the static schedule table for all SCS tasks and ST messages of
/// the system over one hyperperiod.
///
/// `et_finish_bound` gives, per activity id, the current bound on the
/// completion (relative to graph activation) of event-triggered
/// activities; it is consulted when a time-triggered activity depends on
/// an event-triggered predecessor. Pass the activity durations on the
/// first holistic iteration.
///
/// # Errors
///
/// Returns an error if the hyperperiod overflows or the bus cycle is
/// empty while static messages exist.
pub fn build_schedule<'a>(
    sys: impl Into<SystemView<'a>>,
    et_finish_bound: &[Time],
) -> Result<ScheduleTable, ModelError> {
    build_schedule_with(sys, et_finish_bound, ScsPlacement::Asap)
}

/// [`build_schedule`] with an explicit SCS placement policy.
///
/// # Errors
///
/// See [`build_schedule`].
pub fn build_schedule_with<'a>(
    sys: impl Into<SystemView<'a>>,
    et_finish_bound: &[Time],
    placement: ScsPlacement,
) -> Result<ScheduleTable, ModelError> {
    let sys = sys.into();
    let mut builder = ScheduleBuilder::default();
    let mut table = ScheduleTable::default();
    builder.build_into(sys, et_finish_bound, placement, &mut table)?;
    Ok(table)
}

/// Places one SCS task instance on its node and returns its finish
/// time. Under [`ScsPlacement::Asap`] the earliest gap wins; under
/// [`ScsPlacement::MinimiseFpsImpact`] a handful of candidate gaps are
/// scored by the jitter-free response times of the node's FPS tasks.
#[allow(clippy::too_many_arguments)]
fn place_task(
    sys: SystemView<'_>,
    table: &mut ScheduleTable,
    node_busy: &mut [Vec<(Time, Time)>],
    job: Job,
    node: flexray_model::NodeId,
    asap: Time,
    horizon: Time,
    placement: ScsPlacement,
) -> Time {
    let wcet = sys
        .app
        .activity(job.activity)
        .as_task()
        .expect("task job")
        .wcet;
    let start = match placement {
        ScsPlacement::Asap => first_gap(&node_busy[node.index()], asap, wcet, horizon),
        ScsPlacement::MinimiseFpsImpact => {
            choose_fps_friendly_start(sys, &node_busy[node.index()], node, asap, wcet, horizon)
        }
    };
    let busy = &mut node_busy[node.index()];
    let (start, finish, overflow) = match start {
        Some(s) => (s, s + wcet, false),
        None => {
            // Synthetic placement past the horizon for graded costs.
            let tail = busy.last().map_or(Time::ZERO, |&(_, f)| f);
            let s = asap.max(tail).max(horizon);
            (s, s + wcet, true)
        }
    };
    if overflow {
        table.mark_overflow(job.activity);
    } else {
        let pos = busy.partition_point(|&(s, _)| s < start);
        busy.insert(pos, (start, finish));
    }
    table.push_task(TaskEntry {
        activity: job.activity,
        instance: job.instance,
        node,
        start,
        finish,
    });
    finish
}

/// Candidate placements for the FPS-aware policy: the ASAP gap plus the
/// gaps after each of the next few busy windows; the one minimising the
/// summed jitter-free FPS response times on the node wins (ties go to
/// the earlier start).
fn choose_fps_friendly_start(
    sys: SystemView<'_>,
    busy: &[(Time, Time)],
    node: flexray_model::NodeId,
    asap: Time,
    wcet: Time,
    horizon: Time,
) -> Option<Time> {
    const MAX_GAPS: usize = 3;
    // Enumerate start-aligned and end-aligned placements in the first
    // few feasible gaps.
    let mut candidates: Vec<Time> = Vec::new();
    let mut gap_start = Time::ZERO;
    let mut gaps_seen = 0usize;
    let mut boundaries: Vec<(Time, Time)> = busy.to_vec();
    boundaries.push((horizon, horizon)); // sentinel: final gap ends at the wall
    for &(ws, wf) in &boundaries {
        let lo = gap_start.max(asap);
        let hi = ws; // gap is [gap_start, ws)
        if hi - lo >= wcet {
            // start-aligned, mid-gap and end-aligned placements: the
            // mid-gap option splits the slack symmetrically, which often
            // wins once the periodic wrap-around is accounted for.
            candidates.push(lo);
            let end_aligned = hi - wcet;
            let mid = lo + (end_aligned - lo) / 2;
            if mid > lo {
                candidates.push(mid);
            }
            if end_aligned > mid {
                candidates.push(end_aligned);
            }
            gaps_seen += 1;
            if gaps_seen >= MAX_GAPS {
                break;
            }
        }
        gap_start = wf;
    }
    let fps_tasks: Vec<ActivityId> = sys
        .app
        .tasks_with_policy(SchedPolicy::Fps)
        .filter(|&t| sys.app.activity(t).as_task().map(|s| s.node) == Some(node))
        .collect();
    if candidates.len() <= 1 || fps_tasks.is_empty() {
        return candidates.first().copied();
    }
    let zero_jitter = vec![Time::ZERO; sys.app.activities().len()];
    let limit = horizon.saturating_mul(4);
    candidates.into_iter().min_by_key(|&start| {
        // tentative busy list with the candidate placement
        let mut tentative = busy.to_vec();
        let pos = tentative.partition_point(|&(s, _)| s < start);
        tentative.insert(pos, (start, start + wcet));
        let avail = Availability::new(horizon, merge_windows(tentative));
        let impact: Time = fps_tasks
            .iter()
            .map(|&t| {
                crate::fps::fps_local_response(sys, &avail, t, &zero_jitter, limit).unwrap_or(limit)
            })
            .sum();
        (impact, start)
    })
}

/// Merges touching/overlapping sorted windows (tentative placements may
/// butt against existing ones).
fn merge_windows(windows: Vec<(Time, Time)>) -> Vec<(Time, Time)> {
    let mut merged: Vec<(Time, Time)> = Vec::with_capacity(windows.len());
    for (s, f) in windows {
        match merged.last_mut() {
            Some((_, last_f)) if s <= *last_f => *last_f = (*last_f).max(f),
            _ => merged.push((s, f)),
        }
    }
    merged
}

/// Earliest start of a contiguous gap of `len` in the sorted busy list,
/// finishing no later than `wall`.
fn first_gap(busy: &[(Time, Time)], from: Time, len: Time, wall: Time) -> Option<Time> {
    let mut candidate = from.max(Time::ZERO);
    for &(s, f) in busy {
        if f <= candidate {
            continue;
        }
        if candidate + len <= s {
            break;
        }
        candidate = candidate.max(f);
    }
    (candidate + len <= wall).then_some(candidate)
}

/// Places one ST message instance in the earliest slot instance of its
/// sender node with room left in the frame; returns the delivery time
/// (slot end). The cycle geometry is that of the message's home
/// cluster (slot instances of different clusters never collide: the
/// usage map is keyed by cluster).
fn place_message(
    sys: SystemView<'_>,
    table: &mut ScheduleTable,
    slot_usage: &mut HashMap<(u16, i64, SlotId), Time>,
    job: Job,
    ready: Time,
    horizon: Time,
) -> Result<Time, ModelError> {
    let cluster = sys.cluster_of(job.activity);
    let sys = sys.focused(job.activity);
    let cm = sys.comm_time(job.activity);
    let sender = sys.app.sender_of(job.activity).ok_or_else(|| {
        ModelError::MalformedGraph(format!(
            "static message '{}' has no sender",
            sys.app.activity(job.activity).name
        ))
    })?;
    let slots = sys.bus.slots_of(sender);
    let gd_cycle = sys.bus.gd_cycle();
    let slot_len = sys.bus.static_slot_len;
    let n_cycles = if gd_cycle > Time::ZERO {
        horizon.div_ceil(gd_cycle)
    } else {
        0
    };

    if !slots.is_empty() && gd_cycle > Time::ZERO {
        let first_cycle = (ready.max(Time::ZERO)).div_floor(gd_cycle);
        for cycle in first_cycle..n_cycles {
            for &slot in &slots {
                let slot_start = gd_cycle * cycle + sys.bus.slot_start(slot);
                let slot_end = slot_start + slot_len;
                if slot_start < ready || slot_end > horizon {
                    continue;
                }
                let used = slot_usage
                    .entry((cluster, cycle, slot))
                    .or_insert(Time::ZERO);
                if *used + cm <= slot_len {
                    let tx_start = slot_start + *used;
                    *used += cm;
                    table.push_message(MessageEntry {
                        activity: job.activity,
                        instance: job.instance,
                        cycle,
                        slot,
                        tx_start,
                        tx_end: tx_start + cm,
                        slot_end,
                    });
                    return Ok(slot_end);
                }
            }
        }
    }
    // No feasible slot instance: synthetic delivery past the horizon.
    table.mark_overflow(job.activity);
    let finish = ready.max(horizon) + gd_cycle.max(cm) + cm;
    table.push_message(MessageEntry {
        activity: job.activity,
        instance: job.instance,
        cycle: n_cycles,
        slot: slots.first().copied().unwrap_or_else(|| SlotId::new(1)),
        tx_start: finish - cm,
        tx_end: finish,
        slot_end: finish,
    });
    Ok(finish)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexray_model::*;

    /// Two SCS tasks on one node plus a static message to another node.
    fn chain_system(slot_len_us: f64, owners: Vec<NodeId>) -> System {
        let mut app = Application::new();
        let g = app.add_graph("g", Time::from_us(100.0), Time::from_us(100.0));
        let a = app.add_task(
            g,
            "a",
            NodeId::new(0),
            Time::from_us(10.0),
            SchedPolicy::Scs,
            0,
        );
        let b = app.add_task(
            g,
            "b",
            NodeId::new(1),
            Time::from_us(5.0),
            SchedPolicy::Scs,
            0,
        );
        let m = app.add_message(g, "m", 8, MessageClass::Static, 0); // 4µs on unit phy
        app.connect(a, m, b).expect("edges");
        let mut bus = BusConfig::new(PhyParams::unit());
        bus.static_slot_len = Time::from_us(slot_len_us);
        bus.static_slot_owners = owners;
        System::validated(Platform::with_nodes(2), app, bus).expect("valid")
    }

    fn bounds(sys: &System) -> Vec<Time> {
        sys.app.ids().map(|id| sys.duration_of(id)).collect()
    }

    #[test]
    fn chain_is_scheduled_in_order() {
        let sys = chain_system(8.0, vec![NodeId::new(0), NodeId::new(1)]);
        let table = build_schedule(&sys, &bounds(&sys)).expect("schedule");
        assert!(table.is_feasible());
        let a = sys.app.find("a").expect("a");
        let m = sys.app.find("m").expect("m");
        let b = sys.app.find("b").expect("b");
        let fa = table.finish_of(a, 0).expect("a scheduled");
        let fm = table.finish_of(m, 0).expect("m scheduled");
        let fb = table.finish_of(b, 0).expect("b scheduled");
        assert_eq!(fa, Time::from_us(10.0));
        // message waits for a slot-1 instance starting at/after 10:
        // gdCycle = 16, slot1 of cycle 1 = [16, 24) -> delivery 24
        assert_eq!(fm, Time::from_us(24.0));
        assert_eq!(fb, Time::from_us(29.0));
    }

    #[test]
    fn message_waits_for_own_nodes_slot() {
        // node 0 owns only slot 2
        let sys = chain_system(8.0, vec![NodeId::new(1), NodeId::new(0)]);
        let table = build_schedule(&sys, &bounds(&sys)).expect("schedule");
        let m = sys.app.find("m").expect("m");
        // slot2 of cycle 0 = [8, 16): starts < ready(10) -> cycle 1 slot2
        // = [24, 32): delivery 32
        assert_eq!(table.finish_of(m, 0), Some(Time::from_us(32.0)));
    }

    #[test]
    fn all_instances_of_periodic_graph_are_placed() {
        let mut app = Application::new();
        let g = app.add_graph("g", Time::from_us(50.0), Time::from_us(50.0));
        app.add_task(
            g,
            "t",
            NodeId::new(0),
            Time::from_us(5.0),
            SchedPolicy::Scs,
            0,
        );
        let mut app2 = app.clone();
        let g2 = app2.add_graph("h", Time::from_us(100.0), Time::from_us(100.0));
        app2.add_task(
            g2,
            "u",
            NodeId::new(0),
            Time::from_us(7.0),
            SchedPolicy::Scs,
            0,
        );
        let bus = BusConfig::new(PhyParams::unit());
        let sys = System::validated(Platform::with_nodes(1), app2, bus).expect("valid");
        let table = build_schedule(&sys, &bounds(&sys)).expect("schedule");
        let t = sys.app.find("t").expect("t");
        // period 50 in hyperperiod 100 => 2 instances
        assert!(table.finish_of(t, 0).is_some());
        assert!(table.finish_of(t, 1).is_some());
        assert!(table.finish_of(t, 1).expect("inst 1") >= Time::from_us(50.0));
    }

    #[test]
    fn frame_packing_shares_a_slot() {
        // Two messages of 4µs from node 0 into a 8µs slot: same frame.
        let mut app = Application::new();
        let g = app.add_graph("g", Time::from_us(100.0), Time::from_us(100.0));
        let a = app.add_task(
            g,
            "a",
            NodeId::new(0),
            Time::from_us(1.0),
            SchedPolicy::Scs,
            0,
        );
        let b = app.add_task(
            g,
            "b",
            NodeId::new(1),
            Time::from_us(1.0),
            SchedPolicy::Scs,
            0,
        );
        let c = app.add_task(
            g,
            "c",
            NodeId::new(1),
            Time::from_us(1.0),
            SchedPolicy::Scs,
            0,
        );
        let m1 = app.add_message(g, "m1", 4, MessageClass::Static, 0); // 4µs
        let m2 = app.add_message(g, "m2", 4, MessageClass::Static, 0); // 4µs
        app.connect(a, m1, b).expect("edges");
        app.connect(a, m2, c).expect("edges");
        let mut bus = BusConfig::new(PhyParams::unit());
        bus.static_slot_len = Time::from_us(8.0);
        bus.static_slot_owners = vec![NodeId::new(0)];
        let sys = System::validated(Platform::with_nodes(2), app, bus).expect("valid");
        let table = build_schedule(&sys, &bounds(&sys)).expect("schedule");
        let e1 = table
            .messages()
            .iter()
            .find(|e| e.activity == sys.app.find("m1").expect("m1"))
            .expect("entry");
        let e2 = table
            .messages()
            .iter()
            .find(|e| e.activity == sys.app.find("m2").expect("m2"))
            .expect("entry");
        assert_eq!(e1.cycle, e2.cycle);
        assert_eq!(e1.slot, e2.slot);
        assert_ne!(e1.tx_start, e2.tx_start);
        assert_eq!(e1.slot_end, e2.slot_end); // both delivered at slot end
    }

    #[test]
    fn infeasible_message_is_marked_overflowed() {
        // Slot too scarce: node 0 owns one 4µs slot, needs 3 x 4µs in one
        // cycle of 100µs horizon but period forces them into few cycles.
        let mut app = Application::new();
        let g = app.add_graph("g", Time::from_us(16.0), Time::from_us(16.0));
        let a = app.add_task(
            g,
            "a",
            NodeId::new(0),
            Time::from_us(1.0),
            SchedPolicy::Scs,
            0,
        );
        let b = app.add_task(
            g,
            "b",
            NodeId::new(1),
            Time::from_us(1.0),
            SchedPolicy::Scs,
            0,
        );
        let m1 = app.add_message(g, "m1", 4, MessageClass::Static, 0); // 4µs
        let m2 = app.add_message(g, "m2", 4, MessageClass::Static, 0); // 4µs
        app.connect(a, m1, b).expect("edges");
        app.add_edge(a, m2).expect("edge");
        app.add_edge(m2, b).expect("edge");
        let mut bus = BusConfig::new(PhyParams::unit());
        bus.static_slot_len = Time::from_us(4.0);
        bus.static_slot_owners = vec![NodeId::new(0)];
        bus.n_minislots = 8; // cycle 12µs; horizon 16 -> only one full cycle
        let sys = System::validated(Platform::with_nodes(2), app, bus).expect("valid");
        let table = build_schedule(&sys, &bounds(&sys)).expect("schedule");
        assert!(!table.is_feasible());
        assert!(!table.overflowed().is_empty());
    }

    /// One SCS hog [0,40) plus a second SCS task and an FPS task on the
    /// same node: ASAP placement glues the SCS tasks into one block and
    /// starves the FPS task; the FPS-aware policy moves the second task
    /// away from the block.
    fn contended_node() -> System {
        let mut app = Application::new();
        let g = app.add_graph("g", Time::from_us(100.0), Time::from_us(100.0));
        app.add_task(
            g,
            "hog",
            NodeId::new(0),
            Time::from_us(40.0),
            SchedPolicy::Scs,
            0,
        );
        app.add_task(
            g,
            "second",
            NodeId::new(0),
            Time::from_us(10.0),
            SchedPolicy::Scs,
            0,
        );
        app.add_task(
            g,
            "fps",
            NodeId::new(0),
            Time::from_us(5.0),
            SchedPolicy::Fps,
            1,
        );
        let bus = BusConfig::new(PhyParams::unit());
        System::validated(Platform::with_nodes(1), app, bus).expect("valid")
    }

    #[test]
    fn fps_aware_placement_avoids_growing_busy_blocks() {
        let sys = contended_node();
        let asap_table =
            build_schedule_with(&sys, &bounds(&sys), ScsPlacement::Asap).expect("asap");
        let friendly_table =
            build_schedule_with(&sys, &bounds(&sys), ScsPlacement::MinimiseFpsImpact)
                .expect("friendly");
        let second = sys.app.find("second").expect("second");
        // ASAP glues 'second' to the hog: starts at 40
        let asap_start = asap_table
            .tasks()
            .iter()
            .find(|e| e.activity == second)
            .expect("entry")
            .start;
        assert_eq!(asap_start, Time::from_us(40.0));
        // the FPS-aware policy picks a later, slack-preserving start
        let friendly_start = friendly_table
            .tasks()
            .iter()
            .find(|e| e.activity == second)
            .expect("entry")
            .start;
        assert!(friendly_start > asap_start, "got {friendly_start}");
        // and the FPS task's worst-case response improves
        let fps = sys.app.find("fps").expect("fps");
        let limit = Time::from_us(1000.0);
        let zero = vec![Time::ZERO; sys.app.activities().len()];
        let r_asap = crate::fps::fps_local_response(
            &sys,
            &Availability::new(
                asap_table.horizon(),
                asap_table.busy_windows(NodeId::new(0)),
            ),
            fps,
            &zero,
            limit,
        )
        .expect("converges");
        let r_friendly = crate::fps::fps_local_response(
            &sys,
            &Availability::new(
                friendly_table.horizon(),
                friendly_table.busy_windows(NodeId::new(0)),
            ),
            fps,
            &zero,
            limit,
        )
        .expect("converges");
        assert!(r_friendly < r_asap, "{r_friendly} !< {r_asap}");
    }

    #[test]
    fn placement_policies_agree_without_fps_tasks() {
        let sys = chain_system(8.0, vec![NodeId::new(0), NodeId::new(1)]);
        let a = build_schedule_with(&sys, &bounds(&sys), ScsPlacement::Asap).expect("asap");
        let b = build_schedule_with(&sys, &bounds(&sys), ScsPlacement::MinimiseFpsImpact)
            .expect("friendly");
        for e in a.tasks() {
            let other = b
                .tasks()
                .iter()
                .find(|x| x.activity == e.activity && x.instance == e.instance)
                .expect("same job set");
            assert_eq!(e.start, other.start);
        }
    }

    #[test]
    fn tt_task_waits_for_et_bound() {
        // An FPS task feeds an SCS task via a dynamic message; the SCS
        // start must respect the provided ET finish bounds.
        let mut app = Application::new();
        let g = app.add_graph("g", Time::from_us(100.0), Time::from_us(100.0));
        let e = app.add_task(
            g,
            "e",
            NodeId::new(0),
            Time::from_us(3.0),
            SchedPolicy::Fps,
            5,
        );
        let s = app.add_task(
            g,
            "s",
            NodeId::new(1),
            Time::from_us(2.0),
            SchedPolicy::Scs,
            0,
        );
        let m = app.add_message(g, "m", 4, MessageClass::Dynamic, 1);
        app.connect(e, m, s).expect("edges");
        let mut bus = BusConfig::new(PhyParams::unit());
        bus.n_minislots = 10;
        bus.frame_ids.insert(m, FrameId::new(1));
        let sys = System::validated(Platform::with_nodes(2), app, bus).expect("valid");
        let mut et_bound = bounds(&sys);
        et_bound[m.index()] = Time::from_us(42.0);
        let table = build_schedule(&sys, &et_bound).expect("schedule");
        let entry = table
            .tasks()
            .iter()
            .find(|t| t.activity == s)
            .expect("s entry");
        assert_eq!(entry.start, Time::from_us(42.0));
    }

    #[test]
    fn builder_reuse_matches_one_shot_builds() {
        // The same builder driven across several DYN lengths and slot
        // layouts must reproduce fresh one-shot tables exactly.
        let base = chain_system(8.0, vec![NodeId::new(0), NodeId::new(1)]);
        let mut builder = ScheduleBuilder::default();
        let mut table = ScheduleTable::default();
        for n_minislots in [0u32, 5, 17, 40] {
            for owners in [
                vec![NodeId::new(0), NodeId::new(1)],
                vec![NodeId::new(1), NodeId::new(0)],
            ] {
                let mut sys = base.clone();
                sys.bus.n_minislots = n_minislots;
                sys.bus.static_slot_owners = owners;
                let fresh = build_schedule(&sys, &bounds(&sys)).expect("fresh");
                builder
                    .build_into(sys.view(), &bounds(&sys), ScsPlacement::Asap, &mut table)
                    .expect("reused");
                assert_eq!(table.tasks(), fresh.tasks());
                assert_eq!(table.messages(), fresh.messages());
                assert_eq!(table.overflowed(), fresh.overflowed());
                assert_eq!(table.horizon(), fresh.horizon());
            }
        }
    }
}
