//! Response-time analysis for FPS tasks running in the slack of the
//! static schedule.
//!
//! FPS tasks are preemptive and priority-ordered among themselves, and
//! receive CPU time only where the SCS table leaves the node idle
//! (Section 2). The analysis is a busy-window fixed point per candidate
//! critical instant: the demand `C_i + Σ_{j ∈ hp(i)} ⌈(t + J_j)/T_j⌉ C_j`
//! is pushed through the node's periodic availability function, and the
//! worst case over all slack-density breakpoints of the table is
//! reported.

use crate::availability::Availability;
use flexray_model::{ActivityId, SchedPolicy, SystemView, Time};

/// Higher-priority FPS tasks on the same node as `task` (the set `hp`).
#[must_use]
pub fn hp_tasks<'a>(sys: impl Into<SystemView<'a>>, task: ActivityId) -> Vec<ActivityId> {
    let sys = sys.into();
    let spec = sys
        .app
        .activity(task)
        .as_task()
        .expect("hp_tasks of a non-task");
    sys.app
        .tasks_with_policy(SchedPolicy::Fps)
        .filter(|&j| {
            if j == task {
                return false;
            }
            let other = sys.app.activity(j).as_task().expect("fps filter");
            other.node == spec.node
                && (other.priority > spec.priority
                    || (other.priority == spec.priority && j.index() < task.index()))
        })
        .collect()
}

/// Worst-case local response time (from its own arrival) of one FPS
/// task, given the node availability and the current jitter estimates of
/// all activities.
///
/// Returns `None` when the busy window exceeds `limit` — the task is
/// then considered to diverge (unschedulable on this configuration) and
/// the caller substitutes the divergence cap.
#[must_use]
pub fn fps_local_response<'a>(
    sys: impl Into<SystemView<'a>>,
    avail: &Availability,
    task: ActivityId,
    jitter: &[Time],
    limit: Time,
) -> Option<Time> {
    let sys = sys.into();
    let hp = hp_tasks(sys, task);
    fps_local_response_with(sys, avail, task, &hp, jitter, limit)
}

/// [`fps_local_response`] with the higher-priority set precomputed — the
/// set depends only on the application, so session-style callers derive
/// it once and reuse it across every candidate evaluation.
pub(crate) fn fps_local_response_with(
    sys: SystemView<'_>,
    avail: &Availability,
    task: ActivityId,
    hp: &[ActivityId],
    jitter: &[Time],
    limit: Time,
) -> Option<Time> {
    let spec = sys.app.activity(task).as_task().expect("fps task");
    debug_assert_eq!(spec.policy, SchedPolicy::Fps);
    let mut worst = Time::ZERO;
    for &s in avail.critical_instants() {
        let r = busy_window(sys, avail, spec.wcet, hp, jitter, s, limit)?;
        worst = worst.max(r);
    }
    Some(worst)
}

/// Fixed point of the busy window started at candidate instant `s`.
fn busy_window(
    sys: SystemView<'_>,
    avail: &Availability,
    own_wcet: Time,
    hp: &[ActivityId],
    jitter: &[Time],
    s: Time,
    limit: Time,
) -> Option<Time> {
    let mut t = own_wcet;
    loop {
        let mut demand = own_wcet;
        for &j in hp {
            let spec = sys.app.activity(j).as_task().expect("hp task");
            let tj = sys.app.period_of(j);
            let arrivals = (t + jitter[j.index()]).clamp_non_negative().div_ceil(tj);
            demand += spec.wcet * arrivals;
        }
        let completion = avail.advance(s, demand, s + limit)?;
        let t_next = completion - s;
        if t_next > limit {
            return None;
        }
        if t_next <= t {
            return Some(t_next);
        }
        t = t_next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexray_model::*;

    /// `n` FPS tasks on node 0 with given (wcet µs, priority), period 100.
    fn fps_system(specs: &[(f64, u32)]) -> (System, Vec<ActivityId>) {
        let mut app = Application::new();
        let g = app.add_graph("g", Time::from_us(100.0), Time::from_us(100.0));
        let ids: Vec<ActivityId> = specs
            .iter()
            .enumerate()
            .map(|(i, &(c, p))| {
                app.add_task(
                    g,
                    &format!("t{i}"),
                    NodeId::new(0),
                    Time::from_us(c),
                    SchedPolicy::Fps,
                    p,
                )
            })
            .collect();
        let bus = BusConfig::new(PhyParams::unit());
        let sys = System::validated(Platform::with_nodes(1), app, bus).expect("valid");
        (sys, ids)
    }

    #[test]
    fn hp_set_orders_by_priority_then_id() {
        let (sys, ids) = fps_system(&[(1.0, 5), (1.0, 7), (1.0, 5)]);
        assert_eq!(hp_tasks(&sys, ids[0]), vec![ids[1]]);
        // equal priority: lower id wins
        assert_eq!(hp_tasks(&sys, ids[2]), vec![ids[0], ids[1]]);
        assert!(hp_tasks(&sys, ids[1]).is_empty());
    }

    #[test]
    fn idle_node_response_is_sum_of_hp_and_own() {
        let (sys, ids) = fps_system(&[(10.0, 9), (20.0, 5)]);
        let avail = Availability::idle(Time::from_us(100.0));
        let jitter = vec![Time::ZERO; 2];
        let limit = Time::from_us(1000.0);
        assert_eq!(
            fps_local_response(&sys, &avail, ids[0], &jitter, limit),
            Some(Time::from_us(10.0))
        );
        assert_eq!(
            fps_local_response(&sys, &avail, ids[1], &jitter, limit),
            Some(Time::from_us(30.0))
        );
    }

    #[test]
    fn scs_windows_push_fps_work_out() {
        let (sys, ids) = fps_system(&[(10.0, 1)]);
        // busy [0, 50) every 100µs: the worst start is 0
        let avail = Availability::new(
            Time::from_us(100.0),
            vec![(Time::ZERO, Time::from_us(50.0))],
        );
        let jitter = vec![Time::ZERO; 1];
        let r = fps_local_response(&sys, &avail, ids[0], &jitter, Time::from_us(1000.0))
            .expect("converges");
        assert_eq!(r, Time::from_us(60.0)); // waits out the window, then 10
    }

    #[test]
    fn jitter_of_hp_task_adds_interference() {
        let (sys, ids) = fps_system(&[(10.0, 9), (50.0, 5)]);
        let avail = Availability::idle(Time::from_us(100.0));
        let limit = Time::from_us(10_000.0);
        let no_jitter = vec![Time::ZERO; 2];
        let r0 = fps_local_response(&sys, &avail, ids[1], &no_jitter, limit).expect("ok");
        // jitter 95 on the hp task squeezes a second arrival into the window
        let jitter = vec![Time::from_us(95.0), Time::ZERO];
        let r1 = fps_local_response(&sys, &avail, ids[1], &jitter, limit).expect("ok");
        assert_eq!(r0, Time::from_us(60.0));
        assert_eq!(r1, Time::from_us(70.0));
    }

    #[test]
    fn saturated_node_diverges() {
        let (sys, ids) = fps_system(&[(10.0, 1)]);
        let avail = Availability::new(
            Time::from_us(100.0),
            vec![(Time::ZERO, Time::from_us(100.0))],
        );
        let jitter = vec![Time::ZERO; 1];
        assert_eq!(
            fps_local_response(&sys, &avail, ids[0], &jitter, Time::from_us(1000.0)),
            None
        );
    }

    #[test]
    fn overloaded_hp_interference_diverges() {
        // hp task demands 100% of the CPU: lower task never completes.
        let (sys, ids) = fps_system(&[(100.0, 9), (1.0, 1)]);
        let avail = Availability::idle(Time::from_us(100.0));
        let jitter = vec![Time::ZERO; 2];
        assert_eq!(
            fps_local_response(&sys, &avail, ids[1], &jitter, Time::from_us(5000.0)),
            None
        );
    }
}
