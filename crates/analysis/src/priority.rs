//! Modified critical-path priority for the list scheduler.
//!
//! The list scheduler of Fig. 2 selects among ready activities with "a
//! modified critical path metric" (ref [12] of the paper): an activity is
//! the more urgent the longer the remaining path from it to the graph
//! sink, relative to how little laxity the graph deadline leaves.

use flexray_model::{ActivityId, SystemView, Time};

/// Longest path (sum of durations) from each activity to any sink of its
/// graph, including the activity's own duration.
///
/// Message durations use the current bus configuration (Eq. (1)), so the
/// priorities adapt to the configuration under evaluation.
///
/// # Panics
///
/// Panics if the application contains a cycle (validated systems never
/// do).
#[must_use]
pub fn longest_path_to_sink<'a>(sys: impl Into<SystemView<'a>>) -> Vec<Time> {
    let sys = sys.into();
    let order = sys
        .app
        .topological_order()
        .expect("validated application is acyclic");
    let mut lp = vec![Time::ZERO; sys.app.activities().len()];
    for &id in order.iter().rev() {
        let own = sys.duration_of(id);
        let tail = sys
            .app
            .succs(id)
            .iter()
            .map(|&s| lp[s.index()])
            .max()
            .unwrap_or(Time::ZERO);
        lp[id.index()] = own + tail;
    }
    lp
}

/// Longest path from any source of the graph **to** each activity,
/// including the activity's own duration.
///
/// This is `LP_m` in the criticality metric of Eq. (4)
/// (`CP_m = D_m − LP_m`): the earliest an activity can possibly finish.
#[must_use]
pub fn longest_path_from_source<'a>(sys: impl Into<SystemView<'a>>) -> Vec<Time> {
    let sys = sys.into();
    let order = sys
        .app
        .topological_order()
        .expect("validated application is acyclic");
    let mut lp = vec![Time::ZERO; sys.app.activities().len()];
    for &id in &order {
        let own = sys.duration_of(id);
        let head = sys
            .app
            .preds(id)
            .iter()
            .map(|&p| lp[p.index()])
            .max()
            .unwrap_or(Time::ZERO);
        lp[id.index()] = head + own;
    }
    lp
}

/// Criticality `CP_m = D_m − LP_m` of Eq. (4) for every activity: the
/// slack between the effective deadline and the earliest possible
/// completion. Smaller values mean higher criticality.
#[must_use]
pub fn criticality<'a>(sys: impl Into<SystemView<'a>>) -> Vec<Time> {
    let sys = sys.into();
    let lp = longest_path_from_source(sys);
    sys.app
        .ids()
        .map(|id| sys.app.deadline_of(id) - lp[id.index()])
        .collect()
}

/// Comparison key for the ready list: higher urgency first.
///
/// Activities with a longer remaining critical path are scheduled first;
/// ties break on smaller id for determinism.
#[must_use]
pub fn ready_list_order(lp_to_sink: &[Time], a: ActivityId, b: ActivityId) -> core::cmp::Ordering {
    lp_to_sink[b.index()]
        .cmp(&lp_to_sink[a.index()])
        .then(a.index().cmp(&b.index()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexray_model::*;

    fn chain_system() -> (System, ActivityId, ActivityId, ActivityId) {
        let mut app = Application::new();
        let g = app.add_graph("g", Time::from_us(1000.0), Time::from_us(100.0));
        let a = app.add_task(
            g,
            "a",
            NodeId::new(0),
            Time::from_us(10.0),
            SchedPolicy::Scs,
            0,
        );
        let b = app.add_task(
            g,
            "b",
            NodeId::new(1),
            Time::from_us(20.0),
            SchedPolicy::Scs,
            0,
        );
        let m = app.add_message(g, "m", 4, MessageClass::Static, 0);
        app.connect(a, m, b).expect("edges");
        let mut bus = BusConfig::new(PhyParams::unit());
        bus.static_slot_len = Time::from_us(4.0);
        bus.static_slot_owners = vec![NodeId::new(0), NodeId::new(1)];
        let sys = System::validated(Platform::with_nodes(2), app, bus).expect("valid");
        (sys, a, b, m)
    }

    #[test]
    fn lp_to_sink_accumulates_chain() {
        let (sys, a, b, m) = chain_system();
        let lp = longest_path_to_sink(&sys);
        let cm = sys.comm_time(m);
        assert_eq!(lp[b.index()], Time::from_us(20.0));
        assert_eq!(lp[m.index()], Time::from_us(20.0) + cm);
        assert_eq!(lp[a.index()], Time::from_us(30.0) + cm);
    }

    #[test]
    fn lp_from_source_accumulates_chain() {
        let (sys, a, b, m) = chain_system();
        let lp = longest_path_from_source(&sys);
        let cm = sys.comm_time(m);
        assert_eq!(lp[a.index()], Time::from_us(10.0));
        assert_eq!(lp[m.index()], Time::from_us(10.0) + cm);
        assert_eq!(lp[b.index()], Time::from_us(30.0) + cm);
    }

    #[test]
    fn criticality_is_deadline_minus_lp() {
        let (sys, a, _, _) = chain_system();
        let cp = criticality(&sys);
        assert_eq!(cp[a.index()], Time::from_us(90.0));
    }

    #[test]
    fn ready_order_prefers_long_path() {
        let (sys, a, b, _) = chain_system();
        let lp = longest_path_to_sink(&sys);
        assert_eq!(ready_list_order(&lp, a, b), core::cmp::Ordering::Less);
    }

    #[test]
    fn ready_order_breaks_ties_by_id() {
        let lp = vec![Time::from_us(5.0), Time::from_us(5.0)];
        assert_eq!(
            ready_list_order(&lp, ActivityId::new(0), ActivityId::new(1)),
            core::cmp::Ordering::Less
        );
    }
}
