//! The static schedule table produced by the list scheduler.
//!
//! The table fixes, over one hyperperiod, the start time of every SCS
//! task instance on its node and the (cycle, slot, in-frame offset) of
//! every ST message instance on the bus — the `schedule table` each CPU
//! holds in Fig. 1 of the paper.

use flexray_model::{ActivityId, NodeId, SlotId, Time};

/// One scheduled instance of an SCS task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskEntry {
    /// The task.
    pub activity: ActivityId,
    /// Instance number `k` within the hyperperiod (activation `k·T`).
    pub instance: i64,
    /// Node executing the instance.
    pub node: NodeId,
    /// Absolute start time within the table.
    pub start: Time,
    /// Absolute completion time (`start + wcet`, non-preemptive).
    pub finish: Time,
}

/// One scheduled instance of an ST message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageEntry {
    /// The message.
    pub activity: ActivityId,
    /// Instance number `k` within the hyperperiod.
    pub instance: i64,
    /// Bus cycle (0-based) in which the frame is sent.
    pub cycle: i64,
    /// Static slot carrying the frame.
    pub slot: SlotId,
    /// Transmission start within the table (slot start + packing offset).
    pub tx_start: Time,
    /// End of the transmission itself.
    pub tx_end: Time,
    /// End of the carrying slot — the instant the receiver CHI exposes
    /// the data (slot-end delivery, matching Fig. 3 of the paper).
    pub slot_end: Time,
}

/// The complete static schedule over one hyperperiod.
#[derive(Debug, Clone, Default)]
pub struct ScheduleTable {
    horizon: Time,
    tasks: Vec<TaskEntry>,
    messages: Vec<MessageEntry>,
    overflowed: Vec<ActivityId>,
}

impl ScheduleTable {
    /// Creates an empty table covering `horizon`.
    #[must_use]
    pub fn new(horizon: Time) -> Self {
        ScheduleTable {
            horizon,
            tasks: Vec::new(),
            messages: Vec::new(),
            overflowed: Vec::new(),
        }
    }

    /// The table length (application hyperperiod).
    #[must_use]
    pub fn horizon(&self) -> Time {
        self.horizon
    }

    /// Clears all entries and re-targets the table at `horizon`, keeping
    /// the allocations for reuse across builds.
    pub(crate) fn reset(&mut self, horizon: Time) {
        self.horizon = horizon;
        self.tasks.clear();
        self.messages.clear();
        self.overflowed.clear();
    }

    /// All SCS task entries in scheduling order.
    #[must_use]
    pub fn tasks(&self) -> &[TaskEntry] {
        &self.tasks
    }

    /// All ST message entries in scheduling order.
    #[must_use]
    pub fn messages(&self) -> &[MessageEntry] {
        &self.messages
    }

    /// Activities that could not be placed inside the horizon (their
    /// entries carry synthetic finish times past the horizon so the cost
    /// function still gets a graded value).
    #[must_use]
    pub fn overflowed(&self) -> &[ActivityId] {
        &self.overflowed
    }

    /// `true` if every instance fitted inside the horizon.
    #[must_use]
    pub fn is_feasible(&self) -> bool {
        self.overflowed.is_empty()
    }

    /// Records a task instance.
    pub fn push_task(&mut self, entry: TaskEntry) {
        self.tasks.push(entry);
    }

    /// Records a message instance.
    pub fn push_message(&mut self, entry: MessageEntry) {
        self.messages.push(entry);
    }

    /// Marks an activity as not placeable within the horizon.
    pub fn mark_overflow(&mut self, activity: ActivityId) {
        if !self.overflowed.contains(&activity) {
            self.overflowed.push(activity);
        }
    }

    /// Completion time of a specific activity instance: task finish or
    /// message slot end.
    #[must_use]
    pub fn finish_of(&self, activity: ActivityId, instance: i64) -> Option<Time> {
        self.tasks
            .iter()
            .find(|e| e.activity == activity && e.instance == instance)
            .map(|e| e.finish)
            .or_else(|| {
                self.messages
                    .iter()
                    .find(|e| e.activity == activity && e.instance == instance)
                    .map(|e| e.slot_end)
            })
    }

    /// Worst response time of a time-triggered activity over all its
    /// instances: `max_k (finish_k − k·period)`.
    #[must_use]
    pub fn response_of(&self, activity: ActivityId, period: Time) -> Option<Time> {
        let mut worst: Option<Time> = None;
        for e in self.tasks.iter().filter(|e| e.activity == activity) {
            let r = e.finish - period * e.instance;
            worst = Some(worst.map_or(r, |w: Time| w.max(r)));
        }
        for e in self.messages.iter().filter(|e| e.activity == activity) {
            let r = e.slot_end - period * e.instance;
            worst = Some(worst.map_or(r, |w: Time| w.max(r)));
        }
        worst
    }

    /// The CPU busy windows of one node (sorted, non-overlapping):
    /// the SCS task executions scheduled on it.
    #[must_use]
    pub fn busy_windows(&self, node: NodeId) -> Vec<(Time, Time)> {
        let mut windows: Vec<(Time, Time)> = self
            .tasks
            .iter()
            .filter(|e| e.node == node && e.start < self.horizon)
            .map(|e| (e.start, e.finish))
            .collect();
        windows.sort_unstable();
        // merge touching/overlapping windows
        let mut merged: Vec<(Time, Time)> = Vec::with_capacity(windows.len());
        for (s, f) in windows {
            match merged.last_mut() {
                Some((_, last_f)) if s <= *last_f => *last_f = (*last_f).max(f),
                _ => merged.push((s, f)),
            }
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(act: usize, inst: i64, node: usize, start: f64, finish: f64) -> TaskEntry {
        TaskEntry {
            activity: ActivityId::new(act),
            instance: inst,
            node: NodeId::new(node),
            start: Time::from_us(start),
            finish: Time::from_us(finish),
        }
    }

    #[test]
    fn finish_and_response() {
        let mut t = ScheduleTable::new(Time::from_us(100.0));
        t.push_task(entry(0, 0, 0, 0.0, 10.0));
        t.push_task(entry(0, 1, 0, 55.0, 65.0));
        assert_eq!(
            t.finish_of(ActivityId::new(0), 1),
            Some(Time::from_us(65.0))
        );
        // responses: 10 and 65-50=15
        assert_eq!(
            t.response_of(ActivityId::new(0), Time::from_us(50.0)),
            Some(Time::from_us(15.0))
        );
        assert_eq!(t.response_of(ActivityId::new(9), Time::from_us(50.0)), None);
    }

    #[test]
    fn message_entries_report_slot_end() {
        let mut t = ScheduleTable::new(Time::from_us(100.0));
        t.push_message(MessageEntry {
            activity: ActivityId::new(2),
            instance: 0,
            cycle: 1,
            slot: SlotId::new(2),
            tx_start: Time::from_us(15.0),
            tx_end: Time::from_us(17.0),
            slot_end: Time::from_us(20.0),
        });
        assert_eq!(
            t.finish_of(ActivityId::new(2), 0),
            Some(Time::from_us(20.0))
        );
        assert_eq!(
            t.response_of(ActivityId::new(2), Time::from_us(100.0)),
            Some(Time::from_us(20.0))
        );
    }

    #[test]
    fn busy_windows_merge_and_sort() {
        let mut t = ScheduleTable::new(Time::from_us(100.0));
        t.push_task(entry(0, 0, 0, 20.0, 30.0));
        t.push_task(entry(1, 0, 0, 0.0, 10.0));
        t.push_task(entry(2, 0, 0, 10.0, 15.0)); // touches previous
        t.push_task(entry(3, 0, 1, 0.0, 50.0)); // other node
        let w = t.busy_windows(NodeId::new(0));
        assert_eq!(
            w,
            vec![
                (Time::ZERO, Time::from_us(15.0)),
                (Time::from_us(20.0), Time::from_us(30.0)),
            ]
        );
    }

    #[test]
    fn overflow_tracking() {
        let mut t = ScheduleTable::new(Time::from_us(10.0));
        assert!(t.is_feasible());
        t.mark_overflow(ActivityId::new(4));
        t.mark_overflow(ActivityId::new(4));
        assert_eq!(t.overflowed().len(), 1);
        assert!(!t.is_feasible());
    }

    #[test]
    fn windows_exclude_entries_past_horizon() {
        let mut t = ScheduleTable::new(Time::from_us(10.0));
        t.push_task(entry(0, 0, 0, 12.0, 14.0)); // synthetic overflow entry
        assert!(t.busy_windows(NodeId::new(0)).is_empty());
    }
}
