//! CPU availability: the slack the static schedule leaves to FPS tasks.
//!
//! FPS tasks "can only be executed in the slack of the SCS schedule
//! table" (Section 2). This module turns the busy windows of a node into
//! a queryable availability function that repeats with the hyperperiod.

use flexray_model::Time;

/// The periodic availability of one node: busy windows over one
/// hyperperiod, repeating forever.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Availability {
    horizon: Time,
    /// Sorted, disjoint busy windows within `[0, horizon)`.
    windows: Vec<(Time, Time)>,
    /// Precomputed [`Availability::critical_instants`] — consumed once
    /// per busy-window analysis, so derived eagerly instead of being
    /// re-sorted on every response-time query.
    instants: Vec<Time>,
}

impl Availability {
    /// Builds the availability from merged busy windows (as produced by
    /// [`ScheduleTable::busy_windows`](crate::ScheduleTable::busy_windows)).
    ///
    /// # Panics
    ///
    /// Panics if the horizon is not positive or a window exceeds it.
    #[must_use]
    pub fn new(horizon: Time, windows: Vec<(Time, Time)>) -> Self {
        assert!(horizon > Time::ZERO, "horizon must be positive");
        for &(s, f) in &windows {
            assert!(
                Time::ZERO <= s && s <= f && f <= horizon,
                "window out of range"
            );
        }
        debug_assert!(
            windows.windows(2).all(|w| w[0].1 <= w[1].0),
            "windows sorted"
        );
        let mut instants = vec![Time::ZERO];
        for &(s, f) in &windows {
            instants.push(s);
            if f < horizon {
                instants.push(f);
            }
        }
        instants.sort_unstable();
        instants.dedup();
        Availability {
            horizon,
            windows,
            instants,
        }
    }

    /// A node with no static load.
    #[must_use]
    pub fn idle(horizon: Time) -> Self {
        Availability::new(horizon, Vec::new())
    }

    /// The repeating period of the availability pattern.
    #[must_use]
    pub fn horizon(&self) -> Time {
        self.horizon
    }

    /// Total busy time per hyperperiod.
    #[must_use]
    pub fn busy_per_period(&self) -> Time {
        self.windows.iter().map(|&(s, f)| f - s).sum()
    }

    /// Total free time per hyperperiod.
    #[must_use]
    pub fn free_per_period(&self) -> Time {
        self.horizon - self.busy_per_period()
    }

    /// Whether the instant `t` (taken modulo the horizon) is free.
    #[must_use]
    pub fn is_free(&self, t: Time) -> bool {
        let t = t % self.horizon;
        let t = if t.is_negative() { t + self.horizon } else { t };
        !self.windows.iter().any(|&(s, f)| s <= t && t < f)
    }

    /// Earliest start `s ≥ from` of a contiguous free interval of length
    /// `len` that ends no later than `deadline_abs` (both absolute times
    /// within the first hyperperiod; used for non-preemptive SCS
    /// placement).
    ///
    /// Returns `None` if no such gap exists within `[from, deadline_abs]`.
    #[must_use]
    pub fn first_gap(&self, from: Time, len: Time, deadline_abs: Time) -> Option<Time> {
        let mut candidate = from.max(Time::ZERO);
        for &(s, f) in &self.windows {
            if f <= candidate {
                continue;
            }
            if candidate + len <= s {
                break; // fits before this window
            }
            candidate = candidate.max(f);
        }
        (candidate + len <= deadline_abs).then_some(candidate)
    }

    /// Completion time of `demand` units of execution started (and
    /// preemptable) at absolute time `start`, walking the periodic free
    /// time. Returns `None` if completion would exceed `limit` (divergence
    /// guard — e.g. a node whose table leaves no slack).
    #[must_use]
    pub fn advance(&self, start: Time, demand: Time, limit: Time) -> Option<Time> {
        if demand <= Time::ZERO {
            return Some(start);
        }
        let mut remaining = demand;
        let mut t = start;
        loop {
            if t > limit {
                return None;
            }
            let period_index = t.div_floor(self.horizon);
            let base = self.horizon * period_index;
            let local = t - base;
            // Find the free stretch at or after `local` within this period.
            let mut free_from = local;
            let mut free_until = self.horizon;
            let mut inside_busy = false;
            for &(s, f) in &self.windows {
                if local >= s && local < f {
                    // inside a busy window: skip to its end
                    free_from = f;
                    inside_busy = true;
                }
                if !inside_busy && s >= free_from {
                    free_until = s;
                    break;
                }
                if inside_busy && s > free_from {
                    free_until = s;
                    break;
                }
            }
            if inside_busy {
                t = base + free_from;
                if t > limit {
                    return None;
                }
                // re-evaluate the stretch from the window end
                continue;
            }
            let available = free_until - free_from;
            if available >= remaining {
                return Some(base + free_from + remaining);
            }
            remaining -= available;
            t = base + free_until;
            // step over the busy window that begins at free_until (or wrap)
            if free_until == self.horizon {
                // wrapped to next period start
                continue;
            }
            let (_, f) = self
                .windows
                .iter()
                .find(|&&(s, _)| s == free_until)
                .copied()
                .expect("free stretch ends at a busy window");
            t = base + f;
        }
    }

    /// Amount of free (non-SCS) time in the absolute interval `[a, b)`,
    /// walking the periodic pattern.
    ///
    /// # Panics
    ///
    /// Panics if `b < a`.
    #[must_use]
    pub fn free_between(&self, a: Time, b: Time) -> Time {
        assert!(b >= a, "interval end before start");
        let mut free = Time::ZERO;
        let mut period_index = a.div_floor(self.horizon);
        loop {
            let base = self.horizon * period_index;
            let lo = a.max(base);
            let hi = b.min(base + self.horizon);
            if lo >= b {
                break;
            }
            let mut busy = Time::ZERO;
            for &(s, f) in &self.windows {
                let ws = base + s;
                let wf = base + f;
                let os = ws.max(lo);
                let of = wf.min(hi);
                if of > os {
                    busy += of - os;
                }
            }
            free += (hi - lo) - busy;
            period_index += 1;
        }
        free
    }

    /// Candidate critical instants for response-time analysis: the start
    /// of the table plus every busy-window start and end (the points where
    /// the slack density changes).
    #[must_use]
    pub fn critical_instants(&self) -> &[Time] {
        &self.instants
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: f64) -> Time {
        Time::from_us(v)
    }

    fn avail() -> Availability {
        // horizon 100, busy [10,30) and [50,60)
        Availability::new(us(100.0), vec![(us(10.0), us(30.0)), (us(50.0), us(60.0))])
    }

    #[test]
    fn budget_accounting() {
        let a = avail();
        assert_eq!(a.busy_per_period(), us(30.0));
        assert_eq!(a.free_per_period(), us(70.0));
    }

    #[test]
    fn is_free_wraps_periodically() {
        let a = avail();
        assert!(a.is_free(us(5.0)));
        assert!(!a.is_free(us(15.0)));
        assert!(!a.is_free(us(115.0)));
        assert!(a.is_free(us(135.0)));
    }

    #[test]
    fn first_gap_respects_windows() {
        let a = avail();
        // a 10-unit gap from 0 fits at 0
        assert_eq!(a.first_gap(us(0.0), us(10.0), us(100.0)), Some(us(0.0)));
        // an 11-unit gap from 0 must wait until 30
        assert_eq!(a.first_gap(us(0.0), us(11.0), us(100.0)), Some(us(30.0)));
        // a gap starting inside a window starts at its end
        assert_eq!(a.first_gap(us(12.0), us(5.0), us(100.0)), Some(us(30.0)));
        // too long to fit before the deadline
        assert_eq!(a.first_gap(us(60.0), us(41.0), us(100.0)), None);
    }

    #[test]
    fn advance_consumes_free_time() {
        let a = avail();
        // from 0: 10 free until 10, then busy to 30
        assert_eq!(a.advance(us(0.0), us(5.0), us(1000.0)), Some(us(5.0)));
        assert_eq!(a.advance(us(0.0), us(10.0), us(1000.0)), Some(us(10.0)));
        assert_eq!(a.advance(us(0.0), us(11.0), us(1000.0)), Some(us(31.0)));
        // starting inside a busy window
        assert_eq!(a.advance(us(15.0), us(2.0), us(1000.0)), Some(us(32.0)));
        // crossing the second window
        assert_eq!(a.advance(us(30.0), us(25.0), us(1000.0)), Some(us(65.0)));
    }

    #[test]
    fn advance_wraps_to_next_period() {
        let a = avail();
        // 70 free per period; ask for 100 starting at 0:
        // 70 in period one is done at 100; 30 more in period two:
        // free [100,110) gives 10, busy to 130, free [130,150) gives 20 -> 150
        assert_eq!(a.advance(us(0.0), us(100.0), us(10_000.0)), Some(us(150.0)));
    }

    #[test]
    fn advance_diverges_on_saturated_node() {
        let full = Availability::new(us(10.0), vec![(us(0.0), us(10.0))]);
        assert_eq!(full.advance(us(0.0), us(1.0), us(1000.0)), None);
    }

    #[test]
    fn advance_zero_demand_is_identity() {
        let a = avail();
        assert_eq!(a.advance(us(42.0), Time::ZERO, us(100.0)), Some(us(42.0)));
    }

    #[test]
    fn critical_instants_cover_boundaries() {
        let a = avail();
        assert_eq!(
            a.critical_instants(),
            vec![us(0.0), us(10.0), us(30.0), us(50.0), us(60.0)]
        );
    }

    #[test]
    fn free_between_counts_slack() {
        let a = avail();
        assert_eq!(a.free_between(us(0.0), us(10.0)), us(10.0));
        assert_eq!(a.free_between(us(0.0), us(30.0)), us(10.0));
        // [5,55): busy [10,30) and [50,55) -> 25 busy, 25 free
        assert_eq!(a.free_between(us(5.0), us(55.0)), us(25.0));
        // across the period boundary: [60,100) free (40) + [100,110) free
        assert_eq!(a.free_between(us(60.0), us(110.0)), us(50.0));
        assert_eq!(a.free_between(us(15.0), us(15.0)), Time::ZERO);
    }

    #[test]
    fn idle_node_is_trivially_free() {
        let a = Availability::idle(us(10.0));
        assert_eq!(a.advance(us(3.0), us(100.0), us(10_000.0)), Some(us(103.0)));
        assert!(a.is_free(us(7.0)));
        assert_eq!(a.critical_instants(), vec![Time::ZERO]);
    }
}
