//! Reusable analysis session: the holistic fixed point with all of its
//! scratch state hoisted out of the per-call path.
//!
//! Every optimiser in the paper (BBC Fig. 5, OBC Fig. 6, the SA
//! baseline) spends essentially all of its time calling the holistic
//! analysis on candidate bus configurations over one fixed
//! platform/application pair. A plain [`analyse`](crate::analyse) call
//! re-derives the application facts (hyperperiod, topological order,
//! list-scheduler priorities and job order) and re-allocates every
//! buffer (schedule table, response/jitter vectors, availabilities) from
//! scratch. An [`AnalysisSession`] owns all of that across calls:
//!
//! * [`AnalysisSession::analyse_into`] analyses a *borrowed* candidate
//!   [`BusConfig`] into the session buffers — no `System` clone, no
//!   fresh allocations on the steady state;
//! * [`AnalysisSession::reanalyse_dyn_length`] re-analyses the last
//!   candidate with only the dynamic-segment length changed — the exact
//!   shape of the DYN-length sweeps — without touching the rest of the
//!   configuration;
//! * when the application has no static messages and no time-triggered
//!   activity depends on an event-triggered one, the static schedule is
//!   provably independent of the bus configuration (message placement is
//!   the only point where the scheduler consults `gdCycle`), so the
//!   session caches the schedule table, the per-node availabilities and
//!   the time-triggered responses outright and only re-runs the
//!   event-triggered fixed point per candidate.
//!
//! Results are bit-identical to [`analyse`](crate::analyse): the session
//! only skips work it can prove is input-independent, never approximates.

use crate::availability::Availability;
use crate::cost::{cost_of, Cost};
use crate::dyn_msg::{dyn_delay_with, hp_messages, lf_messages, DynScratch};
use crate::fps::{fps_local_response_with, hp_tasks};
use crate::holistic::{Analysis, AnalysisConfig};
use crate::scheduler::{ScheduleBuilder, ScsPlacement};
use crate::table::ScheduleTable;
use flexray_model::{
    ActivityId, Application, BusConfig, FrameId, MessageClass, ModelError, PhyParams, Platform,
    SchedPolicy, SystemView, Time,
};
use std::collections::BTreeMap;

/// Application-derived facts that no candidate bus can change.
#[derive(Debug)]
struct Prep {
    horizon: Time,
    max_deadline: Time,
    topo: Vec<ActivityId>,
    /// Does any time-triggered activity depend on an event-triggered
    /// one? Decides whether the outer (table ↔ ET) loop iterates.
    tt_needs_et: bool,
    /// With no static messages and no TT←ET dependency the static
    /// schedule cannot depend on the bus configuration (only the
    /// physical layer, through durations).
    static_is_bus_independent: bool,
    /// Higher-priority set of every FPS task (`hp(i)` of the busy-window
    /// analysis), indexed by activity; empty for everything else.
    hp_tasks: Vec<Vec<ActivityId>>,
}

/// The complete mutable state of one holistic analysis, reusable across
/// calls. [`analyse`](crate::analyse) runs a fresh one per call; an
/// [`AnalysisSession`] keeps it alive.
#[derive(Debug)]
pub(crate) struct SessionState {
    prep: Option<Prep>,
    builder: ScheduleBuilder,
    pub(crate) table: ScheduleTable,
    pub(crate) responses: Vec<Time>,
    pub(crate) diverged: Vec<ActivityId>,
    pub(crate) cost: Cost,
    earliest: Vec<Time>,
    jitter: Vec<Time>,
    diverged_next: Vec<ActivityId>,
    avails: Vec<Availability>,
    /// Key of the cached static side (table, availabilities,
    /// `responses_init`): set only when `static_is_bus_independent`.
    static_key: Option<(PhyParams, ScsPlacement)>,
    /// Snapshot of the response vector right after the (cached) static
    /// build: durations with TT table responses applied.
    responses_init: Vec<Time>,
    /// Frame-identifier assignment the DYN interference sets were
    /// derived for.
    dyn_sets_key: Option<BTreeMap<ActivityId, FrameId>>,
    /// Per-activity `(hp(m), lf(m))` of the DYN-message analysis; empty
    /// for non-messages.
    dyn_sets: Vec<(Vec<ActivityId>, Vec<ActivityId>)>,
    /// Per-activity memo of the expensive `local` response: an FPS
    /// task's busy-window result is a pure function of its node
    /// availability and the jitter of its `hp` set; a DYN message's
    /// delay is a pure function of the bus and the jitter of
    /// `hp(m) ∪ lf(m)`. Unchanged inputs skip the fixed-point body —
    /// across inner iterations, and across candidates while the cached
    /// static side stays valid.
    et_memo: Vec<EtMemo>,
    /// Bumped whenever the availabilities are rebuilt (invalidates FPS
    /// memos).
    avail_stamp: u64,
    /// Bumped on every analysed candidate (invalidates DYN memos, whose
    /// delay depends on the bus configuration itself).
    bus_stamp: u64,
    /// Pool/packing/DP scratch of the DYN busy-window fixed point,
    /// reused across messages, fixed-point iterations and candidates so
    /// DYN-length sweeps run with zero steady-state allocation.
    dyn_scratch: DynScratch,
    /// Generation of the scratch's per-message pool skeletons: bumped
    /// whenever the frame assignment or the physical layer changes (the
    /// only inputs a skeleton depends on besides the application).
    skel_gen: u64,
    /// Physical layer the current skeleton generation was derived for.
    skel_phy: Option<PhyParams>,
}

/// One entry of the event-triggered response memo.
#[derive(Debug, Clone, Default)]
struct EtMemo {
    /// `avail_stamp` (tasks) or `bus_stamp` (messages) at compute time.
    stamp: u64,
    /// Jitter of the interference set at compute time.
    key: Vec<Time>,
    /// The memoised `local` response (`None` = diverged).
    result: Option<Time>,
    /// False until first computed.
    valid: bool,
}

impl Default for SessionState {
    fn default() -> Self {
        SessionState {
            prep: None,
            builder: ScheduleBuilder::default(),
            table: ScheduleTable::default(),
            responses: Vec::new(),
            diverged: Vec::new(),
            cost: Cost::infeasible(),
            earliest: Vec::new(),
            jitter: Vec::new(),
            diverged_next: Vec::new(),
            avails: Vec::new(),
            static_key: None,
            responses_init: Vec::new(),
            dyn_sets_key: None,
            dyn_sets: Vec::new(),
            et_memo: Vec::new(),
            avail_stamp: 0,
            bus_stamp: 0,
            dyn_scratch: DynScratch::default(),
            skel_gen: 1,
            skel_phy: None,
        }
    }
}

impl EtMemo {
    /// `true` when the memoised result was computed under `stamp` with
    /// the same jitter over the (concatenated) interference sets.
    fn hit(&self, stamp: u64, set_a: &[ActivityId], set_b: &[ActivityId], jitter: &[Time]) -> bool {
        if !self.valid || self.stamp != stamp || self.key.len() != set_a.len() + set_b.len() {
            return false;
        }
        set_a
            .iter()
            .chain(set_b)
            .zip(&self.key)
            .all(|(&j, &k)| jitter[j.index()] == k)
    }

    /// Records `result` for the current stamp and jitter snapshot.
    fn store(
        &mut self,
        stamp: u64,
        set_a: &[ActivityId],
        set_b: &[ActivityId],
        jitter: &[Time],
        result: Option<Time>,
    ) {
        self.key.clear();
        self.key
            .extend(set_a.iter().chain(set_b).map(|&j| jitter[j.index()]));
        self.stamp = stamp;
        self.result = result;
        self.valid = true;
    }
}

impl SessionState {
    /// Moves the buffers out into an owned [`Analysis`].
    pub(crate) fn into_analysis(self) -> Analysis {
        Analysis {
            responses: self.responses,
            diverged: self.diverged,
            table: self.table,
            cost: self.cost,
        }
    }

    /// Clones the buffers into an owned [`Analysis`].
    pub(crate) fn snapshot(&self) -> Analysis {
        Analysis {
            responses: self.responses.clone(),
            diverged: self.diverged.clone(),
            table: self.table.clone(),
            cost: self.cost,
        }
    }
}

/// Runs the complete holistic analysis of `sys` into `st`, reusing
/// whatever `st` already holds. The algorithm is the one documented on
/// [`analyse`](crate::analyse); see the module docs for what is cached.
pub(crate) fn analyse_core(
    sys: SystemView<'_>,
    cfg: &AnalysisConfig,
    st: &mut SessionState,
) -> Result<(), ModelError> {
    let n = sys.app.activities().len();
    if st.prep.is_none() {
        let horizon = sys.hyperperiod()?;
        let max_deadline = sys
            .app
            .ids()
            .map(|id| sys.app.deadline_of(id))
            .max()
            .unwrap_or(horizon);
        let topo = sys.app.topological_order()?;
        let tt_needs_et = sys.app.ids().any(|id| {
            sys.app.activity(id).is_time_triggered()
                && sys
                    .app
                    .preds(id)
                    .iter()
                    .any(|&p| !sys.app.activity(p).is_time_triggered())
        });
        let has_st_messages = sys
            .app
            .messages_of_class(MessageClass::Static)
            .next()
            .is_some();
        let hp = sys
            .app
            .ids()
            .map(|id| {
                let is_fps = sys
                    .app
                    .activity(id)
                    .as_task()
                    .is_some_and(|t| t.policy == SchedPolicy::Fps);
                if is_fps {
                    hp_tasks(sys, id)
                } else {
                    Vec::new()
                }
            })
            .collect();
        st.prep = Some(Prep {
            horizon,
            max_deadline,
            topo,
            tt_needs_et,
            static_is_bus_independent: !has_st_messages && !tt_needs_et,
            hp_tasks: hp,
        });
    }
    // DYN interference sets depend only on the frame-identifier
    // assignment; refresh them when it changes. The scratch's pool
    // skeletons additionally depend on the physical layer, so their
    // generation moves with either.
    if st.dyn_sets_key.as_ref() != Some(&sys.bus.frame_ids) {
        st.dyn_sets.clear();
        st.dyn_sets.resize(n, (Vec::new(), Vec::new()));
        for m in sys.app.messages_of_class(MessageClass::Dynamic) {
            st.dyn_sets[m.index()] = (hp_messages(sys, m), lf_messages(sys, m));
        }
        st.dyn_sets_key = Some(sys.bus.frame_ids.clone());
        st.skel_gen = st.skel_gen.wrapping_add(1);
    }
    if st.skel_phy != Some(sys.bus.phy) {
        st.skel_phy = Some(sys.bus.phy);
        st.skel_gen = st.skel_gen.wrapping_add(1);
    }
    st.dyn_scratch.set_generation(st.skel_gen);
    // Every analysed candidate may carry a different bus: DYN-message
    // memos (whose delay reads the bus directly) start cold, FPS memos
    // survive for as long as the availabilities they were computed
    // against (see `avail_stamp`).
    st.bus_stamp = st.bus_stamp.wrapping_add(1);
    if st.et_memo.len() != n {
        st.et_memo.clear();
        st.et_memo.resize_with(n, EtMemo::default);
    }
    let prep = st.prep.as_ref().expect("prep just ensured");
    let horizon = prep.horizon;
    let limit = horizon
        .max(prep.max_deadline)
        .saturating_mul(cfg.divergence_factor);
    let tt_needs_et = prep.tt_needs_et;
    let outer_iters = if tt_needs_et { cfg.max_outer_iters } else { 1 };
    let static_cached = prep.static_is_bus_independent
        && st.static_key == Some((sys.bus.phy, cfg.scs_placement))
        && st.responses_init.len() == n;

    // Initial completion bounds: just the durations (skipped when the
    // cached static side already embeds them).
    st.responses.clear();
    if static_cached {
        st.responses.extend_from_slice(&st.responses_init);
    } else {
        st.responses
            .extend(sys.app.ids().map(|id| sys.duration_of(id)));
        st.static_key = None;
    }
    st.diverged.clear();
    if outer_iters == 0 {
        // Degenerate configuration (max_outer_iters = 0 with TT←ET
        // dependencies): no schedule is built, matching the one-shot
        // behaviour of an empty table over the horizon.
        st.table.reset(horizon);
        st.avails.clear();
        st.static_key = None;
    }

    for _outer in 0..outer_iters {
        st.diverged.clear();
        if !static_cached {
            st.builder
                .build_into(sys, &st.responses, cfg.scs_placement, &mut st.table)?;

            // Time-triggered responses straight from the table.
            for id in sys.app.ids() {
                if sys.app.activity(id).is_time_triggered() {
                    let period = sys.app.period_of(id);
                    if let Some(r) = st.table.response_of(id, period) {
                        st.responses[id.index()] = r;
                    }
                }
            }

            // Per-node availability (slack of the static schedule).
            st.avails.clear();
            st.avails.extend(
                sys.platform
                    .nodes()
                    .map(|node| Availability::new(horizon, st.table.busy_windows(node))),
            );
            st.avail_stamp = st.avail_stamp.wrapping_add(1);

            if st.prep.as_ref().expect("prep").static_is_bus_independent {
                st.static_key = Some((sys.bus.phy, cfg.scs_placement));
                st.responses_init.clear();
                st.responses_init.extend_from_slice(&st.responses);
            }
        }

        // Earliest (contention-free) completion of every activity,
        // topologically: time-triggered activities finish exactly at
        // their table time (zero variability); event-triggered ones at
        // earliest-release + duration.
        st.earliest.clear();
        st.earliest.resize(n, Time::ZERO);
        for &id in &st.prep.as_ref().expect("prep").topo {
            let a = sys.app.activity(id);
            let ready = sys
                .app
                .preds(id)
                .iter()
                .map(|&p| st.earliest[p.index()])
                .max()
                .unwrap_or(Time::ZERO)
                .max(a.release);
            st.earliest[id.index()] = if a.is_time_triggered() {
                st.responses[id.index()].max(ready)
            } else {
                ready + sys.duration_of(id)
            };
        }

        // Event-triggered fixed point. Interference uses release
        // *variability* (worst ready − earliest ready), the classical
        // holistic jitter — using the full predecessor response would
        // double-count the chain offsets and blow up with depth.
        st.jitter.clear();
        st.jitter.resize(n, Time::ZERO);
        for _inner in 0..cfg.max_inner_iters {
            for id in sys.app.ids() {
                let a = sys.app.activity(id);
                let worst_ready = sys
                    .app
                    .preds(id)
                    .iter()
                    .map(|&p| st.responses[p.index()])
                    .max()
                    .unwrap_or(Time::ZERO)
                    .max(a.release);
                let earliest_ready = sys
                    .app
                    .preds(id)
                    .iter()
                    .map(|&p| st.earliest[p.index()])
                    .max()
                    .unwrap_or(Time::ZERO)
                    .max(a.release);
                st.jitter[id.index()] = (worst_ready - earliest_ready).clamp_non_negative();
            }
            let mut changed = false;
            st.diverged_next.clear();
            for id in sys.app.ids() {
                let a = sys.app.activity(id);
                if a.is_time_triggered() {
                    continue;
                }
                let worst_ready = sys
                    .app
                    .preds(id)
                    .iter()
                    .map(|&p| st.responses[p.index()])
                    .max()
                    .unwrap_or(Time::ZERO)
                    .max(a.release);
                // The expensive `local` response is a pure function of
                // the memo key (interference-set jitter + stamped
                // environment): recompute only on a changed input.
                let (stamp, set_a, set_b): (u64, &[ActivityId], &[ActivityId]) = match &a.kind {
                    flexray_model::ActivityKind::Task(_) => (
                        st.avail_stamp,
                        &st.prep.as_ref().expect("prep").hp_tasks[id.index()],
                        &[],
                    ),
                    flexray_model::ActivityKind::Message(_) => {
                        let (hp, lf) = &st.dyn_sets[id.index()];
                        (st.bus_stamp, hp, lf)
                    }
                };
                let local = if st.et_memo[id.index()].hit(stamp, set_a, set_b, &st.jitter) {
                    st.et_memo[id.index()].result
                } else {
                    let computed = match &a.kind {
                        flexray_model::ActivityKind::Task(t) => {
                            debug_assert_eq!(t.policy, SchedPolicy::Fps);
                            fps_local_response_with(
                                sys,
                                &st.avails[t.node.index()],
                                id,
                                set_a,
                                &st.jitter,
                                limit,
                            )
                        }
                        flexray_model::ActivityKind::Message(m) => {
                            debug_assert_eq!(m.class, MessageClass::Dynamic);
                            dyn_delay_with(
                                sys,
                                id,
                                set_a,
                                set_b,
                                &st.jitter,
                                cfg.latest_tx,
                                cfg.dyn_mode,
                                limit,
                                &mut st.dyn_scratch,
                            )
                            .map(|w| w + sys.comm_time(id))
                        }
                    };
                    st.et_memo[id.index()].store(stamp, set_a, set_b, &st.jitter, computed);
                    computed
                };
                let r = match local {
                    Some(local) => (worst_ready + local).min(limit),
                    None => {
                        st.diverged_next.push(id);
                        limit
                    }
                };
                if r != st.responses[id.index()] {
                    st.responses[id.index()] = r;
                    changed = true;
                }
            }
            std::mem::swap(&mut st.diverged, &mut st.diverged_next);
            if !changed {
                break;
            }
        }

        if !tt_needs_et {
            break;
        }
    }

    st.cost = cost_of(sys, &st.responses);
    Ok(())
}

/// A long-lived analysis context over one fixed platform/application
/// pair, evaluating borrowed candidate bus configurations with all
/// scratch state reused across calls.
///
/// ```
/// use flexray_model::*;
/// use flexray_analysis::{AnalysisConfig, AnalysisSession};
///
/// let mut app = Application::new();
/// let g = app.add_graph("g", Time::from_us(200.0), Time::from_us(150.0));
/// let a = app.add_task(g, "a", NodeId::new(0), Time::from_us(10.0), SchedPolicy::Fps, 3);
/// let b = app.add_task(g, "b", NodeId::new(1), Time::from_us(10.0), SchedPolicy::Fps, 3);
/// let m = app.add_message(g, "m", 4, MessageClass::Dynamic, 1);
/// app.connect(a, m, b)?;
///
/// let mut bus = BusConfig::new(PhyParams::unit());
/// bus.n_minislots = 20;
/// bus.frame_ids.insert(m, FrameId::new(1));
///
/// let mut session = AnalysisSession::new(
///     Platform::with_nodes(2), app, AnalysisConfig::default());
/// let cost = session.analyse_into(&bus)?;
/// assert!(cost.is_schedulable());
/// // Sweep the dynamic-segment length without rebuilding anything else.
/// for n in [10, 15, 30] {
///     let _ = session.reanalyse_dyn_length(n)?;
/// }
/// # Ok::<(), ModelError>(())
/// ```
#[derive(Debug)]
pub struct AnalysisSession {
    platform: Platform,
    app: Application,
    cfg: AnalysisConfig,
    state: SessionState,
    last_bus: Option<BusConfig>,
    /// Fixed bus configurations of clusters `1..` when the session
    /// analyses a multi-cluster network; the *candidate* bus passed to
    /// [`AnalysisSession::analyse_into`] is always cluster 0. Empty for
    /// the plain single-bus session. Fixed for the session lifetime —
    /// every cache inside [`SessionState`] is keyed on the candidate
    /// bus only, which stays sound precisely because these never
    /// change.
    extra_buses: Vec<BusConfig>,
    /// Home cluster per activity (see
    /// [`SystemView::with_network`]); empty for single-bus sessions.
    cluster_map: Vec<u16>,
}

impl AnalysisSession {
    /// Creates a session over a fixed platform and application.
    #[must_use]
    pub fn new(platform: Platform, app: Application, cfg: AnalysisConfig) -> Self {
        AnalysisSession {
            platform,
            app,
            cfg,
            state: SessionState::default(),
            last_bus: None,
            extra_buses: Vec::new(),
            cluster_map: Vec::new(),
        }
    }

    /// Creates a session over a multi-cluster network: candidates
    /// passed to [`AnalysisSession::analyse_into`] replace cluster 0's
    /// bus, while `extra_buses` (clusters `1..`) and the per-activity
    /// `cluster_map` stay fixed for the session's lifetime.
    #[must_use]
    pub fn with_network(
        platform: Platform,
        app: Application,
        extra_buses: Vec<BusConfig>,
        cluster_map: Vec<u16>,
        cfg: AnalysisConfig,
    ) -> Self {
        AnalysisSession {
            platform,
            app,
            cfg,
            state: SessionState::default(),
            last_bus: None,
            extra_buses,
            cluster_map,
        }
    }

    /// The platform under analysis.
    #[must_use]
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The application under analysis.
    #[must_use]
    pub fn app(&self) -> &Application {
        &self.app
    }

    /// `(calls, short_circuits)` of the Exact-mode DYN fill bound over
    /// this session's lifetime: how many Exact busy-window computations
    /// ran, and how many of them the Greedy bound resolved without
    /// touching the packing DP (see
    /// [`DynScratch::exact_stats`](crate::DynScratch::exact_stats)).
    /// `(0, 0)` under [`DynAnalysisMode::Greedy`](crate::DynAnalysisMode).
    #[must_use]
    pub fn dyn_exact_stats(&self) -> (u64, u64) {
        self.state.dyn_scratch.exact_stats()
    }

    /// The analysis configuration applied to every call.
    #[must_use]
    pub fn config(&self) -> &AnalysisConfig {
        &self.cfg
    }

    /// Analyses a borrowed candidate bus configuration into the session
    /// buffers and returns its cost. Identical in result to
    /// [`analyse`](crate::analyse) over a `System` carrying `bus`.
    ///
    /// The candidate is *not* validated — run
    /// [`BusConfig::validate_for`] first, as the optimisers do.
    ///
    /// # Errors
    ///
    /// Returns an error if the system model itself is inconsistent
    /// (unknown ids, hyperperiod overflow, deadlocked precedence).
    pub fn analyse_into(&mut self, bus: &BusConfig) -> Result<Cost, ModelError> {
        match &mut self.last_bus {
            Some(prev) => prev.clone_from(bus),
            None => self.last_bus = Some(bus.clone()),
        }
        let view = SystemView::with_network(
            &self.platform,
            &self.app,
            bus,
            &self.extra_buses,
            &self.cluster_map,
        );
        analyse_core(view, &self.cfg, &mut self.state)?;
        Ok(self.state.cost)
    }

    /// Re-analyses the last candidate with only the dynamic-segment
    /// length changed to `n_minislots` — the candidate loop of the
    /// DYN-length sweeps. The cached static side (schedule, priorities,
    /// job order) stays valid; nothing is cloned.
    ///
    /// # Errors
    ///
    /// As [`AnalysisSession::analyse_into`].
    ///
    /// # Panics
    ///
    /// Panics if no configuration was analysed yet.
    pub fn reanalyse_dyn_length(&mut self, n_minislots: u32) -> Result<Cost, ModelError> {
        let bus = self
            .last_bus
            .as_mut()
            .expect("reanalyse_dyn_length requires a prior analyse_into");
        bus.n_minislots = n_minislots;
        let view = SystemView::with_network(
            &self.platform,
            &self.app,
            bus,
            &self.extra_buses,
            &self.cluster_map,
        );
        analyse_core(view, &self.cfg, &mut self.state)?;
        Ok(self.state.cost)
    }

    /// The fixed bus configurations of clusters `1..` (empty for a
    /// single-bus session).
    #[must_use]
    pub fn extra_buses(&self) -> &[BusConfig] {
        &self.extra_buses
    }

    /// The per-activity home-cluster map (empty for a single-bus
    /// session).
    #[must_use]
    pub fn cluster_map(&self) -> &[u16] {
        &self.cluster_map
    }

    /// The bus configuration of the last analysis attempt.
    #[must_use]
    pub fn last_bus(&self) -> Option<&BusConfig> {
        self.last_bus.as_ref()
    }

    /// Mutable access to the retained bus, for in-place candidate
    /// tweaks (e.g. validating a new DYN length before
    /// [`AnalysisSession::reanalyse_dyn_length`]).
    #[must_use]
    pub fn last_bus_mut(&mut self) -> Option<&mut BusConfig> {
        self.last_bus.as_mut()
    }

    /// Cost of the last analysis (Eq. (5)).
    #[must_use]
    pub fn cost(&self) -> Cost {
        self.state.cost
    }

    /// Worst-case response times of the last analysis, indexed by
    /// activity.
    #[must_use]
    pub fn responses(&self) -> &[Time] {
        &self.state.responses
    }

    /// Activities whose response-time iteration diverged in the last
    /// analysis.
    #[must_use]
    pub fn diverged(&self) -> &[ActivityId] {
        &self.state.diverged
    }

    /// The static schedule table of the last analysis.
    #[must_use]
    pub fn table(&self) -> &ScheduleTable {
        &self.state.table
    }

    /// Owned copy of the last analysis result.
    #[must_use]
    pub fn snapshot(&self) -> Analysis {
        self.state.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyse;
    use flexray_model::*;

    /// Two nodes with an ET chain (no static messages): the static side
    /// is bus-independent and the session may cache it.
    fn et_only_system(n_minislots: u32) -> System {
        let mut app = Application::new();
        let g = app.add_graph("g", Time::from_us(500.0), Time::from_us(400.0));
        let c = app.add_task(
            g,
            "c",
            NodeId::new(0),
            Time::from_us(5.0),
            SchedPolicy::Fps,
            5,
        );
        let d = app.add_task(
            g,
            "d",
            NodeId::new(1),
            Time::from_us(5.0),
            SchedPolicy::Fps,
            5,
        );
        let m = app.add_message(g, "m", 4, MessageClass::Dynamic, 1);
        app.connect(c, m, d).expect("edges");
        // an SCS task so the table is non-trivial
        app.add_task(
            g,
            "s",
            NodeId::new(0),
            Time::from_us(20.0),
            SchedPolicy::Scs,
            0,
        );
        let mut bus = BusConfig::new(PhyParams::unit());
        bus.n_minislots = n_minislots;
        bus.frame_ids.insert(m, FrameId::new(1));
        System::validated(Platform::with_nodes(2), app, bus).expect("valid")
    }

    /// A mixed TT/ET system (static messages force schedule rebuilds).
    fn mixed_system(n_minislots: u32) -> System {
        let mut app = Application::new();
        let g = app.add_graph("g", Time::from_us(400.0), Time::from_us(350.0));
        let a = app.add_task(
            g,
            "a",
            NodeId::new(0),
            Time::from_us(10.0),
            SchedPolicy::Scs,
            0,
        );
        let b = app.add_task(
            g,
            "b",
            NodeId::new(1),
            Time::from_us(10.0),
            SchedPolicy::Scs,
            0,
        );
        let st = app.add_message(g, "st", 8, MessageClass::Static, 0);
        app.connect(a, st, b).expect("edges");
        let c = app.add_task(
            g,
            "c",
            NodeId::new(0),
            Time::from_us(5.0),
            SchedPolicy::Fps,
            5,
        );
        let d = app.add_task(
            g,
            "d",
            NodeId::new(1),
            Time::from_us(5.0),
            SchedPolicy::Fps,
            5,
        );
        let dy = app.add_message(g, "dy", 4, MessageClass::Dynamic, 1);
        app.connect(c, dy, d).expect("edges");
        let mut bus = BusConfig::new(PhyParams::unit());
        bus.static_slot_len = Time::from_us(8.0);
        bus.static_slot_owners = vec![NodeId::new(0), NodeId::new(1)];
        bus.n_minislots = n_minislots;
        bus.frame_ids.insert(dy, FrameId::new(1));
        System::validated(Platform::with_nodes(2), app, bus).expect("valid")
    }

    fn assert_matches_one_shot(session: &mut AnalysisSession, sys: &System) {
        let fresh = analyse(sys, &AnalysisConfig::default()).expect("one-shot");
        let cost = session.analyse_into(&sys.bus).expect("session");
        assert_eq!(cost, fresh.cost);
        assert_eq!(session.responses(), &fresh.responses[..]);
        assert_eq!(session.diverged(), &fresh.diverged[..]);
        assert_eq!(session.table().tasks(), fresh.table.tasks());
        assert_eq!(session.table().messages(), fresh.table.messages());
    }

    #[test]
    fn session_matches_one_shot_across_dyn_lengths_et_only() {
        let base = et_only_system(10);
        let mut session = AnalysisSession::new(
            base.platform.clone(),
            base.app.clone(),
            AnalysisConfig::default(),
        );
        for n in [10u32, 6, 30, 10, 100] {
            let mut sys = base.clone();
            sys.bus.n_minislots = n;
            assert_matches_one_shot(&mut session, &sys);
        }
    }

    #[test]
    fn session_matches_one_shot_across_dyn_lengths_mixed() {
        let base = mixed_system(10);
        let mut session = AnalysisSession::new(
            base.platform.clone(),
            base.app.clone(),
            AnalysisConfig::default(),
        );
        for n in [10u32, 6, 30, 10, 64] {
            let mut sys = base.clone();
            sys.bus.n_minislots = n;
            assert_matches_one_shot(&mut session, &sys);
        }
    }

    #[test]
    fn session_matches_one_shot_across_layout_changes() {
        let base = mixed_system(12);
        let mut session = AnalysisSession::new(
            base.platform.clone(),
            base.app.clone(),
            AnalysisConfig::default(),
        );
        // layout changes interleaved with DYN-length changes
        let mut sys = base.clone();
        assert_matches_one_shot(&mut session, &sys);
        sys.bus.static_slot_len = Time::from_us(12.0);
        assert_matches_one_shot(&mut session, &sys);
        sys.bus.n_minislots = 40;
        assert_matches_one_shot(&mut session, &sys);
        sys.bus.static_slot_owners = vec![NodeId::new(1), NodeId::new(0)];
        assert_matches_one_shot(&mut session, &sys);
    }

    #[test]
    fn reanalyse_dyn_length_equals_full_analyse() {
        for base in [et_only_system(10), mixed_system(10)] {
            let mut session = AnalysisSession::new(
                base.platform.clone(),
                base.app.clone(),
                AnalysisConfig::default(),
            );
            session.analyse_into(&base.bus).expect("seed analysis");
            for n in [5u32, 12, 48, 7] {
                let cost = session.reanalyse_dyn_length(n).expect("incremental");
                let mut sys = base.clone();
                sys.bus.n_minislots = n;
                let fresh = analyse(&sys, &AnalysisConfig::default()).expect("fresh");
                assert_eq!(cost, fresh.cost, "n = {n}");
                assert_eq!(session.responses(), &fresh.responses[..], "n = {n}");
                assert_eq!(
                    session.last_bus().expect("retained").n_minislots,
                    n,
                    "length applied"
                );
            }
        }
    }

    #[test]
    fn snapshot_equals_one_shot_analysis() {
        let sys = mixed_system(10);
        let mut session = AnalysisSession::new(
            sys.platform.clone(),
            sys.app.clone(),
            AnalysisConfig::default(),
        );
        session.analyse_into(&sys.bus).expect("session");
        let snap = session.snapshot();
        let fresh = analyse(&sys, &AnalysisConfig::default()).expect("one-shot");
        assert_eq!(snap.cost, fresh.cost);
        assert_eq!(snap.responses, fresh.responses);
        assert_eq!(snap.diverged, fresh.diverged);
        assert_eq!(snap.is_schedulable(), fresh.is_schedulable());
    }

    #[test]
    #[should_panic(expected = "requires a prior analyse_into")]
    fn reanalyse_without_seed_panics() {
        let sys = mixed_system(10);
        let mut session = AnalysisSession::new(
            sys.platform.clone(),
            sys.app.clone(),
            AnalysisConfig::default(),
        );
        let _ = session.reanalyse_dyn_length(10);
    }
}
