//! # flexray-analysis
//!
//! Holistic scheduling and schedulability analysis for FlexRay-based
//! distributed embedded systems, re-implementing Sections 5–5.1 of
//! *Pop, Pop, Eles, Peng — DATE 2007* (and the underlying analysis of
//! their ECRTS 2006 paper, ref [14]).
//!
//! The crate provides:
//!
//! * [`build_schedule`] — the list scheduler of Fig. 2 producing the
//!   static [`ScheduleTable`] for SCS tasks and ST messages;
//! * [`fps_local_response`] — response-time analysis of FPS tasks in the
//!   slack of the static schedule;
//! * [`dyn_delay`] — the worst-case delay `w_m` of dynamic messages
//!   (Eq. 3) with its interference sets [`hp_messages`], [`lf_messages`]
//!   and [`unused_lower_slots`];
//! * [`analyse`] — the holistic fixed point tying everything together
//!   and grading the configuration with the cost function of Eq. (5)
//!   ([`Cost`], [`cost_of`]).
//!
//! ## Example
//!
//! ```
//! use flexray_model::*;
//! use flexray_analysis::{analyse, AnalysisConfig};
//!
//! let mut app = Application::new();
//! let g = app.add_graph("g", Time::from_us(200.0), Time::from_us(150.0));
//! let a = app.add_task(g, "a", NodeId::new(0), Time::from_us(10.0), SchedPolicy::Scs, 0);
//! let b = app.add_task(g, "b", NodeId::new(1), Time::from_us(10.0), SchedPolicy::Scs, 0);
//! let m = app.add_message(g, "m", 8, MessageClass::Static, 0);
//! app.connect(a, m, b)?;
//! let mut bus = BusConfig::new(PhyParams::unit());
//! bus.static_slot_len = Time::from_us(8.0);
//! bus.static_slot_owners = vec![NodeId::new(0), NodeId::new(1)];
//! let sys = System::validated(Platform::with_nodes(2), app, bus)?;
//!
//! let result = analyse(&sys, &AnalysisConfig::default())?;
//! assert!(result.is_schedulable());
//! # Ok::<(), ModelError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod availability;
mod cost;
mod dyn_msg;
mod fps;
mod holistic;
mod priority;
mod scheduler;
mod session;
mod table;

pub use availability::Availability;
pub use cost::{cost_of, Cost};
pub use dyn_msg::{
    dyn_delay, dyn_delay_pooled, hp_messages, latest_tx_bound, lf_messages, unused_lower_slots,
    DynAnalysisMode, DynScratch, LatestTxPolicy, MAX_FIXED_POINT_ITERS,
};
pub use fps::{fps_local_response, hp_tasks};
pub use holistic::{analyse, Analysis, AnalysisConfig};
pub use priority::{criticality, longest_path_from_source, longest_path_to_sink, ready_list_order};
pub use scheduler::{build_schedule, build_schedule_with, ScsPlacement};
pub use session::AnalysisSession;
pub use table::{MessageEntry, ScheduleTable, TaskEntry};
