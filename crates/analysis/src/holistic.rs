//! Holistic scheduling and schedulability analysis (Fig. 2 / ref [14]).
//!
//! One call to [`analyse`] performs the complete evaluation of a bus
//! configuration:
//!
//! 1. the list scheduler builds the static schedule table for SCS tasks
//!    and ST messages;
//! 2. the static responses and the per-node availability (slack) are
//!    extracted from the table;
//! 3. the event-triggered side — FPS tasks and DYN messages — is solved
//!    by a fixed-point iteration that propagates release jitter along
//!    the task-graph edges (`J_a = max R_pred`);
//! 4. if time-triggered activities depend on event-triggered ones, the
//!    table is rebuilt with the updated completion bounds (outer loop);
//! 5. the cost function of Eq. (5) grades the result.

use crate::availability::Availability;
use crate::cost::{cost_of, Cost};
use crate::dyn_msg::{dyn_delay, DynAnalysisMode, LatestTxPolicy};
use crate::fps::fps_local_response;
use crate::scheduler::{build_schedule_with, ScsPlacement};
use crate::table::ScheduleTable;
use flexray_model::{ActivityId, MessageClass, ModelError, SchedPolicy, System, Time};

/// Tuning knobs of the holistic analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisConfig {
    /// Latest-transmission-start policy for DYN messages.
    pub latest_tx: LatestTxPolicy,
    /// Filled-cycle maximisation mode for DYN messages.
    pub dyn_mode: DynAnalysisMode,
    /// SCS placement policy of the list scheduler (Fig. 2 line 11).
    pub scs_placement: ScsPlacement,
    /// Maximum outer (table ↔ ET) iterations.
    pub max_outer_iters: usize,
    /// Maximum inner (jitter) fixed-point iterations.
    pub max_inner_iters: usize,
    /// Divergence cap factor: responses are capped at
    /// `factor · max(hyperperiod, largest deadline)`.
    pub divergence_factor: i64,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            latest_tx: LatestTxPolicy::default(),
            dyn_mode: DynAnalysisMode::default(),
            scs_placement: ScsPlacement::default(),
            max_outer_iters: 4,
            max_inner_iters: 32,
            divergence_factor: 4,
        }
    }
}

/// The result of one holistic analysis run.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Worst-case response time of every activity, relative to its graph
    /// activation. Diverged activities carry the divergence cap.
    pub responses: Vec<Time>,
    /// Activities whose response-time iteration diverged (response capped).
    pub diverged: Vec<ActivityId>,
    /// The static schedule table that was built.
    pub table: ScheduleTable,
    /// Eq. (5) over the responses.
    pub cost: Cost,
}

impl Analysis {
    /// `true` if all deadlines are met and nothing diverged or
    /// overflowed the table.
    #[must_use]
    pub fn is_schedulable(&self) -> bool {
        self.cost.is_schedulable() && self.diverged.is_empty() && self.table.is_feasible()
    }

    /// Response time of one activity.
    #[must_use]
    pub fn response(&self, id: ActivityId) -> Time {
        self.responses[id.index()]
    }
}

/// Runs the complete holistic analysis of a system under its current bus
/// configuration.
///
/// # Errors
///
/// Returns an error if the system model itself is inconsistent (unknown
/// ids, hyperperiod overflow, deadlocked precedence).
pub fn analyse(sys: &System, cfg: &AnalysisConfig) -> Result<Analysis, ModelError> {
    let horizon = sys.hyperperiod()?;
    let max_deadline = sys
        .app
        .ids()
        .map(|id| sys.app.deadline_of(id))
        .max()
        .unwrap_or(horizon);
    let limit = horizon
        .max(max_deadline)
        .saturating_mul(cfg.divergence_factor);

    let n = sys.app.activities().len();
    // Initial completion bounds: just the durations.
    let mut responses: Vec<Time> = sys.app.ids().map(|id| sys.duration_of(id)).collect();
    let mut diverged: Vec<ActivityId> = Vec::new();
    let mut table = ScheduleTable::new(horizon);

    // Does any TT activity depend on an ET one? If not, one outer pass.
    let tt_needs_et = sys.app.ids().any(|id| {
        sys.app.activity(id).is_time_triggered()
            && sys
                .app
                .preds(id)
                .iter()
                .any(|&p| !sys.app.activity(p).is_time_triggered())
    });
    let outer_iters = if tt_needs_et { cfg.max_outer_iters } else { 1 };

    for _outer in 0..outer_iters {
        diverged.clear();
        table = build_schedule_with(sys, &responses, cfg.scs_placement)?;

        // Time-triggered responses straight from the table.
        for id in sys.app.ids() {
            if sys.app.activity(id).is_time_triggered() {
                let period = sys.app.period_of(id);
                if let Some(r) = table.response_of(id, period) {
                    responses[id.index()] = r;
                }
            }
        }

        // Per-node availability (slack of the static schedule).
        let avails: Vec<Availability> = sys
            .platform
            .nodes()
            .map(|node| Availability::new(horizon, table.busy_windows(node)))
            .collect();

        // Earliest (contention-free) completion of every activity,
        // topologically: time-triggered activities finish exactly at
        // their table time (zero variability); event-triggered ones at
        // earliest-release + duration.
        let order = sys.app.topological_order()?;
        let mut earliest = vec![Time::ZERO; n];
        for &id in &order {
            let a = sys.app.activity(id);
            let ready = sys
                .app
                .preds(id)
                .iter()
                .map(|&p| earliest[p.index()])
                .max()
                .unwrap_or(Time::ZERO)
                .max(a.release);
            earliest[id.index()] = if a.is_time_triggered() {
                responses[id.index()].max(ready)
            } else {
                ready + sys.duration_of(id)
            };
        }

        // Event-triggered fixed point. Interference uses release
        // *variability* (worst ready − earliest ready), the classical
        // holistic jitter — using the full predecessor response would
        // double-count the chain offsets and blow up with depth.
        let mut jitter = vec![Time::ZERO; n];
        for _inner in 0..cfg.max_inner_iters {
            for id in sys.app.ids() {
                let a = sys.app.activity(id);
                let worst_ready = sys
                    .app
                    .preds(id)
                    .iter()
                    .map(|&p| responses[p.index()])
                    .max()
                    .unwrap_or(Time::ZERO)
                    .max(a.release);
                let earliest_ready = sys
                    .app
                    .preds(id)
                    .iter()
                    .map(|&p| earliest[p.index()])
                    .max()
                    .unwrap_or(Time::ZERO)
                    .max(a.release);
                jitter[id.index()] = (worst_ready - earliest_ready).clamp_non_negative();
            }
            let mut changed = false;
            let mut new_diverged = Vec::new();
            for id in sys.app.ids() {
                let a = sys.app.activity(id);
                if a.is_time_triggered() {
                    continue;
                }
                let worst_ready = sys
                    .app
                    .preds(id)
                    .iter()
                    .map(|&p| responses[p.index()])
                    .max()
                    .unwrap_or(Time::ZERO)
                    .max(a.release);
                let local = match &a.kind {
                    flexray_model::ActivityKind::Task(t) => {
                        debug_assert_eq!(t.policy, SchedPolicy::Fps);
                        fps_local_response(sys, &avails[t.node.index()], id, &jitter, limit)
                    }
                    flexray_model::ActivityKind::Message(m) => {
                        debug_assert_eq!(m.class, MessageClass::Dynamic);
                        dyn_delay(sys, id, &jitter, cfg.latest_tx, cfg.dyn_mode, limit)
                            .map(|w| w + sys.comm_time(id))
                    }
                };
                let r = match local {
                    Some(local) => (worst_ready + local).min(limit),
                    None => {
                        new_diverged.push(id);
                        limit
                    }
                };
                if r != responses[id.index()] {
                    responses[id.index()] = r;
                    changed = true;
                }
            }
            diverged = new_diverged;
            if !changed {
                break;
            }
        }

        if !tt_needs_et {
            break;
        }
    }

    let cost = cost_of(sys, &responses);
    Ok(Analysis {
        responses,
        diverged,
        table,
        cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexray_model::*;

    /// A TT chain and an ET chain over two nodes.
    fn mixed_system() -> System {
        let mut app = Application::new();
        let gt = app.add_graph("tt", Time::from_us(200.0), Time::from_us(150.0));
        let a = app.add_task(
            gt,
            "a",
            NodeId::new(0),
            Time::from_us(10.0),
            SchedPolicy::Scs,
            0,
        );
        let b = app.add_task(
            gt,
            "b",
            NodeId::new(1),
            Time::from_us(10.0),
            SchedPolicy::Scs,
            0,
        );
        let m_ab = app.add_message(gt, "m_ab", 8, MessageClass::Static, 0);
        app.connect(a, m_ab, b).expect("edges");

        let ge = app.add_graph("et", Time::from_us(200.0), Time::from_us(190.0));
        let c = app.add_task(
            ge,
            "c",
            NodeId::new(0),
            Time::from_us(5.0),
            SchedPolicy::Fps,
            5,
        );
        let d = app.add_task(
            ge,
            "d",
            NodeId::new(1),
            Time::from_us(5.0),
            SchedPolicy::Fps,
            5,
        );
        let m_cd = app.add_message(ge, "m_cd", 4, MessageClass::Dynamic, 1);
        app.connect(c, m_cd, d).expect("edges");

        let mut bus = BusConfig::new(PhyParams::unit());
        bus.static_slot_len = Time::from_us(8.0);
        bus.static_slot_owners = vec![NodeId::new(0), NodeId::new(1)];
        bus.n_minislots = 10;
        bus.frame_ids.insert(m_cd, FrameId::new(1));
        System::validated(Platform::with_nodes(2), app, bus).expect("valid")
    }

    #[test]
    fn mixed_system_is_schedulable() {
        let sys = mixed_system();
        let res = analyse(&sys, &AnalysisConfig::default()).expect("analysis");
        assert!(res.is_schedulable(), "cost = {:?}", res.cost);
        // every activity got a response
        for id in sys.app.ids() {
            assert!(res.response(id) > Time::ZERO);
        }
        // the ET sink completes after its message, which completes after
        // its sender
        let c = sys.app.find("c").expect("c");
        let m = sys.app.find("m_cd").expect("m");
        let d = sys.app.find("d").expect("d");
        assert!(res.response(m) > res.response(c));
        assert!(res.response(d) > res.response(m));
    }

    #[test]
    fn tt_chain_matches_schedule_table() {
        let sys = mixed_system();
        let res = analyse(&sys, &AnalysisConfig::default()).expect("analysis");
        let b = sys.app.find("b").expect("b");
        let table_r = res
            .table
            .response_of(b, Time::from_us(200.0))
            .expect("entry");
        assert_eq!(res.response(b), table_r);
    }

    #[test]
    fn tight_deadline_reports_unschedulable() {
        let mut sys = mixed_system();
        // Give the ET graph an impossible deadline.
        let d = sys.app.find("d").expect("d");
        sys.app.set_deadline(d, Time::from_us(1.0));
        let res = analyse(&sys, &AnalysisConfig::default()).expect("analysis");
        assert!(!res.is_schedulable());
        assert!(res.cost.f1 > 0.0);
    }

    #[test]
    fn no_dynamic_segment_diverges_dyn_messages() {
        let mut sys = mixed_system();
        // m_cd needs 4 minislots; pLatestTx = 1. Still valid (frame
        // fits), but any interference... here none, so shrink further
        // so it cannot fit at all -> model validation would reject;
        // instead use per-node policy with a big sibling.
        sys.bus.n_minislots = 4;
        let res = analyse(&sys, &AnalysisConfig::default()).expect("analysis");
        // with exactly-fitting segment the message still goes out
        assert!(res.diverged.is_empty());
    }

    #[test]
    fn divergence_caps_response() {
        // Saturate node 0 with an SCS task so the FPS task starves.
        let mut app = Application::new();
        let g = app.add_graph("g", Time::from_us(100.0), Time::from_us(100.0));
        app.add_task(
            g,
            "hog",
            NodeId::new(0),
            Time::from_us(100.0),
            SchedPolicy::Scs,
            0,
        );
        app.add_task(
            g,
            "starved",
            NodeId::new(0),
            Time::from_us(1.0),
            SchedPolicy::Fps,
            1,
        );
        let bus = BusConfig::new(PhyParams::unit());
        let sys = System::validated(Platform::with_nodes(1), app, bus).expect("valid");
        let res = analyse(&sys, &AnalysisConfig::default()).expect("analysis");
        assert_eq!(res.diverged.len(), 1);
        assert!(!res.is_schedulable());
        let starved = sys.app.find("starved").expect("starved");
        assert_eq!(res.response(starved), Time::from_us(400.0)); // 4 * 100
    }

    #[test]
    fn et_feeding_tt_triggers_outer_iteration() {
        let mut app = Application::new();
        let g = app.add_graph("g", Time::from_us(200.0), Time::from_us(200.0));
        let e = app.add_task(
            g,
            "e",
            NodeId::new(0),
            Time::from_us(5.0),
            SchedPolicy::Fps,
            5,
        );
        let s = app.add_task(
            g,
            "s",
            NodeId::new(1),
            Time::from_us(5.0),
            SchedPolicy::Scs,
            0,
        );
        let m = app.add_message(g, "m", 4, MessageClass::Dynamic, 1);
        app.connect(e, m, s).expect("edges");
        let mut bus = BusConfig::new(PhyParams::unit());
        bus.n_minislots = 10;
        bus.frame_ids.insert(m, FrameId::new(1));
        let sys = System::validated(Platform::with_nodes(2), app, bus).expect("valid");
        let res = analyse(&sys, &AnalysisConfig::default()).expect("analysis");
        assert!(res.is_schedulable());
        let s_id = sys.app.find("s").expect("s");
        let m_id = sys.app.find("m").expect("m");
        // the SCS task is placed no earlier than the message bound
        assert!(res.response(s_id) >= res.response(m_id));
    }
}
