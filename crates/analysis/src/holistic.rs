//! Holistic scheduling and schedulability analysis (Fig. 2 / ref [14]).
//!
//! One call to [`analyse`] performs the complete evaluation of a bus
//! configuration:
//!
//! 1. the list scheduler builds the static schedule table for SCS tasks
//!    and ST messages;
//! 2. the static responses and the per-node availability (slack) are
//!    extracted from the table;
//! 3. the event-triggered side — FPS tasks and DYN messages — is solved
//!    by a fixed-point iteration that propagates release jitter along
//!    the task-graph edges (`J_a = max R_pred`);
//! 4. if time-triggered activities depend on event-triggered ones, the
//!    table is rebuilt with the updated completion bounds (outer loop);
//! 5. the cost function of Eq. (5) grades the result.
//!
//! The algorithm itself lives in the session module: [`analyse`] runs it
//! once over fresh state, while an
//! [`AnalysisSession`](crate::AnalysisSession) keeps the state alive so
//! optimiser loops can amortise the allocations, the cached static
//! schedule and the DYN fixed-point scratch
//! ([`DynScratch`](crate::DynScratch) — interference pools, packing
//! buffers, per-message pool skeletons) across thousands of candidate
//! configurations.

use crate::cost::Cost;
use crate::dyn_msg::{DynAnalysisMode, LatestTxPolicy};
use crate::scheduler::ScsPlacement;
use crate::session::{analyse_core, SessionState};
use crate::table::ScheduleTable;
use flexray_model::{ActivityId, ModelError, SystemView, Time};

/// Tuning knobs of the holistic analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisConfig {
    /// Latest-transmission-start policy for DYN messages.
    pub latest_tx: LatestTxPolicy,
    /// Filled-cycle maximisation mode for DYN messages.
    pub dyn_mode: DynAnalysisMode,
    /// SCS placement policy of the list scheduler (Fig. 2 line 11).
    pub scs_placement: ScsPlacement,
    /// Maximum outer (table ↔ ET) iterations.
    pub max_outer_iters: usize,
    /// Maximum inner (jitter) fixed-point iterations.
    pub max_inner_iters: usize,
    /// Divergence cap factor: responses are capped at
    /// `factor · max(hyperperiod, largest deadline)`.
    pub divergence_factor: i64,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            latest_tx: LatestTxPolicy::default(),
            dyn_mode: DynAnalysisMode::default(),
            scs_placement: ScsPlacement::default(),
            max_outer_iters: 4,
            max_inner_iters: 32,
            divergence_factor: 4,
        }
    }
}

/// The result of one holistic analysis run.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Worst-case response time of every activity, relative to its graph
    /// activation. Diverged activities carry the divergence cap.
    pub responses: Vec<Time>,
    /// Activities whose response-time iteration diverged (response capped).
    pub diverged: Vec<ActivityId>,
    /// The static schedule table that was built.
    pub table: ScheduleTable,
    /// Eq. (5) over the responses.
    pub cost: Cost,
}

impl Analysis {
    /// `true` if all deadlines are met and nothing diverged or
    /// overflowed the table.
    #[must_use]
    pub fn is_schedulable(&self) -> bool {
        self.cost.is_schedulable() && self.diverged.is_empty() && self.table.is_feasible()
    }

    /// Response time of one activity.
    #[must_use]
    pub fn response(&self, id: ActivityId) -> Time {
        self.responses[id.index()]
    }
}

/// Runs the complete holistic analysis of a system under its current bus
/// configuration.
///
/// # Errors
///
/// Returns an error if the system model itself is inconsistent (unknown
/// ids, hyperperiod overflow, deadlocked precedence).
pub fn analyse<'a>(
    sys: impl Into<SystemView<'a>>,
    cfg: &AnalysisConfig,
) -> Result<Analysis, ModelError> {
    let sys = sys.into();
    let mut state = SessionState::default();
    analyse_core(sys, cfg, &mut state)?;
    Ok(state.into_analysis())
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexray_model::*;

    /// A TT chain and an ET chain over two nodes.
    fn mixed_system() -> System {
        let mut app = Application::new();
        let gt = app.add_graph("tt", Time::from_us(200.0), Time::from_us(150.0));
        let a = app.add_task(
            gt,
            "a",
            NodeId::new(0),
            Time::from_us(10.0),
            SchedPolicy::Scs,
            0,
        );
        let b = app.add_task(
            gt,
            "b",
            NodeId::new(1),
            Time::from_us(10.0),
            SchedPolicy::Scs,
            0,
        );
        let m_ab = app.add_message(gt, "m_ab", 8, MessageClass::Static, 0);
        app.connect(a, m_ab, b).expect("edges");

        let ge = app.add_graph("et", Time::from_us(200.0), Time::from_us(190.0));
        let c = app.add_task(
            ge,
            "c",
            NodeId::new(0),
            Time::from_us(5.0),
            SchedPolicy::Fps,
            5,
        );
        let d = app.add_task(
            ge,
            "d",
            NodeId::new(1),
            Time::from_us(5.0),
            SchedPolicy::Fps,
            5,
        );
        let m_cd = app.add_message(ge, "m_cd", 4, MessageClass::Dynamic, 1);
        app.connect(c, m_cd, d).expect("edges");

        let mut bus = BusConfig::new(PhyParams::unit());
        bus.static_slot_len = Time::from_us(8.0);
        bus.static_slot_owners = vec![NodeId::new(0), NodeId::new(1)];
        bus.n_minislots = 10;
        bus.frame_ids.insert(m_cd, FrameId::new(1));
        System::validated(Platform::with_nodes(2), app, bus).expect("valid")
    }

    #[test]
    fn mixed_system_is_schedulable() {
        let sys = mixed_system();
        let res = analyse(&sys, &AnalysisConfig::default()).expect("analysis");
        assert!(res.is_schedulable(), "cost = {:?}", res.cost);
        // every activity got a response
        for id in sys.app.ids() {
            assert!(res.response(id) > Time::ZERO);
        }
        // the ET sink completes after its message, which completes after
        // its sender
        let c = sys.app.find("c").expect("c");
        let m = sys.app.find("m_cd").expect("m");
        let d = sys.app.find("d").expect("d");
        assert!(res.response(m) > res.response(c));
        assert!(res.response(d) > res.response(m));
    }

    #[test]
    fn tt_chain_matches_schedule_table() {
        let sys = mixed_system();
        let res = analyse(&sys, &AnalysisConfig::default()).expect("analysis");
        let b = sys.app.find("b").expect("b");
        let table_r = res
            .table
            .response_of(b, Time::from_us(200.0))
            .expect("entry");
        assert_eq!(res.response(b), table_r);
    }

    #[test]
    fn tight_deadline_reports_unschedulable() {
        let mut sys = mixed_system();
        // Give the ET graph an impossible deadline.
        let d = sys.app.find("d").expect("d");
        sys.app.set_deadline(d, Time::from_us(1.0));
        let res = analyse(&sys, &AnalysisConfig::default()).expect("analysis");
        assert!(!res.is_schedulable());
        assert!(res.cost.f1 > 0.0);
    }

    #[test]
    fn no_dynamic_segment_diverges_dyn_messages() {
        let mut sys = mixed_system();
        // m_cd needs 4 minislots; pLatestTx = 1. Still valid (frame
        // fits), but any interference... here none, so shrink further
        // so it cannot fit at all -> model validation would reject;
        // instead use per-node policy with a big sibling.
        sys.bus.n_minislots = 4;
        let res = analyse(&sys, &AnalysisConfig::default()).expect("analysis");
        // with exactly-fitting segment the message still goes out
        assert!(res.diverged.is_empty());
    }

    #[test]
    fn divergence_caps_response() {
        // Saturate node 0 with an SCS task so the FPS task starves.
        let mut app = Application::new();
        let g = app.add_graph("g", Time::from_us(100.0), Time::from_us(100.0));
        app.add_task(
            g,
            "hog",
            NodeId::new(0),
            Time::from_us(100.0),
            SchedPolicy::Scs,
            0,
        );
        app.add_task(
            g,
            "starved",
            NodeId::new(0),
            Time::from_us(1.0),
            SchedPolicy::Fps,
            1,
        );
        let bus = BusConfig::new(PhyParams::unit());
        let sys = System::validated(Platform::with_nodes(1), app, bus).expect("valid");
        let res = analyse(&sys, &AnalysisConfig::default()).expect("analysis");
        assert_eq!(res.diverged.len(), 1);
        assert!(!res.is_schedulable());
        let starved = sys.app.find("starved").expect("starved");
        assert_eq!(res.response(starved), Time::from_us(400.0)); // 4 * 100
    }

    #[test]
    fn et_feeding_tt_triggers_outer_iteration() {
        let mut app = Application::new();
        let g = app.add_graph("g", Time::from_us(200.0), Time::from_us(200.0));
        let e = app.add_task(
            g,
            "e",
            NodeId::new(0),
            Time::from_us(5.0),
            SchedPolicy::Fps,
            5,
        );
        let s = app.add_task(
            g,
            "s",
            NodeId::new(1),
            Time::from_us(5.0),
            SchedPolicy::Scs,
            0,
        );
        let m = app.add_message(g, "m", 4, MessageClass::Dynamic, 1);
        app.connect(e, m, s).expect("edges");
        let mut bus = BusConfig::new(PhyParams::unit());
        bus.n_minislots = 10;
        bus.frame_ids.insert(m, FrameId::new(1));
        let sys = System::validated(Platform::with_nodes(2), app, bus).expect("valid");
        let res = analyse(&sys, &AnalysisConfig::default()).expect("analysis");
        assert!(res.is_schedulable());
        let s_id = sys.app.find("s").expect("s");
        let m_id = sys.app.find("m").expect("m");
        // the SCS task is placed no earlier than the message bound
        assert!(res.response(s_id) >= res.response(m_id));
    }
}
