//! Worst-case response times of dynamic-segment messages (Section 5.1).
//!
//! The response time of a DYN message `m` is
//! `R_m = J_m + w_m + C_m` (Eq. 2) with
//! `w_m = σ_m + BusCycles_m · gdCycle + w'_m` (Eq. 3).
//!
//! A bus cycle is *filled* (unusable for `m`) when a higher-priority
//! local message with the same frame identifier (`hp(m)`) occupies the
//! slot, or when transmissions of lower-identifier messages (`lf(m)`)
//! plus empty minislots of unused lower identifiers (`ms(m)`) push the
//! minislot counter past the latest-transmission-start bound before slot
//! `FrameID_m` begins.

use flexray_model::{ActivityId, MessageClass, SystemView, Time};
use std::collections::BTreeMap;

/// How the latest-transmission-start check is performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LatestTxPolicy {
    /// A frame may start if it itself still fits the remaining dynamic
    /// segment (`counter ≤ n_minislots − len_m + 1`). This matches the
    /// behaviour of Fig. 4 of the paper and is the default.
    #[default]
    PerMessage,
    /// The node-level `pLatestTx` derived from the largest dynamic frame
    /// the node sends, as described in Section 3 — more conservative for
    /// nodes mixing small and large frames.
    PerNode,
}

/// How the set of filled bus cycles is maximised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DynAnalysisMode {
    /// Largest-first greedy packing per cycle — the polynomial heuristic
    /// of ref [14].
    #[default]
    Greedy,
    /// Per-cycle optimal packing: a subset-sum DP picks, per cycle, the
    /// interference subset of minimal total consumption that still fills
    /// the cycle, which leaves the most interference for later cycles.
    Exact,
}

/// Higher-priority local messages sharing the frame identifier of `m`
/// (the set `hp(m)` — e.g. `hp(m_g) = {m_f}` in Fig. 1.a).
#[must_use]
pub fn hp_messages<'a>(sys: impl Into<SystemView<'a>>, m: ActivityId) -> Vec<ActivityId> {
    let sys = sys.into();
    let Some(fid) = sys.bus.frame_id_of(m) else {
        return Vec::new();
    };
    let prio = sys.app.activity(m).as_message().expect("message").priority;
    sys.app
        .messages_of_class(MessageClass::Dynamic)
        .filter(|&j| {
            j != m && sys.bus.frame_id_of(j) == Some(fid) && {
                let pj = sys.app.activity(j).as_message().expect("message").priority;
                pj > prio || (pj == prio && j.index() < m.index())
            }
        })
        .collect()
}

/// Messages that may use dynamic slots with lower frame identifiers than
/// `m` (the set `lf(m)` — e.g. `lf(m_g) = {m_d, m_e}` in Fig. 1.a).
#[must_use]
pub fn lf_messages<'a>(sys: impl Into<SystemView<'a>>, m: ActivityId) -> Vec<ActivityId> {
    let sys = sys.into();
    let Some(fid) = sys.bus.frame_id_of(m) else {
        return Vec::new();
    };
    sys.app
        .messages_of_class(MessageClass::Dynamic)
        .filter(|&j| j != m && sys.bus.frame_id_of(j).is_some_and(|fj| fj < fid))
        .collect()
}

/// Number of dynamic slots with identifiers lower than `m`'s that carry
/// no message at all (the always-empty part of `ms(m)`); slots that do
/// carry messages contribute through `lf(m)` instead.
#[must_use]
pub fn unused_lower_slots<'a>(sys: impl Into<SystemView<'a>>, m: ActivityId) -> u32 {
    let sys = sys.into();
    let Some(fid) = sys.bus.frame_id_of(m) else {
        return 0;
    };
    let used: std::collections::BTreeSet<u16> = sys
        .bus
        .frame_ids
        .values()
        .map(|f| f.number())
        .filter(|&n| n < fid.number())
        .collect();
    u32::from(fid.number() - 1) - u32::try_from(used.len()).expect("bounded by u16")
}

/// The latest-transmission-start bound applied to `m`, per policy, in
/// minislot-counter units.
#[must_use]
pub fn latest_tx_bound<'a>(
    sys: impl Into<SystemView<'a>>,
    m: ActivityId,
    policy: LatestTxPolicy,
) -> u32 {
    let sys = sys.into();
    match policy {
        LatestTxPolicy::PerMessage => {
            let lm = sys.bus.minislots_of(sys.app, m);
            sys.bus.n_minislots.saturating_sub(lm) + 1
        }
        LatestTxPolicy::PerNode => {
            let node = sys.app.sender_of(m).expect("validated message has sender");
            sys.bus.p_latest_tx(sys.app, node)
        }
    }
}

/// Pending interference pool for the filled-cycles computation: per
/// lower frame identifier, the (extra-consumption, remaining-instances)
/// list of its messages, sorted by extra descending.
#[derive(Debug, Clone)]
struct LfPool {
    /// `per_id[i]` = list of (extra minislots beyond the idle one,
    /// pending instance count) for messages on that identifier.
    per_id: BTreeMap<u16, Vec<(u32, i64)>>,
}

impl LfPool {
    fn build(sys: SystemView<'_>, lf: &[ActivityId], t: Time, jitter: &[Time]) -> Self {
        let mut per_id: BTreeMap<u16, Vec<(u32, i64)>> = BTreeMap::new();
        for &j in lf {
            let fid = sys.bus.frame_id_of(j).expect("lf has frame id").number();
            let tj = sys.app.period_of(j);
            let arrivals = (t + jitter[j.index()]).clamp_non_negative().div_ceil(tj);
            if arrivals > 0 {
                let extra = sys.bus.minislots_of(sys.app, j).saturating_sub(1);
                per_id.entry(fid).or_default().push((extra, arrivals));
            }
        }
        for list in per_id.values_mut() {
            list.sort_by_key(|&(extra, _)| core::cmp::Reverse(extra));
        }
        LfPool { per_id }
    }

    /// Largest available extra per identifier (one instance each).
    fn candidates(&self) -> Vec<(u16, u32)> {
        self.per_id
            .iter()
            .filter_map(|(&id, list)| list.iter().find(|&&(_, n)| n > 0).map(|&(e, _)| (id, e)))
            .collect()
    }

    /// All available (id, extra) options, several per identifier.
    fn options(&self) -> Vec<(u16, u32)> {
        let mut out = Vec::new();
        for (&id, list) in &self.per_id {
            for &(e, n) in list {
                if n > 0 {
                    out.push((id, e));
                }
            }
        }
        out
    }

    fn consume(&mut self, id: u16, extra: u32) {
        if let Some(list) = self.per_id.get_mut(&id) {
            if let Some(slot) = list.iter_mut().find(|(e, n)| *e == extra && *n > 0) {
                slot.1 -= 1;
            }
        }
    }

    fn is_empty(&self) -> bool {
        self.per_id
            .values()
            .all(|list| list.iter().all(|&(_, n)| n == 0))
    }
}

/// DP state of the exact filler: total extra consumed plus the chosen
/// `(frame id, extra)` options that reach it.
type DpEntry = (u32, Vec<(u16, u32)>);

/// Tries to fill one cycle: returns the consumed (id, extra) choices, or
/// `None` if the pool can no longer reach `need_extra`.
fn fill_one_cycle(
    pool: &LfPool,
    need_extra: u32,
    mode: DynAnalysisMode,
) -> Option<Vec<(u16, u32)>> {
    match mode {
        DynAnalysisMode::Greedy => {
            let mut cands = pool.candidates();
            cands.sort_by_key(|&(_, extra)| core::cmp::Reverse(extra));
            let mut chosen = Vec::new();
            let mut sum = 0u32;
            for (id, extra) in cands {
                if sum >= need_extra {
                    break;
                }
                // an idle identifier contributes nothing beyond its base
                // minislot, so zero-extra instances never help filling
                if extra == 0 {
                    continue;
                }
                chosen.push((id, extra));
                sum += extra;
            }
            (sum >= need_extra).then_some(chosen)
        }
        DynAnalysisMode::Exact => {
            // Min-total-consumption subset with sum >= need_extra, at most
            // one option per identifier: DP over identifiers.
            let mut per_id: BTreeMap<u16, Vec<u32>> = BTreeMap::new();
            for (id, extra) in pool.options() {
                if extra > 0 {
                    per_id.entry(id).or_default().push(extra);
                }
            }
            let cap = need_extra as usize;
            // best[s] = (total, choices) with accumulated sum min(s, cap)
            let mut best: Vec<Option<DpEntry>> = vec![None; cap + 1];
            best[0] = Some((0, Vec::new()));
            for (&id, extras) in &per_id {
                let mut next = best.clone();
                for (s, entry) in best.iter().enumerate() {
                    let Some((total, choices)) = entry else {
                        continue;
                    };
                    for &e in extras {
                        let ns = (s + e as usize).min(cap);
                        let nt = total + e;
                        let better = match &next[ns] {
                            Some((t, _)) => nt < *t,
                            None => true,
                        };
                        if better {
                            let mut c = choices.clone();
                            c.push((id, e));
                            next[ns] = Some((nt, c));
                        }
                    }
                }
                best = next;
            }
            best[cap].take().map(|(_, choices)| choices)
        }
    }
}

/// The delay `w_m(t)` of Eq. (3) for the busy window `t`, or `None` if it
/// exceeds `limit` (the message diverges on this configuration).
#[must_use]
pub fn dyn_delay<'a>(
    sys: impl Into<SystemView<'a>>,
    m: ActivityId,
    jitter: &[Time],
    latest_tx: LatestTxPolicy,
    mode: DynAnalysisMode,
    limit: Time,
) -> Option<Time> {
    let sys = sys.into();
    let hp = hp_messages(sys, m);
    let lf = lf_messages(sys, m);
    dyn_delay_with(sys, m, &hp, &lf, jitter, latest_tx, mode, limit)
}

/// [`dyn_delay`] with the interference sets precomputed — they depend
/// only on the frame-identifier assignment, so session-style callers
/// derive them once per assignment and reuse them across the DYN-length
/// sweep.
#[allow(clippy::too_many_arguments)]
pub(crate) fn dyn_delay_with(
    sys: SystemView<'_>,
    m: ActivityId,
    hp: &[ActivityId],
    lf: &[ActivityId],
    jitter: &[Time],
    latest_tx: LatestTxPolicy,
    mode: DynAnalysisMode,
    limit: Time,
) -> Option<Time> {
    let fid = sys.bus.frame_id_of(m).expect("validated dyn message");
    let gd_cycle = sys.bus.gd_cycle();
    let st_bus = sys.bus.st_bus();
    let minislot = sys.bus.phy.gd_minislot;
    let base = u32::try_from(fid.preceding_slots()).expect("u16 fits");
    let p_latest = latest_tx_bound(sys, m, latest_tx);
    // A cycle is filled when base + extra >= p_latest.
    let need_extra = match p_latest.checked_sub(base) {
        Some(n) if n > 0 => n,
        // Even an idle dynamic segment pushes the counter past the bound:
        // the message can never be sent.
        _ => return None,
    };

    // σ_m: the message just misses the earliest occurrence of its slot
    // and waits out the rest of the cycle.
    let slot_earliest = st_bus + minislot * i64::from(base);
    let sigma = (gd_cycle - slot_earliest).clamp_non_negative();

    let mut t = Time::ZERO;
    for _ in 0..10_000 {
        // hp(m): each pending instance occupies slot FrameID_m for a cycle.
        let mut filled: i64 = 0;
        for &j in hp {
            let tj = sys.app.period_of(j);
            filled += (t + jitter[j.index()]).clamp_non_negative().div_ceil(tj);
        }
        // lf(m)/ms(m): pack transmissions to push the counter past the
        // bound, cycle by cycle.
        let mut pool = LfPool::build(sys, lf, t, jitter);
        while !pool.is_empty() {
            match fill_one_cycle(&pool, need_extra, mode) {
                Some(choices) => {
                    for (id, extra) in choices {
                        pool.consume(id, extra);
                    }
                    filled += 1;
                }
                None => break,
            }
        }
        // Final cycle: leftover lower-identifier traffic delays the start
        // of slot FrameID_m but cannot block it any more.
        let leftover: u32 = pool
            .candidates()
            .iter()
            .map(|&(_, e)| e)
            .sum::<u32>()
            .min(need_extra.saturating_sub(1));
        let w_final = st_bus + minislot * i64::from(base + leftover);
        let w = sigma
            .saturating_add(gd_cycle.saturating_mul(filled))
            .saturating_add(w_final);
        if w > limit {
            return None;
        }
        if w <= t {
            return Some(w);
        }
        t = w;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexray_model::*;

    /// Builds a system with DYN messages `(size_minislots, frame_id,
    /// priority, sender_node)`; unit phy, one 8µs ST slot, `n_minislots`.
    fn dyn_system(specs: &[(u32, u16, u32, usize)], n_minislots: u32) -> (System, Vec<ActivityId>) {
        let phy = PhyParams {
            gd_bit: Time::from_ns(50),
            gd_macrotick: Time::MICROSECOND,
            gd_minislot: Time::MICROSECOND,
            frame_overhead_bytes: 0,
        };
        let mut app = Application::new();
        let g = app.add_graph("g", Time::from_us(1000.0), Time::from_us(1000.0));
        let mut bus = BusConfig::new(phy);
        bus.static_slot_len = Time::from_us(8.0);
        bus.static_slot_owners = vec![NodeId::new(0)];
        bus.n_minislots = n_minislots;
        let mut ids = Vec::new();
        for (i, &(len, fid, prio, node)) in specs.iter().enumerate() {
            let s = app.add_task(
                g,
                &format!("s{i}"),
                NodeId::new(node),
                Time::from_us(1.0),
                SchedPolicy::Fps,
                1,
            );
            let r = app.add_task(
                g,
                &format!("r{i}"),
                NodeId::new(1 - node),
                Time::from_us(1.0),
                SchedPolicy::Fps,
                1,
            );
            // len minislots at 1µs each = len µs = 2*len bytes at 50ns/bit
            let msg = app.add_message(g, &format!("m{i}"), 2 * len, MessageClass::Dynamic, prio);
            app.connect(s, msg, r).expect("edges");
            bus.frame_ids.insert(msg, FrameId::new(fid));
            ids.push(msg);
        }
        let sys = System::validated(Platform::with_nodes(2), app, bus).expect("valid");
        (sys, ids)
    }

    #[test]
    fn interference_sets_match_fig1() {
        // Fig 1.a: md(1), me(2), mf(4 hi), mg(4 lo), mh(5); all node 0.
        let (sys, ids) = dyn_system(
            &[
                (1, 1, 0, 0),
                (1, 2, 0, 0),
                (2, 4, 9, 0),
                (2, 4, 1, 0),
                (1, 5, 0, 0),
            ],
            20,
        );
        let (md, me, mf, mg, _mh) = (ids[0], ids[1], ids[2], ids[3], ids[4]);
        assert_eq!(hp_messages(&sys, mg), vec![mf]);
        assert!(hp_messages(&sys, mf).is_empty());
        let mut lf = lf_messages(&sys, mg);
        lf.sort();
        assert_eq!(lf, vec![md, me]);
        // ms(mg): ids 1,2,3 lower; 1 and 2 used -> 1 unused (id 3)
        assert_eq!(unused_lower_slots(&sys, mg), 1);
        // ms(mf) in the paper counts {3} among 1,2,3: same here
        assert_eq!(unused_lower_slots(&sys, mf), 1);
    }

    #[test]
    fn latest_tx_policies_differ() {
        // node 0 sends a small (2) and a big (10) frame
        let (sys, ids) = dyn_system(&[(2, 1, 0, 0), (10, 2, 0, 0)], 20);
        let small = ids[0];
        assert_eq!(latest_tx_bound(&sys, small, LatestTxPolicy::PerMessage), 19);
        assert_eq!(latest_tx_bound(&sys, small, LatestTxPolicy::PerNode), 11);
    }

    #[test]
    fn lone_message_delay_is_sigma_plus_stbus() {
        let (sys, ids) = dyn_system(&[(2, 1, 0, 0)], 10);
        let jitter = vec![Time::ZERO; sys.app.activities().len()];
        let w = dyn_delay(
            &sys,
            ids[0],
            &jitter,
            LatestTxPolicy::PerMessage,
            DynAnalysisMode::Greedy,
            Time::from_us(100_000.0),
        )
        .expect("converges");
        // sigma = cycle(18) - (st 8 + 0) = 10; w' = st = 8
        assert_eq!(w, Time::from_us(18.0));
    }

    #[test]
    fn hp_instance_fills_one_cycle() {
        let (sys, ids) = dyn_system(&[(2, 1, 9, 0), (2, 1, 1, 0)], 10);
        let jitter = vec![Time::ZERO; sys.app.activities().len()];
        let limit = Time::from_us(100_000.0);
        let w_hi = dyn_delay(
            &sys,
            ids[0],
            &jitter,
            LatestTxPolicy::PerMessage,
            DynAnalysisMode::Greedy,
            limit,
        )
        .expect("hi");
        let w_lo = dyn_delay(
            &sys,
            ids[1],
            &jitter,
            LatestTxPolicy::PerMessage,
            DynAnalysisMode::Greedy,
            limit,
        )
        .expect("lo");
        // the low-priority sibling waits one extra cycle (gdCycle = 18)
        assert_eq!(w_lo - w_hi, Time::from_us(18.0));
    }

    #[test]
    fn lf_traffic_can_fill_cycles() {
        // m1: 9-minislot frame on id 1; m2: 2 minislots on id 2 with
        // n_minislots = 10 -> pLatestTx(m2) = 9, base = 1, need_extra = 8;
        // m1's extra = 8 fills exactly one cycle.
        let (sys, ids) = dyn_system(&[(9, 1, 0, 0), (2, 2, 0, 1)], 10);
        let jitter = vec![Time::ZERO; sys.app.activities().len()];
        let limit = Time::from_us(100_000.0);
        let w = dyn_delay(
            &sys,
            ids[1],
            &jitter,
            LatestTxPolicy::PerMessage,
            DynAnalysisMode::Greedy,
            limit,
        )
        .expect("converges");
        // sigma = 18 - (8 + 1) = 9; one filled cycle = 18; final = 8 + 1
        // (base) + leftover 0 -> 9 + 18 + 9 = 36
        assert_eq!(w, Time::from_us(36.0));
    }

    #[test]
    fn small_lf_cannot_fill_but_delays_final_cycle() {
        // m1 is only 4 minislots: extra 3 < need_extra 8 -> no filled
        // cycle, but 3 minislots of final-cycle delay.
        let (sys, ids) = dyn_system(&[(4, 1, 0, 0), (2, 2, 0, 1)], 10);
        let jitter = vec![Time::ZERO; sys.app.activities().len()];
        let limit = Time::from_us(100_000.0);
        let w = dyn_delay(
            &sys,
            ids[1],
            &jitter,
            LatestTxPolicy::PerMessage,
            DynAnalysisMode::Greedy,
            limit,
        )
        .expect("converges");
        // sigma = 9; final = 8 + (1 + 3) = 12 -> 21
        assert_eq!(w, Time::from_us(21.0));
    }

    #[test]
    fn per_node_policy_can_make_a_position_impossible() {
        // Node 0 sends a 10-minislot frame (id 1) and a 2-minislot frame
        // (id 10) in an 11-minislot segment. Per-node pLatestTx = 2, but
        // the small frame's slot starts at counter 10: never transmittable
        // under the per-node policy, fine under the per-message policy.
        let (sys, ids) = dyn_system(&[(10, 1, 0, 0), (2, 10, 0, 0)], 11);
        let jitter = vec![Time::ZERO; sys.app.activities().len()];
        let limit = Time::from_us(100_000.0);
        assert_eq!(
            dyn_delay(
                &sys,
                ids[1],
                &jitter,
                LatestTxPolicy::PerNode,
                DynAnalysisMode::Greedy,
                limit
            ),
            None
        );
        assert!(dyn_delay(
            &sys,
            ids[1],
            &jitter,
            LatestTxPolicy::PerMessage,
            DynAnalysisMode::Greedy,
            limit
        )
        .is_some());
    }

    #[test]
    fn exact_mode_converges_on_mixed_sizes() {
        let (sys, ids) = dyn_system(
            &[(5, 1, 0, 0), (5, 2, 0, 0), (9, 3, 0, 0), (2, 4, 0, 1)],
            12,
        );
        let jitter = vec![Time::ZERO; sys.app.activities().len()];
        let limit = Time::from_us(1_000_000.0);
        let wg = dyn_delay(
            &sys,
            ids[3],
            &jitter,
            LatestTxPolicy::PerMessage,
            DynAnalysisMode::Greedy,
            limit,
        )
        .expect("greedy converges");
        let we = dyn_delay(
            &sys,
            ids[3],
            &jitter,
            LatestTxPolicy::PerMessage,
            DynAnalysisMode::Exact,
            limit,
        )
        .expect("exact converges");
        // both bound the interference-free floor from below
        let floor = dyn_delay(
            &dyn_system(&[(2, 4, 0, 1)], 12).0,
            dyn_system(&[(2, 4, 0, 1)], 12).1[0],
            &jitter,
            LatestTxPolicy::PerMessage,
            DynAnalysisMode::Greedy,
            limit,
        )
        .expect("floor");
        assert!(wg >= floor);
        assert!(we >= floor);
    }

    #[test]
    fn jitter_adds_arrivals() {
        let (sys, ids) = dyn_system(&[(9, 1, 0, 0), (2, 2, 0, 1)], 10);
        let mut jitter = vec![Time::ZERO; sys.app.activities().len()];
        let limit = Time::from_us(10_000_000.0);
        let w0 = dyn_delay(
            &sys,
            ids[1],
            &jitter,
            LatestTxPolicy::PerMessage,
            DynAnalysisMode::Greedy,
            limit,
        )
        .expect("w0");
        jitter[ids[0].index()] = Time::from_us(999.0); // almost one period
        let w1 = dyn_delay(
            &sys,
            ids[1],
            &jitter,
            LatestTxPolicy::PerMessage,
            DynAnalysisMode::Greedy,
            limit,
        )
        .expect("w1");
        assert!(w1 > w0, "{w1} vs {w0}");
    }
}
