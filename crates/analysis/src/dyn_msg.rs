//! Worst-case response times of dynamic-segment messages (Section 5.1).
//!
//! The response time of a DYN message `m` is
//! `R_m = J_m + w_m + C_m` (Eq. 2) with
//! `w_m = σ_m + BusCycles_m · gdCycle + w'_m` (Eq. 3).
//!
//! A bus cycle is *filled* (unusable for `m`) when a higher-priority
//! local message with the same frame identifier (`hp(m)`) occupies the
//! slot, or when transmissions of lower-identifier messages (`lf(m)`)
//! plus empty minislots of unused lower identifiers (`ms(m)`) push the
//! minislot counter past the latest-transmission-start bound before slot
//! `FrameID_m` begins.

use flexray_model::{ActivityId, MessageClass, SystemView, Time};

/// How the latest-transmission-start check is performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LatestTxPolicy {
    /// A frame may start if it itself still fits the remaining dynamic
    /// segment (`counter ≤ n_minislots − len_m + 1`). This matches the
    /// behaviour of Fig. 4 of the paper and is the default.
    #[default]
    PerMessage,
    /// The node-level `pLatestTx` derived from the largest dynamic frame
    /// the node sends, as described in Section 3 — more conservative for
    /// nodes mixing small and large frames.
    PerNode,
}

/// How the set of filled bus cycles is maximised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DynAnalysisMode {
    /// Largest-first greedy packing per cycle — the polynomial heuristic
    /// of ref [14].
    #[default]
    Greedy,
    /// Per-cycle optimal packing: a subset-sum DP picks, per cycle, the
    /// interference subset of minimal total consumption that still fills
    /// the cycle, which leaves the most interference for later cycles.
    Exact,
}

/// Higher-priority local messages sharing the frame identifier of `m`
/// (the set `hp(m)` — e.g. `hp(m_g) = {m_f}` in Fig. 1.a).
#[must_use]
pub fn hp_messages<'a>(sys: impl Into<SystemView<'a>>, m: ActivityId) -> Vec<ActivityId> {
    let sys = sys.into().focused(m);
    let Some(fid) = sys.bus.frame_id_of(m) else {
        return Vec::new();
    };
    let prio = sys.app.activity(m).as_message().expect("message").priority;
    sys.app
        .messages_of_class(MessageClass::Dynamic)
        .filter(|&j| {
            j != m && sys.bus.frame_id_of(j) == Some(fid) && {
                let pj = sys.app.activity(j).as_message().expect("message").priority;
                pj > prio || (pj == prio && j.index() < m.index())
            }
        })
        .collect()
}

/// Messages that may use dynamic slots with lower frame identifiers than
/// `m` (the set `lf(m)` — e.g. `lf(m_g) = {m_d, m_e}` in Fig. 1.a).
#[must_use]
pub fn lf_messages<'a>(sys: impl Into<SystemView<'a>>, m: ActivityId) -> Vec<ActivityId> {
    let sys = sys.into().focused(m);
    let Some(fid) = sys.bus.frame_id_of(m) else {
        return Vec::new();
    };
    sys.app
        .messages_of_class(MessageClass::Dynamic)
        .filter(|&j| j != m && sys.bus.frame_id_of(j).is_some_and(|fj| fj < fid))
        .collect()
}

/// Number of dynamic slots with identifiers lower than `m`'s that carry
/// no message at all (the always-empty part of `ms(m)`); slots that do
/// carry messages contribute through `lf(m)` instead.
#[must_use]
pub fn unused_lower_slots<'a>(sys: impl Into<SystemView<'a>>, m: ActivityId) -> u32 {
    let sys = sys.into().focused(m);
    let Some(fid) = sys.bus.frame_id_of(m) else {
        return 0;
    };
    let used: std::collections::BTreeSet<u16> = sys
        .bus
        .frame_ids
        .values()
        .map(|f| f.number())
        .filter(|&n| n < fid.number())
        .collect();
    u32::from(fid.number() - 1) - u32::try_from(used.len()).expect("bounded by u16")
}

/// The latest-transmission-start bound applied to `m`, per policy, in
/// minislot-counter units.
#[must_use]
pub fn latest_tx_bound<'a>(
    sys: impl Into<SystemView<'a>>,
    m: ActivityId,
    policy: LatestTxPolicy,
) -> u32 {
    let sys = sys.into().focused(m);
    match policy {
        LatestTxPolicy::PerMessage => {
            let lm = sys.bus.minislots_of(sys.app, m);
            sys.bus.n_minislots.saturating_sub(lm) + 1
        }
        LatestTxPolicy::PerNode => {
            let node = sys.app.sender_of(m).expect("validated message has sender");
            sys.bus.p_latest_tx(sys.app, node)
        }
    }
}

/// One lower-identifier interference source of the filled-cycles pool.
#[derive(Debug, Clone, Copy)]
struct LfEntry {
    /// Message whose pending instances this entry tracks.
    msg: ActivityId,
    /// Frame identifier those instances occupy.
    id: u16,
    /// Extra minislots consumed beyond the idle one.
    extra: u32,
    /// Arrival divisor of the message.
    period: Time,
    /// Arrivals within the current busy window (monotone in `t`).
    arrivals: i64,
    /// Instances not yet consumed by a filled cycle at the current `t`.
    remaining: i64,
}

/// Pending interference pool for the filled-cycles computation: one
/// entry per `lf(m)` message, sorted by (frame identifier, extra
/// descending). The structure is built once per [`dyn_delay`] call; the
/// busy-window iteration only updates the pending counts in place
/// (arrivals are monotone in `t`), so no step of the fixed point
/// re-sorts or re-allocates.
#[derive(Debug, Clone, Default)]
struct LfPool {
    entries: Vec<LfEntry>,
}

impl LfPool {
    /// Rebuilds the pool structure for the `lf` set of one message,
    /// reusing the backing storage. Counts start at zero; call
    /// [`LfPool::advance`] to populate them for a busy window.
    fn rebuild(&mut self, sys: SystemView<'_>, lf: &[ActivityId]) {
        self.entries.clear();
        for &j in lf {
            let fid = sys.bus.frame_id_of(j).expect("lf has frame id").number();
            self.entries.push(LfEntry {
                msg: j,
                id: fid,
                extra: sys.bus.minislots_of(sys.app, j).saturating_sub(1),
                period: sys.app.period_of(j),
                arrivals: 0,
                remaining: 0,
            });
        }
        // Entries sharing (id, extra) are interchangeable — the packing
        // only ever observes the (id, extra, pending>0) multiset — so the
        // allocation-free unstable sort is safe.
        self.entries
            .sort_unstable_by_key(|e| (e.id, core::cmp::Reverse(e.extra)));
    }

    /// Advances the pool to busy window `t`: per entry, the pending
    /// count is bumped to the (monotone) arrival count and the whole
    /// pending set becomes available for packing again.
    fn advance(&mut self, t: Time, jitter: &[Time]) {
        for e in &mut self.entries {
            let arrivals = (t + jitter[e.msg.index()])
                .clamp_non_negative()
                .div_ceil(e.period);
            debug_assert!(arrivals >= e.arrivals, "arrivals are monotone in t");
            e.arrivals = arrivals;
            e.remaining = arrivals;
        }
    }

    /// One scan over the (sorted) entries collecting, per identifier
    /// with pending instances, its *head* — the largest pending extra —
    /// together with the head level's total pending count and starting
    /// entry index, in ascending identifier order.
    fn heads_into(&self, out: &mut Vec<Head>) {
        out.clear();
        let n = self.entries.len();
        let mut i = 0;
        while i < n {
            let id = self.entries[i].id;
            // skip drained higher-extra levels of this identifier
            while i < n && self.entries[i].id == id && self.entries[i].remaining == 0 {
                i += 1;
            }
            if i < n && self.entries[i].id == id {
                let extra = self.entries[i].extra;
                let entry_idx = i;
                let mut count = 0i64;
                while i < n && self.entries[i].id == id && self.entries[i].extra == extra {
                    count += self.entries[i].remaining;
                    i += 1;
                }
                out.push(Head {
                    id,
                    extra,
                    count,
                    entry_idx,
                });
                while i < n && self.entries[i].id == id {
                    i += 1;
                }
            }
        }
    }

    /// First entry index of the `(id, extra)` level (entries of one
    /// level are adjacent in the sort order).
    fn level_start(&self, id: u16, extra: u32) -> usize {
        self.entries
            .partition_point(|e| e.id < id || (e.id == id && e.extra > extra))
    }

    /// Total pending instances at the `(id, extra)` level.
    fn level_count(&self, id: u16, extra: u32) -> i64 {
        self.entries[self.level_start(id, extra)..]
            .iter()
            .take_while(|e| e.id == id && e.extra == extra)
            .map(|e| e.remaining)
            .sum()
    }

    /// Consumes one pending instance at the `(id, extra)` level.
    /// Returns whether an instance was actually available — a miss
    /// means the caller chose an instance the pool does not hold.
    fn consume(&mut self, id: u16, extra: u32) -> bool {
        self.consume_n(id, extra, 1) == 1
    }

    /// Consumes up to `n` pending instances at the `(id, extra)` level,
    /// returning how many were actually consumed.
    fn consume_n(&mut self, id: u16, extra: u32, n: i64) -> i64 {
        let start = self.level_start(id, extra);
        if self
            .entries
            .get(start)
            .is_none_or(|e| e.id != id || e.extra != extra)
        {
            return 0;
        }
        self.drain_level(start, n)
    }

    /// Consumes up to `n` instances from the level whose first entry is
    /// `start`, returning how many were consumed.
    fn drain_level(&mut self, start: usize, n: i64) -> i64 {
        let id = self.entries[start].id;
        let extra = self.entries[start].extra;
        let mut left = n;
        for e in &mut self.entries[start..] {
            if left == 0 || e.id != id || e.extra != extra {
                break;
            }
            let take = e.remaining.min(left);
            e.remaining -= take;
            left -= take;
        }
        n - left
    }

    fn has_pending(&self) -> bool {
        self.entries.iter().any(|e| e.remaining > 0)
    }
}

/// The head of one identifier's pending interference: its largest
/// pending extra, how many instances that level still holds, and where
/// the level starts in the entry list.
#[derive(Debug, Clone, Copy)]
struct Head {
    id: u16,
    extra: u32,
    count: i64,
    entry_idx: usize,
}

/// One node of the Exact-mode DP's choice arena: the `(frame id,
/// extra)` option taken and the arena index of the previous choice on
/// the same path (`usize::MAX` at the root).
#[derive(Debug, Clone, Copy)]
struct DpChoice {
    id: u16,
    extra: u32,
    parent: usize,
}

/// DP cell: minimal total extra consumed to reach this (saturated)
/// accumulated sum, plus the arena tail of the choices reaching it.
type DpCell = Option<(u32, usize)>;

/// Reusable scratch state of the dynamic-message busy-window fixed
/// point: the interference pool, the per-`hp(m)` arrival counts and the
/// packing/DP buffers. A fresh scratch per call reproduces the plain
/// [`dyn_delay`]; a scratch kept alive across calls — as the
/// [`AnalysisSession`](crate::AnalysisSession) does — makes the hot
/// path allocation-free in the steady state. Results are bit-identical
/// either way.
#[derive(Debug, Default)]
pub struct DynScratch {
    pool: LfPool,
    /// Arrival count per `hp(m)` message at the current busy window.
    hp_arrivals: Vec<i64>,
    /// Per-cycle head buffer (one head per identifier).
    cand: Vec<Head>,
    /// The `(id, extra)` choices of the cycle being filled (Exact mode).
    choices: Vec<(u16, u32)>,
    /// Exact-mode DP tables, indexed by saturated accumulated sum.
    dp_best: Vec<DpCell>,
    dp_next: Vec<DpCell>,
    /// Exact-mode DP choice arena (see [`DpChoice`]).
    dp_arena: Vec<DpChoice>,
    /// Exact-mode identifier groups of the current cycle selection:
    /// per identifier with pending positive extras, its `(start, end)`
    /// entry range and head (largest pending) extra.
    dp_groups: Vec<(u32, u32, u32)>,
    /// Suffix sums over `dp_groups` of the head extras:
    /// `dp_suffix[g] = Σ_{j ≥ g} head_j` — the most any DP state can
    /// still gain from the remaining identifiers.
    dp_suffix: Vec<u64>,
    /// Per-group head extras, sorted descending for the greedy bound.
    dp_heads: Vec<u32>,
    /// Occupied cells of `dp_best`, ascending.
    dp_occ: Vec<usize>,
    /// Cells newly occupied during the current group's relaxations.
    dp_new: Vec<usize>,
    /// Exact-mode busy-window calls observed by this scratch.
    exact_calls: u64,
    /// Calls where the fill bound proved Exact cannot differ from
    /// Greedy, so the DP was skipped for the whole call.
    exact_short_circuits: u64,
    /// Session-managed per-message pool skeletons (entries with counts
    /// zeroed) flattened into one arena, valid for one `skel_gen`.
    skel_arena: Vec<LfEntry>,
    /// Per-activity `(start, end)` range into `skel_arena`;
    /// `(u32::MAX, u32::MAX)` = not cached.
    skel_range: Vec<(u32, u32)>,
    /// Generation of the cached skeletons: 0 = unmanaged (every call
    /// rebuilds), set by the owning session via
    /// [`DynScratch::set_generation`].
    skel_gen: u64,
}

impl DynScratch {
    /// Declares the (frame-assignment, phy) generation of subsequent
    /// calls. Pool skeletons are pure functions of that pair, so they
    /// survive while the generation does and are dropped when it moves
    /// on. Only the session calls this; a plain scratch stays at
    /// generation 0 and rebuilds on every call.
    pub(crate) fn set_generation(&mut self, generation: u64) {
        if self.skel_gen != generation {
            self.skel_gen = generation;
            self.skel_arena.clear();
            self.skel_range.clear();
        }
    }

    /// Prepares the scratch for one message's fixed point: restores the
    /// message's pool skeleton if the generation holds one, otherwise
    /// rebuilds (and, under session management, caches) it.
    fn begin(&mut self, sys: SystemView<'_>, m: ActivityId, hp: &[ActivityId], lf: &[ActivityId]) {
        self.hp_arrivals.clear();
        self.hp_arrivals.resize(hp.len(), 0);
        if self.skel_gen == 0 {
            self.pool.rebuild(sys, lf);
            return;
        }
        if self.skel_range.len() <= m.index() {
            self.skel_range.resize(m.index() + 1, (u32::MAX, u32::MAX));
        }
        let (start, end) = self.skel_range[m.index()];
        if start != u32::MAX {
            self.pool.entries.clear();
            self.pool
                .entries
                .extend_from_slice(&self.skel_arena[start as usize..end as usize]);
        } else {
            self.pool.rebuild(sys, lf);
            let start = u32::try_from(self.skel_arena.len()).expect("arena fits u32");
            self.skel_arena.extend_from_slice(&self.pool.entries);
            let end = u32::try_from(self.skel_arena.len()).expect("arena fits u32");
            self.skel_range[m.index()] = (start, end);
        }
    }

    /// Sum of the per-identifier head extras still pending — the
    /// final-cycle delay contribution of the unconsumed pool.
    fn leftover(&mut self) -> u32 {
        self.pool.heads_into(&mut self.cand);
        self.cand.iter().map(|h| h.extra).sum()
    }

    /// Packs filled cycles until the pool can no longer push the
    /// counter past the bound, returning the number of filled cycles.
    /// Cycle-by-cycle identical to a one-cycle-at-a-time formulation:
    /// the selected cycle repeats verbatim until one of its `(id,
    /// extra)` levels exhausts — the only event that can change the
    /// option set — so the repeats are applied as one batch.
    fn fill(&mut self, need_extra: u32, mode: DynAnalysisMode) -> i64 {
        match mode {
            DynAnalysisMode::Greedy => self.fill_greedy(need_extra),
            DynAnalysisMode::Exact => self.fill_exact(need_extra),
        }
    }

    /// Largest-first packing (ref [14]): per cycle, take per-identifier
    /// heads in descending extra order until the cycle is filled.
    fn fill_greedy(&mut self, need_extra: u32) -> i64 {
        let mut filled: i64 = 0;
        loop {
            self.pool.heads_into(&mut self.cand);
            if self.cand.is_empty() {
                break;
            }
            // Ties in extra keep ascending identifier order, exactly as
            // a stable sort over the per-id candidates would. Zero-extra
            // heads sort last: an idle identifier contributes nothing
            // beyond its base minislot, so they never help filling.
            self.cand
                .sort_unstable_by_key(|h| (core::cmp::Reverse(h.extra), h.id));
            let mut sum = 0u32;
            let mut taken = 0usize;
            let mut repeats = i64::MAX;
            for h in &self.cand {
                if sum >= need_extra || h.extra == 0 {
                    break;
                }
                sum += h.extra;
                repeats = repeats.min(h.count);
                taken += 1;
            }
            if sum < need_extra {
                break;
            }
            debug_assert!(repeats >= 1, "chosen heads must be pending");
            for k in 0..taken {
                let h = self.cand[k];
                let consumed = self.pool.drain_level(h.entry_idx, repeats);
                debug_assert_eq!(
                    consumed, repeats,
                    "head level ({}, {}) exhausted mid-batch",
                    h.id, h.extra
                );
            }
            filled += repeats;
        }
        filled
    }

    /// Per-cycle optimal packing: repeatedly pick (and consume) the
    /// minimal-consumption subset that still fills a cycle.
    fn fill_exact(&mut self, need_extra: u32) -> i64 {
        let mut filled: i64 = 0;
        while self.pool.has_pending() {
            if !self.select_cycle_exact(need_extra) {
                break;
            }
            let repeats = self
                .choices
                .iter()
                .map(|&(id, e)| self.pool.level_count(id, e))
                .min()
                .expect("a filled cycle consumes at least one instance");
            debug_assert!(repeats >= 1, "chosen levels must be pending");
            if repeats == 1 {
                for &(id, extra) in &self.choices {
                    let hit = self.pool.consume(id, extra);
                    debug_assert!(hit, "chosen instance ({id}, {extra}) missing from pool");
                }
            } else {
                for &(id, extra) in &self.choices {
                    let consumed = self.pool.consume_n(id, extra, repeats);
                    debug_assert_eq!(
                        consumed, repeats,
                        "level ({id}, {extra}) exhausted mid-batch"
                    );
                }
            }
            filled += repeats;
        }
        filled
    }

    /// Selects the `(id, extra)` choices of the next Exact-mode filled
    /// cycle into `self.choices`, or returns `false` if the pool can no
    /// longer push the counter past the bound.
    ///
    /// The min-total-consumption subset-sum DP (sum ≥ `need_extra`, at
    /// most one option per identifier) is *admissibly pruned*: every
    /// rule below drops only states that provably cannot change the
    /// winning chain at `dp_best[cap]`, so the selected subset — not
    /// just its total — is bit-identical to the unpruned DP's. The
    /// invariant the proofs lean on: below the cap a cell's total
    /// equals its sum, so "better" comparisons are strict and
    /// order-stable, and pruned states (which always lose them) cannot
    /// block a surviving state.
    ///
    /// * **Reachability**: a state at sum `s` entering group `g` can
    ///   only fill the cycle if `s + dp_suffix[g] ≥ need_extra` (the
    ///   suffix only shrinks, so doomed stays doomed). A doomed state's
    ///   descendants are all doomed, and doomed chains never reach the
    ///   cap, so skipping them is invisible. When even the root is
    ///   doomed the whole selection fails without touching the tables —
    ///   the common final iteration of every [`DynScratch::fill_exact`]
    ///   call.
    /// * **Greedy upper bound**: the largest-first head subset is a
    ///   feasible choice, so its total bounds the optimum from above;
    ///   cap states strictly above it are never stored.
    /// * **Dominance**: states with the same saturated sum keep the
    ///   cheaper total (the DP cell rule), and equal `(id, extra)`
    ///   levels within a group are interchangeable — relaxing the
    ///   second is always a strict-comparison no-op — so only the first
    ///   of each level is relaxed.
    /// * **Sparse cells**: only occupied cells are scanned, in
    ///   ascending sum order, preserving the unpruned relaxation order
    ///   exactly.
    fn select_cycle_exact(&mut self, need_extra: u32) -> bool {
        self.choices.clear();
        let cap = need_extra as usize;
        let need = cap as u64;
        // Group pass: per identifier with pending positive extras, the
        // entry range and the head extra.
        self.dp_groups.clear();
        {
            let entries = &self.pool.entries;
            let mut start = 0;
            while start < entries.len() {
                let id = entries[start].id;
                let mut end = start;
                let mut head = 0u32;
                while end < entries.len() && entries[end].id == id {
                    if entries[end].remaining > 0 {
                        head = head.max(entries[end].extra);
                    }
                    end += 1;
                }
                if head > 0 {
                    self.dp_groups.push((
                        u32::try_from(start).expect("pool fits u32"),
                        u32::try_from(end).expect("pool fits u32"),
                        head,
                    ));
                }
                start = end;
            }
        }
        let n_groups = self.dp_groups.len();
        self.dp_suffix.clear();
        self.dp_suffix.resize(n_groups + 1, 0);
        for g in (0..n_groups).rev() {
            self.dp_suffix[g] = self.dp_suffix[g + 1] + u64::from(self.dp_groups[g].2);
        }
        if self.dp_suffix[0] < need {
            // Even taking every head cannot fill the cycle.
            return false;
        }
        // Greedy upper bound: heads largest-first until the cycle fills.
        self.dp_heads.clear();
        self.dp_heads
            .extend(self.dp_groups.iter().map(|&(_, _, head)| head));
        self.dp_heads
            .sort_unstable_by_key(|&h| core::cmp::Reverse(h));
        let mut ubound = 0u64;
        for &h in &self.dp_heads {
            if ubound >= need {
                break;
            }
            ubound += u64::from(h);
        }
        self.dp_best.clear();
        self.dp_best.resize(cap + 1, None);
        self.dp_best[0] = Some((0, usize::MAX));
        self.dp_arena.clear();
        self.dp_occ.clear();
        self.dp_occ.push(0);
        for g in 0..n_groups {
            let (gs, ge, _) = self.dp_groups[g];
            let suffix = self.dp_suffix[g];
            let child_suffix = self.dp_suffix[g + 1];
            // Doomed cells can never reach the cap again; drop them
            // from the scan for good.
            self.dp_occ.retain(|&s| s as u64 + suffix >= need);
            self.dp_next.clear();
            self.dp_next.extend_from_slice(&self.dp_best);
            self.dp_new.clear();
            let group = &self.pool.entries[gs as usize..ge as usize];
            for &s in &self.dp_occ {
                if s == cap {
                    // Relaxing from the cap only adds cost: never better.
                    continue;
                }
                let Some((total, tail)) = self.dp_best[s] else {
                    debug_assert!(false, "dp_occ tracks occupied cells");
                    continue;
                };
                let mut prev_extra = None;
                for e in group {
                    if e.extra == 0 || e.remaining <= 0 || prev_extra == Some(e.extra) {
                        continue;
                    }
                    prev_extra = Some(e.extra);
                    let ns = (s + e.extra as usize).min(cap);
                    let nt = total + e.extra;
                    if ns == cap {
                        if u64::from(nt) > ubound {
                            continue;
                        }
                    } else if ns as u64 + child_suffix < need {
                        continue;
                    }
                    let better = match self.dp_next[ns] {
                        Some((t, _)) => nt < t,
                        None => true,
                    };
                    if better {
                        if self.dp_next[ns].is_none() {
                            self.dp_new.push(ns);
                        }
                        self.dp_arena.push(DpChoice {
                            id: e.id,
                            extra: e.extra,
                            parent: tail,
                        });
                        self.dp_next[ns] = Some((nt, self.dp_arena.len() - 1));
                    }
                }
            }
            if !self.dp_new.is_empty() {
                self.dp_occ.append(&mut self.dp_new);
                self.dp_occ.sort_unstable();
            }
            std::mem::swap(&mut self.dp_best, &mut self.dp_next);
        }
        let Some((_, mut tail)) = self.dp_best[cap] else {
            // Unreachable given the suffix feasibility check, but a
            // `false` here is always a sound answer.
            return false;
        };
        while tail != usize::MAX {
            let c = self.dp_arena[tail];
            self.choices.push((c.id, c.extra));
            tail = c.parent;
        }
        self.choices.reverse();
        true
    }

    /// `(exact_calls, exact_short_circuits)` observed by this scratch:
    /// how many Exact-mode busy-window calls ran, and how many of them
    /// the fill bound resolved entirely on the Greedy path (no DP).
    #[must_use]
    pub fn exact_stats(&self) -> (u64, u64) {
        (self.exact_calls, self.exact_short_circuits)
    }

    /// Resets the [`DynScratch::exact_stats`] counters.
    pub fn reset_exact_stats(&mut self) {
        self.exact_calls = 0;
        self.exact_short_circuits = 0;
    }
}

/// Iteration cap of the busy-window fixed point of Eq. (3). A window
/// still growing after this many steps is reported as divergent
/// (`None`), exactly like one that exceeds the caller's `limit`.
pub const MAX_FIXED_POINT_ITERS: usize = 10_000;

/// The delay `w_m(t)` of Eq. (3) for the busy window `t`, or `None` if it
/// exceeds `limit` or fails to converge within
/// [`MAX_FIXED_POINT_ITERS`] steps (the message diverges on this
/// configuration).
#[must_use]
pub fn dyn_delay<'a>(
    sys: impl Into<SystemView<'a>>,
    m: ActivityId,
    jitter: &[Time],
    latest_tx: LatestTxPolicy,
    mode: DynAnalysisMode,
    limit: Time,
) -> Option<Time> {
    let mut scratch = DynScratch::default();
    dyn_delay_pooled(sys, m, jitter, latest_tx, mode, limit, &mut scratch)
}

/// [`dyn_delay`] over a caller-owned [`DynScratch`], so repeated calls
/// — per candidate configuration, per fixed-point iteration — reuse the
/// pool, packing and DP storage instead of re-allocating it. Results
/// are bit-identical to [`dyn_delay`].
#[must_use]
pub fn dyn_delay_pooled<'a>(
    sys: impl Into<SystemView<'a>>,
    m: ActivityId,
    jitter: &[Time],
    latest_tx: LatestTxPolicy,
    mode: DynAnalysisMode,
    limit: Time,
    scratch: &mut DynScratch,
) -> Option<Time> {
    let sys = sys.into();
    let hp = hp_messages(sys, m);
    let lf = lf_messages(sys, m);
    dyn_delay_with(sys, m, &hp, &lf, jitter, latest_tx, mode, limit, scratch)
}

/// [`dyn_delay`] with the interference sets precomputed — they depend
/// only on the frame-identifier assignment, so session-style callers
/// derive them once per assignment and reuse them across the DYN-length
/// sweep — and the scratch state caller-owned.
///
/// The fixed point is incremental across busy-window growth: the
/// interference pool is built (and sorted) once, the per-step update
/// only adds the arrival deltas (arrivals are monotone in `t`), and
/// runs of identical filled cycles are applied as batches.
#[allow(clippy::too_many_arguments)]
pub(crate) fn dyn_delay_with(
    sys: SystemView<'_>,
    m: ActivityId,
    hp: &[ActivityId],
    lf: &[ActivityId],
    jitter: &[Time],
    latest_tx: LatestTxPolicy,
    mode: DynAnalysisMode,
    limit: Time,
    scratch: &mut DynScratch,
) -> Option<Time> {
    let sys = sys.focused(m);
    let fid = sys.bus.frame_id_of(m).expect("validated dyn message");
    let gd_cycle = sys.bus.gd_cycle();
    let st_bus = sys.bus.st_bus();
    let minislot = sys.bus.phy.gd_minislot;
    let base = u32::try_from(fid.preceding_slots()).expect("u16 fits");
    let p_latest = latest_tx_bound(sys, m, latest_tx);
    // A cycle is filled when base + extra >= p_latest.
    let need_extra = match p_latest.checked_sub(base) {
        Some(n) if n > 0 => n,
        // Even an idle dynamic segment pushes the counter past the bound:
        // the message can never be sent.
        _ => return None,
    };

    // σ_m: the message just misses the earliest occurrence of its slot
    // and waits out the rest of the cycle.
    let slot_earliest = st_bus + minislot * i64::from(base);
    let sigma = (gd_cycle - slot_earliest).clamp_non_negative();

    scratch.begin(sys, m, hp, lf);
    let mut mode = mode;
    if mode == DynAnalysisMode::Exact {
        scratch.exact_calls += 1;
        // Fill bound: sum over identifiers of the largest extra any
        // instance can carry — a static property of the pool skeleton
        // (arrival counts only scale how often a level is available,
        // never its extra). If even that sum cannot push the counter
        // past the bound, no busy window ever packs a cycle from lf
        // traffic: both modes fill 0, consume nothing, and compute the
        // same leftover, so Exact provably equals Greedy for the whole
        // call and the cheaper path is taken outright.
        let mut max_fill = 0u64;
        let entries = &scratch.pool.entries;
        let mut i = 0;
        while i < entries.len() {
            // first entry of an id group carries its largest extra
            max_fill += u64::from(entries[i].extra);
            let id = entries[i].id;
            while i < entries.len() && entries[i].id == id {
                i += 1;
            }
        }
        if max_fill < u64::from(need_extra) {
            scratch.exact_short_circuits += 1;
            mode = DynAnalysisMode::Greedy;
        }
    }
    let mut hp_filled: i64 = 0;
    let mut t = Time::ZERO;
    for _ in 0..MAX_FIXED_POINT_ITERS {
        // hp(m): each pending instance occupies slot FrameID_m for a
        // cycle; arrivals are monotone in t, so only the delta is added.
        for (k, &j) in hp.iter().enumerate() {
            let arrivals = (t + jitter[j.index()])
                .clamp_non_negative()
                .div_ceil(sys.app.period_of(j));
            hp_filled += arrivals - scratch.hp_arrivals[k];
            scratch.hp_arrivals[k] = arrivals;
        }
        // lf(m)/ms(m): pack transmissions to push the counter past the
        // bound, cycle by cycle.
        scratch.pool.advance(t, jitter);
        let filled = hp_filled + scratch.fill(need_extra, mode);
        // Final cycle: leftover lower-identifier traffic delays the start
        // of slot FrameID_m but cannot block it any more.
        let leftover = scratch.leftover().min(need_extra.saturating_sub(1));
        let w_final = st_bus + minislot * i64::from(base + leftover);
        let w = sigma
            .saturating_add(gd_cycle.saturating_mul(filled))
            .saturating_add(w_final);
        if w > limit {
            return None;
        }
        if w <= t {
            return Some(w);
        }
        t = w;
    }
    // The busy window was still growing when the iteration guard
    // tripped: report divergence explicitly.
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexray_model::*;

    /// Builds a system with DYN messages `(size_minislots, frame_id,
    /// priority, sender_node)`; unit phy, one 8µs ST slot, `n_minislots`.
    fn dyn_system(specs: &[(u32, u16, u32, usize)], n_minislots: u32) -> (System, Vec<ActivityId>) {
        let phy = PhyParams {
            gd_bit: Time::from_ns(50),
            gd_macrotick: Time::MICROSECOND,
            gd_minislot: Time::MICROSECOND,
            frame_overhead_bytes: 0,
        };
        let mut app = Application::new();
        let g = app.add_graph("g", Time::from_us(1000.0), Time::from_us(1000.0));
        let mut bus = BusConfig::new(phy);
        bus.static_slot_len = Time::from_us(8.0);
        bus.static_slot_owners = vec![NodeId::new(0)];
        bus.n_minislots = n_minislots;
        let mut ids = Vec::new();
        for (i, &(len, fid, prio, node)) in specs.iter().enumerate() {
            let s = app.add_task(
                g,
                &format!("s{i}"),
                NodeId::new(node),
                Time::from_us(1.0),
                SchedPolicy::Fps,
                1,
            );
            let r = app.add_task(
                g,
                &format!("r{i}"),
                NodeId::new(1 - node),
                Time::from_us(1.0),
                SchedPolicy::Fps,
                1,
            );
            // len minislots at 1µs each = len µs = 2*len bytes at 50ns/bit
            let msg = app.add_message(g, &format!("m{i}"), 2 * len, MessageClass::Dynamic, prio);
            app.connect(s, msg, r).expect("edges");
            bus.frame_ids.insert(msg, FrameId::new(fid));
            ids.push(msg);
        }
        let sys = System::validated(Platform::with_nodes(2), app, bus).expect("valid");
        (sys, ids)
    }

    #[test]
    fn interference_sets_match_fig1() {
        // Fig 1.a: md(1), me(2), mf(4 hi), mg(4 lo), mh(5); all node 0.
        let (sys, ids) = dyn_system(
            &[
                (1, 1, 0, 0),
                (1, 2, 0, 0),
                (2, 4, 9, 0),
                (2, 4, 1, 0),
                (1, 5, 0, 0),
            ],
            20,
        );
        let (md, me, mf, mg, _mh) = (ids[0], ids[1], ids[2], ids[3], ids[4]);
        assert_eq!(hp_messages(&sys, mg), vec![mf]);
        assert!(hp_messages(&sys, mf).is_empty());
        let mut lf = lf_messages(&sys, mg);
        lf.sort();
        assert_eq!(lf, vec![md, me]);
        // ms(mg): ids 1,2,3 lower; 1 and 2 used -> 1 unused (id 3)
        assert_eq!(unused_lower_slots(&sys, mg), 1);
        // ms(mf) in the paper counts {3} among 1,2,3: same here
        assert_eq!(unused_lower_slots(&sys, mf), 1);
    }

    #[test]
    fn latest_tx_policies_differ() {
        // node 0 sends a small (2) and a big (10) frame
        let (sys, ids) = dyn_system(&[(2, 1, 0, 0), (10, 2, 0, 0)], 20);
        let small = ids[0];
        assert_eq!(latest_tx_bound(&sys, small, LatestTxPolicy::PerMessage), 19);
        assert_eq!(latest_tx_bound(&sys, small, LatestTxPolicy::PerNode), 11);
    }

    #[test]
    fn lone_message_delay_is_sigma_plus_stbus() {
        let (sys, ids) = dyn_system(&[(2, 1, 0, 0)], 10);
        let jitter = vec![Time::ZERO; sys.app.activities().len()];
        let w = dyn_delay(
            &sys,
            ids[0],
            &jitter,
            LatestTxPolicy::PerMessage,
            DynAnalysisMode::Greedy,
            Time::from_us(100_000.0),
        )
        .expect("converges");
        // sigma = cycle(18) - (st 8 + 0) = 10; w' = st = 8
        assert_eq!(w, Time::from_us(18.0));
    }

    #[test]
    fn hp_instance_fills_one_cycle() {
        let (sys, ids) = dyn_system(&[(2, 1, 9, 0), (2, 1, 1, 0)], 10);
        let jitter = vec![Time::ZERO; sys.app.activities().len()];
        let limit = Time::from_us(100_000.0);
        let w_hi = dyn_delay(
            &sys,
            ids[0],
            &jitter,
            LatestTxPolicy::PerMessage,
            DynAnalysisMode::Greedy,
            limit,
        )
        .expect("hi");
        let w_lo = dyn_delay(
            &sys,
            ids[1],
            &jitter,
            LatestTxPolicy::PerMessage,
            DynAnalysisMode::Greedy,
            limit,
        )
        .expect("lo");
        // the low-priority sibling waits one extra cycle (gdCycle = 18)
        assert_eq!(w_lo - w_hi, Time::from_us(18.0));
    }

    #[test]
    fn lf_traffic_can_fill_cycles() {
        // m1: 9-minislot frame on id 1; m2: 2 minislots on id 2 with
        // n_minislots = 10 -> pLatestTx(m2) = 9, base = 1, need_extra = 8;
        // m1's extra = 8 fills exactly one cycle.
        let (sys, ids) = dyn_system(&[(9, 1, 0, 0), (2, 2, 0, 1)], 10);
        let jitter = vec![Time::ZERO; sys.app.activities().len()];
        let limit = Time::from_us(100_000.0);
        let w = dyn_delay(
            &sys,
            ids[1],
            &jitter,
            LatestTxPolicy::PerMessage,
            DynAnalysisMode::Greedy,
            limit,
        )
        .expect("converges");
        // sigma = 18 - (8 + 1) = 9; one filled cycle = 18; final = 8 + 1
        // (base) + leftover 0 -> 9 + 18 + 9 = 36
        assert_eq!(w, Time::from_us(36.0));
    }

    #[test]
    fn small_lf_cannot_fill_but_delays_final_cycle() {
        // m1 is only 4 minislots: extra 3 < need_extra 8 -> no filled
        // cycle, but 3 minislots of final-cycle delay.
        let (sys, ids) = dyn_system(&[(4, 1, 0, 0), (2, 2, 0, 1)], 10);
        let jitter = vec![Time::ZERO; sys.app.activities().len()];
        let limit = Time::from_us(100_000.0);
        let w = dyn_delay(
            &sys,
            ids[1],
            &jitter,
            LatestTxPolicy::PerMessage,
            DynAnalysisMode::Greedy,
            limit,
        )
        .expect("converges");
        // sigma = 9; final = 8 + (1 + 3) = 12 -> 21
        assert_eq!(w, Time::from_us(21.0));
    }

    #[test]
    fn per_node_policy_can_make_a_position_impossible() {
        // Node 0 sends a 10-minislot frame (id 1) and a 2-minislot frame
        // (id 10) in an 11-minislot segment. Per-node pLatestTx = 2, but
        // the small frame's slot starts at counter 10: never transmittable
        // under the per-node policy, fine under the per-message policy.
        let (sys, ids) = dyn_system(&[(10, 1, 0, 0), (2, 10, 0, 0)], 11);
        let jitter = vec![Time::ZERO; sys.app.activities().len()];
        let limit = Time::from_us(100_000.0);
        assert_eq!(
            dyn_delay(
                &sys,
                ids[1],
                &jitter,
                LatestTxPolicy::PerNode,
                DynAnalysisMode::Greedy,
                limit
            ),
            None
        );
        assert!(dyn_delay(
            &sys,
            ids[1],
            &jitter,
            LatestTxPolicy::PerMessage,
            DynAnalysisMode::Greedy,
            limit
        )
        .is_some());
    }

    #[test]
    fn exact_mode_converges_on_mixed_sizes() {
        let (sys, ids) = dyn_system(
            &[(5, 1, 0, 0), (5, 2, 0, 0), (9, 3, 0, 0), (2, 4, 0, 1)],
            12,
        );
        let jitter = vec![Time::ZERO; sys.app.activities().len()];
        let limit = Time::from_us(1_000_000.0);
        let wg = dyn_delay(
            &sys,
            ids[3],
            &jitter,
            LatestTxPolicy::PerMessage,
            DynAnalysisMode::Greedy,
            limit,
        )
        .expect("greedy converges");
        let we = dyn_delay(
            &sys,
            ids[3],
            &jitter,
            LatestTxPolicy::PerMessage,
            DynAnalysisMode::Exact,
            limit,
        )
        .expect("exact converges");
        // both bound the interference-free floor from below
        let floor = dyn_delay(
            &dyn_system(&[(2, 4, 0, 1)], 12).0,
            dyn_system(&[(2, 4, 0, 1)], 12).1[0],
            &jitter,
            LatestTxPolicy::PerMessage,
            DynAnalysisMode::Greedy,
            limit,
        )
        .expect("floor");
        assert!(wg >= floor);
        assert!(we >= floor);
    }

    /// A two-entry pool for the consume unit tests: id 3 with extras
    /// 5 (two instances) and 2 (one instance).
    fn test_pool() -> LfPool {
        let entry = |extra: u32, remaining: i64| LfEntry {
            msg: ActivityId::new(0),
            id: 3,
            extra,
            period: Time::MICROSECOND,
            arrivals: remaining,
            remaining,
        };
        LfPool {
            entries: vec![entry(5, 2), entry(2, 1)],
        }
    }

    #[test]
    fn consume_reports_hit_and_miss() {
        let mut pool = test_pool();
        // unknown identifier and unknown extra level: a miss, not a
        // silent no-op
        assert!(!pool.consume(4, 5));
        assert!(!pool.consume(3, 4));
        assert_eq!(pool.level_count(3, 5), 2);
        // hits drain the level, then report exhaustion
        assert!(pool.consume(3, 5));
        assert!(pool.consume(3, 5));
        assert!(!pool.consume(3, 5), "exhausted level must miss");
        assert!(pool.consume(3, 2));
        assert!(!pool.has_pending());
    }

    #[test]
    fn consume_n_reports_shortfall() {
        let mut pool = test_pool();
        assert_eq!(pool.consume_n(3, 5, 3), 2, "only two instances exist");
        assert_eq!(pool.consume_n(3, 5, 1), 0);
        assert_eq!(pool.consume_n(9, 1, 4), 0, "unknown identifier");
        assert_eq!(pool.consume_n(3, 2, 1), 1);
    }

    #[test]
    fn overloaded_segment_exhausts_iteration_guard() {
        // The hp sibling's period equals gdCycle exactly: every busy
        // window extension brings exactly one more blocking instance, so
        // w(t) grows forever without ever crossing a generous limit —
        // the fixed point must give up after MAX_FIXED_POINT_ITERS and
        // report divergence, not fall off the loop with a bogus result.
        let phy = PhyParams {
            gd_bit: Time::from_ns(50),
            gd_macrotick: Time::MICROSECOND,
            gd_minislot: Time::MICROSECOND,
            frame_overhead_bytes: 0,
        };
        let mut app = Application::new();
        // gdCycle = st_bus (8) + 10 minislots = 18 us
        let g_hp = app.add_graph("hp", Time::from_us(18.0), Time::from_us(18.0));
        let g_lo = app.add_graph("lo", Time::from_us(1000.0), Time::from_us(1000.0));
        let mk = |app: &mut Application, g, tag: &str, prio| {
            let s = app.add_task(
                g,
                &format!("s{tag}"),
                NodeId::new(0),
                Time::from_us(1.0),
                SchedPolicy::Fps,
                1,
            );
            let r = app.add_task(
                g,
                &format!("r{tag}"),
                NodeId::new(1),
                Time::from_us(1.0),
                SchedPolicy::Fps,
                1,
            );
            let m = app.add_message(g, &format!("m{tag}"), 4, MessageClass::Dynamic, prio);
            app.connect(s, m, r).expect("edges");
            m
        };
        let hi = mk(&mut app, g_hp, "hi", 9);
        let lo = mk(&mut app, g_lo, "lo", 1);
        let mut bus = BusConfig::new(phy);
        bus.static_slot_len = Time::from_us(8.0);
        bus.static_slot_owners = vec![NodeId::new(0)];
        bus.n_minislots = 10;
        bus.frame_ids.insert(hi, FrameId::new(1));
        bus.frame_ids.insert(lo, FrameId::new(1));
        let sys = System::validated(Platform::with_nodes(2), app, bus).expect("valid");
        let jitter = vec![Time::ZERO; sys.app.activities().len()];
        // limit far beyond MAX_FIXED_POINT_ITERS * gdCycle: the guard,
        // not the limit, must end the iteration
        let limit = Time::from_us(1e9);
        assert_eq!(
            dyn_delay(
                &sys,
                lo,
                &jitter,
                LatestTxPolicy::PerMessage,
                DynAnalysisMode::Greedy,
                limit
            ),
            None
        );
        // the hp sibling itself is fine
        assert!(dyn_delay(
            &sys,
            hi,
            &jitter,
            LatestTxPolicy::PerMessage,
            DynAnalysisMode::Greedy,
            limit
        )
        .is_some());
    }

    #[test]
    fn pooled_scratch_reuse_matches_fresh_calls() {
        // One scratch across messages, modes and policies must be
        // bit-identical to a fresh scratch per call.
        let (sys, ids) = dyn_system(
            &[
                (1, 1, 0, 0),
                (1, 2, 0, 0),
                (2, 4, 9, 0),
                (2, 4, 1, 0),
                (1, 5, 0, 0),
            ],
            20,
        );
        let jitter = vec![Time::ZERO; sys.app.activities().len()];
        let limit = Time::from_us(100_000.0);
        let mut scratch = DynScratch::default();
        for &m in &ids {
            for mode in [DynAnalysisMode::Greedy, DynAnalysisMode::Exact] {
                for policy in [LatestTxPolicy::PerMessage, LatestTxPolicy::PerNode] {
                    let fresh = dyn_delay(&sys, m, &jitter, policy, mode, limit);
                    let pooled =
                        dyn_delay_pooled(&sys, m, &jitter, policy, mode, limit, &mut scratch);
                    assert_eq!(fresh, pooled, "{m:?} {mode:?} {policy:?}");
                }
            }
        }
    }

    #[test]
    fn jitter_adds_arrivals() {
        let (sys, ids) = dyn_system(&[(9, 1, 0, 0), (2, 2, 0, 1)], 10);
        let mut jitter = vec![Time::ZERO; sys.app.activities().len()];
        let limit = Time::from_us(10_000_000.0);
        let w0 = dyn_delay(
            &sys,
            ids[1],
            &jitter,
            LatestTxPolicy::PerMessage,
            DynAnalysisMode::Greedy,
            limit,
        )
        .expect("w0");
        jitter[ids[0].index()] = Time::from_us(999.0); // almost one period
        let w1 = dyn_delay(
            &sys,
            ids[1],
            &jitter,
            LatestTxPolicy::PerMessage,
            DynAnalysisMode::Greedy,
            limit,
        )
        .expect("w1");
        assert!(w1 > w0, "{w1} vs {w0}");
    }
}
