//! The schedulability-degree cost function (Eq. (5) of the paper).
//!
//! With `δ_ij = R_ij − D_ij` over all activities:
//!
//! * `f1 = Σ max(δ_ij, 0)` — total deadline overshoot; strictly positive
//!   iff at least one activity misses its deadline;
//! * `f2 = Σ δ_ij` — total (negative) laxity, used to rank schedulable
//!   configurations among themselves.
//!
//! `Cost = f1` if `f1 > 0`, else `f2`.

use flexray_model::{SystemView, Time};

/// The two-tier cost of a configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cost {
    /// Total deadline overshoot (µs); `> 0` iff unschedulable.
    pub f1: f64,
    /// Total laxity (µs); negative when deadlines leave slack.
    pub f2: f64,
}

impl Cost {
    /// A cost for a configuration that could not be analysed at all
    /// (e.g. invalid bus parameters): worse than everything else.
    #[must_use]
    pub fn infeasible() -> Self {
        Cost {
            f1: f64::INFINITY,
            f2: f64::INFINITY,
        }
    }

    /// `true` if every activity meets its deadline.
    #[must_use]
    pub fn is_schedulable(&self) -> bool {
        self.f1 <= 0.0
    }

    /// The scalar cost of Eq. (5): overshoot when unschedulable, laxity
    /// otherwise.
    #[must_use]
    pub fn value(&self) -> f64 {
        if self.f1 > 0.0 {
            self.f1
        } else {
            self.f2
        }
    }

    /// Strict "is better" ordering: a schedulable configuration beats any
    /// unschedulable one; within a tier, lower value wins.
    #[must_use]
    pub fn better_than(&self, other: &Cost) -> bool {
        match (self.is_schedulable(), other.is_schedulable()) {
            (true, false) => true,
            (false, true) => false,
            _ => self.value() < other.value(),
        }
    }
}

/// Evaluates Eq. (5) over the worst-case response times of all
/// activities (`responses[i]` for activity `i`, relative to graph
/// activation).
#[must_use]
pub fn cost_of<'a>(sys: impl Into<SystemView<'a>>, responses: &[Time]) -> Cost {
    let sys = sys.into();
    let mut f1 = 0.0;
    let mut f2 = 0.0;
    for id in sys.app.ids() {
        let r = responses[id.index()].as_us();
        let d = sys.app.deadline_of(id).as_us();
        let delta = r - d;
        if delta > 0.0 {
            f1 += delta;
        }
        f2 += delta;
    }
    Cost { f1, f2 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexray_model::*;

    fn sys_two_tasks(deadline_us: f64) -> System {
        let mut app = Application::new();
        let g = app.add_graph("g", Time::from_us(100.0), Time::from_us(deadline_us));
        app.add_task(
            g,
            "a",
            NodeId::new(0),
            Time::from_us(10.0),
            SchedPolicy::Fps,
            1,
        );
        app.add_task(
            g,
            "b",
            NodeId::new(0),
            Time::from_us(10.0),
            SchedPolicy::Fps,
            2,
        );
        let bus = BusConfig::new(PhyParams::unit());
        System::validated(Platform::with_nodes(1), app, bus).expect("valid")
    }

    #[test]
    fn schedulable_cost_is_negative_laxity() {
        let sys = sys_two_tasks(50.0);
        let r = vec![Time::from_us(20.0), Time::from_us(10.0)];
        let c = cost_of(&sys, &r);
        assert!(c.is_schedulable());
        assert_eq!(c.f1, 0.0);
        assert_eq!(c.f2, (20.0 - 50.0) + (10.0 - 50.0));
        assert_eq!(c.value(), c.f2);
    }

    #[test]
    fn overshoot_dominates() {
        let sys = sys_two_tasks(15.0);
        let r = vec![Time::from_us(20.0), Time::from_us(10.0)];
        let c = cost_of(&sys, &r);
        assert!(!c.is_schedulable());
        assert_eq!(c.f1, 5.0);
        assert_eq!(c.value(), 5.0);
    }

    #[test]
    fn ordering_prefers_schedulable() {
        let sched = Cost { f1: 0.0, f2: -10.0 };
        let sched_tight = Cost { f1: 0.0, f2: -1.0 };
        let unsched = Cost { f1: 2.0, f2: 2.0 };
        assert!(sched.better_than(&unsched));
        assert!(!unsched.better_than(&sched));
        assert!(sched.better_than(&sched_tight));
        assert!(unsched.better_than(&Cost { f1: 7.0, f2: 7.0 }));
    }

    #[test]
    fn infeasible_is_worst() {
        let bad = Cost::infeasible();
        assert!(!bad.is_schedulable());
        assert!(Cost { f1: 1e9, f2: 1e9 }.better_than(&bad));
        assert!(!bad.better_than(&Cost { f1: 1e9, f2: 1e9 }));
    }
}
