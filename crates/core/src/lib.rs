//! # flexray-opt
//!
//! FlexRay bus access optimisation — the primary contribution of
//! *Pop, Pop, Eles, Peng — "Bus Access Optimisation for FlexRay-based
//! Distributed Embedded Systems", DATE 2007*.
//!
//! Given a platform and an application (task graphs with SCS/FPS tasks
//! and static/dynamic messages), the optimisers search for a
//! [`BusConfig`](flexray_model::BusConfig) — static slot count, size and
//! node assignment; dynamic-segment length; frame-identifier assignment
//! — under which the holistic analysis of `flexray-analysis` declares
//! the system schedulable:
//!
//! * [`bbc`] — the Basic Bus Configuration of Fig. 5 (minimal bandwidth
//!   requirements, dynamic-segment sweep);
//! * [`obc`] — the Optimised Bus Configuration heuristic of Fig. 6, with
//!   [`DynSearch::CurveFit`] (OBCCF, the Newton-polynomial heuristic of
//!   Fig. 8) or [`DynSearch::Exhaustive`] (OBCEE);
//! * [`simulated_annealing`] — the SA baseline used as a close-to-optimal
//!   reference in the paper's evaluation.
//!
//! ## Example
//!
//! ```
//! use flexray_model::*;
//! use flexray_opt::{bbc, OptParams};
//!
//! let mut app = Application::new();
//! let g = app.add_graph("g", Time::from_us(4000.0), Time::from_us(3000.0));
//! let a = app.add_task(g, "a", NodeId::new(0), Time::from_us(20.0), SchedPolicy::Scs, 0);
//! let b = app.add_task(g, "b", NodeId::new(1), Time::from_us(20.0), SchedPolicy::Scs, 0);
//! let m = app.add_message(g, "m", 8, MessageClass::Static, 0);
//! app.connect(a, m, b)?;
//!
//! let result = bbc(&Platform::with_nodes(2), &app, PhyParams::bmw_like(), &OptParams::default());
//! assert!(result.is_schedulable());
//! # Ok::<(), ModelError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod bbc;
mod dyn_search;
mod evaluator;
mod frame_assign;
mod network;
mod newton;
mod obc;
mod params;
mod sa;

pub use bbc::{bbc, bbc_skeleton};
pub use dyn_search::{determine_dyn_length, dyn_sweep_grid, DynChoice, DynSearch};
pub use evaluator::Evaluator;
pub use frame_assign::assign_frame_ids_by_criticality;
pub use network::{optimise_network, NetworkOptResult, NetworkTopology};
pub use newton::NewtonPoly;
pub use obc::{assign_slots_round_robin, obc};
pub use params::{OptParams, OptResult};
pub use sa::{identity_frame_ids, simulated_annealing, SaParams};
