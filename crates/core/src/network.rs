//! Joint bus access optimisation for multi-cluster FlexRay networks.
//!
//! The paper optimises a single FlexRay cluster. Real vehicle networks
//! couple several clusters through gateway nodes; this module extends
//! the bus access optimisation to such networks: every cluster gets a
//! BBC-style skeleton (per-cluster criticality frame identifiers, one
//! static slot per static-sender node sized for the cluster's largest
//! ST frame), and the dynamic-segment lengths are then optimised by
//! coordinate descent — each cluster's length is swept in turn against
//! the *network-wide* cost of Eq. (5) while the other clusters are held
//! fixed, repeating until a full round no longer improves the cost.
//!
//! This is deliberately the BBC/OBCEE treatment of the DYN axis lifted
//! to N clusters, not the full OBC slot-count/slot-length exploration:
//! the static skeleton stays at its minimal-bandwidth shape while the
//! dynamic lengths are searched jointly.

use crate::frame_assign::assign_frame_ids_by_criticality;
use crate::params::{OptParams, OptResult};
use flexray_analysis::{AnalysisSession, Cost};
use flexray_model::{
    derive_msg_clusters, ActivityId, Application, BusConfig, FrameId, MessageClass, ModelError,
    Network, NodeId, PhyParams, Platform, Time, MAX_CYCLE, MAX_MINISLOTS,
};
use std::time::Instant;

/// Where each node lives in a multi-cluster network — the topology the
/// optimiser works against (the bus configurations are its output).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkTopology {
    /// Number of clusters (≥ 1).
    pub clusters: usize,
    /// Home cluster of each node (gateway nodes keep a nominal home but
    /// attach to every cluster).
    pub node_cluster: Vec<u16>,
    /// Gateway nodes bridging the clusters.
    pub gateways: Vec<NodeId>,
}

impl NetworkTopology {
    /// The trivial single-cluster topology of the paper's experiments.
    #[must_use]
    pub fn single(n_nodes: usize) -> Self {
        NetworkTopology {
            clusters: 1,
            node_cluster: vec![0; n_nodes],
            gateways: Vec::new(),
        }
    }
}

/// Outcome of one multi-cluster optimisation run.
#[derive(Debug, Clone)]
pub struct NetworkOptResult {
    /// Best per-cluster bus configurations found (index = cluster).
    pub clusters: Vec<BusConfig>,
    /// Network-wide cost of that configuration (Eq. (5) over every
    /// activity of every cluster).
    pub cost: Cost,
    /// Number of full scheduling + schedulability evaluations performed.
    pub evaluations: usize,
    /// Wall-clock time of the run.
    pub elapsed: std::time::Duration,
}

impl NetworkOptResult {
    /// `true` if the best configuration meets all deadlines.
    #[must_use]
    pub fn is_schedulable(&self) -> bool {
        self.cost.is_schedulable()
    }

    /// Packages the result as a validated [`Network`].
    ///
    /// # Errors
    ///
    /// Propagates [`Network::new`] validation errors (an optimiser bug —
    /// surfaced rather than hidden).
    pub fn into_network(
        self,
        platform: Platform,
        app: Application,
        topo: &NetworkTopology,
    ) -> Result<Network, ModelError> {
        Network::new(
            platform,
            app,
            self.clusters,
            topo.node_cluster.clone(),
            topo.gateways.clone(),
        )
    }

    /// The single-cluster view of the result: cluster 0's bus with the
    /// network-wide cost (what the grid harness records as the
    /// representative [`OptResult`]).
    #[must_use]
    pub fn representative(&self) -> OptResult {
        OptResult {
            bus: self.clusters[0].clone(),
            cost: self.cost,
            evaluations: self.evaluations,
            elapsed: self.elapsed,
        }
    }
}

/// Remaps an original cluster index so that `candidate` becomes
/// cluster 0 (the analysis session's candidate slot) and every other
/// cluster keeps a stable position among the fixed extras.
fn rotate(x: u16, candidate: u16) -> u16 {
    match x.cmp(&candidate) {
        std::cmp::Ordering::Equal => 0,
        std::cmp::Ordering::Less => x + 1,
        std::cmp::Ordering::Greater => x,
    }
}

/// The original cluster index sitting at rotated position `p ≥ 1`.
fn unrotate_extra(p: usize, candidate: usize) -> usize {
    if p <= candidate {
        p - 1
    } else {
        p
    }
}

/// BBC-style skeleton of one cluster: dense criticality-ordered frame
/// identifiers for the cluster's dynamic messages, one static slot per
/// static-sender node, sized for the cluster's largest ST frame.
fn cluster_skeleton(
    app: &Application,
    phy: PhyParams,
    msg_cluster: &[u16],
    global_fids: &std::collections::BTreeMap<ActivityId, FrameId>,
    cluster: u16,
) -> BusConfig {
    let mut bus = BusConfig::new(phy);

    // Per-cluster frame identifiers: keep the global criticality order,
    // re-ranked densely from 1 within the cluster.
    let mut msgs: Vec<(ActivityId, FrameId)> = global_fids
        .iter()
        .filter(|(m, _)| msg_cluster[m.index()] == cluster)
        .map(|(&m, &f)| (m, f))
        .collect();
    msgs.sort_by_key(|&(_, f)| f.number());
    bus.frame_ids = msgs
        .into_iter()
        .enumerate()
        .map(|(i, (m, _))| {
            let fid = FrameId::new(u16::try_from(i + 1).expect("fewer than 65535 dyn messages"));
            (m, fid)
        })
        .collect();

    // One static slot per node sending ST traffic on this cluster.
    let mut senders: Vec<NodeId> = app
        .messages_of_class(MessageClass::Static)
        .filter(|&m| msg_cluster[m.index()] == cluster)
        .filter_map(|m| app.sender_of(m))
        .collect();
    senders.sort_unstable();
    senders.dedup();
    bus.static_slot_owners = senders;

    bus.static_slot_len = app
        .messages_of_class(MessageClass::Static)
        .filter(|&m| msg_cluster[m.index()] == cluster)
        .map(|m| bus.comm_time(app, m))
        .max()
        .map(|c| {
            c.round_up_to(bus.phy.gd_macrotick)
                .max(bus.phy.gd_macrotick)
        })
        .unwrap_or(Time::ZERO);
    bus
}

/// The DYN-length candidate grid of one cluster: `[DYNbus_min,
/// DYNbus_max]` under the cluster's own 16 ms cycle budget, stepped
/// like the single-cluster sweeps. Empty when the cluster has no
/// dynamic messages.
fn cluster_grid(app: &Application, bus: &BusConfig, params: &OptParams) -> Vec<u32> {
    if bus.frame_ids.is_empty() {
        return Vec::new();
    }
    let min = bus.min_minislots(app).max(1);
    let budget = MAX_CYCLE - bus.st_bus();
    if budget <= Time::ZERO {
        return Vec::new();
    }
    let fit = u32::try_from(budget / bus.phy.gd_minislot).unwrap_or(u32::MAX);
    let max = fit.min(MAX_MINISLOTS);
    if min > max {
        return Vec::new();
    }
    crate::dyn_search::dyn_sweep_grid(min, max, params)
}

/// Optimises the bus access of a multi-cluster FlexRay network.
///
/// Builds a BBC-style skeleton per cluster, then runs up to
/// `max_rounds` rounds of coordinate descent on the dynamic-segment
/// lengths: each round sweeps every cluster's length in turn against
/// the network-wide cost (all other clusters held fixed), stopping
/// early once a full round brings no improvement. `max_rounds = 1` is
/// the BBC treatment; larger budgets approach a joint optimum.
///
/// With `topo.clusters == 1` this degenerates to the single-cluster
/// BBC sweep (same skeleton, same grid, same cost).
///
/// # Errors
///
/// Returns [`ModelError::InvalidConfig`] on an inconsistent topology
/// (wrong `node_cluster` length, out-of-range entries, no analysable
/// configuration at all).
pub fn optimise_network(
    platform: &Platform,
    app: &Application,
    topo: &NetworkTopology,
    phy: PhyParams,
    params: &OptParams,
    max_rounds: usize,
) -> Result<NetworkOptResult, ModelError> {
    let start = Instant::now();
    let k = topo.clusters.max(1);
    if topo.node_cluster.len() != platform.len() {
        return Err(ModelError::InvalidConfig(format!(
            "node_cluster length {} does not match {} nodes",
            topo.node_cluster.len(),
            platform.len()
        )));
    }
    if let Some(&bad) = topo.node_cluster.iter().find(|&&c| usize::from(c) >= k) {
        return Err(ModelError::InvalidConfig(format!(
            "node homed on cluster {bad}, network has {k} clusters"
        )));
    }
    let mut gateways = topo.gateways.clone();
    gateways.sort_unstable();
    gateways.dedup();
    let msg_cluster = derive_msg_clusters(app, &topo.node_cluster, &gateways);

    // Per-cluster skeletons, seeded at each cluster's minimal feasible
    // dynamic length.
    let template = BusConfig::new(phy);
    let global_fids = assign_frame_ids_by_criticality(platform, app, &template);
    let mut buses: Vec<BusConfig> = (0..k)
        .map(|c| {
            let c = u16::try_from(c).expect("validated cluster count");
            let mut bus = cluster_skeleton(app, phy, &msg_cluster, &global_fids, c);
            if !bus.frame_ids.is_empty() {
                bus.n_minislots = bus.min_minislots(app).max(1);
            }
            bus
        })
        .collect();

    let mut evaluations = 0usize;
    let mut best_cost: Option<Cost> = None;
    for _round in 0..max_rounds.max(1) {
        let mut improved = false;
        for c in 0..k {
            // Rotate cluster c into the candidate slot of a fresh
            // session; the other clusters ride along as fixed extras.
            let cu = u16::try_from(c).expect("validated cluster count");
            let extra: Vec<BusConfig> = (1..k)
                .map(|p| buses[unrotate_extra(p, c)].clone())
                .collect();
            let map: Vec<u16> = msg_cluster.iter().map(|&x| rotate(x, cu)).collect();
            let mut session = AnalysisSession::with_network(
                platform.clone(),
                app.clone(),
                extra,
                map.clone(),
                params.analysis,
            );

            let mut candidates = vec![buses[c].n_minislots];
            candidates.extend(
                cluster_grid(app, &buses[c], params)
                    .into_iter()
                    .filter(|&n| n != buses[c].n_minislots),
            );
            let mut local_best: Option<(u32, Cost)> = None;
            let mut candidate = buses[c].clone();
            for n in candidates {
                candidate.n_minislots = n;
                if candidate
                    .validate_for_cluster(app, platform.len(), &map, 0)
                    .is_err()
                {
                    continue;
                }
                let cost = session
                    .analyse_into(&candidate)
                    .unwrap_or_else(|_| Cost::infeasible());
                evaluations += 1;
                if local_best.is_none_or(|(_, b)| cost.better_than(&b)) {
                    local_best = Some((n, cost));
                }
            }
            if let Some((n, cost)) = local_best {
                buses[c].n_minislots = n;
                if best_cost.is_none_or(|b| cost.better_than(&b)) {
                    improved = true;
                }
                best_cost = Some(cost);
            }
        }
        if !improved {
            break;
        }
    }

    let cost = best_cost.ok_or_else(|| {
        ModelError::InvalidConfig("no analysable bus configuration for any cluster".into())
    })?;
    Ok(NetworkOptResult {
        clusters: buses,
        cost,
        evaluations,
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexray_model::SchedPolicy;

    /// Two clusters bridged by node 4: an ST pipeline on cluster 0 and
    /// a DYN pipeline on cluster 1, linked through a gateway relay, plus
    /// intra-cluster traffic on both buses.
    fn two_cluster_app() -> (Platform, Application, NetworkTopology) {
        let mut app = Application::new();
        let g = app.add_graph("g", Time::from_us(10_000.0), Time::from_us(9_000.0));
        let t0 = app.add_task(
            g,
            "t0",
            NodeId::new(0),
            Time::from_us(40.0),
            SchedPolicy::Scs,
            0,
        );
        let relay = app.add_task(
            g,
            "relay",
            NodeId::new(4),
            Time::from_us(20.0),
            SchedPolicy::Scs,
            0,
        );
        let t1 = app.add_task(
            g,
            "t1",
            NodeId::new(2),
            Time::from_us(40.0),
            SchedPolicy::Scs,
            0,
        );
        let st0 = app.add_message(g, "st0", 8, MessageClass::Static, 0);
        let st1 = app.add_message(g, "st1", 8, MessageClass::Static, 0);
        app.connect_relayed(t0, st0, relay, st1, t1).expect("chain");

        let h = app.add_graph("h", Time::from_us(10_000.0), Time::from_us(9_000.0));
        let a = app.add_task(
            h,
            "a",
            NodeId::new(0),
            Time::from_us(10.0),
            SchedPolicy::Fps,
            3,
        );
        let b = app.add_task(
            h,
            "b",
            NodeId::new(1),
            Time::from_us(10.0),
            SchedPolicy::Fps,
            3,
        );
        let dy0 = app.add_message(h, "dy0", 8, MessageClass::Dynamic, 1);
        app.connect(a, dy0, b).expect("edge");
        let c = app.add_task(
            h,
            "c",
            NodeId::new(2),
            Time::from_us(10.0),
            SchedPolicy::Fps,
            3,
        );
        let d = app.add_task(
            h,
            "d",
            NodeId::new(3),
            Time::from_us(10.0),
            SchedPolicy::Fps,
            3,
        );
        let dy1 = app.add_message(h, "dy1", 8, MessageClass::Dynamic, 1);
        app.connect(c, dy1, d).expect("edge");

        let topo = NetworkTopology {
            clusters: 2,
            node_cluster: vec![0, 0, 1, 1, 0],
            gateways: vec![NodeId::new(4)],
        };
        (Platform::with_nodes(5), app, topo)
    }

    #[test]
    fn two_cluster_network_is_jointly_schedulable() {
        let (platform, app, topo) = two_cluster_app();
        let params = OptParams::default();
        let result = optimise_network(
            &platform,
            &app,
            &topo,
            flexray_model::PhyParams::bmw_like(),
            &params,
            3,
        )
        .expect("optimise");
        assert!(result.is_schedulable(), "cost {:?}", result.cost);
        assert_eq!(result.clusters.len(), 2);
        assert!(result.evaluations > 0);
        // both clusters carry traffic: cluster 0 static, both dynamic
        assert!(!result.clusters[0].static_slot_owners.is_empty());
        assert_eq!(result.clusters[0].frame_ids.len(), 1);
        assert_eq!(result.clusters[1].frame_ids.len(), 1);
        assert!(result.clusters[1].n_minislots > 0);
        // the result packages into a fully validated Network
        let net = result
            .into_network(platform, app, &topo)
            .expect("valid network");
        assert_eq!(net.n_clusters(), 2);
    }

    #[test]
    fn single_cluster_degenerates_to_bbc() {
        let (platform, app, _) = two_cluster_app();
        let topo = NetworkTopology::single(platform.len());
        let params = OptParams::default();
        let phy = flexray_model::PhyParams::bmw_like();
        let net = optimise_network(&platform, &app, &topo, phy, &params, 1).expect("optimise");
        let bbc = crate::bbc(&platform, &app, phy, &params);
        assert_eq!(net.clusters.len(), 1);
        assert_eq!(net.cost, bbc.cost);
        assert_eq!(net.clusters[0].n_minislots, bbc.bus.n_minislots);
        assert_eq!(net.clusters[0].frame_ids, bbc.bus.frame_ids);
        assert_eq!(
            net.clusters[0].static_slot_owners,
            bbc.bus.static_slot_owners
        );
    }

    #[test]
    fn reanalysing_the_result_reproduces_its_cost() {
        // The reported cost must be exact for the *final* configuration
        // (not a stale intermediate from the descent).
        let (platform, app, topo) = two_cluster_app();
        let params = OptParams::default();
        let result = optimise_network(
            &platform,
            &app,
            &topo,
            flexray_model::PhyParams::bmw_like(),
            &params,
            3,
        )
        .expect("optimise");
        let extra: Vec<BusConfig> = result.clusters[1..].to_vec();
        let msg_cluster = derive_msg_clusters(&app, &topo.node_cluster, &topo.gateways);
        let mut session = AnalysisSession::with_network(
            platform.clone(),
            app.clone(),
            extra,
            msg_cluster,
            params.analysis,
        );
        let cost = session.analyse_into(&result.clusters[0]).expect("analyse");
        assert_eq!(cost, result.cost);
    }

    #[test]
    fn topology_mismatches_are_rejected() {
        let (platform, app, mut topo) = two_cluster_app();
        topo.node_cluster.pop();
        let phy = flexray_model::PhyParams::bmw_like();
        assert!(optimise_network(&platform, &app, &topo, phy, &OptParams::default(), 1).is_err());
        let (platform, app, mut topo) = two_cluster_app();
        topo.node_cluster[0] = 7; // out of range for 2 clusters
        assert!(optimise_network(&platform, &app, &topo, phy, &OptParams::default(), 1).is_err());
    }
}
