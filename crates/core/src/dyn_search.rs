//! Dynamic-segment length selection (Fig. 8 / Section 6.2.1).
//!
//! Given a fixed static-segment layout and frame-identifier assignment,
//! find the dynamic-segment length (in minislots) that minimises the
//! cost function. Two strategies, matching OBCEE and OBCCF of the
//! evaluation:
//!
//! * [`DynSearch::Exhaustive`] — analyse every candidate length;
//! * [`DynSearch::CurveFit`] — analyse a handful of lengths, interpolate
//!   all response times with Newton polynomials, and refine around the
//!   interpolated optimum (the paper's curve-fitting heuristic,
//!   5 initial points, `N_max = 10`).

use crate::evaluator::Evaluator;
use crate::newton::NewtonPoly;
use crate::params::OptParams;
use flexray_analysis::Cost;
use flexray_model::{BusConfig, Time};
use std::collections::BTreeMap;

/// Strategy for choosing the dynamic-segment length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DynSearch {
    /// Evaluate every candidate length (OBCEE).
    Exhaustive,
    /// Curve-fitting over a few evaluated points (OBCCF).
    CurveFit,
}

/// Best dynamic-segment length found and its exactly-analysed cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynChoice {
    /// Dynamic-segment length in minislots.
    pub n_minislots: u32,
    /// Cost from a full (non-interpolated) analysis at that length.
    pub cost: Cost,
}

/// Runs the selected search. Returns `None` when the system has no
/// dynamic messages or no length fits the 16 ms cycle budget; in the
/// former case the caller evaluates the static-only configuration
/// directly.
#[must_use]
pub fn determine_dyn_length(
    ev: &mut Evaluator,
    bus_template: &BusConfig,
    params: &OptParams,
    strategy: DynSearch,
) -> Option<DynChoice> {
    let (min, max) = ev.dyn_bounds(bus_template)?;
    let candidates = dyn_sweep_grid(min, max, params);
    match strategy {
        DynSearch::Exhaustive => exhaustive(ev, bus_template, &candidates),
        DynSearch::CurveFit => {
            if candidates.len() <= params.cf_initial_points + 1 {
                exhaustive(ev, bus_template, &candidates)
            } else {
                curve_fit(ev, bus_template, params, &candidates)
            }
        }
    }
}

/// The candidate grid [`determine_dyn_length`] sweeps for the given
/// bounds: `min..=max` with the configured step, widened so the grid
/// stays within `params.max_dyn_candidates`, always including `max`.
/// Public so harnesses measuring the sweep (e.g. the evaluator bench)
/// reproduce exactly the grid the optimisers run.
#[must_use]
pub fn dyn_sweep_grid(min: u32, max: u32, params: &OptParams) -> Vec<u32> {
    let span = max.saturating_sub(min);
    let step = params
        .dyn_step
        .max(span / u32::try_from(params.max_dyn_candidates.max(2)).unwrap_or(u32::MAX))
        .max(1);
    candidate_lengths(min, max, step)
}

/// The sweep grid: `min..=max` stepping by `step` minislots, always
/// including `max`.
///
/// Degenerate inputs are handled explicitly: an empty range
/// (`min > max`) yields no candidates, `min == max` yields exactly one,
/// a step of zero is treated as one, and a step larger than the range
/// yields the two endpoints.
fn candidate_lengths(min: u32, max: u32, step: u32) -> Vec<u32> {
    if min > max {
        return Vec::new();
    }
    let step = step.max(1);
    let mut v: Vec<u32> = (min..=max).step_by(step as usize).collect();
    if v.last() != Some(&max) {
        v.push(max);
    }
    v
}

fn with_length(template: &BusConfig, n: u32) -> BusConfig {
    let mut bus = template.clone();
    bus.n_minislots = n;
    bus
}

/// Analyse every candidate length through the evaluator's batched
/// DYN-length sweep (one borrowed template, no per-candidate clones)
/// and keep the first best (Fig. 5 lines 5–12).
fn exhaustive(ev: &mut Evaluator, template: &BusConfig, candidates: &[u32]) -> Option<DynChoice> {
    let costs = ev.evaluate_dyn_lengths(template, candidates);
    let mut best: Option<DynChoice> = None;
    for (&n, cost) in candidates.iter().zip(costs) {
        let better = best.is_none_or(|b| cost.better_than(&b.cost));
        if better {
            best = Some(DynChoice {
                n_minislots: n,
                cost,
            });
        }
    }
    best
}

fn curve_fit(
    ev: &mut Evaluator,
    template: &BusConfig,
    params: &OptParams,
    candidates: &[u32],
) -> Option<DynChoice> {
    // Exactly-analysed points: length -> (cost, response vector).
    let mut points: BTreeMap<u32, (Cost, Vec<Time>)> = BTreeMap::new();
    let mut best: Option<DynChoice> = None;
    let evaluate_at = |ev: &mut Evaluator,
                       n: u32,
                       points: &mut BTreeMap<u32, (Cost, Vec<Time>)>,
                       best: &mut Option<DynChoice>|
     -> Cost {
        let (cost, analysis) = ev.evaluate(&with_length(template, n));
        let responses = analysis.map(|a| a.responses).unwrap_or_default();
        points.insert(n, (cost, responses));
        if best.is_none_or(|b| cost.better_than(&b.cost)) {
            *best = Some(DynChoice {
                n_minislots: n,
                cost,
            });
        }
        cost
    };

    // Initial points: evenly spaced across the interval (paper: five).
    let k = params.cf_initial_points.max(2);
    for i in 0..k {
        let idx = i * (candidates.len() - 1) / (k - 1);
        let n = candidates[idx];
        if !points.contains_key(&n) {
            evaluate_at(ev, n, &mut points, &mut best);
        }
    }
    if let Some(b) = best {
        if b.cost.is_schedulable() {
            return best;
        }
    }

    let mut stale_rounds = 0usize;
    let mut last_best_value = best.map_or(f64::INFINITY, |b| b.cost.value());
    // Hard cap well above N_max so a pathological oscillation terminates.
    for _round in 0..params.cf_max_iterations * 4 {
        // Newton polynomial per activity over the analysed points.
        let n_activities = points.values().map(|(_, r)| r.len()).max().unwrap_or(0);
        let mut polys = vec![NewtonPoly::new(); n_activities];
        for (&x, (_, responses)) in &points {
            if responses.len() != n_activities {
                continue; // invalid configuration: no responses stored
            }
            for (poly, &r) in polys.iter_mut().zip(responses) {
                poly.add_point(f64::from(x), r.as_us());
            }
        }

        // Interpolate the cost at every candidate not yet analysed.
        let mut interp_best: Option<(u32, Cost)> = None;
        for &c in candidates {
            if points.contains_key(&c) {
                continue;
            }
            let responses: Vec<Time> = polys
                .iter()
                .map(|p| {
                    // High-degree Newton extrapolation can overflow; an
                    // absurd finite cap keeps the cost comparison sane.
                    let v = p.eval(f64::from(c));
                    let v = if v.is_finite() {
                        v.clamp(0.0, 1e12)
                    } else {
                        1e12
                    };
                    Time::from_us(v)
                })
                .collect();
            let cost = ev.cost_from_responses(&responses);
            if interp_best.is_none_or(|(_, b)| cost.better_than(&b)) {
                interp_best = Some((c, cost));
            }
        }

        // The minimum over exact and interpolated points (Fig. 8 line 11).
        let exact_best = points
            .iter()
            .map(|(&x, &(c, _))| (x, c))
            .min_by(|a, b| {
                if a.1.better_than(&b.1) {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Greater
                }
            })
            .expect("points non-empty");

        let interp_wins = interp_best.is_some_and(|(_, c)| c.better_than(&exact_best.1));
        if interp_wins {
            let (n, interp_cost) = interp_best.expect("interp_wins");
            let exact_cost = evaluate_at(ev, n, &mut points, &mut best);
            if exact_cost.is_schedulable() {
                return best; // Fig. 8 line 14
            }
            let _ = interp_cost;
        } else {
            if exact_best.1.is_schedulable() {
                return best; // Fig. 8 line 12
            }
            // Best is an already-analysed, unschedulable point: refine at
            // the most promising interpolated point instead (lines 18-19).
            match interp_best {
                Some((n, _)) => {
                    let c = evaluate_at(ev, n, &mut points, &mut best);
                    if c.is_schedulable() {
                        return best;
                    }
                }
                None => break, // every candidate analysed
            }
        }

        // Termination: N_max rounds without improvement (Fig. 8 line 15).
        let now_best = best.map_or(f64::INFINITY, |b| b.cost.value());
        if now_best < last_best_value {
            last_best_value = now_best;
            stale_rounds = 0;
        } else {
            stale_rounds += 1;
            if stale_rounds >= params.cf_max_iterations {
                break;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexray_analysis::AnalysisConfig;
    use flexray_model::*;

    /// Two nodes exchanging several dynamic messages; ST segment fixed.
    fn dyn_app(n_msgs: usize) -> (Platform, Application, BusConfig) {
        let mut app = Application::new();
        let g = app.add_graph("g", Time::from_us(4000.0), Time::from_us(2000.0));
        let mut bus = BusConfig::new(PhyParams::bmw_like());
        bus.static_slot_len = Time::from_us(20.0);
        bus.static_slot_owners = vec![NodeId::new(0), NodeId::new(1)];
        for i in 0..n_msgs {
            let s = app.add_task(
                g,
                &format!("s{i}"),
                NodeId::new(i % 2),
                Time::from_us(5.0),
                SchedPolicy::Fps,
                u32::try_from(10 + i).expect("small"),
            );
            let r = app.add_task(
                g,
                &format!("r{i}"),
                NodeId::new((i + 1) % 2),
                Time::from_us(5.0),
                SchedPolicy::Fps,
                u32::try_from(10 + i).expect("small"),
            );
            let m = app.add_message(
                g,
                &format!("m{i}"),
                16,
                MessageClass::Dynamic,
                u32::try_from(1 + i).expect("small"),
            );
            app.connect(s, m, r).expect("edges");
            bus.frame_ids
                .insert(m, FrameId::new(u16::try_from(i + 1).expect("small")));
        }
        // one static message so the ST segment is load-bearing
        let a = app.add_task(
            g,
            "a",
            NodeId::new(0),
            Time::from_us(5.0),
            SchedPolicy::Scs,
            0,
        );
        let b = app.add_task(
            g,
            "b",
            NodeId::new(1),
            Time::from_us(5.0),
            SchedPolicy::Scs,
            0,
        );
        let st = app.add_message(g, "st", 8, MessageClass::Static, 0);
        app.connect(a, st, b).expect("edges");
        (Platform::with_nodes(2), app, bus)
    }

    #[test]
    fn exhaustive_finds_schedulable_length() {
        let (p, a, bus) = dyn_app(3);
        let mut ev = Evaluator::new(p, a, AnalysisConfig::default());
        let params = OptParams::default();
        let choice = determine_dyn_length(&mut ev, &bus, &params, DynSearch::Exhaustive)
            .expect("has dynamic messages");
        assert!(choice.cost.is_schedulable(), "cost {:?}", choice.cost);
        assert!(choice.n_minislots >= bus.min_minislots(ev.app()));
    }

    #[test]
    fn curve_fit_agrees_with_exhaustive_when_schedulable() {
        let (p, a, bus) = dyn_app(3);
        let params = OptParams::default();
        let mut ev1 = Evaluator::new(p.clone(), a.clone(), AnalysisConfig::default());
        let ee = determine_dyn_length(&mut ev1, &bus, &params, DynSearch::Exhaustive)
            .expect("exhaustive");
        let mut ev2 = Evaluator::new(p, a, AnalysisConfig::default());
        let cf =
            determine_dyn_length(&mut ev2, &bus, &params, DynSearch::CurveFit).expect("curve fit");
        assert_eq!(
            ee.cost.is_schedulable(),
            cf.cost.is_schedulable(),
            "ee {ee:?} vs cf {cf:?}"
        );
    }

    #[test]
    fn curve_fit_uses_fewer_evaluations() {
        let (p, a, bus) = dyn_app(4);
        let params = OptParams {
            dyn_step: 1, // large candidate set
            ..OptParams::default()
        };
        let mut ev1 = Evaluator::new(p.clone(), a.clone(), AnalysisConfig::default());
        let _ = determine_dyn_length(&mut ev1, &bus, &params, DynSearch::Exhaustive);
        let mut ev2 = Evaluator::new(p, a, AnalysisConfig::default());
        let _ = determine_dyn_length(&mut ev2, &bus, &params, DynSearch::CurveFit);
        assert!(
            ev2.evaluations() < ev1.evaluations() / 2,
            "curve fit {} vs exhaustive {}",
            ev2.evaluations(),
            ev1.evaluations()
        );
    }

    #[test]
    fn no_dynamic_messages_yields_none() {
        let mut app = Application::new();
        let g = app.add_graph("g", Time::from_us(100.0), Time::from_us(100.0));
        app.add_task(
            g,
            "t",
            NodeId::new(0),
            Time::from_us(5.0),
            SchedPolicy::Scs,
            0,
        );
        let bus = BusConfig::new(PhyParams::bmw_like());
        let mut ev = Evaluator::new(Platform::with_nodes(1), app, AnalysisConfig::default());
        assert!(
            determine_dyn_length(&mut ev, &bus, &OptParams::default(), DynSearch::CurveFit)
                .is_none()
        );
    }

    #[test]
    fn candidate_grid_includes_max() {
        assert_eq!(candidate_lengths(10, 20, 4), vec![10, 14, 18, 20]);
        assert_eq!(candidate_lengths(10, 18, 4), vec![10, 14, 18]);
        assert_eq!(candidate_lengths(5, 5, 3), vec![5]);
    }

    #[test]
    fn candidate_grid_step_larger_than_range() {
        // A step exceeding the whole range keeps both endpoints and
        // nothing in between.
        assert_eq!(candidate_lengths(10, 20, 100), vec![10, 20]);
        assert_eq!(candidate_lengths(10, 11, u32::MAX), vec![10, 11]);
    }

    #[test]
    fn candidate_grid_single_point() {
        // min == max is one candidate, never a duplicated endpoint.
        assert_eq!(candidate_lengths(7, 7, 1), vec![7]);
        assert_eq!(candidate_lengths(7, 7, u32::MAX), vec![7]);
        assert_eq!(candidate_lengths(0, 0, 4), vec![0]);
    }

    #[test]
    fn candidate_grid_empty_range() {
        // min > max cannot happen via dyn_bounds but must not fabricate
        // an out-of-range candidate.
        assert!(candidate_lengths(10, 5, 1).is_empty());
        assert!(candidate_lengths(1, 0, 7).is_empty());
    }

    #[test]
    fn candidate_grid_zero_step_is_unit_step() {
        assert_eq!(candidate_lengths(3, 6, 0), vec![3, 4, 5, 6]);
    }

    #[test]
    fn exhaustive_with_empty_candidates_is_none() {
        let (p, a, bus) = dyn_app(2);
        let mut ev = Evaluator::new(p, a, AnalysisConfig::default());
        assert!(exhaustive(&mut ev, &bus, &[]).is_none());
        assert_eq!(ev.evaluations(), 0);
    }
}
