//! Configuration evaluation: one full scheduling + schedulability
//! analysis per candidate bus configuration.

use flexray_analysis::{analyse, Analysis, AnalysisConfig, Cost};
use flexray_model::{Application, BusConfig, MessageClass, Platform, System, Time};
use std::cell::Cell;

/// Evaluates candidate bus configurations against one fixed platform and
/// application, counting evaluations (the dominant cost of every
/// optimiser).
#[derive(Debug)]
pub struct Evaluator {
    sys: System,
    analysis_cfg: AnalysisConfig,
    evals: Cell<usize>,
}

impl Evaluator {
    /// Creates an evaluator. The initial bus configuration of `sys` is
    /// irrelevant; candidates replace it wholesale.
    #[must_use]
    pub fn new(platform: Platform, app: Application, analysis_cfg: AnalysisConfig) -> Self {
        let phy = flexray_model::PhyParams::default();
        Evaluator {
            sys: System {
                platform,
                app,
                bus: BusConfig::new(phy),
            },
            analysis_cfg,
            evals: Cell::new(0),
        }
    }

    /// The application under optimisation.
    #[must_use]
    pub fn app(&self) -> &Application {
        &self.sys.app
    }

    /// The platform under optimisation.
    #[must_use]
    pub fn platform(&self) -> &Platform {
        &self.sys.platform
    }

    /// Number of full analyses performed so far.
    #[must_use]
    pub fn evaluations(&self) -> usize {
        self.evals.get()
    }

    /// Evaluates one bus configuration: validation, global scheduling and
    /// holistic schedulability analysis. Invalid configurations get
    /// [`Cost::infeasible`] and no analysis.
    #[must_use]
    pub fn evaluate(&mut self, bus: &BusConfig) -> (Cost, Option<Analysis>) {
        if bus
            .validate_for(&self.sys.app, self.sys.platform.len())
            .is_err()
        {
            return (Cost::infeasible(), None);
        }
        self.evals.set(self.evals.get() + 1);
        self.sys.bus = bus.clone();
        match analyse(&self.sys, &self.analysis_cfg) {
            Ok(analysis) => (analysis.cost, Some(analysis)),
            Err(_) => (Cost::infeasible(), None),
        }
    }

    /// Applies the cost function of Eq. (5) to an (interpolated)
    /// response-time vector without running the analysis — the cheap
    /// inner step of the curve-fitting heuristic.
    #[must_use]
    pub fn cost_from_responses(&self, responses: &[Time]) -> Cost {
        flexray_analysis::cost_of(&self.sys, responses)
    }

    /// Communication time of the largest static message (the minimal
    /// `gdStaticSlot` of Fig. 5 line 3), rounded up to whole macroticks
    /// of `phy`. `None` if the application has no static messages.
    #[must_use]
    pub fn min_static_slot_len(&self, phy: &flexray_model::PhyParams) -> Option<Time> {
        self.sys
            .app
            .messages_of_class(MessageClass::Static)
            .map(|m| {
                let spec = self.sys.app.activity(m).as_message().expect("message");
                phy.frame_duration(spec.size_bytes)
            })
            .max()
            .map(|c| c.round_up_to(phy.gd_macrotick).max(phy.gd_macrotick))
    }

    /// Bounds of the dynamic-segment sweep in minislots for a given
    /// frame-identifier assignment and static-segment layout:
    /// `[DYNbus_min, DYNbus_max]` of Fig. 5 line 5. Returns `None` when
    /// no dynamic segment is needed (no dynamic messages) or the static
    /// segment already exceeds the 16 ms cycle budget.
    #[must_use]
    pub fn dyn_bounds(&self, bus: &BusConfig) -> Option<(u32, u32)> {
        if bus.frame_ids.is_empty() {
            return None;
        }
        let min = bus.min_minislots(&self.sys.app).max(1);
        let budget = flexray_model::MAX_CYCLE - bus.st_bus();
        if budget <= Time::ZERO {
            return None;
        }
        let fit = u32::try_from(budget / bus.phy.gd_minislot).unwrap_or(u32::MAX);
        let max = fit.min(flexray_model::MAX_MINISLOTS);
        (min <= max).then_some((min, max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexray_analysis::AnalysisConfig;
    use flexray_model::*;

    fn small_app() -> (Platform, Application) {
        let mut app = Application::new();
        let g = app.add_graph("g", Time::from_us(1000.0), Time::from_us(500.0));
        let a = app.add_task(
            g,
            "a",
            NodeId::new(0),
            Time::from_us(10.0),
            SchedPolicy::Scs,
            0,
        );
        let b = app.add_task(
            g,
            "b",
            NodeId::new(1),
            Time::from_us(10.0),
            SchedPolicy::Scs,
            0,
        );
        let st = app.add_message(g, "st", 8, MessageClass::Static, 0);
        app.connect(a, st, b).expect("edges");
        let c = app.add_task(
            g,
            "c",
            NodeId::new(0),
            Time::from_us(5.0),
            SchedPolicy::Fps,
            5,
        );
        let d = app.add_task(
            g,
            "d",
            NodeId::new(1),
            Time::from_us(5.0),
            SchedPolicy::Fps,
            5,
        );
        let dy = app.add_message(g, "dy", 4, MessageClass::Dynamic, 1);
        app.connect(c, dy, d).expect("edges");
        (Platform::with_nodes(2), app)
    }

    fn valid_bus(app: &Application) -> BusConfig {
        let mut bus = BusConfig::new(PhyParams::bmw_like());
        bus.static_slot_len = Time::from_us(20.0);
        bus.static_slot_owners = vec![NodeId::new(0), NodeId::new(1)];
        bus.n_minislots = 40;
        let dy = app.find("dy").expect("dy");
        bus.frame_ids.insert(dy, FrameId::new(1));
        bus
    }

    #[test]
    fn evaluate_counts_and_scores() {
        let (p, a) = small_app();
        let bus = valid_bus(&a);
        let mut ev = Evaluator::new(p, a, AnalysisConfig::default());
        assert_eq!(ev.evaluations(), 0);
        let (cost, analysis) = ev.evaluate(&bus);
        assert_eq!(ev.evaluations(), 1);
        assert!(analysis.is_some());
        assert!(cost.is_schedulable(), "cost {cost:?}");
    }

    #[test]
    fn invalid_bus_is_infeasible_without_eval() {
        let (p, a) = small_app();
        let mut bus = valid_bus(&a);
        bus.static_slot_owners.clear(); // ST sender loses its slot
        let mut ev = Evaluator::new(p, a, AnalysisConfig::default());
        let (cost, analysis) = ev.evaluate(&bus);
        assert!(!cost.is_schedulable());
        assert!(analysis.is_none());
        assert_eq!(ev.evaluations(), 0);
    }

    #[test]
    fn min_static_slot_covers_largest_frame() {
        let (p, a) = small_app();
        let ev = Evaluator::new(p, a, AnalysisConfig::default());
        let phy = PhyParams::bmw_like();
        let len = ev.min_static_slot_len(&phy).expect("has ST messages");
        assert!(len >= phy.frame_duration(8));
        assert!((len % phy.gd_macrotick).is_zero());
    }

    #[test]
    fn dyn_bounds_cover_assignment() {
        let (p, a) = small_app();
        let bus = valid_bus(&a);
        let ev = Evaluator::new(p, a, AnalysisConfig::default());
        let (min, max) = ev.dyn_bounds(&bus).expect("bounds");
        assert!(min >= 1);
        assert!(max > min);
        assert!(max <= MAX_MINISLOTS);
    }

    #[test]
    fn dyn_bounds_none_without_dyn_messages() {
        let (p, a) = small_app();
        let mut bus = valid_bus(&a);
        bus.frame_ids.clear();
        let ev = Evaluator::new(p, a, AnalysisConfig::default());
        assert!(ev.dyn_bounds(&bus).is_none());
    }
}
