//! Configuration evaluation: one full scheduling + schedulability
//! analysis per candidate bus configuration.
//!
//! The evaluator is a thin accounting layer over a long-lived
//! [`AnalysisSession`]: candidates are analysed *borrowed* (no `System`
//! clone per call), all analysis scratch state — including the
//! incremental DYN fixed point's pooled `DynScratch` — is reused across
//! candidates, and DYN-length sweeps take the session's
//! [`reanalyse_dyn_length`](AnalysisSession::reanalyse_dyn_length) path,
//! so the steady state of `evaluate_dyn_lengths` allocates nothing.

use flexray_analysis::{Analysis, AnalysisConfig, AnalysisSession, Cost};
use flexray_model::{Application, BusConfig, MessageClass, Platform, Time};

/// Evaluates candidate bus configurations against one fixed platform and
/// application, counting evaluations (the dominant cost of every
/// optimiser).
#[derive(Debug)]
pub struct Evaluator {
    session: AnalysisSession,
    evals: usize,
}

impl Evaluator {
    /// Creates an evaluator over a fixed platform/application pair.
    #[must_use]
    pub fn new(platform: Platform, app: Application, analysis_cfg: AnalysisConfig) -> Self {
        Evaluator {
            session: AnalysisSession::new(platform, app, analysis_cfg),
            evals: 0,
        }
    }

    /// The application under optimisation.
    #[must_use]
    pub fn app(&self) -> &Application {
        self.session.app()
    }

    /// The platform under optimisation.
    #[must_use]
    pub fn platform(&self) -> &Platform {
        self.session.platform()
    }

    /// The underlying analysis session (responses, table and diverged
    /// set of the last evaluation).
    #[must_use]
    pub fn session(&self) -> &AnalysisSession {
        &self.session
    }

    /// Number of full analyses performed so far.
    #[must_use]
    pub fn evaluations(&self) -> usize {
        self.evals
    }

    /// Evaluates one bus configuration: validation, global scheduling and
    /// holistic schedulability analysis. Invalid configurations get
    /// [`Cost::infeasible`] and no analysis. The cheap path used by the
    /// optimiser inner loops — no result snapshot is materialised; use
    /// [`Evaluator::session`] to inspect the last analysis.
    #[must_use]
    pub fn evaluate_cost(&mut self, bus: &BusConfig) -> Cost {
        if bus
            .validate_for(self.session.app(), self.session.platform().len())
            .is_err()
        {
            return Cost::infeasible();
        }
        self.evals += 1;
        self.session
            .analyse_into(bus)
            .unwrap_or_else(|_| Cost::infeasible())
    }

    /// [`Evaluator::evaluate_cost`] plus an owned snapshot of the full
    /// analysis (response vector, schedule table) for callers that need
    /// more than the cost — e.g. the curve-fitting interpolation.
    #[must_use]
    pub fn evaluate(&mut self, bus: &BusConfig) -> (Cost, Option<Analysis>) {
        if bus
            .validate_for(self.session.app(), self.session.platform().len())
            .is_err()
        {
            return (Cost::infeasible(), None);
        }
        self.evals += 1;
        match self.session.analyse_into(bus) {
            Ok(cost) => (cost, Some(self.session.snapshot())),
            Err(_) => (Cost::infeasible(), None),
        }
    }

    /// Evaluates a batch of candidate configurations, amortising every
    /// per-candidate allocation over the whole batch. Results are
    /// element-wise identical to calling [`Evaluator::evaluate_cost`]
    /// per candidate in order.
    #[must_use]
    pub fn evaluate_batch(&mut self, buses: &[BusConfig]) -> Vec<Cost> {
        buses.iter().map(|bus| self.evaluate_cost(bus)).collect()
    }

    /// Evaluates `template` at each dynamic-segment length of `lengths`
    /// — the sweep of Fig. 5 line 5 / Fig. 8 — without cloning the
    /// template per candidate: after the first analysed candidate the
    /// session re-analyses in place via
    /// [`AnalysisSession::reanalyse_dyn_length`].
    ///
    /// Results are element-wise identical to evaluating
    /// `template`-with-length candidates sequentially.
    #[must_use]
    pub fn evaluate_dyn_lengths(&mut self, template: &BusConfig, lengths: &[u32]) -> Vec<Cost> {
        let mut out = Vec::with_capacity(lengths.len());
        let mut candidate: Option<BusConfig> = None;
        // Length of the sweep candidate the session last analysed; set
        // once the session's retained bus is template-shaped.
        let mut analysed_n: Option<u32> = None;
        for &n in lengths {
            if let Some(prev_n) = analysed_n {
                // The session already holds template-with-prev_n: flip
                // the length in place, re-validate, re-analyse.
                self.session
                    .last_bus_mut()
                    .expect("analysed_n implies a retained bus")
                    .n_minislots = n;
                let valid = {
                    let bus = self.session.last_bus().expect("retained");
                    bus.validate_for(self.session.app(), self.session.platform().len())
                        .is_ok()
                };
                if !valid {
                    // Restore the retained bus so it keeps describing
                    // the candidate the session state was analysed for.
                    self.session.last_bus_mut().expect("retained").n_minislots = prev_n;
                    out.push(Cost::infeasible());
                    continue;
                }
                self.evals += 1;
                analysed_n = Some(n);
                out.push(
                    self.session
                        .reanalyse_dyn_length(n)
                        .unwrap_or_else(|_| Cost::infeasible()),
                );
            } else {
                let bus = candidate.get_or_insert_with(|| template.clone());
                bus.n_minislots = n;
                let cost = self.evaluate_cost(bus);
                // evaluate_cost ran analyse_into (and stored the bus in
                // the session) unless validation rejected the candidate.
                if self.session.last_bus() == Some(&*bus) {
                    analysed_n = Some(n);
                }
                out.push(cost);
            }
        }
        out
    }

    /// Applies the cost function of Eq. (5) to an (interpolated)
    /// response-time vector without running the analysis — the cheap
    /// inner step of the curve-fitting heuristic.
    #[must_use]
    pub fn cost_from_responses(&self, responses: &[Time]) -> Cost {
        // Eq. (5) only consults the application deadlines, so an empty
        // placeholder bus serves the borrowed view.
        let bus = BusConfig::new(flexray_model::PhyParams::default());
        let view =
            flexray_model::SystemView::new(self.session.platform(), self.session.app(), &bus);
        flexray_analysis::cost_of(view, responses)
    }

    /// Communication time of the largest static message (the minimal
    /// `gdStaticSlot` of Fig. 5 line 3), rounded up to whole macroticks
    /// of `phy`. `None` if the application has no static messages.
    #[must_use]
    pub fn min_static_slot_len(&self, phy: &flexray_model::PhyParams) -> Option<Time> {
        let app = self.session.app();
        app.messages_of_class(MessageClass::Static)
            .map(|m| {
                let spec = app.activity(m).as_message().expect("message");
                phy.frame_duration(spec.size_bytes)
            })
            .max()
            .map(|c| c.round_up_to(phy.gd_macrotick).max(phy.gd_macrotick))
    }

    /// Bounds of the dynamic-segment sweep in minislots for a given
    /// frame-identifier assignment and static-segment layout:
    /// `[DYNbus_min, DYNbus_max]` of Fig. 5 line 5. Returns `None` when
    /// no dynamic segment is needed (no dynamic messages) or the static
    /// segment already exceeds the 16 ms cycle budget.
    #[must_use]
    pub fn dyn_bounds(&self, bus: &BusConfig) -> Option<(u32, u32)> {
        if bus.frame_ids.is_empty() {
            return None;
        }
        let min = bus.min_minislots(self.session.app()).max(1);
        let budget = flexray_model::MAX_CYCLE - bus.st_bus();
        if budget <= Time::ZERO {
            return None;
        }
        let fit = u32::try_from(budget / bus.phy.gd_minislot).unwrap_or(u32::MAX);
        let max = fit.min(flexray_model::MAX_MINISLOTS);
        (min <= max).then_some((min, max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexray_analysis::AnalysisConfig;
    use flexray_model::*;

    fn small_app() -> (Platform, Application) {
        let mut app = Application::new();
        let g = app.add_graph("g", Time::from_us(1000.0), Time::from_us(500.0));
        let a = app.add_task(
            g,
            "a",
            NodeId::new(0),
            Time::from_us(10.0),
            SchedPolicy::Scs,
            0,
        );
        let b = app.add_task(
            g,
            "b",
            NodeId::new(1),
            Time::from_us(10.0),
            SchedPolicy::Scs,
            0,
        );
        let st = app.add_message(g, "st", 8, MessageClass::Static, 0);
        app.connect(a, st, b).expect("edges");
        let c = app.add_task(
            g,
            "c",
            NodeId::new(0),
            Time::from_us(5.0),
            SchedPolicy::Fps,
            5,
        );
        let d = app.add_task(
            g,
            "d",
            NodeId::new(1),
            Time::from_us(5.0),
            SchedPolicy::Fps,
            5,
        );
        let dy = app.add_message(g, "dy", 4, MessageClass::Dynamic, 1);
        app.connect(c, dy, d).expect("edges");
        (Platform::with_nodes(2), app)
    }

    fn valid_bus(app: &Application) -> BusConfig {
        let mut bus = BusConfig::new(PhyParams::bmw_like());
        bus.static_slot_len = Time::from_us(20.0);
        bus.static_slot_owners = vec![NodeId::new(0), NodeId::new(1)];
        bus.n_minislots = 40;
        let dy = app.find("dy").expect("dy");
        bus.frame_ids.insert(dy, FrameId::new(1));
        bus
    }

    #[test]
    fn evaluate_counts_and_scores() {
        let (p, a) = small_app();
        let bus = valid_bus(&a);
        let mut ev = Evaluator::new(p, a, AnalysisConfig::default());
        assert_eq!(ev.evaluations(), 0);
        let (cost, analysis) = ev.evaluate(&bus);
        assert_eq!(ev.evaluations(), 1);
        assert!(analysis.is_some());
        assert!(cost.is_schedulable(), "cost {cost:?}");
    }

    #[test]
    fn invalid_bus_is_infeasible_without_eval() {
        let (p, a) = small_app();
        let mut bus = valid_bus(&a);
        bus.static_slot_owners.clear(); // ST sender loses its slot
        let mut ev = Evaluator::new(p, a, AnalysisConfig::default());
        let (cost, analysis) = ev.evaluate(&bus);
        assert!(!cost.is_schedulable());
        assert!(analysis.is_none());
        assert_eq!(ev.evaluations(), 0);
    }

    #[test]
    fn min_static_slot_covers_largest_frame() {
        let (p, a) = small_app();
        let ev = Evaluator::new(p, a, AnalysisConfig::default());
        let phy = PhyParams::bmw_like();
        let len = ev.min_static_slot_len(&phy).expect("has ST messages");
        assert!(len >= phy.frame_duration(8));
        assert!((len % phy.gd_macrotick).is_zero());
    }

    #[test]
    fn dyn_bounds_cover_assignment() {
        let (p, a) = small_app();
        let bus = valid_bus(&a);
        let ev = Evaluator::new(p, a, AnalysisConfig::default());
        let (min, max) = ev.dyn_bounds(&bus).expect("bounds");
        assert!(min >= 1);
        assert!(max > min);
        assert!(max <= MAX_MINISLOTS);
    }

    #[test]
    fn dyn_bounds_none_without_dyn_messages() {
        let (p, a) = small_app();
        let mut bus = valid_bus(&a);
        bus.frame_ids.clear();
        let ev = Evaluator::new(p, a, AnalysisConfig::default());
        assert!(ev.dyn_bounds(&bus).is_none());
    }

    #[test]
    fn evaluate_cost_matches_evaluate() {
        let (p, a) = small_app();
        let bus = valid_bus(&a);
        let mut ev1 = Evaluator::new(p.clone(), a.clone(), AnalysisConfig::default());
        let mut ev2 = Evaluator::new(p, a, AnalysisConfig::default());
        let (cost_full, _) = ev1.evaluate(&bus);
        let cost_cheap = ev2.evaluate_cost(&bus);
        assert_eq!(cost_full, cost_cheap);
        assert_eq!(ev1.evaluations(), ev2.evaluations());
    }

    #[test]
    fn batch_matches_sequential() {
        let (p, a) = small_app();
        let template = valid_bus(&a);
        let mut buses = Vec::new();
        for n in [20u32, 40, 60, 0, 80] {
            let mut b = template.clone();
            b.n_minislots = n; // n = 0 is invalid (frame cannot fit)
            buses.push(b);
        }
        let mut ev_batch = Evaluator::new(p.clone(), a.clone(), AnalysisConfig::default());
        let batch = ev_batch.evaluate_batch(&buses);
        let mut ev_seq = Evaluator::new(p, a, AnalysisConfig::default());
        let seq: Vec<Cost> = buses.iter().map(|b| ev_seq.evaluate_cost(b)).collect();
        assert_eq!(batch, seq);
        assert_eq!(ev_batch.evaluations(), ev_seq.evaluations());
    }

    #[test]
    fn dyn_length_sweep_matches_per_candidate_clones() {
        let (p, a) = small_app();
        let template = valid_bus(&a);
        let lengths = [20u32, 40, 0, 60, 13, 80];
        let mut ev_sweep = Evaluator::new(p.clone(), a.clone(), AnalysisConfig::default());
        let swept = ev_sweep.evaluate_dyn_lengths(&template, &lengths);
        let mut ev_seq = Evaluator::new(p, a, AnalysisConfig::default());
        let seq: Vec<Cost> = lengths
            .iter()
            .map(|&n| {
                let mut b = template.clone();
                b.n_minislots = n;
                ev_seq.evaluate_cost(&b)
            })
            .collect();
        assert_eq!(swept, seq);
        assert_eq!(ev_sweep.evaluations(), ev_seq.evaluations());
    }

    #[test]
    fn sweep_keeps_retained_bus_in_sync_with_session_state() {
        let (p, a) = small_app();
        let template = valid_bus(&a);
        let mut ev = Evaluator::new(p, a, AnalysisConfig::default());
        // 40 is analysed, 0 is rejected by validation mid-sweep: the
        // retained bus must keep describing the analysed candidate.
        let costs = ev.evaluate_dyn_lengths(&template, &[40, 0]);
        assert!(costs[0].is_schedulable());
        assert!(!costs[1].is_schedulable());
        let retained = ev.session().last_bus().expect("retained");
        assert_eq!(retained.n_minislots, 40);
        assert_eq!(ev.session().cost(), costs[0]);
    }

    #[test]
    fn sweep_starting_with_invalid_length_recovers() {
        let (p, a) = small_app();
        let template = valid_bus(&a);
        // first candidates invalid (frame cannot fit), later ones valid
        let lengths = [0u32, 1, 40, 60];
        let mut ev = Evaluator::new(p, a, AnalysisConfig::default());
        let costs = ev.evaluate_dyn_lengths(&template, &lengths);
        assert!(!costs[0].is_schedulable());
        assert!(!costs[1].is_schedulable());
        assert!(costs[2].is_schedulable());
        assert_eq!(ev.evaluations(), 2);
    }
}
