//! Configuration evaluation: one full scheduling + schedulability
//! analysis per candidate bus configuration.
//!
//! The evaluator is a thin accounting layer over a long-lived
//! [`AnalysisSession`]: candidates are analysed *borrowed* (no `System`
//! clone per call), all analysis scratch state — including the
//! incremental DYN fixed point's pooled `DynScratch` — is reused across
//! candidates, and DYN-length sweeps take the session's
//! [`reanalyse_dyn_length`](AnalysisSession::reanalyse_dyn_length) path,
//! so the steady state of `evaluate_dyn_lengths` allocates nothing.
//!
//! With [`Evaluator::with_threads`] the batch entry points fan
//! candidates across a small pool of warm sessions — one per worker,
//! built once, each with its own scratch — on the scoped work-stealing
//! pool of [`flexray_util`]. Every candidate's analysis is a pure
//! function of the candidate (sessions only skip provably
//! input-independent work), and results are merged in input order, so
//! parallel output is bit-identical to serial for any thread count.

use flexray_analysis::{Analysis, AnalysisConfig, AnalysisSession, Cost};
use flexray_model::{Application, BusConfig, MessageClass, Platform, Time};
use flexray_util::scoped_map_with;

/// Evaluates candidate bus configurations against one fixed platform and
/// application, counting evaluations (the dominant cost of every
/// optimiser).
#[derive(Debug)]
pub struct Evaluator {
    session: AnalysisSession,
    /// Warm sessions of the extra workers (parallel mode): built once,
    /// reused across batches, one per worker beyond the primary.
    workers: Vec<AnalysisSession>,
    evals: usize,
}

/// One candidate evaluation against an arbitrary session — the body of
/// [`Evaluator::evaluate_cost`] without the accounting — returning the
/// cost and whether an analysis actually ran.
fn analyse_one(session: &mut AnalysisSession, bus: &BusConfig) -> (Cost, bool) {
    if bus
        .validate_for(session.app(), session.platform().len())
        .is_err()
    {
        return (Cost::infeasible(), false);
    }
    let cost = session
        .analyse_into(bus)
        .unwrap_or_else(|_| Cost::infeasible());
    (cost, true)
}

/// The serial DYN-length sweep of [`Evaluator::evaluate_dyn_lengths`]
/// against an arbitrary session, returning the per-length costs and how
/// many candidates were actually analysed.
fn sweep_dyn_lengths(
    session: &mut AnalysisSession,
    template: &BusConfig,
    lengths: &[u32],
) -> (Vec<Cost>, usize) {
    let mut out = Vec::with_capacity(lengths.len());
    let mut analysed = 0usize;
    let mut candidate: Option<BusConfig> = None;
    // Length of the sweep candidate the session last analysed; set
    // once the session's retained bus is template-shaped.
    let mut analysed_n: Option<u32> = None;
    for &n in lengths {
        if let Some(prev_n) = analysed_n {
            // The session already holds template-with-prev_n: flip
            // the length in place, re-validate, re-analyse.
            session
                .last_bus_mut()
                .expect("analysed_n implies a retained bus")
                .n_minislots = n;
            let valid = {
                let bus = session.last_bus().expect("retained");
                bus.validate_for(session.app(), session.platform().len())
                    .is_ok()
            };
            if !valid {
                // Restore the retained bus so it keeps describing
                // the candidate the session state was analysed for.
                session.last_bus_mut().expect("retained").n_minislots = prev_n;
                out.push(Cost::infeasible());
                continue;
            }
            analysed += 1;
            analysed_n = Some(n);
            out.push(
                session
                    .reanalyse_dyn_length(n)
                    .unwrap_or_else(|_| Cost::infeasible()),
            );
        } else {
            let bus = candidate.get_or_insert_with(|| template.clone());
            bus.n_minislots = n;
            let (cost, ran) = analyse_one(session, bus);
            if ran {
                analysed += 1;
            }
            // analyse_one stored the bus in the session unless
            // validation rejected the candidate.
            if session.last_bus() == Some(&*bus) {
                analysed_n = Some(n);
            }
            out.push(cost);
        }
    }
    (out, analysed)
}

impl Evaluator {
    /// Creates a serial evaluator over a fixed platform/application
    /// pair (one warm session; batches run in input order on the
    /// calling thread).
    #[must_use]
    pub fn new(platform: Platform, app: Application, analysis_cfg: AnalysisConfig) -> Self {
        Evaluator::with_threads(platform, app, analysis_cfg, 1)
    }

    /// Creates an evaluator whose batch entry points
    /// ([`Evaluator::evaluate_batch`],
    /// [`Evaluator::evaluate_dyn_lengths`]) fan candidates across
    /// `threads` warm [`AnalysisSession`]s on scoped worker threads
    /// (`0` = all cores, `1` = serial). Results are bit-identical to
    /// the serial evaluator for any thread count: every candidate's
    /// cost is a pure function of the candidate, results merge in
    /// input order, and the evaluation counter advances exactly as the
    /// serial order would. Single-candidate entry points always run on
    /// the primary session.
    #[must_use]
    pub fn with_threads(
        platform: Platform,
        app: Application,
        analysis_cfg: AnalysisConfig,
        threads: usize,
    ) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            threads
        };
        let workers = (1..threads)
            .map(|_| AnalysisSession::new(platform.clone(), app.clone(), analysis_cfg))
            .collect();
        Evaluator {
            session: AnalysisSession::new(platform, app, analysis_cfg),
            workers,
            evals: 0,
        }
    }

    /// Number of warm analysis sessions the batch entry points fan out
    /// over (1 = serial).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.workers.len() + 1
    }

    /// The application under optimisation.
    #[must_use]
    pub fn app(&self) -> &Application {
        self.session.app()
    }

    /// The platform under optimisation.
    #[must_use]
    pub fn platform(&self) -> &Platform {
        self.session.platform()
    }

    /// The underlying analysis session (responses, table and diverged
    /// set of the last evaluation).
    #[must_use]
    pub fn session(&self) -> &AnalysisSession {
        &self.session
    }

    /// Number of full analyses performed so far.
    #[must_use]
    pub fn evaluations(&self) -> usize {
        self.evals
    }

    /// Evaluates one bus configuration: validation, global scheduling and
    /// holistic schedulability analysis. Invalid configurations get
    /// [`Cost::infeasible`] and no analysis. The cheap path used by the
    /// optimiser inner loops — no result snapshot is materialised; use
    /// [`Evaluator::session`] to inspect the last analysis.
    #[must_use]
    pub fn evaluate_cost(&mut self, bus: &BusConfig) -> Cost {
        let (cost, ran) = analyse_one(&mut self.session, bus);
        if ran {
            self.evals += 1;
        }
        cost
    }

    /// [`Evaluator::evaluate_cost`] plus an owned snapshot of the full
    /// analysis (response vector, schedule table) for callers that need
    /// more than the cost — e.g. the curve-fitting interpolation.
    #[must_use]
    pub fn evaluate(&mut self, bus: &BusConfig) -> (Cost, Option<Analysis>) {
        if bus
            .validate_for(self.session.app(), self.session.platform().len())
            .is_err()
        {
            return (Cost::infeasible(), None);
        }
        self.evals += 1;
        match self.session.analyse_into(bus) {
            Ok(cost) => (cost, Some(self.session.snapshot())),
            Err(_) => (Cost::infeasible(), None),
        }
    }

    /// Evaluates a batch of candidate configurations, amortising every
    /// per-candidate allocation over the whole batch. With more than
    /// one configured worker the candidates are work-stolen across the
    /// warm sessions on scoped threads. Results are element-wise
    /// identical to calling [`Evaluator::evaluate_cost`] per candidate
    /// in order — for any thread count — and the evaluation counter
    /// advances identically.
    #[must_use]
    pub fn evaluate_batch(&mut self, buses: &[BusConfig]) -> Vec<Cost> {
        if self.workers.is_empty() || buses.len() < 2 {
            return buses.iter().map(|bus| self.evaluate_cost(bus)).collect();
        }
        let mut sessions: Vec<&mut AnalysisSession> = std::iter::once(&mut self.session)
            .chain(self.workers.iter_mut())
            .collect();
        let results = scoped_map_with(&mut sessions, buses.len(), |session, i| {
            analyse_one(session, &buses[i])
        });
        let mut costs = Vec::with_capacity(results.len());
        for (cost, ran) in results {
            if ran {
                self.evals += 1;
            }
            costs.push(cost);
        }
        costs
    }

    /// Evaluates `template` at each dynamic-segment length of `lengths`
    /// — the sweep of Fig. 5 line 5 / Fig. 8 — without cloning the
    /// template per candidate: after the first analysed candidate the
    /// session re-analyses in place via
    /// [`AnalysisSession::reanalyse_dyn_length`].
    ///
    /// Results are element-wise identical to evaluating
    /// `template`-with-length candidates sequentially, for any thread
    /// count: with multiple workers the length list is split into one
    /// contiguous chunk per warm session, each chunk runs the serial
    /// incremental sweep, and since every candidate's cost is a pure
    /// function of `(template, length)` the concatenation equals the
    /// serial sweep bit for bit. In parallel mode
    /// [`Evaluator::session`] afterwards reflects the last candidate of
    /// the *primary worker's* chunk, not of the whole sweep.
    #[must_use]
    pub fn evaluate_dyn_lengths(&mut self, template: &BusConfig, lengths: &[u32]) -> Vec<Cost> {
        if self.workers.is_empty() || lengths.len() < 2 {
            let (costs, analysed) = sweep_dyn_lengths(&mut self.session, template, lengths);
            self.evals += analysed;
            return costs;
        }
        let threads = self.threads().min(lengths.len());
        let chunk = lengths.len().div_ceil(threads);
        let chunks: Vec<&[u32]> = lengths.chunks(chunk).collect();
        let mut sessions: Vec<&mut AnalysisSession> = std::iter::once(&mut self.session)
            .chain(self.workers.iter_mut())
            .take(chunks.len())
            .collect();
        let results = scoped_map_with(&mut sessions, chunks.len(), |session, i| {
            sweep_dyn_lengths(session, template, chunks[i])
        });
        let mut out = Vec::with_capacity(lengths.len());
        for (costs, analysed) in results {
            self.evals += analysed;
            out.extend(costs);
        }
        out
    }

    /// Applies the cost function of Eq. (5) to an (interpolated)
    /// response-time vector without running the analysis — the cheap
    /// inner step of the curve-fitting heuristic.
    #[must_use]
    pub fn cost_from_responses(&self, responses: &[Time]) -> Cost {
        // Eq. (5) only consults the application deadlines, so an empty
        // placeholder bus serves the borrowed view.
        let bus = BusConfig::new(flexray_model::PhyParams::default());
        let view =
            flexray_model::SystemView::new(self.session.platform(), self.session.app(), &bus);
        flexray_analysis::cost_of(view, responses)
    }

    /// Communication time of the largest static message (the minimal
    /// `gdStaticSlot` of Fig. 5 line 3), rounded up to whole macroticks
    /// of `phy`. `None` if the application has no static messages.
    #[must_use]
    pub fn min_static_slot_len(&self, phy: &flexray_model::PhyParams) -> Option<Time> {
        let app = self.session.app();
        app.messages_of_class(MessageClass::Static)
            .map(|m| {
                let spec = app.activity(m).as_message().expect("message");
                phy.frame_duration(spec.size_bytes)
            })
            .max()
            .map(|c| c.round_up_to(phy.gd_macrotick).max(phy.gd_macrotick))
    }

    /// Bounds of the dynamic-segment sweep in minislots for a given
    /// frame-identifier assignment and static-segment layout:
    /// `[DYNbus_min, DYNbus_max]` of Fig. 5 line 5. Returns `None` when
    /// no dynamic segment is needed (no dynamic messages) or the static
    /// segment already exceeds the 16 ms cycle budget.
    #[must_use]
    pub fn dyn_bounds(&self, bus: &BusConfig) -> Option<(u32, u32)> {
        if bus.frame_ids.is_empty() {
            return None;
        }
        let min = bus.min_minislots(self.session.app()).max(1);
        let budget = flexray_model::MAX_CYCLE - bus.st_bus();
        if budget <= Time::ZERO {
            return None;
        }
        let fit = u32::try_from(budget / bus.phy.gd_minislot).unwrap_or(u32::MAX);
        let max = fit.min(flexray_model::MAX_MINISLOTS);
        (min <= max).then_some((min, max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexray_analysis::AnalysisConfig;
    use flexray_model::*;

    fn small_app() -> (Platform, Application) {
        let mut app = Application::new();
        let g = app.add_graph("g", Time::from_us(1000.0), Time::from_us(500.0));
        let a = app.add_task(
            g,
            "a",
            NodeId::new(0),
            Time::from_us(10.0),
            SchedPolicy::Scs,
            0,
        );
        let b = app.add_task(
            g,
            "b",
            NodeId::new(1),
            Time::from_us(10.0),
            SchedPolicy::Scs,
            0,
        );
        let st = app.add_message(g, "st", 8, MessageClass::Static, 0);
        app.connect(a, st, b).expect("edges");
        let c = app.add_task(
            g,
            "c",
            NodeId::new(0),
            Time::from_us(5.0),
            SchedPolicy::Fps,
            5,
        );
        let d = app.add_task(
            g,
            "d",
            NodeId::new(1),
            Time::from_us(5.0),
            SchedPolicy::Fps,
            5,
        );
        let dy = app.add_message(g, "dy", 4, MessageClass::Dynamic, 1);
        app.connect(c, dy, d).expect("edges");
        (Platform::with_nodes(2), app)
    }

    fn valid_bus(app: &Application) -> BusConfig {
        let mut bus = BusConfig::new(PhyParams::bmw_like());
        bus.static_slot_len = Time::from_us(20.0);
        bus.static_slot_owners = vec![NodeId::new(0), NodeId::new(1)];
        bus.n_minislots = 40;
        let dy = app.find("dy").expect("dy");
        bus.frame_ids.insert(dy, FrameId::new(1));
        bus
    }

    #[test]
    fn evaluate_counts_and_scores() {
        let (p, a) = small_app();
        let bus = valid_bus(&a);
        let mut ev = Evaluator::new(p, a, AnalysisConfig::default());
        assert_eq!(ev.evaluations(), 0);
        let (cost, analysis) = ev.evaluate(&bus);
        assert_eq!(ev.evaluations(), 1);
        assert!(analysis.is_some());
        assert!(cost.is_schedulable(), "cost {cost:?}");
    }

    #[test]
    fn invalid_bus_is_infeasible_without_eval() {
        let (p, a) = small_app();
        let mut bus = valid_bus(&a);
        bus.static_slot_owners.clear(); // ST sender loses its slot
        let mut ev = Evaluator::new(p, a, AnalysisConfig::default());
        let (cost, analysis) = ev.evaluate(&bus);
        assert!(!cost.is_schedulable());
        assert!(analysis.is_none());
        assert_eq!(ev.evaluations(), 0);
    }

    #[test]
    fn min_static_slot_covers_largest_frame() {
        let (p, a) = small_app();
        let ev = Evaluator::new(p, a, AnalysisConfig::default());
        let phy = PhyParams::bmw_like();
        let len = ev.min_static_slot_len(&phy).expect("has ST messages");
        assert!(len >= phy.frame_duration(8));
        assert!((len % phy.gd_macrotick).is_zero());
    }

    #[test]
    fn dyn_bounds_cover_assignment() {
        let (p, a) = small_app();
        let bus = valid_bus(&a);
        let ev = Evaluator::new(p, a, AnalysisConfig::default());
        let (min, max) = ev.dyn_bounds(&bus).expect("bounds");
        assert!(min >= 1);
        assert!(max > min);
        assert!(max <= MAX_MINISLOTS);
    }

    #[test]
    fn dyn_bounds_none_without_dyn_messages() {
        let (p, a) = small_app();
        let mut bus = valid_bus(&a);
        bus.frame_ids.clear();
        let ev = Evaluator::new(p, a, AnalysisConfig::default());
        assert!(ev.dyn_bounds(&bus).is_none());
    }

    #[test]
    fn evaluate_cost_matches_evaluate() {
        let (p, a) = small_app();
        let bus = valid_bus(&a);
        let mut ev1 = Evaluator::new(p.clone(), a.clone(), AnalysisConfig::default());
        let mut ev2 = Evaluator::new(p, a, AnalysisConfig::default());
        let (cost_full, _) = ev1.evaluate(&bus);
        let cost_cheap = ev2.evaluate_cost(&bus);
        assert_eq!(cost_full, cost_cheap);
        assert_eq!(ev1.evaluations(), ev2.evaluations());
    }

    #[test]
    fn batch_matches_sequential() {
        let (p, a) = small_app();
        let template = valid_bus(&a);
        let mut buses = Vec::new();
        for n in [20u32, 40, 60, 0, 80] {
            let mut b = template.clone();
            b.n_minislots = n; // n = 0 is invalid (frame cannot fit)
            buses.push(b);
        }
        let mut ev_batch = Evaluator::new(p.clone(), a.clone(), AnalysisConfig::default());
        let batch = ev_batch.evaluate_batch(&buses);
        let mut ev_seq = Evaluator::new(p, a, AnalysisConfig::default());
        let seq: Vec<Cost> = buses.iter().map(|b| ev_seq.evaluate_cost(b)).collect();
        assert_eq!(batch, seq);
        assert_eq!(ev_batch.evaluations(), ev_seq.evaluations());
    }

    #[test]
    fn dyn_length_sweep_matches_per_candidate_clones() {
        let (p, a) = small_app();
        let template = valid_bus(&a);
        let lengths = [20u32, 40, 0, 60, 13, 80];
        let mut ev_sweep = Evaluator::new(p.clone(), a.clone(), AnalysisConfig::default());
        let swept = ev_sweep.evaluate_dyn_lengths(&template, &lengths);
        let mut ev_seq = Evaluator::new(p, a, AnalysisConfig::default());
        let seq: Vec<Cost> = lengths
            .iter()
            .map(|&n| {
                let mut b = template.clone();
                b.n_minislots = n;
                ev_seq.evaluate_cost(&b)
            })
            .collect();
        assert_eq!(swept, seq);
        assert_eq!(ev_sweep.evaluations(), ev_seq.evaluations());
    }

    #[test]
    fn parallel_batch_matches_serial_for_thread_counts() {
        let (p, a) = small_app();
        let template = valid_bus(&a);
        let mut buses = Vec::new();
        for n in [20u32, 40, 60, 0, 80, 13, 100] {
            let mut b = template.clone();
            b.n_minislots = n; // n = 0 is invalid (frame cannot fit)
            buses.push(b);
        }
        let mut serial = Evaluator::new(p.clone(), a.clone(), AnalysisConfig::default());
        let expected = serial.evaluate_batch(&buses);
        for threads in [2usize, 4] {
            let mut par =
                Evaluator::with_threads(p.clone(), a.clone(), AnalysisConfig::default(), threads);
            assert_eq!(par.threads(), threads);
            assert_eq!(par.evaluate_batch(&buses), expected, "threads {threads}");
            assert_eq!(par.evaluations(), serial.evaluations(), "threads {threads}");
        }
    }

    #[test]
    fn parallel_dyn_sweep_matches_serial_for_thread_counts() {
        let (p, a) = small_app();
        let template = valid_bus(&a);
        // invalid lengths scattered through the list, more lengths than
        // workers and (for threads 16) more workers than lengths
        let lengths = [20u32, 40, 0, 60, 13, 80, 37, 100, 1];
        let mut serial = Evaluator::new(p.clone(), a.clone(), AnalysisConfig::default());
        let expected = serial.evaluate_dyn_lengths(&template, &lengths);
        for threads in [2usize, 4, 16] {
            let mut par =
                Evaluator::with_threads(p.clone(), a.clone(), AnalysisConfig::default(), threads);
            assert_eq!(
                par.evaluate_dyn_lengths(&template, &lengths),
                expected,
                "threads {threads}"
            );
            assert_eq!(par.evaluations(), serial.evaluations(), "threads {threads}");
        }
    }

    #[test]
    fn sweep_keeps_retained_bus_in_sync_with_session_state() {
        let (p, a) = small_app();
        let template = valid_bus(&a);
        let mut ev = Evaluator::new(p, a, AnalysisConfig::default());
        // 40 is analysed, 0 is rejected by validation mid-sweep: the
        // retained bus must keep describing the analysed candidate.
        let costs = ev.evaluate_dyn_lengths(&template, &[40, 0]);
        assert!(costs[0].is_schedulable());
        assert!(!costs[1].is_schedulable());
        let retained = ev.session().last_bus().expect("retained");
        assert_eq!(retained.n_minislots, 40);
        assert_eq!(ev.session().cost(), costs[0]);
    }

    #[test]
    fn sweep_starting_with_invalid_length_recovers() {
        let (p, a) = small_app();
        let template = valid_bus(&a);
        // first candidates invalid (frame cannot fit), later ones valid
        let lengths = [0u32, 1, 40, 60];
        let mut ev = Evaluator::new(p, a, AnalysisConfig::default());
        let costs = ev.evaluate_dyn_lengths(&template, &lengths);
        assert!(!costs[0].is_schedulable());
        assert!(!costs[1].is_schedulable());
        assert!(costs[2].is_schedulable());
        assert_eq!(ev.evaluations(), 2);
    }
}
