//! Newton divided-difference interpolation for the curve-fitting
//! heuristic (Section 6.2.1).
//!
//! The paper interpolates message response times over a handful of
//! analysed dynamic-segment lengths with a Newton polynomial, "which is
//! extremely fast, in particular when recalculating the values after a
//! new point has been added".

/// A Newton-form interpolation polynomial over sample points
/// `(x_i, y_i)`.
///
/// # Examples
///
/// ```
/// use flexray_opt::NewtonPoly;
///
/// let mut p = NewtonPoly::new();
/// p.add_point(0.0, 1.0);
/// p.add_point(1.0, 3.0);
/// p.add_point(2.0, 9.0); // fits 2x^2 + 1 exactly? no: unique quadratic
/// assert!((p.eval(1.0) - 3.0).abs() < 1e-9);
/// assert!((p.eval(0.0) - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NewtonPoly {
    xs: Vec<f64>,
    /// Divided-difference coefficients `f[x0], f[x0,x1], ...`.
    coeffs: Vec<f64>,
    /// Last diagonal of the divided-difference table, needed to extend
    /// incrementally.
    diagonal: Vec<f64>,
}

impl NewtonPoly {
    /// An empty polynomial (no points yet; [`NewtonPoly::eval`] returns
    /// 0 until a point is added).
    #[must_use]
    pub fn new() -> Self {
        NewtonPoly::default()
    }

    /// Number of sample points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// `true` if no points have been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Adds a sample point, updating the divided differences in `O(n)`.
    ///
    /// # Panics
    ///
    /// Panics if `x` duplicates an existing sample abscissa.
    pub fn add_point(&mut self, x: f64, y: f64) {
        assert!(
            self.xs.iter().all(|&xi| (xi - x).abs() > f64::EPSILON),
            "duplicate interpolation point x = {x}"
        );
        // Extend the divided-difference diagonal:
        // new_diag[0] = y; new_diag[k] = (new_diag[k-1] - old_diag[k-1]) /
        // (x - xs[n-k]).
        let n = self.xs.len();
        let mut new_diag = Vec::with_capacity(n + 1);
        new_diag.push(y);
        for k in 1..=n {
            let prev = new_diag[k - 1];
            let old = self.diagonal[k - 1];
            let dx = x - self.xs[n - k];
            new_diag.push((prev - old) / dx);
        }
        self.coeffs.push(*new_diag.last().expect("non-empty"));
        self.diagonal = new_diag;
        self.xs.push(x);
    }

    /// Evaluates the polynomial at `x` (Horner over the Newton basis).
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        let mut acc = 0.0;
        for i in (0..self.coeffs.len()).rev() {
            acc = acc * (x - self.xs[i]) + self.coeffs[i];
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_sample_points() {
        let mut p = NewtonPoly::new();
        let pts = [(1.0, 4.0), (2.0, -1.0), (5.0, 2.5), (7.0, 0.0)];
        for &(x, y) in &pts {
            p.add_point(x, y);
        }
        for &(x, y) in &pts {
            assert!((p.eval(x) - y).abs() < 1e-9, "at {x}");
        }
    }

    #[test]
    fn interpolates_quadratic_exactly() {
        let f = |x: f64| 3.0 * x * x - 2.0 * x + 7.0;
        let mut p = NewtonPoly::new();
        for x in [0.0, 4.0, 9.0] {
            p.add_point(x, f(x));
        }
        for x in [-2.0, 1.5, 20.0] {
            assert!((p.eval(x) - f(x)).abs() < 1e-6, "at {x}");
        }
    }

    #[test]
    fn incremental_matches_batch() {
        let f = |x: f64| x.powi(3) - 4.0 * x + 1.0;
        let mut incremental = NewtonPoly::new();
        for x in [0.0, 1.0, 3.0, 6.0] {
            incremental.add_point(x, f(x));
        }
        // a cubic through 4 points is exact
        assert!((incremental.eval(2.0) - f(2.0)).abs() < 1e-9);
        // adding a redundant 5th point keeps it exact
        incremental.add_point(10.0, f(10.0));
        assert!((incremental.eval(2.0) - f(2.0)).abs() < 1e-6);
    }

    #[test]
    fn empty_and_constant() {
        let mut p = NewtonPoly::new();
        assert!(p.is_empty());
        assert_eq!(p.eval(5.0), 0.0);
        p.add_point(2.0, 42.0);
        assert_eq!(p.len(), 1);
        assert_eq!(p.eval(100.0), 42.0);
    }

    #[test]
    #[should_panic(expected = "duplicate interpolation point")]
    fn duplicate_x_rejected() {
        let mut p = NewtonPoly::new();
        p.add_point(1.0, 1.0);
        p.add_point(1.0, 2.0);
    }
}
