//! Optimisation parameters and results.

use flexray_analysis::{AnalysisConfig, Cost};
use flexray_model::{BusConfig, PhyParams, Time, MAX_STATIC_SLOTS, MAX_STATIC_SLOT_MACROTICKS};
use std::time::Duration;

/// Tuning knobs shared by all optimisers.
///
/// The paper's loops notionally run to the protocol maxima (1023 static
/// slots, 661-macrotick slots, 7994 minislots); the caps below bound the
/// exploration so the experiment harnesses finish on a workstation while
/// preserving the early-exit behaviour of the published algorithms
/// (Fig. 6 stops at the first schedulable configuration).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptParams {
    /// Analysis configuration used for every evaluation.
    pub analysis: AnalysisConfig,
    /// Granularity of the dynamic-segment sweep, in minislots (the paper
    /// steps by one minislot; larger steps trade optimality for speed).
    pub dyn_step: u32,
    /// Cap on the number of static slots explored beyond the minimum
    /// (`gdNumberOfStaticSlots_max` in Fig. 6 is 1023).
    pub max_extra_slots: u16,
    /// Cap on the number of static-slot-length steps explored
    /// (each step is `20 · gdBit`, Fig. 6 line 4).
    pub max_slot_len_steps: usize,
    /// Number of initial interpolation points of the curve-fitting
    /// heuristic (the paper uses 5).
    pub cf_initial_points: usize,
    /// Termination bound `N_max` of the curve-fitting refinement loop
    /// (the paper uses 10).
    pub cf_max_iterations: usize,
    /// Upper bound on the number of dynamic-segment candidates per sweep;
    /// if `(max − min)/dyn_step` exceeds it, the step is widened. Keeps
    /// OBCEE tractable on workstation budgets (the paper's AMD Athlon
    /// runs took up to 29 minutes per system).
    pub max_dyn_candidates: usize,
    /// Worker sessions of the in-run parallel `Evaluator` (`0` = all
    /// cores, `1` = serial). Candidate batches and DYN-length sweeps
    /// fan out across this many warm analysis sessions; results are
    /// bit-identical to serial for any value.
    pub eval_threads: usize,
}

impl Default for OptParams {
    fn default() -> Self {
        OptParams {
            analysis: AnalysisConfig::default(),
            dyn_step: 4,
            max_extra_slots: 8,
            max_slot_len_steps: 12,
            cf_initial_points: 5,
            cf_max_iterations: 10,
            max_dyn_candidates: 256,
            eval_threads: 1,
        }
    }
}

impl OptParams {
    /// Parameters hewing closest to the paper (1-minislot steps, full
    /// protocol ranges). Expensive: use for small systems.
    #[must_use]
    pub fn exhaustive() -> Self {
        OptParams {
            dyn_step: 1,
            max_extra_slots: MAX_STATIC_SLOTS,
            max_slot_len_steps: usize::MAX,
            ..OptParams::default()
        }
    }

    /// Largest static slot length to explore for the given physical
    /// layer (661 macroticks).
    #[must_use]
    pub fn max_slot_len(&self, phy: &PhyParams) -> Time {
        phy.gd_macrotick * i64::from(MAX_STATIC_SLOT_MACROTICKS)
    }
}

/// Outcome of one optimisation run.
#[derive(Debug, Clone)]
pub struct OptResult {
    /// Best bus configuration found.
    pub bus: BusConfig,
    /// Its cost (Eq. (5)).
    pub cost: Cost,
    /// Number of full scheduling + schedulability evaluations performed.
    pub evaluations: usize,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
}

impl OptResult {
    /// `true` if the best configuration meets all deadlines.
    #[must_use]
    pub fn is_schedulable(&self) -> bool {
        self.cost.is_schedulable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_bounded() {
        let p = OptParams::default();
        assert!(p.dyn_step >= 1);
        assert!(p.max_extra_slots < MAX_STATIC_SLOTS);
        assert_eq!(p.cf_initial_points, 5);
        assert_eq!(p.cf_max_iterations, 10);
    }

    #[test]
    fn exhaustive_uses_protocol_ranges() {
        let p = OptParams::exhaustive();
        assert_eq!(p.dyn_step, 1);
        assert_eq!(p.max_extra_slots, MAX_STATIC_SLOTS);
    }

    #[test]
    fn max_slot_len_in_macroticks() {
        let p = OptParams::default();
        let phy = PhyParams::bmw_like();
        assert_eq!(p.max_slot_len(&phy), Time::from_us(661.0));
    }
}
