//! The Optimised Bus Configuration heuristic (OBC) — Fig. 6 of the
//! paper.
//!
//! OBC explores static-segment alternatives between the BBC minimum and
//! the protocol maxima: the number of static slots (nodes get a quota
//! proportional to their static-message count) and the slot length (in
//! `20 · gdBit` payload increments). For each static layout the
//! dynamic-segment length is chosen by [`determine_dyn_length`] — either
//! exhaustively (OBCEE) or with the curve-fitting heuristic (OBCCF).
//! The search stops at the first schedulable configuration.

use crate::bbc::bbc_skeleton;
use crate::dyn_search::{determine_dyn_length, DynSearch};
use crate::evaluator::Evaluator;
use crate::params::{OptParams, OptResult};
use flexray_analysis::Cost;
use flexray_model::{
    Application, MessageClass, NodeId, PhyParams, Platform, System, Time, MAX_STATIC_SLOTS,
};
use std::time::Instant;

/// Runs OBC with the given dynamic-segment search strategy.
///
/// `DynSearch::CurveFit` reproduces OBCCF, `DynSearch::Exhaustive`
/// reproduces OBCEE.
#[must_use]
pub fn obc(
    platform: &Platform,
    app: &Application,
    phy: PhyParams,
    params: &OptParams,
    strategy: DynSearch,
) -> OptResult {
    let start = Instant::now();
    let mut ev = Evaluator::with_threads(
        platform.clone(),
        app.clone(),
        params.analysis,
        params.eval_threads,
    );
    let skeleton = bbc_skeleton(platform, app, phy);

    // Static-message counts per node drive the slot quotas.
    let sys = System {
        platform: platform.clone(),
        app: app.clone(),
        bus: skeleton.clone(),
    };
    let senders = sys.st_sender_nodes();
    let st_counts: Vec<(NodeId, usize)> = senders
        .iter()
        .map(|&n| {
            let count = app
                .messages_of_class(MessageClass::Static)
                .filter(|&m| app.sender_of(m) == Some(n))
                .count();
            (n, count.max(1))
        })
        .collect();

    let min_slots = senders.len().max(usize::from(!senders.is_empty()));
    let max_slots = (min_slots + usize::from(params.max_extra_slots))
        .min(usize::from(MAX_STATIC_SLOTS))
        .max(min_slots);
    let slot_len_min = skeleton.static_slot_len.max(phy.gd_macrotick);
    let slot_len_step = phy
        .static_slot_step()
        .round_up_to(phy.gd_macrotick)
        .max(phy.gd_macrotick);
    let slot_len_max = params.max_slot_len(&phy);

    let mut best_bus = skeleton.clone();
    let mut best_cost = Cost::infeasible();

    // Degenerate case: no static messages at all — single skeleton layout.
    let slot_counts: Vec<usize> = if senders.is_empty() {
        vec![0]
    } else {
        (min_slots..=max_slots).collect()
    };

    'outer: for n_slots in slot_counts {
        let mut slot_len = slot_len_min;
        let mut len_steps = 0usize;
        loop {
            let mut bus = skeleton.clone();
            bus.static_slot_len = if n_slots == 0 { Time::ZERO } else { slot_len };
            bus.static_slot_owners = assign_slots_round_robin(n_slots, &st_counts);

            match determine_dyn_length(&mut ev, &bus, params, strategy) {
                Some(choice) => {
                    bus.n_minislots = choice.n_minislots;
                    if choice.cost.better_than(&best_cost) {
                        best_cost = choice.cost;
                        best_bus = bus.clone();
                    }
                    // Fig. 6 line 7: stop at the first feasible DYNbus
                    // with Cost <= 0.
                    if choice.cost.is_schedulable() {
                        break 'outer;
                    }
                }
                None => {
                    // No dynamic messages: evaluate the static layout.
                    let cost = ev.evaluate_cost(&bus);
                    if cost.better_than(&best_cost) {
                        best_cost = cost;
                        best_bus = bus.clone();
                    }
                    if cost.is_schedulable() {
                        break 'outer;
                    }
                }
            }

            len_steps += 1;
            slot_len += slot_len_step;
            if slot_len > slot_len_max || len_steps >= params.max_slot_len_steps || n_slots == 0 {
                break;
            }
        }
    }

    OptResult {
        bus: best_bus,
        cost: best_cost,
        evaluations: ev.evaluations(),
        elapsed: start.elapsed(),
    }
}

/// Distributes `n_slots` static slots over the sender nodes with quotas
/// proportional to their static-message counts (each sender gets at
/// least one), interleaved round robin (Fig. 6 line 5).
#[must_use]
pub fn assign_slots_round_robin(n_slots: usize, st_counts: &[(NodeId, usize)]) -> Vec<NodeId> {
    if st_counts.is_empty() || n_slots == 0 {
        return Vec::new();
    }
    let total: usize = st_counts.iter().map(|&(_, c)| c).sum();
    // Largest-remainder quotas with a floor of one slot per sender.
    let mut quotas: Vec<usize> = st_counts
        .iter()
        .map(|&(_, c)| ((n_slots * c) / total).max(1))
        .collect();
    let mut assigned: usize = quotas.iter().sum();
    // Trim or top up to exactly n_slots, preferring high-count nodes.
    let mut order: Vec<usize> = (0..st_counts.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(st_counts[i].1));
    let mut cursor = 0;
    while assigned < n_slots {
        quotas[order[cursor % order.len()]] += 1;
        assigned += 1;
        cursor += 1;
    }
    while assigned > n_slots {
        if let Some(&i) = order.iter().rev().find(|&&i| quotas[i] > 1) {
            quotas[i] -= 1;
            assigned -= 1;
        } else {
            break; // cannot go below one slot per sender
        }
    }
    // Interleave: round robin over nodes with remaining quota.
    let mut owners = Vec::with_capacity(n_slots);
    let mut remaining = quotas;
    while owners.len() < assigned {
        for (i, &(node, _)) in st_counts.iter().enumerate() {
            if remaining[i] > 0 {
                owners.push(node);
                remaining[i] -= 1;
            }
        }
    }
    owners
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexray_model::SchedPolicy;

    #[test]
    fn round_robin_single_slot_each() {
        let counts = vec![
            (NodeId::new(0), 1),
            (NodeId::new(1), 1),
            (NodeId::new(2), 1),
        ];
        assert_eq!(
            assign_slots_round_robin(3, &counts),
            vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)]
        );
    }

    #[test]
    fn quota_follows_message_counts() {
        // node 0 sends 3 messages, node 1 sends 1: of 4 slots, node 0
        // gets 3.
        let counts = vec![(NodeId::new(0), 3), (NodeId::new(1), 1)];
        let owners = assign_slots_round_robin(4, &counts);
        assert_eq!(owners.len(), 4);
        let n0 = owners.iter().filter(|&&n| n == NodeId::new(0)).count();
        assert_eq!(n0, 3);
        // interleaved: the first two slots belong to different nodes
        assert_ne!(owners[0], owners[1]);
    }

    #[test]
    fn every_sender_keeps_a_slot() {
        let counts = vec![(NodeId::new(0), 100), (NodeId::new(1), 1)];
        let owners = assign_slots_round_robin(2, &counts);
        assert!(owners.contains(&NodeId::new(0)));
        assert!(owners.contains(&NodeId::new(1)));
    }

    #[test]
    fn empty_inputs() {
        assert!(assign_slots_round_robin(0, &[(NodeId::new(0), 1)]).is_empty());
        assert!(assign_slots_round_robin(3, &[]).is_empty());
    }

    fn contended_system() -> (Platform, Application) {
        // Node 0 sends three static messages through one slot in BBC:
        // extra slots help.
        let mut app = Application::new();
        let g = app.add_graph("g", Time::from_us(2000.0), Time::from_us(400.0));
        let a = app.add_task(
            g,
            "a",
            NodeId::new(0),
            Time::from_us(10.0),
            SchedPolicy::Scs,
            0,
        );
        for i in 0..3 {
            let r = app.add_task(
                g,
                &format!("r{i}"),
                NodeId::new(1),
                Time::from_us(10.0),
                SchedPolicy::Scs,
                0,
            );
            let m = app.add_message(g, &format!("m{i}"), 16, MessageClass::Static, 0);
            app.connect(a, m, r).expect("edges");
        }
        let c = app.add_task(
            g,
            "c",
            NodeId::new(1),
            Time::from_us(5.0),
            SchedPolicy::Fps,
            5,
        );
        let d = app.add_task(
            g,
            "d",
            NodeId::new(0),
            Time::from_us(5.0),
            SchedPolicy::Fps,
            5,
        );
        let dy = app.add_message(g, "dy", 8, MessageClass::Dynamic, 1);
        app.connect(c, dy, d).expect("edges");
        (Platform::with_nodes(2), app)
    }

    #[test]
    fn obc_curve_fit_finds_schedulable_config() {
        let (p, a) = contended_system();
        let result = obc(
            &p,
            &a,
            PhyParams::bmw_like(),
            &OptParams::default(),
            DynSearch::CurveFit,
        );
        assert!(result.is_schedulable(), "cost {:?}", result.cost);
        result.bus.validate_for(&a, p.len()).expect("valid bus");
    }

    #[test]
    fn obc_exhaustive_finds_schedulable_config() {
        let (p, a) = contended_system();
        let result = obc(
            &p,
            &a,
            PhyParams::bmw_like(),
            &OptParams::default(),
            DynSearch::Exhaustive,
        );
        assert!(result.is_schedulable(), "cost {:?}", result.cost);
    }

    #[test]
    fn obc_never_worse_than_bbc() {
        let (p, a) = contended_system();
        let params = OptParams::default();
        let phy = PhyParams::bmw_like();
        let bbc_result = crate::bbc(&p, &a, phy, &params);
        let obc_result = obc(&p, &a, phy, &params, DynSearch::Exhaustive);
        assert!(
            !bbc_result.cost.better_than(&obc_result.cost),
            "bbc {:?} obc {:?}",
            bbc_result.cost,
            obc_result.cost
        );
    }
}
