//! The Basic Bus Configuration (BBC) algorithm — Fig. 5 of the paper.
//!
//! BBC derives a configuration from the minimal bandwidth requirements:
//! unique frame identifiers ordered by criticality, one static slot per
//! static-sender node sized for the largest ST frame, and a sweep of the
//! dynamic-segment length keeping the best cost.

use crate::evaluator::Evaluator;
use crate::frame_assign::assign_frame_ids_by_criticality;
use crate::params::{OptParams, OptResult};
use flexray_model::{Application, BusConfig, PhyParams, Platform, Time};
use std::time::Instant;

/// Builds the BBC bus skeleton (frame ids, minimal static segment) for a
/// platform/application pair; the dynamic-segment length is left at
/// zero.
#[must_use]
pub fn bbc_skeleton(platform: &Platform, app: &Application, phy: PhyParams) -> BusConfig {
    let mut bus = BusConfig::new(phy);
    bus.frame_ids = assign_frame_ids_by_criticality(platform, app, &bus);

    // One slot per static-sender node, round robin (Fig. 5 lines 2-4).
    let sys = flexray_model::System {
        platform: platform.clone(),
        app: app.clone(),
        bus: bus.clone(),
    };
    let senders = sys.st_sender_nodes();
    bus.static_slot_owners = senders;

    // Slot sized for the largest static frame (Fig. 5 line 3).
    bus.static_slot_len = sys
        .app
        .messages_of_class(flexray_model::MessageClass::Static)
        .map(|m| bus.comm_time(&sys.app, m))
        .max()
        .map(|c| {
            c.round_up_to(bus.phy.gd_macrotick)
                .max(bus.phy.gd_macrotick)
        })
        .unwrap_or(Time::ZERO);
    bus
}

/// Runs the BBC algorithm.
///
/// The dynamic-segment sweep covers `[DYNbus_min, DYNbus_max]` with the
/// configured step (Fig. 5 lines 5–12); the best-cost configuration is
/// returned whether or not it is schedulable.
#[must_use]
pub fn bbc(
    platform: &Platform,
    app: &Application,
    phy: PhyParams,
    params: &OptParams,
) -> OptResult {
    let start = Instant::now();
    let mut ev = Evaluator::with_threads(
        platform.clone(),
        app.clone(),
        params.analysis,
        params.eval_threads,
    );
    let template = bbc_skeleton(platform, app, phy);

    let mut best_bus = template.clone();
    let best_cost;
    // Fig. 5 lines 5-12: sweep the dynamic-segment length exhaustively
    // over the same grid the OBC searches use (gdCycle < 16 ms is
    // enforced by validation inside the evaluator, line 7).
    match crate::dyn_search::determine_dyn_length(
        &mut ev,
        &template,
        params,
        crate::dyn_search::DynSearch::Exhaustive,
    ) {
        Some(choice) => {
            best_cost = choice.cost;
            best_bus.n_minislots = choice.n_minislots;
        }
        None => {
            // No dynamic messages: evaluate the static-only configuration.
            best_cost = ev.evaluate_cost(&template);
        }
    }

    OptResult {
        bus: best_bus,
        cost: best_cost,
        evaluations: ev.evaluations(),
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexray_model::*;

    fn two_node_mixed() -> (Platform, Application) {
        let mut app = Application::new();
        let g = app.add_graph("g", Time::from_us(4000.0), Time::from_us(3000.0));
        let a = app.add_task(
            g,
            "a",
            NodeId::new(0),
            Time::from_us(20.0),
            SchedPolicy::Scs,
            0,
        );
        let b = app.add_task(
            g,
            "b",
            NodeId::new(1),
            Time::from_us(20.0),
            SchedPolicy::Scs,
            0,
        );
        let st = app.add_message(g, "st", 8, MessageClass::Static, 0);
        app.connect(a, st, b).expect("edges");
        let c = app.add_task(
            g,
            "c",
            NodeId::new(1),
            Time::from_us(10.0),
            SchedPolicy::Fps,
            5,
        );
        let d = app.add_task(
            g,
            "d",
            NodeId::new(0),
            Time::from_us(10.0),
            SchedPolicy::Fps,
            5,
        );
        let dy = app.add_message(g, "dy", 8, MessageClass::Dynamic, 1);
        app.connect(c, dy, d).expect("edges");
        (Platform::with_nodes(2), app)
    }

    #[test]
    fn skeleton_has_one_slot_per_st_sender() {
        let (p, a) = two_node_mixed();
        let bus = bbc_skeleton(&p, &a, PhyParams::bmw_like());
        // only node 0 sends static messages
        assert_eq!(bus.static_slot_owners, vec![NodeId::new(0)]);
        assert_eq!(bus.frame_ids.len(), 1);
        assert!(bus.static_slot_len >= bus.phy.frame_duration(8));
        assert!((bus.static_slot_len % bus.phy.gd_macrotick).is_zero());
    }

    #[test]
    fn bbc_finds_schedulable_config_on_easy_system() {
        let (p, a) = two_node_mixed();
        let result = bbc(&p, &a, PhyParams::bmw_like(), &OptParams::default());
        assert!(result.is_schedulable(), "cost {:?}", result.cost);
        assert!(result.evaluations > 0);
        assert!(result.bus.n_minislots > 0);
    }

    #[test]
    fn bbc_config_validates() {
        let (p, a) = two_node_mixed();
        let result = bbc(&p, &a, PhyParams::bmw_like(), &OptParams::default());
        result
            .bus
            .validate_for(&a, p.len())
            .expect("valid best bus");
    }

    #[test]
    fn bbc_without_dynamic_messages() {
        let mut app = Application::new();
        let g = app.add_graph("g", Time::from_us(1000.0), Time::from_us(900.0));
        let a = app.add_task(
            g,
            "a",
            NodeId::new(0),
            Time::from_us(10.0),
            SchedPolicy::Scs,
            0,
        );
        let b = app.add_task(
            g,
            "b",
            NodeId::new(1),
            Time::from_us(10.0),
            SchedPolicy::Scs,
            0,
        );
        let st = app.add_message(g, "st", 8, MessageClass::Static, 0);
        app.connect(a, st, b).expect("edges");
        let p = Platform::with_nodes(2);
        let result = bbc(&p, &app, PhyParams::bmw_like(), &OptParams::default());
        assert!(result.is_schedulable(), "cost {:?}", result.cost);
        assert_eq!(result.bus.n_minislots, 0);
    }
}
