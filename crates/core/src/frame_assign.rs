//! Frame-identifier assignment for dynamic messages (Fig. 5, line 1).
//!
//! Each dynamic message receives a unique frame identifier (avoiding
//! `hp(m)` delays), and messages of higher criticality — smaller
//! `CP_m = D_m − LP_m`, Eq. (4) — receive smaller identifiers (reducing
//! `lf(m)`/`ms(m)` delays).

use flexray_analysis::longest_path_from_source;
use flexray_model::{ActivityId, Application, BusConfig, FrameId, MessageClass, Platform, System};
use std::collections::BTreeMap;

/// Assigns unique frame identifiers to all dynamic messages of `app`,
/// ordered by increasing `CP_m = D_m − LP_m` (most critical first).
///
/// Ties break on activity id for determinism.
#[must_use]
pub fn assign_frame_ids_by_criticality(
    platform: &Platform,
    app: &Application,
    bus_template: &BusConfig,
) -> BTreeMap<ActivityId, FrameId> {
    // Longest paths need message durations, which need a bus: use the
    // template's physical layer (identifier order only depends on
    // relative criticality, which is insensitive to the exact slot
    // layout).
    let sys = System {
        platform: platform.clone(),
        app: app.clone(),
        bus: bus_template.clone(),
    };
    let lp = longest_path_from_source(&sys);
    let mut msgs: Vec<ActivityId> = app.messages_of_class(MessageClass::Dynamic).collect();
    msgs.sort_by_key(|&m| (app.deadline_of(m) - lp[m.index()], m.index()));
    msgs.iter()
        .enumerate()
        .map(|(i, &m)| {
            (
                m,
                FrameId::new(u16::try_from(i + 1).expect("fewer than 65535 dyn messages")),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexray_model::*;

    #[test]
    fn critical_messages_get_small_ids() {
        let mut app = Application::new();
        // Tight graph: deadline 50
        let g1 = app.add_graph("tight", Time::from_us(1000.0), Time::from_us(50.0));
        let a1 = app.add_task(
            g1,
            "a1",
            NodeId::new(0),
            Time::from_us(1.0),
            SchedPolicy::Fps,
            1,
        );
        let b1 = app.add_task(
            g1,
            "b1",
            NodeId::new(1),
            Time::from_us(1.0),
            SchedPolicy::Fps,
            1,
        );
        let m_tight = app.add_message(g1, "m_tight", 4, MessageClass::Dynamic, 1);
        app.connect(a1, m_tight, b1).expect("edges");
        // Loose graph: deadline 900
        let g2 = app.add_graph("loose", Time::from_us(1000.0), Time::from_us(900.0));
        let a2 = app.add_task(
            g2,
            "a2",
            NodeId::new(0),
            Time::from_us(1.0),
            SchedPolicy::Fps,
            1,
        );
        let b2 = app.add_task(
            g2,
            "b2",
            NodeId::new(1),
            Time::from_us(1.0),
            SchedPolicy::Fps,
            1,
        );
        let m_loose = app.add_message(g2, "m_loose", 4, MessageClass::Dynamic, 1);
        app.connect(a2, m_loose, b2).expect("edges");

        let platform = Platform::with_nodes(2);
        let bus = BusConfig::new(PhyParams::bmw_like());
        let ids = assign_frame_ids_by_criticality(&platform, &app, &bus);
        assert_eq!(ids[&m_tight], FrameId::new(1));
        assert_eq!(ids[&m_loose], FrameId::new(2));
        assert_eq!(ids.len(), 2);
    }

    #[test]
    fn identifiers_are_unique_and_dense() {
        let mut app = Application::new();
        let g = app.add_graph("g", Time::from_us(1000.0), Time::from_us(800.0));
        let mut msgs = Vec::new();
        for i in 0..5 {
            let s = app.add_task(
                g,
                &format!("s{i}"),
                NodeId::new(0),
                Time::from_us(1.0),
                SchedPolicy::Fps,
                1,
            );
            let r = app.add_task(
                g,
                &format!("r{i}"),
                NodeId::new(1),
                Time::from_us(1.0),
                SchedPolicy::Fps,
                1,
            );
            let m = app.add_message(g, &format!("m{i}"), 4, MessageClass::Dynamic, 1);
            app.connect(s, m, r).expect("edges");
            msgs.push(m);
        }
        let ids = assign_frame_ids_by_criticality(
            &Platform::with_nodes(2),
            &app,
            &BusConfig::new(PhyParams::bmw_like()),
        );
        let mut numbers: Vec<u16> = ids.values().map(|f| f.number()).collect();
        numbers.sort_unstable();
        assert_eq!(numbers, vec![1, 2, 3, 4, 5]);
    }
}
