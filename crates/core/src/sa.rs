//! Simulated Annealing baseline for design-space exploration.
//!
//! The paper uses long SA runs as a close-to-optimal reference when
//! evaluating BBC/OBC (Section 7). The move set matches the paper's:
//! number and size of static slots, size of the dynamic segment,
//! assignment of slots to nodes, and assignment of frame identifiers to
//! messages.

use crate::evaluator::Evaluator;
use crate::obc::assign_slots_round_robin;
use crate::params::{OptParams, OptResult};
use flexray_analysis::Cost;
use flexray_model::{
    Application, BusConfig, FrameId, MessageClass, NodeId, PhyParams, Platform, System,
    MAX_STATIC_SLOTS,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Simulated-annealing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaParams {
    /// Total number of evaluated moves (the evaluation budget).
    pub iterations: usize,
    /// Initial temperature, in cost units (µs of laxity/overshoot).
    pub initial_temp: f64,
    /// Geometric cooling factor per step.
    pub cooling: f64,
    /// RNG seed (runs are deterministic per seed).
    pub seed: u64,
    /// Neighbourhood size `k`: moves proposed (from the same current
    /// state) per temperature step and evaluated as one batch — the
    /// batch the parallel `Evaluator` fans out. All `k` proposals are
    /// drawn from the RNG first and acceptance is applied in proposal
    /// order afterwards, so the RNG stream — and with it the whole
    /// trajectory — is a pure function of the seed, independent of the
    /// evaluator thread count. `1` (the default) reproduces the classic
    /// one-move-per-step SA exactly.
    pub neighbourhood: usize,
}

impl Default for SaParams {
    fn default() -> Self {
        SaParams {
            iterations: 1500,
            initial_temp: 5_000.0,
            cooling: 0.995,
            seed: 0xF1E0_5EED,
            neighbourhood: 1,
        }
    }
}

/// Runs the SA baseline from the BBC skeleton.
#[must_use]
pub fn simulated_annealing(
    platform: &Platform,
    app: &Application,
    phy: PhyParams,
    params: &OptParams,
    sa: &SaParams,
) -> OptResult {
    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(sa.seed);
    let mut ev = Evaluator::with_threads(
        platform.clone(),
        app.clone(),
        params.analysis,
        params.eval_threads,
    );

    // Start state: the best BBC configuration — SA then explores the
    // full move set (slot count/size/assignment, frame identifiers, DYN
    // length) from a sensible point, as a long-running reference should.
    let mut state = crate::bbc::bbc(platform, app, phy, params).bus;
    if state.n_minislots == 0 {
        if let Some((min, max)) = ev.dyn_bounds(&state) {
            state.n_minislots = (min + (max - min) / 16).max(min);
        }
    }
    let mut state_cost = ev.evaluate_cost(&state);
    let mut best = state.clone();
    let mut best_cost = state_cost;

    let sys = System {
        platform: platform.clone(),
        app: app.clone(),
        bus: state.clone(),
    };
    let st_counts: Vec<(NodeId, usize)> = sys
        .st_sender_nodes()
        .into_iter()
        .map(|n| {
            let count = app
                .messages_of_class(MessageClass::Static)
                .filter(|&m| app.sender_of(m) == Some(n))
                .count();
            (n, count.max(1))
        })
        .collect();
    let dyn_msgs: Vec<_> = app.messages_of_class(MessageClass::Dynamic).collect();

    // Neighbourhood stepping: per temperature step, k moves are
    // proposed from the *same* current state (all RNG draws happen
    // up front, in proposal order), the batch is evaluated — in
    // parallel when the evaluator has workers; evaluation consumes no
    // randomness — and Metropolis acceptance is applied in proposal
    // order, cooling once per evaluated move. With k = 1 this is
    // exactly the classic serial SA loop, draw for draw.
    let k = sa.neighbourhood.max(1);
    let mut temp = sa.initial_temp.max(f64::MIN_POSITIVE);
    let mut remaining = sa.iterations;
    let mut candidates: Vec<BusConfig> = Vec::with_capacity(k);
    while remaining > 0 {
        let batch = k.min(remaining);
        remaining -= batch;
        candidates.clear();
        for _ in 0..batch {
            candidates.push(propose(
                &state, &st_counts, &dyn_msgs, &ev, &mut rng, params, phy,
            ));
        }
        let costs = ev.evaluate_batch(&candidates);
        for (candidate, cand_cost) in candidates.drain(..).zip(costs) {
            let delta = scalar(&cand_cost) - scalar(&state_cost);
            let accept = delta <= 0.0 || rng.gen::<f64>() < (-delta / temp).exp();
            if accept {
                state = candidate;
                state_cost = cand_cost;
                if state_cost.better_than(&best_cost) {
                    best = state.clone();
                    best_cost = state_cost;
                }
            }
            temp *= sa.cooling;
        }
    }

    OptResult {
        bus: best,
        cost: best_cost,
        evaluations: ev.evaluations(),
        elapsed: start.elapsed(),
    }
}

/// Scalar cost for the Metropolis criterion: schedulable configurations
/// (negative laxity) always beat unschedulable ones (positive
/// overshoot); infeasible proposals get a large finite penalty so the
/// arithmetic stays sane.
fn scalar(cost: &Cost) -> f64 {
    if cost.value().is_finite() {
        cost.value()
    } else {
        1e15
    }
}

/// One random neighbourhood move.
fn propose(
    state: &BusConfig,
    st_counts: &[(NodeId, usize)],
    dyn_msgs: &[flexray_model::ActivityId],
    ev: &Evaluator,
    rng: &mut StdRng,
    params: &OptParams,
    phy: PhyParams,
) -> BusConfig {
    let mut bus = state.clone();
    let n_moves = 6;
    match rng.gen_range(0..n_moves) {
        // Resize the dynamic segment: usually a local step, sometimes a
        // global jump so huge segments remain reachable in bounded runs.
        0 => {
            if let Some((min, max)) = ev.dyn_bounds(&bus) {
                if rng.gen_bool(0.25) {
                    bus.n_minislots = rng.gen_range(min..=max);
                } else {
                    let span = i64::from(params.dyn_step.max(1)) * rng.gen_range(1..=8i64);
                    let delta = if rng.gen_bool(0.5) { span } else { -span };
                    let n = i64::from(bus.n_minislots) + delta;
                    bus.n_minislots =
                        u32::try_from(n.clamp(i64::from(min), i64::from(max))).expect("clamped");
                }
            }
        }
        // Resize static slots.
        1 => {
            if !bus.static_slot_owners.is_empty() {
                let step = phy
                    .static_slot_step()
                    .round_up_to(phy.gd_macrotick)
                    .max(phy.gd_macrotick);
                let min_len = ev.min_static_slot_len(&phy).unwrap_or(phy.gd_macrotick);
                let max_len = params.max_slot_len(&phy);
                let next = if rng.gen_bool(0.5) {
                    bus.static_slot_len + step
                } else {
                    bus.static_slot_len - step
                };
                bus.static_slot_len = next.clamp(min_len, max_len);
            }
        }
        // Add a static slot.
        2 => {
            if !st_counts.is_empty() && bus.static_slot_owners.len() < usize::from(MAX_STATIC_SLOTS)
            {
                bus.static_slot_owners =
                    assign_slots_round_robin(bus.static_slot_owners.len() + 1, st_counts);
            }
        }
        // Remove a static slot (keeping one per sender).
        3 => {
            if bus.static_slot_owners.len() > st_counts.len() {
                bus.static_slot_owners =
                    assign_slots_round_robin(bus.static_slot_owners.len() - 1, st_counts);
            }
        }
        // Reassign a random slot to a random sender node.
        4 => {
            if !bus.static_slot_owners.is_empty() && !st_counts.is_empty() {
                let i = rng.gen_range(0..bus.static_slot_owners.len());
                let (node, _) = st_counts[rng.gen_range(0..st_counts.len())];
                let old = bus.static_slot_owners[i];
                bus.static_slot_owners[i] = node;
                // keep every sender represented
                let ok = st_counts
                    .iter()
                    .all(|&(n, _)| bus.static_slot_owners.contains(&n));
                if !ok {
                    bus.static_slot_owners[i] = old;
                }
            }
        }
        // Swap the frame identifiers of two dynamic messages.
        _ => {
            if dyn_msgs.len() >= 2 {
                let a = dyn_msgs[rng.gen_range(0..dyn_msgs.len())];
                let b = dyn_msgs[rng.gen_range(0..dyn_msgs.len())];
                if a != b {
                    let fa = bus.frame_ids.get(&a).copied();
                    let fb = bus.frame_ids.get(&b).copied();
                    if let (Some(fa), Some(fb)) = (fa, fb) {
                        bus.frame_ids.insert(a, fb);
                        bus.frame_ids.insert(b, fa);
                    }
                }
            }
        }
    }
    // Keep the dynamic segment feasible for the (possibly new) frame
    // assignment.
    let needed = bus.min_minislots(ev.app());
    if bus.n_minislots < needed {
        bus.n_minislots = needed;
    }
    bus
}

/// Frame-identifier helper used by tests and examples: the identity
/// permutation over the dynamic messages in id order.
#[must_use]
pub fn identity_frame_ids(app: &Application) -> Vec<(flexray_model::ActivityId, FrameId)> {
    app.messages_of_class(MessageClass::Dynamic)
        .enumerate()
        .map(|(i, m)| (m, FrameId::new(u16::try_from(i + 1).expect("small"))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexray_model::{SchedPolicy, Time};

    fn mixed_system() -> (Platform, Application) {
        let mut app = Application::new();
        let g = app.add_graph("g", Time::from_us(4000.0), Time::from_us(1500.0));
        let a = app.add_task(
            g,
            "a",
            NodeId::new(0),
            Time::from_us(20.0),
            SchedPolicy::Scs,
            0,
        );
        let b = app.add_task(
            g,
            "b",
            NodeId::new(1),
            Time::from_us(20.0),
            SchedPolicy::Scs,
            0,
        );
        let st = app.add_message(g, "st", 8, MessageClass::Static, 0);
        app.connect(a, st, b).expect("edges");
        for i in 0..3 {
            let c = app.add_task(
                g,
                &format!("c{i}"),
                NodeId::new(1),
                Time::from_us(10.0),
                SchedPolicy::Fps,
                5 + i,
            );
            let d = app.add_task(
                g,
                &format!("d{i}"),
                NodeId::new(0),
                Time::from_us(10.0),
                SchedPolicy::Fps,
                5 + i,
            );
            let dy = app.add_message(g, &format!("dy{i}"), 8, MessageClass::Dynamic, 1 + i);
            app.connect(c, dy, d).expect("edges");
        }
        (Platform::with_nodes(2), app)
    }

    fn fast_sa() -> SaParams {
        SaParams {
            iterations: 60,
            ..SaParams::default()
        }
    }

    #[test]
    fn sa_finds_schedulable_config() {
        let (p, a) = mixed_system();
        let result = simulated_annealing(
            &p,
            &a,
            PhyParams::bmw_like(),
            &OptParams::default(),
            &fast_sa(),
        );
        assert!(result.is_schedulable(), "cost {:?}", result.cost);
        result.bus.validate_for(&a, p.len()).expect("valid bus");
    }

    #[test]
    fn sa_is_deterministic_per_seed() {
        let (p, a) = mixed_system();
        let params = OptParams::default();
        let phy = PhyParams::bmw_like();
        let r1 = simulated_annealing(&p, &a, phy, &params, &fast_sa());
        let r2 = simulated_annealing(&p, &a, phy, &params, &fast_sa());
        assert_eq!(r1.bus, r2.bus);
        let different_seed = SaParams {
            seed: 1,
            ..fast_sa()
        };
        let _r3 = simulated_annealing(&p, &a, phy, &params, &different_seed);
    }

    #[test]
    fn sa_result_at_least_as_good_as_start() {
        let (p, a) = mixed_system();
        let params = OptParams::default();
        let phy = PhyParams::bmw_like();
        let sa_result = simulated_annealing(&p, &a, phy, &params, &fast_sa());
        // evaluate the raw BBC skeleton with the same starting segment
        let mut ev = Evaluator::new(p.clone(), a.clone(), params.analysis);
        let mut start_bus = crate::bbc::bbc_skeleton(&p, &a, phy);
        if let Some((min, max)) = ev.dyn_bounds(&start_bus) {
            start_bus.n_minislots = (min + (max - min) / 16).max(min);
        }
        let (start_cost, _) = ev.evaluate(&start_bus);
        assert!(
            !start_cost.better_than(&sa_result.cost),
            "start {start_cost:?} vs sa {:?}",
            sa_result.cost
        );
    }

    #[test]
    fn sa_neighbourhoods_are_deterministic_across_thread_counts() {
        // With k > 1 the trajectory is a pure function of the seed:
        // evaluation consumes no randomness, so the evaluator thread
        // count must not change the result bit for bit.
        let (p, a) = mixed_system();
        let phy = PhyParams::bmw_like();
        let sa = SaParams {
            iterations: 40,
            neighbourhood: 4,
            ..SaParams::default()
        };
        let baseline = simulated_annealing(&p, &a, phy, &OptParams::default(), &sa);
        for threads in [2usize, 4] {
            let params = OptParams {
                eval_threads: threads,
                ..OptParams::default()
            };
            let r = simulated_annealing(&p, &a, phy, &params, &sa);
            assert_eq!(r.bus, baseline.bus, "threads {threads}");
            assert_eq!(r.cost, baseline.cost, "threads {threads}");
            assert_eq!(r.evaluations, baseline.evaluations, "threads {threads}");
        }
    }

    #[test]
    fn sa_neighbourhood_one_parallel_matches_serial() {
        // k = 1 is the classic SA loop; a parallel evaluator must not
        // perturb it (single-candidate batches stay on the primary
        // session).
        let (p, a) = mixed_system();
        let phy = PhyParams::bmw_like();
        let serial = simulated_annealing(&p, &a, phy, &OptParams::default(), &fast_sa());
        let params = OptParams {
            eval_threads: 4,
            ..OptParams::default()
        };
        let par = simulated_annealing(&p, &a, phy, &params, &fast_sa());
        assert_eq!(par.bus, serial.bus);
        assert_eq!(par.cost, serial.cost);
        assert_eq!(par.evaluations, serial.evaluations);
    }

    #[test]
    fn identity_frame_ids_are_dense() {
        let (_, a) = mixed_system();
        let ids = identity_frame_ids(&a);
        assert_eq!(ids.len(), 3);
        let numbers: Vec<u16> = ids.iter().map(|(_, f)| f.number()).collect();
        assert_eq!(numbers, vec![1, 2, 3]);
    }
}
