//! Criterion benches for the holistic analysis — the per-evaluation cost
//! that dominates every optimisation loop (Section 6.2 motivates the
//! curve-fitting heuristic with exactly this cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flexray_analysis::{analyse, AnalysisConfig, DynAnalysisMode};
use flexray_gen::{generate, GeneratorConfig};
use flexray_model::{PhyParams, System};
use flexray_opt::{bbc_skeleton, Evaluator};

fn system_for(n_nodes: usize) -> System {
    let generated = generate(&GeneratorConfig::paper(n_nodes), 3).expect("generate");
    let mut bus = bbc_skeleton(&generated.platform, &generated.app, PhyParams::bmw_like());
    let ev = Evaluator::new(
        generated.platform.clone(),
        generated.app.clone(),
        AnalysisConfig::default(),
    );
    if let Some((min, max)) = ev.dyn_bounds(&bus) {
        bus.n_minislots = (min + max) / 2;
    }
    System {
        platform: generated.platform,
        app: generated.app,
        bus,
    }
}

fn bench_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("holistic_analysis");
    group.measurement_time(std::time::Duration::from_secs(8));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for n_nodes in [2usize, 4, 6] {
        let sys = system_for(n_nodes);
        group.bench_with_input(BenchmarkId::new("greedy", n_nodes), &n_nodes, |b, _| {
            let cfg = AnalysisConfig::default();
            b.iter(|| analyse(&sys, &cfg).expect("analysis"));
        });
        group.bench_with_input(BenchmarkId::new("exact", n_nodes), &n_nodes, |b, _| {
            let cfg = AnalysisConfig {
                dyn_mode: DynAnalysisMode::Exact,
                ..AnalysisConfig::default()
            };
            b.iter(|| analyse(&sys, &cfg).expect("analysis"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
