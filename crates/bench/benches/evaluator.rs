//! Criterion bench for the session-backed evaluator: the DYN-length
//! sweep of `determine_dyn_length` with the cached [`AnalysisSession`]
//! versus the pre-session baseline (one fresh full `analyse`, including
//! a bus clone into the `System`, per candidate length).
//!
//! This is the inner loop of BBC (Fig. 5 lines 5–12) and of every OBC
//! static-layout step, on the 5–7-node synthetic sets the paper
//! evaluates; measured numbers are recorded in `BENCH_eval.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flexray_analysis::{analyse, AnalysisConfig};
use flexray_gen::{generate, GeneratorConfig};
use flexray_model::PhyParams;
use flexray_model::{Application, BusConfig, Platform, System};
use flexray_opt::{
    bbc_skeleton, determine_dyn_length, dyn_sweep_grid, DynSearch, Evaluator, OptParams,
};

struct Case {
    platform: Platform,
    app: Application,
    template: BusConfig,
    candidates: Vec<u32>,
}

fn case_for(n_nodes: usize, tt_fraction: f64, params: &OptParams) -> Case {
    let gen_cfg = GeneratorConfig {
        tt_fraction,
        ..GeneratorConfig::paper(n_nodes)
    };
    let generated = generate(&gen_cfg, 11).expect("generate");
    let template = bbc_skeleton(&generated.platform, &generated.app, PhyParams::bmw_like());
    let ev = Evaluator::new(
        generated.platform.clone(),
        generated.app.clone(),
        AnalysisConfig::default(),
    );
    let (min, max) = ev
        .dyn_bounds(&template)
        .expect("paper sets have DYN traffic");
    // The exact grid determine_dyn_length sweeps, so the fresh baseline
    // analyses the same candidates the session path does.
    let candidates = dyn_sweep_grid(min, max, params);
    Case {
        platform: generated.platform,
        app: generated.app,
        template,
        candidates,
    }
}

/// The pre-session baseline: every candidate pays a `BusConfig` clone
/// into the `System` and a from-scratch `analyse` (priorities, job
/// order, schedule table and every buffer re-derived per call).
fn fresh_sweep(case: &Case, cfg: &AnalysisConfig) -> usize {
    let mut sys = System {
        platform: case.platform.clone(),
        app: case.app.clone(),
        bus: case.template.clone(),
    };
    let mut analysed = 0;
    for &n in &case.candidates {
        let mut bus = case.template.clone();
        bus.n_minislots = n;
        if bus.validate_for(&sys.app, sys.platform.len()).is_err() {
            continue;
        }
        sys.bus = bus.clone();
        if analyse(&sys, cfg).is_ok() {
            analysed += 1;
        }
    }
    analysed
}

fn bench_dyn_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("determine_dyn_length");
    group.measurement_time(std::time::Duration::from_secs(8));
    group.warm_up_time(std::time::Duration::from_secs(1));
    let params = OptParams::default();
    let cfg = AnalysisConfig::default();
    // Paper-mix sets (half the graphs time-triggered) and DYN-only sets
    // (no static messages — the case where the cached static schedule
    // survives every candidate outright).
    for (label, tt_fraction) in [("paper_mix", 0.5), ("dyn_only", 0.0)] {
        for n_nodes in [5usize, 6, 7] {
            let case = case_for(n_nodes, tt_fraction, &params);
            let id = format!("{label}/{n_nodes}");
            group.bench_with_input(BenchmarkId::new("fresh_analyse", &id), &n_nodes, |b, _| {
                b.iter(|| fresh_sweep(&case, &cfg));
            });
            // The session lives across sweeps, as it does inside one
            // optimiser run: allocations, priorities, the job order and
            // the (DYN-only) static schedule are amortised over every
            // candidate.
            let mut ev = Evaluator::new(case.platform.clone(), case.app.clone(), cfg);
            group.bench_with_input(BenchmarkId::new("cached_session", &id), &n_nodes, |b, _| {
                b.iter(|| {
                    determine_dyn_length(&mut ev, &case.template, &params, DynSearch::Exhaustive)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_dyn_sweep);
criterion_main!(benches);
