//! Criterion bench for the session-backed evaluator: the DYN-length
//! sweep of `determine_dyn_length` with the cached [`AnalysisSession`]
//! versus the pre-session baseline (one fresh full `analyse`, including
//! a bus clone into the `System`, per candidate length).
//!
//! This is the inner loop of BBC (Fig. 5 lines 5–12) and of every OBC
//! static-layout step, on the 5–7-node synthetic sets the paper
//! evaluates; measured numbers are recorded in `BENCH_eval.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flexray_analysis::{
    analyse, dyn_delay, dyn_delay_pooled, AnalysisConfig, DynAnalysisMode, DynScratch,
    LatestTxPolicy,
};
use flexray_gen::{generate, GeneratorConfig};
use flexray_model::{Application, BusConfig, MessageClass, PhyParams, Platform, System, Time};
use flexray_opt::{
    bbc_skeleton, determine_dyn_length, dyn_sweep_grid, DynSearch, Evaluator, OptParams,
};

struct Case {
    platform: Platform,
    app: Application,
    template: BusConfig,
    candidates: Vec<u32>,
}

fn case_for(n_nodes: usize, tt_fraction: f64, params: &OptParams) -> Case {
    let gen_cfg = GeneratorConfig {
        tt_fraction,
        ..GeneratorConfig::paper(n_nodes)
    };
    let generated = generate(&gen_cfg, 11).expect("generate");
    let template = bbc_skeleton(&generated.platform, &generated.app, PhyParams::bmw_like());
    let ev = Evaluator::new(
        generated.platform.clone(),
        generated.app.clone(),
        AnalysisConfig::default(),
    );
    let (min, max) = ev
        .dyn_bounds(&template)
        .expect("paper sets have DYN traffic");
    // The exact grid determine_dyn_length sweeps, so the fresh baseline
    // analyses the same candidates the session path does.
    let candidates = dyn_sweep_grid(min, max, params);
    Case {
        platform: generated.platform,
        app: generated.app,
        template,
        candidates,
    }
}

/// The pre-session baseline: every candidate pays a `BusConfig` clone
/// into the `System` and a from-scratch `analyse` (priorities, job
/// order, schedule table and every buffer re-derived per call).
fn fresh_sweep(case: &Case, cfg: &AnalysisConfig) -> usize {
    let mut sys = System {
        platform: case.platform.clone(),
        app: case.app.clone(),
        bus: case.template.clone(),
    };
    let mut analysed = 0;
    for &n in &case.candidates {
        let mut bus = case.template.clone();
        bus.n_minislots = n;
        if bus.validate_for(&sys.app, sys.platform.len()).is_err() {
            continue;
        }
        sys.bus = bus.clone();
        if analyse(&sys, cfg).is_ok() {
            analysed += 1;
        }
    }
    analysed
}

fn bench_dyn_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("determine_dyn_length");
    group.measurement_time(std::time::Duration::from_secs(8));
    group.warm_up_time(std::time::Duration::from_secs(1));
    let params = OptParams::default();
    let cfg = AnalysisConfig::default();
    // Paper-mix sets (half the graphs time-triggered) and DYN-only sets
    // (no static messages — the case where the cached static schedule
    // survives every candidate outright).
    for (label, tt_fraction) in [("paper_mix", 0.5), ("dyn_only", 0.0)] {
        for n_nodes in [5usize, 6, 7] {
            let case = case_for(n_nodes, tt_fraction, &params);
            let id = format!("{label}/{n_nodes}");
            group.bench_with_input(BenchmarkId::new("fresh_analyse", &id), &n_nodes, |b, _| {
                b.iter(|| fresh_sweep(&case, &cfg));
            });
            // The session lives across sweeps, as it does inside one
            // optimiser run: allocations, priorities, the job order and
            // the (DYN-only) static schedule are amortised over every
            // candidate.
            let mut ev = Evaluator::new(case.platform.clone(), case.app.clone(), cfg);
            group.bench_with_input(BenchmarkId::new("cached_session", &id), &n_nodes, |b, _| {
                b.iter(|| {
                    determine_dyn_length(&mut ev, &case.template, &params, DynSearch::Exhaustive)
                });
            });
        }
    }
    group.finish();
}

/// `dyn_delay`-level microbench: one pass over every DYN message of the
/// 7-node dyn_only set, with a fresh scratch per call (the plain
/// `dyn_delay` entry) versus one pooled scratch across the pass (the
/// session's steady state), for both packing modes.
fn bench_dyn_delay(c: &mut Criterion) {
    let mut group = c.benchmark_group("dyn_delay");
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    let case = case_for(7, 0.0, &OptParams::default());
    let mid = case.candidates[case.candidates.len() / 2];
    let mut bus = case.template.clone();
    bus.n_minislots = mid;
    assert!(
        bus.validate_for(&case.app, case.platform.len()).is_ok(),
        "mid-grid candidate must be valid"
    );
    let sys = System {
        platform: case.platform.clone(),
        app: case.app.clone(),
        bus,
    };
    let msgs: Vec<_> = sys.app.messages_of_class(MessageClass::Dynamic).collect();
    // a non-trivial jitter pattern so the interference pools carry
    // several pending instances
    let jitter: Vec<Time> = (0..sys.app.activities().len())
        .map(|i| Time::from_us(f64::from((i as u32 * 131) % 4000)))
        .collect();
    let limit = Time::from_us(1e8);
    for (label, mode) in [
        ("greedy", DynAnalysisMode::Greedy),
        ("exact", DynAnalysisMode::Exact),
    ] {
        group.bench_with_input(BenchmarkId::new("fresh", label), &mode, |b, &mode| {
            b.iter(|| {
                let mut acc = 0i64;
                for &m in &msgs {
                    if let Some(w) =
                        dyn_delay(&sys, m, &jitter, LatestTxPolicy::PerMessage, mode, limit)
                    {
                        acc = acc.wrapping_add(w.as_ns());
                    }
                }
                acc
            });
        });
        let mut scratch = DynScratch::default();
        group.bench_with_input(BenchmarkId::new("pooled", label), &mode, |b, &mode| {
            b.iter(|| {
                let mut acc = 0i64;
                for &m in &msgs {
                    if let Some(w) = dyn_delay_pooled(
                        &sys,
                        m,
                        &jitter,
                        LatestTxPolicy::PerMessage,
                        mode,
                        limit,
                        &mut scratch,
                    ) {
                        acc = acc.wrapping_add(w.as_ns());
                    }
                }
                acc
            });
        });
    }
    group.finish();

    // Not a timing: how often the admissible bound proves Exact cannot
    // differ from Greedy on this workload (recorded in BENCH_eval.json).
    let mut scratch = DynScratch::default();
    for &m in &msgs {
        let _ = dyn_delay_pooled(
            &sys,
            m,
            &jitter,
            LatestTxPolicy::PerMessage,
            DynAnalysisMode::Exact,
            limit,
            &mut scratch,
        );
    }
    let (calls, shorts) = scratch.exact_stats();
    eprintln!("dyn_delay/exact greedy short-circuit: {shorts}/{calls} calls");
}

/// The multi-session parallel DYN-length sweep (`evaluate_dyn_lengths`
/// with 1/2/4 warm sessions) on the 7-node dyn_only set — the tentpole
/// fan-out path. Deterministic output is thread-count-invariant, so the
/// only thing this measures is wall-clock scaling.
fn bench_parallel_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_dyn_sweep");
    group.measurement_time(std::time::Duration::from_secs(8));
    group.warm_up_time(std::time::Duration::from_secs(1));
    let case = case_for(7, 0.0, &OptParams::default());
    let cfg = AnalysisConfig::default();
    for threads in [1usize, 2, 4] {
        let mut ev = Evaluator::with_threads(case.platform.clone(), case.app.clone(), cfg, threads);
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, _| {
            b.iter(|| ev.evaluate_dyn_lengths(&case.template, &case.candidates));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dyn_sweep,
    bench_dyn_delay,
    bench_parallel_sweep
);
criterion_main!(benches);
