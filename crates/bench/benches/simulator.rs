//! Criterion benches for the discrete-event simulator substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flexray_gen::cruise_controller;
use flexray_model::{PhyParams, System};
use flexray_opt::{obc, DynSearch, OptParams};
use flexray_sim::{simulate, SimConfig};

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.measurement_time(std::time::Duration::from_secs(8));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(20);
    // A schedulable cruise-controller configuration from OBCCF.
    let (platform, app) = cruise_controller(120.0).expect("cruise model");
    let result = obc(
        &platform,
        &app,
        PhyParams::bmw_like(),
        &OptParams::default(),
        DynSearch::CurveFit,
    );
    let sys = System {
        platform,
        app,
        bus: result.bus,
    };
    let bounds: Vec<_> = sys.app.ids().map(|id| sys.duration_of(id)).collect();
    let table = flexray_analysis::build_schedule(&sys, &bounds).expect("schedule");

    for reps in [1i64, 4] {
        group.bench_with_input(BenchmarkId::new("cruise", reps), &reps, |b, &reps| {
            let cfg = SimConfig {
                reps,
                ..SimConfig::default()
            };
            b.iter(|| simulate(&sys, &table, &cfg).expect("simulation"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
