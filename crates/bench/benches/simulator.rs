//! Criterion benches for the discrete-event simulator substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flexray_analysis::ScheduleTable;
use flexray_gen::cruise_controller;
use flexray_model::{PhyParams, System};
use flexray_opt::{obc, DynSearch, OptParams};
use flexray_sim::{simulate, ExecutionOrder, SimConfig};

/// A schedulable cruise-controller configuration from OBCCF, with its
/// static schedule table.
fn cruise_system() -> (System, ScheduleTable) {
    let (platform, app) = cruise_controller(120.0).expect("cruise model");
    let result = obc(
        &platform,
        &app,
        PhyParams::bmw_like(),
        &OptParams::default(),
        DynSearch::CurveFit,
    );
    let sys = System {
        platform,
        app,
        bus: result.bus,
    };
    let bounds: Vec<_> = sys.app.ids().map(|id| sys.duration_of(id)).collect();
    let table = flexray_analysis::build_schedule(&sys, &bounds).expect("schedule");
    (sys, table)
}

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.measurement_time(std::time::Duration::from_secs(8));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(20);
    let (sys, table) = cruise_system();

    for reps in [1i64, 4] {
        group.bench_with_input(BenchmarkId::new("cruise", reps), &reps, |b, &reps| {
            let cfg = SimConfig {
                reps,
                ..SimConfig::default()
            };
            b.iter(|| simulate(&sys, &table, &cfg).expect("simulation"));
        });
    }
    group.finish();
}

/// Million-cycle soak: simulate enough hyperperiods that the bus runs
/// at least 10^6 communication cycles, with hyperperiod compression on
/// vs off. Compression detects the repeating boundary state after a few
/// hyperperiods and fast-forwards over the rest, so its cost is nearly
/// independent of the horizon; the uncompressed run replays every
/// cycle.
fn bench_soak(c: &mut Criterion) {
    let mut group = c.benchmark_group("soak");
    group.measurement_time(std::time::Duration::from_secs(20));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(10);
    let (sys, table) = cruise_system();
    let horizon = sys.app.hyperperiod().expect("hyperperiod");
    let cycles_per_rep = horizon.div_ceil(sys.bus.gd_cycle()).max(1);
    let reps = (1_000_000 + cycles_per_rep - 1) / cycles_per_rep;
    eprintln!(
        "soak: {cycles_per_rep} cycles/hyperperiod, {reps} hyperperiods \
         ({} cycles)",
        cycles_per_rep * reps
    );

    for compress in [false, true] {
        let label = if compress {
            "compressed"
        } else {
            "uncompressed"
        };
        group.bench_with_input(
            BenchmarkId::new("million_cycles", label),
            &compress,
            |b, &compress| {
                let cfg = SimConfig {
                    reps,
                    compress,
                    order: ExecutionOrder::Canonical,
                    ..SimConfig::default()
                };
                b.iter(|| {
                    let report = simulate(&sys, &table, &cfg).expect("simulation");
                    assert_eq!(
                        report.hyperperiods_simulated + report.hyperperiods_skipped,
                        reps
                    );
                    report
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simulator, bench_soak);
criterion_main!(benches);
