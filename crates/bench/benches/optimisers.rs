//! Criterion benches for the four optimisation algorithms — the data
//! behind the right panel of Fig. 9 (run times) at bench granularity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flexray_gen::{generate, GeneratorConfig};
use flexray_model::PhyParams;
use flexray_opt::{bbc, obc, simulated_annealing, DynSearch, OptParams, SaParams};

fn bench_optimisers(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimisers");
    group.measurement_time(std::time::Duration::from_secs(8));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(10);
    let phy = PhyParams::bmw_like();
    let params = OptParams {
        max_extra_slots: 4,
        max_slot_len_steps: 4,
        max_dyn_candidates: 64,
        ..OptParams::default()
    };
    let sa = SaParams {
        iterations: 100,
        ..SaParams::default()
    };
    for n_nodes in [2usize, 3] {
        let generated = generate(&GeneratorConfig::paper(n_nodes), 7).expect("generate");
        let (p, a) = (generated.platform, generated.app);
        group.bench_with_input(BenchmarkId::new("bbc", n_nodes), &n_nodes, |b, _| {
            b.iter(|| bbc(&p, &a, phy, &params));
        });
        group.bench_with_input(BenchmarkId::new("obccf", n_nodes), &n_nodes, |b, _| {
            b.iter(|| obc(&p, &a, phy, &params, DynSearch::CurveFit));
        });
        group.bench_with_input(BenchmarkId::new("obcee", n_nodes), &n_nodes, |b, _| {
            b.iter(|| obc(&p, &a, phy, &params, DynSearch::Exhaustive));
        });
        group.bench_with_input(BenchmarkId::new("sa", n_nodes), &n_nodes, |b, _| {
            b.iter(|| simulated_annealing(&p, &a, phy, &params, &sa));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_optimisers);
criterion_main!(benches);
