//! Golden-file test pinning the workgraph interchange schema
//! (`flexray_bench::workload`, version 1): the exported text of a
//! hand-built two-cluster fixture must stay byte-identical, so any
//! record-layout drift breaks loudly and forces a version bump.
//! `GOLDEN_REGEN=1 cargo test -p flexray-bench --test workgraph`
//! regenerates the golden file.

use flexray_bench::workload::{Workload, WORKGRAPH_VERSION};
use flexray_model::{Application, MessageClass, NodeId, Platform, SchedPolicy, Time};

/// A fixed two-cluster workload exercising every record feature: both
/// policies, both message classes, a gateway relay chain, and the
/// optional per-activity release and deadline.
fn fixture() -> Workload {
    let mut app = Application::new();
    let g = app.add_graph("pipeline", Time::from_us(10_000.0), Time::from_us(9_000.0));
    let t0 = app.add_task(
        g,
        "sense",
        NodeId::new(0),
        Time::from_us(40.0),
        SchedPolicy::Scs,
        0,
    );
    let relay = app.add_task(
        g,
        "relay",
        NodeId::new(4),
        Time::from_us(20.0),
        SchedPolicy::Scs,
        0,
    );
    let t1 = app.add_task(
        g,
        "act",
        NodeId::new(2),
        Time::from_us(40.0),
        SchedPolicy::Scs,
        0,
    );
    let st0 = app.add_message(g, "st0", 8, MessageClass::Static, 0);
    let st1 = app.add_message(g, "st1", 8, MessageClass::Static, 0);
    app.connect_relayed(t0, st0, relay, st1, t1).expect("chain");
    app.set_release(t0, Time::from_us(100.0));
    app.set_deadline(t1, Time::from_us(8_000.0));

    let h = app.add_graph("burst", Time::from_us(5_000.0), Time::from_us(4_000.0));
    let a = app.add_task(
        h,
        "poll",
        NodeId::new(2),
        Time::from_us(10.0),
        SchedPolicy::Fps,
        3,
    );
    let b = app.add_task(
        h,
        "react",
        NodeId::new(3),
        Time::from_us(15.0),
        SchedPolicy::Fps,
        2,
    );
    let dy = app.add_message(h, "dy", 12, MessageClass::Dynamic, 1);
    app.connect(a, dy, b).expect("edge");

    Workload {
        platform: Platform::with_nodes(5),
        app,
        clusters: 2,
        node_cluster: vec![0, 0, 1, 1, 0],
        gateways: vec![NodeId::new(4)],
    }
}

#[test]
fn workgraph_schema_matches_the_golden_file() {
    assert_eq!(
        WORKGRAPH_VERSION, 1,
        "schema version changed: regenerate tests/golden/workgraph.jsonl and \
         update this assertion together with the version bump"
    );
    let text = fixture().export().expect("fixture exports");
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden");
        std::fs::create_dir_all(dir).expect("golden dir");
        std::fs::write(format!("{dir}/workgraph.jsonl"), &text).expect("write golden");
        return;
    }
    assert_eq!(
        text,
        include_str!("golden/workgraph.jsonl"),
        "workgraph schema drifted: bump WORKGRAPH_VERSION and regenerate the golden file"
    );
}

#[test]
fn golden_file_imports_back_to_the_fixture() {
    let back = Workload::import(include_str!("golden/workgraph.jsonl")).expect("golden imports");
    let fixture = fixture();
    assert_eq!(back.fingerprint(), fixture.fingerprint());
    assert_eq!(back.app.activities(), fixture.app.activities());
    assert_eq!(back.node_cluster, fixture.node_cluster);
    assert_eq!(back.gateways, fixture.gateways);
}
