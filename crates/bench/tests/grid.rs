//! Differential and property suite locking down the factorial grid
//! engine:
//!
//! * cartesian-product completeness and deterministic enumeration;
//! * resume(partial ∪ rest) == full run, for every split point;
//! * the refactored single-axis sweep and fig9 harnesses against
//!   byte-level reference reimplementations of their pre-grid loops
//!   (bit-identical deterministic output);
//! * JSON-lines report round-trips, torn-tail recovery;
//! * a golden-file test pinning the JSONL/CSV schema — bumping
//!   [`GRID_SCHEMA_VERSION`] breaks it on purpose.

use flexray_bench::fig9::{run_experiment, Fig9Config, PointStats};
use flexray_bench::grid::{run_grid, run_grid_resumed, GridConfig, GridPoint, SeedPolicy};
use flexray_bench::report::{from_jsonl, to_csv, to_jsonl, GridReportHeader, GRID_SCHEMA_VERSION};
use flexray_bench::sweep::{
    aggregate_algos, run_sweep, Algo, AlgoStats, SweepAxis, SweepConfig, SweepPoint,
};
use flexray_gen::{generate, AggregatedGenStats, GeneratorConfig};
use flexray_model::{PhyParams, UtilSummary};
use flexray_opt::{OptParams, OptResult, SaParams};

/// Smoke-scale search parameters shared by every differential run —
/// the same preset table the binaries use.
fn smoke_params() -> OptParams {
    flexray_bench::sweep::search_mode("smoke")
        .expect("known mode")
        .0
}

fn smoke_sa() -> SaParams {
    flexray_bench::sweep::search_mode("smoke")
        .expect("known mode")
        .1
}

fn smoke_grid(axes: Vec<SweepAxis>) -> GridConfig {
    GridConfig {
        base: GeneratorConfig::small(3),
        axes,
        apps_per_point: 2,
        algos: vec![Algo::Bbc, Algo::Sa],
        params: smoke_params(),
        sa: smoke_sa(),
        seed0: 7,
        seed_policy: SeedPolicy::PointIndex,
        threads: 1,
        workload: None,
    }
}

// ---------------------------------------------------------------------
// Enumeration properties
// ---------------------------------------------------------------------

#[test]
fn cartesian_product_is_complete_and_deterministically_ordered() {
    let cfg = smoke_grid(vec![
        SweepAxis::NodeCount(vec![2, 3, 4]),
        SweepAxis::GatewayFraction(vec![0.0, 0.5]),
        SweepAxis::BusUtil(vec![0.2, 0.4]),
    ]);
    assert_eq!(cfg.total_points(), 12);

    // the enumeration is exactly the nested loop, first axis slowest
    let mut expected = Vec::new();
    for n in [2usize, 3, 4] {
        for g in [0.0f64, 0.5] {
            for u in [0.2f64, 0.4] {
                expected.push(format!("nodes={n},gateway={g:.2},busutil={u:.2}"));
            }
        }
    }
    let labels: Vec<String> = (0..12).map(|p| cfg.point(p).label).collect();
    assert_eq!(labels, expected);

    // completeness: every combination appears exactly once
    let mut sorted = labels.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(sorted.len(), 12, "a combination is missing or duplicated");

    // the derived configs carry the coordinates
    for p in 0..12 {
        let spec = cfg.point(p);
        assert_eq!(spec.index, p);
        assert_eq!(spec.coords.len(), 3);
        let n: usize = spec.coords[0].1.parse().expect("nodes value");
        assert_eq!(spec.config.n_nodes, n);
        spec.config.validate().expect("derived config validates");
    }
}

// ---------------------------------------------------------------------
// Resume properties
// ---------------------------------------------------------------------

#[test]
fn resume_of_any_partial_prefix_equals_the_full_run() {
    let cfg = smoke_grid(vec![
        SweepAxis::NodeCount(vec![2, 3]),
        SweepAxis::BusUtil(vec![0.2, 0.4]),
    ]);
    let full = run_grid(&cfg).expect("full run");
    assert_eq!(full.len(), 4);

    for split in 0..=full.len() {
        let done: Vec<GridPoint> = full[..split].to_vec();
        let mut streamed = Vec::new();
        let resumed =
            run_grid_resumed(&cfg, done, |p| streamed.push(p.index)).expect("resumed run");
        assert_eq!(
            streamed,
            (0..full.len()).collect::<Vec<_>>(),
            "split {split}: sink must see every point in order"
        );
        assert_eq!(resumed.len(), full.len());
        for (a, b) in full.iter().zip(&resumed) {
            assert!(
                a.deterministic_eq(b),
                "split {split}: {a:?} vs {b:?} diverged"
            );
        }
    }
}

#[test]
fn resume_of_a_non_prefix_subset_also_completes() {
    let cfg = smoke_grid(vec![SweepAxis::NodeCount(vec![2, 3, 4])]);
    let full = run_grid(&cfg).expect("full run");
    // recover only the middle point: the engine must fill both gaps
    let done = vec![full[1].clone()];
    let mut streamed = Vec::new();
    let resumed = run_grid_resumed(&cfg, done, |p| streamed.push(p.index)).expect("resumed run");
    assert_eq!(streamed, vec![0, 1, 2]);
    for (a, b) in full.iter().zip(&resumed) {
        assert!(a.deterministic_eq(b));
    }
}

// ---------------------------------------------------------------------
// Degenerate grids vs the single-axis harnesses
// ---------------------------------------------------------------------

fn sweep_cfg(axis: SweepAxis) -> SweepConfig {
    SweepConfig {
        base: GeneratorConfig::small(3),
        axis,
        apps_per_point: 2,
        algos: vec![Algo::Bbc, Algo::Sa],
        params: smoke_params(),
        sa: smoke_sa(),
        seed0: 7,
        threads: 1,
    }
}

#[test]
fn degenerate_grid_equals_single_axis_sweep_bit_for_bit() {
    for axis in [
        SweepAxis::NodeCount(vec![2, 3]),
        SweepAxis::GraphDepth(vec![3, 5]),
        SweepAxis::GatewayFraction(vec![0.0, 0.6]),
        SweepAxis::BusUtil(vec![0.2, 0.4]),
    ] {
        let cfg = sweep_cfg(axis.clone());
        let sweep = run_sweep(&cfg).expect("sweep");
        let grid_cfg = GridConfig {
            base: cfg.base.clone(),
            axes: vec![axis],
            apps_per_point: cfg.apps_per_point,
            algos: cfg.algos.clone(),
            params: cfg.params.clone(),
            sa: cfg.sa,
            seed0: cfg.seed0,
            seed_policy: SeedPolicy::PointIndex,
            threads: cfg.threads,
            workload: None,
        };
        let grid = run_grid(&grid_cfg).expect("grid");
        assert_eq!(sweep.len(), grid.len());
        for (s, g) in sweep.iter().zip(&grid) {
            let as_sweep = SweepPoint {
                label: g.label.clone(),
                algos: g.algos.clone(),
            };
            assert!(
                s.deterministic_eq(&as_sweep),
                "{s:?} vs {as_sweep:?} diverged"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Differential: refactored harnesses vs their pre-grid reference loops
// ---------------------------------------------------------------------

/// The single-axis sweep exactly as implemented before the grid
/// refactor: a serial per-point loop over per-seed applications.
fn reference_sweep(cfg: &SweepConfig) -> Vec<SweepPoint> {
    let names: Vec<&str> = cfg.algos.iter().map(|a| a.name()).collect();
    let mut out = Vec::new();
    for p in 0..cfg.axis.len() {
        let (label, gen_cfg) = cfg.axis.configure(&cfg.base, p);
        gen_cfg.validate().expect("derived config");
        let per_app: Vec<Vec<OptResult>> = (0..cfg.apps_per_point)
            .map(|i| {
                let seed = cfg.seed0 + 1000 * p as u64 + i as u64;
                let generated = generate(&gen_cfg, seed).expect("generator");
                cfg.algos
                    .iter()
                    .map(|a| {
                        a.solve(
                            &generated.platform,
                            &generated.app,
                            gen_cfg.phy,
                            &cfg.params,
                            &cfg.sa,
                        )
                    })
                    .collect()
            })
            .collect();
        out.push(SweepPoint {
            label,
            algos: aggregate_algos(&names, &per_app, cfg.reference()),
        });
    }
    out
}

/// Fig9 exactly as implemented before the grid refactor: paper
/// configuration per node count, seeds `seed0 + 1000·n + i`.
fn reference_fig9(cfg: &Fig9Config) -> Vec<PointStats> {
    let phy = PhyParams::bmw_like();
    let names: Vec<&str> = Algo::ALL.iter().map(|a| a.name()).collect();
    let sa_idx = Algo::ALL.iter().position(|&a| a == Algo::Sa);
    let mut out = Vec::new();
    for &n in &cfg.node_counts {
        let gen_cfg = GeneratorConfig::paper(n);
        let per_app: Vec<Vec<OptResult>> = (0..cfg.apps_per_point)
            .map(|i| {
                let seed = cfg.seed0 + 1000 * n as u64 + i as u64;
                let generated = generate(&gen_cfg, seed).expect("generator");
                Algo::ALL
                    .iter()
                    .map(|a| {
                        a.solve(
                            &generated.platform,
                            &generated.app,
                            phy,
                            &cfg.params,
                            &cfg.sa,
                        )
                    })
                    .collect()
            })
            .collect();
        out.push(PointStats {
            n_nodes: n,
            algos: aggregate_algos(&names, &per_app, sa_idx),
        });
    }
    out
}

#[test]
fn refactored_sweep_matches_the_pre_grid_reference_implementation() {
    for axis in [
        SweepAxis::NodeCount(vec![2, 3]),
        SweepAxis::GatewayFraction(vec![0.0, 0.6]),
    ] {
        // the reference runs serially; the engine must match at any
        // worker count
        for threads in [1usize, 4] {
            let cfg = SweepConfig {
                threads,
                ..sweep_cfg(axis.clone())
            };
            let engine = run_sweep(&cfg).expect("engine sweep");
            let reference = reference_sweep(&cfg);
            assert_eq!(engine.len(), reference.len());
            for (e, r) in engine.iter().zip(&reference) {
                assert!(
                    e.deterministic_eq(r),
                    "threads {threads}: {e:?} vs {r:?} diverged"
                );
            }
        }
    }
}

#[test]
fn refactored_fig9_matches_the_pre_grid_reference_implementation() {
    for threads in [1usize, 4] {
        let cfg = Fig9Config {
            node_counts: vec![2, 3],
            apps_per_point: 2,
            params: smoke_params(),
            sa: SaParams {
                iterations: 30,
                ..SaParams::default()
            },
            seed0: 7,
            threads,
        };
        let engine = run_experiment(&cfg).expect("engine fig9");
        let reference = reference_fig9(&cfg);
        assert_eq!(engine.len(), reference.len());
        for (e, r) in engine.iter().zip(&reference) {
            assert!(
                e.deterministic_eq(r),
                "threads {threads}: {e:?} vs {r:?} diverged"
            );
        }
    }

    let empty = Fig9Config {
        node_counts: Vec::new(),
        ..Fig9Config::default()
    };
    assert!(
        run_experiment(&empty).expect("empty").is_empty(),
        "empty node-count list keeps returning an empty experiment"
    );
}

// ---------------------------------------------------------------------
// Report round-trips
// ---------------------------------------------------------------------

/// Full equality including the wall-clock fields (the codec must not
/// lose precision; `deterministic_eq` deliberately skips times).
fn fully_eq(a: &GridPoint, b: &GridPoint) -> bool {
    a.deterministic_eq(b)
        && a.algos
            .iter()
            .zip(&b.algos)
            .all(|(x, y)| x.1.avg_time_s.to_bits() == y.1.avg_time_s.to_bits())
}

#[test]
fn jsonl_report_round_trips_exactly() {
    let cfg = smoke_grid(vec![
        SweepAxis::NodeCount(vec![2, 3]),
        SweepAxis::GatewayFraction(vec![0.0, 1.0]),
    ]);
    let points = run_grid(&cfg).expect("grid");
    let header = GridReportHeader::of(&cfg);
    let text = to_jsonl(&header, &points).expect("finite report");
    let (back_header, back_points) = from_jsonl(&text).expect("parses");
    assert_eq!(back_header, header);
    assert_eq!(back_points.len(), points.len());
    for (a, b) in points.iter().zip(&back_points) {
        assert!(fully_eq(a, b), "{a:?} vs {b:?} diverged through the codec");
    }
    // a second write is byte-identical (stable float rendering)
    assert_eq!(
        to_jsonl(&back_header, &back_points).expect("finite report"),
        text
    );
}

#[test]
fn torn_tail_is_recovered_and_mid_file_corruption_is_rejected() {
    let cfg = smoke_grid(vec![SweepAxis::NodeCount(vec![2, 3])]);
    let points = run_grid(&cfg).expect("grid");
    let header = GridReportHeader::of(&cfg);
    let text = to_jsonl(&header, &points).expect("finite report");

    // kill mid-write: drop the trailing half of the last line
    let torn = &text[..text.len() - 40];
    let (_, recovered) = from_jsonl(torn).expect("torn tail is recoverable");
    assert_eq!(recovered.len(), points.len() - 1);
    assert!(fully_eq(&recovered[0], &points[0]));

    // corruption before the tail is an error, not silent loss
    let corrupted = text.replacen("\"label\"", "\"labe", 1);
    assert!(from_jsonl(&corrupted).is_err());

    // resuming from the recovered prefix completes to the full result
    let resumed = run_grid_resumed(&cfg, recovered, |_| {}).expect("resume");
    for (a, b) in points.iter().zip(&resumed) {
        assert!(a.deterministic_eq(b));
    }
}

#[test]
fn header_mismatch_guards_resume() {
    let cfg = smoke_grid(vec![SweepAxis::NodeCount(vec![2, 3])]);
    let header = GridReportHeader::of(&cfg);
    let other = GridConfig {
        seed0: 8,
        ..cfg.clone()
    };
    assert_ne!(
        GridReportHeader::of(&other),
        header,
        "seed is fingerprinted"
    );
    let other = GridConfig {
        apps_per_point: 3,
        ..cfg.clone()
    };
    assert_ne!(GridReportHeader::of(&other), header);
    let other = GridConfig {
        params: OptParams::default(),
        ..cfg.clone()
    };
    assert_ne!(GridReportHeader::of(&other), header, "params fingerprinted");
    // a different base workload must not be able to adopt the report,
    // even when every axis point list is identical
    let other = GridConfig {
        base: GeneratorConfig::paper(3),
        ..cfg.clone()
    };
    assert_ne!(
        GridReportHeader::of(&other),
        header,
        "base generator config is fingerprinted"
    );
    // the worker-thread count does not affect the output and is not
    // part of the fingerprint
    let other = GridConfig { threads: 9, ..cfg };
    assert_eq!(GridReportHeader::of(&other), header);
}

#[test]
fn header_seeds_beyond_f64_precision_round_trip_exactly() {
    let cfg = GridConfig {
        seed0: (1u64 << 53) + 1, // not representable as f64
        ..smoke_grid(vec![SweepAxis::NodeCount(vec![2])])
    };
    let header = GridReportHeader::of(&cfg);
    let back = GridReportHeader::parse(&header.to_line().expect("finite header")).expect("parses");
    assert_eq!(back.seed0, (1u64 << 53) + 1);
    assert_eq!(back, header, "resume must accept the identical grid");
}

// ---------------------------------------------------------------------
// Golden-file schema test
// ---------------------------------------------------------------------

/// A fixed, hand-written report: two points, exact binary fractions
/// everywhere so the rendering is stable across platforms.
fn golden_fixture() -> (GridReportHeader, Vec<GridPoint>) {
    let header = GridReportHeader {
        version: GRID_SCHEMA_VERSION,
        axes: vec![
            ("nodes".into(), vec!["2".into(), "3".into()]),
            ("busutil".into(), vec!["0.25".into()]),
        ],
        apps_per_point: 2,
        algos: vec!["BBC".into(), "SA".into()],
        seed0: 42,
        params: "fixture".into(),
        total_points: 2,
    };
    let algo = |sched: usize, dev: f64, time: f64, evals: f64| AlgoStats {
        schedulable: sched,
        total: 2,
        avg_deviation_pct: dev,
        avg_time_s: time,
        avg_evaluations: evals,
    };
    let point = |index: usize, nodes: &str, tasks: f64| GridPoint {
        index,
        label: format!("nodes={nodes},busutil=0.25"),
        coords: vec![
            ("nodes".into(), nodes.into()),
            ("busutil".into(), "0.25".into()),
        ],
        algos: vec![
            ("BBC".into(), algo(1, 1.5, 0.125, 26.0)),
            ("SA".into(), algo(2, 0.0, 0.5, 31.0)),
        ],
        gen: AggregatedGenStats {
            apps: 2,
            avg_tasks: tasks,
            avg_relay_tasks: 0.5,
            avg_st_messages: 4.0,
            avg_dyn_messages: 6.5,
            avg_graphs: 4.0,
            node_util: UtilSummary {
                min: 0.25,
                mean: 0.375,
                max: 0.5,
            },
            avg_bus_util: 0.1875,
            depth_histogram: vec![0, 0, 1, 3],
        },
    };
    (header, vec![point(0, "2", 20.0), point(1, "3", 30.0)])
}

#[test]
fn report_schema_matches_the_golden_files() {
    assert_eq!(
        GRID_SCHEMA_VERSION, 1,
        "schema version changed: regenerate tests/golden/grid_report.{{jsonl,csv}} \
         and update this assertion together with the version bump"
    );
    let (header, points) = golden_fixture();
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden");
        std::fs::create_dir_all(dir).expect("golden dir");
        std::fs::write(
            format!("{dir}/grid_report.jsonl"),
            to_jsonl(&header, &points).expect("finite report"),
        )
        .expect("write jsonl golden");
        std::fs::write(format!("{dir}/grid_report.csv"), to_csv(&header, &points))
            .expect("write csv golden");
        return;
    }
    assert_eq!(
        to_jsonl(&header, &points).expect("finite report"),
        include_str!("golden/grid_report.jsonl"),
        "JSONL schema drifted: bump GRID_SCHEMA_VERSION and regenerate the golden file"
    );
    assert_eq!(
        to_csv(&header, &points),
        include_str!("golden/grid_report.csv"),
        "CSV schema drifted: bump GRID_SCHEMA_VERSION and regenerate the golden file"
    );
}

// ---------------------------------------------------------------------
// Multi-cluster axis and imported-workload grids
// ---------------------------------------------------------------------

#[test]
fn clusters_axis_derives_multi_cluster_points_with_a_gateway_fallback() {
    let cfg = smoke_grid(vec![SweepAxis::Clusters(vec![1, 2])]);
    cfg.validate().expect("grid validates");
    assert_eq!(cfg.total_points(), 2);

    let single = cfg.point(0);
    assert_eq!(single.label, "clusters=1");
    assert_eq!(single.config.clusters, 1);
    assert_eq!(
        single.config.gateways, cfg.base.gateways,
        "a single-cluster point must not grow a gateway"
    );

    let dual = cfg.point(1);
    assert_eq!(dual.label, "clusters=2");
    assert_eq!(dual.config.clusters, 2);
    assert_eq!(
        dual.config.gateways,
        vec![cfg.base.n_nodes - 1],
        "without configured gateways the last node bridges the clusters"
    );

    let points = run_grid(&cfg).expect("grid runs");
    assert_eq!(points.len(), 2);
    for p in &points {
        assert_eq!(p.gen.apps, cfg.apps_per_point);
        assert_eq!(p.algos.len(), cfg.algos.len());
    }
}

#[test]
fn clusters_one_point_is_bit_identical_to_the_plain_base_run() {
    // The clusters axis must be RNG-neutral at clusters=1: the same
    // seeds on the same base configuration must reproduce a grid that
    // never heard of the axis.
    let with_axis = smoke_grid(vec![SweepAxis::Clusters(vec![1])]);
    let plain = smoke_grid(vec![SweepAxis::NodeCount(vec![with_axis.base.n_nodes])]);
    let a = run_grid(&with_axis).expect("clusters=1 run");
    let b = run_grid(&plain).expect("plain run");
    assert_eq!(a.len(), 1);
    assert_eq!(a[0].gen, b[0].gen, "generator output drifted");
    for ((name_a, stats_a), (name_b, stats_b)) in a[0].algos.iter().zip(&b[0].algos) {
        assert_eq!(name_a, name_b);
        assert_eq!(stats_a.schedulable, stats_b.schedulable);
        assert_eq!(stats_a.total, stats_b.total);
        assert_eq!(stats_a.avg_deviation_pct, stats_b.avg_deviation_pct);
        assert_eq!(stats_a.avg_evaluations, stats_b.avg_evaluations);
    }
}

#[test]
fn workload_grid_runs_the_imported_scenario_and_pins_its_fingerprint() {
    use flexray_bench::grid::WorkloadSource;
    use flexray_bench::workload::Workload;

    let gen_cfg = GeneratorConfig::clustered(5, 2);
    let generated = generate(&gen_cfg, 3).expect("clustered scenario");
    let original = Workload::of_generated(&generated);
    let workload = Workload::import(&original.export().expect("export")).expect("import");
    assert_eq!(
        workload.stats(&gen_cfg.phy).expect("stats"),
        original.stats(&gen_cfg.phy).expect("stats"),
        "round-tripped workload statistics must be bit-identical"
    );

    let cfg = GridConfig {
        axes: Vec::new(),
        workload: Some(WorkloadSource {
            name: "hand".into(),
            workload: workload.clone(),
        }),
        apps_per_point: 1,
        algos: vec![Algo::Bbc],
        ..smoke_grid(Vec::new())
    };
    cfg.validate().expect("workload grid validates");
    assert_eq!(cfg.total_points(), 1);

    let header = GridReportHeader::of(&cfg);
    assert!(
        header
            .params
            .contains(&format!("workload=hand:{}", workload.fingerprint())),
        "header must pin the workload fingerprint: {}",
        header.params
    );

    let points = run_grid(&cfg).expect("workload grid runs");
    assert_eq!(points.len(), 1);
    assert_eq!(points[0].label, "base");
    assert_eq!(points[0].gen.apps, 1);
    let stats = workload.stats(&gen_cfg.phy).expect("stats");
    assert!(
        (points[0].gen.avg_bus_util - stats.bus_util).abs() < 1e-12,
        "the point must report the imported workload's own statistics"
    );

    // two runs of the same imported workload are bit-identical
    let again = run_grid(&cfg).expect("second run");
    assert!(points[0].deterministic_eq(&again[0]));
}

#[test]
fn workload_grids_reject_configured_axes() {
    use flexray_bench::grid::WorkloadSource;
    use flexray_bench::workload::Workload;

    let generated = generate(&GeneratorConfig::small(3), 1).expect("scenario");
    let cfg = GridConfig {
        workload: Some(WorkloadSource {
            name: "w".into(),
            workload: Workload::of_generated(&generated),
        }),
        ..smoke_grid(vec![SweepAxis::NodeCount(vec![2, 3])])
    };
    let err = cfg
        .validate()
        .expect_err("axes with a workload must be rejected");
    assert!(
        err.to_string().contains("axes"),
        "error must explain the conflict: {err}"
    );
}
