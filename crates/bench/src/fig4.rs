//! Fig. 4 — optimisation of the DYN segment.
//!
//! Two nodes; N1 sends m1 (7 minislots) and m3 (3), N2 sends m2 (6);
//! one 8 µs static slot; `priority(m1) > priority(m3)`. Three scenarios
//! compared by the response time of m2 (simulated, exact):
//!
//! * (a) Table A (m1→1, m2→2, m3→1), DYN = 12 minislots: R2 = 37;
//! * (b) Table B (m1→1, m2→2, m3→3), DYN = 12: R2 = 35;
//! * (c) Table B with DYN enlarged to 13: R2 = 21.

use crate::fig3::paper_unit_phy;
use flexray_analysis::{analyse, AnalysisConfig};
use flexray_model::{
    ActivityId, Application, BusConfig, FrameId, MessageClass, ModelError, NodeId, Platform,
    SchedPolicy, System, Time,
};
use flexray_sim::simulate_default;

/// One Fig. 4 scenario.
#[derive(Debug, Clone)]
pub struct Fig4Scenario {
    /// Scenario label: "a", "b" or "c".
    pub label: &'static str,
    /// Frame identifier of (m1, m2, m3).
    pub frame_ids: [u16; 3],
    /// Dynamic-segment length in minislots.
    pub n_minislots: u32,
    /// The paper's reported response time of m2 (µs).
    pub paper_r2: f64,
}

/// The three configurations of Fig. 4 (Tables A and B).
#[must_use]
pub fn scenarios() -> Vec<Fig4Scenario> {
    vec![
        Fig4Scenario {
            label: "a",
            frame_ids: [1, 2, 1],
            n_minislots: 12,
            paper_r2: 37.0,
        },
        Fig4Scenario {
            label: "b",
            frame_ids: [1, 2, 3],
            n_minislots: 12,
            paper_r2: 35.0,
        },
        Fig4Scenario {
            label: "c",
            frame_ids: [1, 2, 3],
            n_minislots: 13,
            paper_r2: 21.0,
        },
    ]
}

/// Builds the Fig. 4 system under one scenario; returns the system and
/// the ids of (m1, m2, m3).
///
/// # Errors
///
/// Never fails for the built-in structure.
pub fn fig4_system(sc: &Fig4Scenario) -> Result<(System, [ActivityId; 3]), ModelError> {
    let mut app = Application::new();
    let g = app.add_graph("fig4", Time::from_us(1000.0), Time::from_us(1000.0));
    let sizes = [14u32, 12, 6]; // 7, 6, 3 minislots at 1 µs each
    let senders = [0usize, 1, 0];
    let prios = [9u32, 5, 1]; // priority(m1) > priority(m3)
    let mut msgs = Vec::new();
    for i in 0..3 {
        let s = app.add_task(
            g,
            &format!("s{i}"),
            NodeId::new(senders[i]),
            Time::from_ns(1),
            SchedPolicy::Fps,
            10,
        );
        let r = app.add_task(
            g,
            &format!("r{i}"),
            NodeId::new(1 - senders[i]),
            Time::from_ns(1),
            SchedPolicy::Fps,
            10,
        );
        let m = app.add_message(
            g,
            &format!("m{}", i + 1),
            sizes[i],
            MessageClass::Dynamic,
            prios[i],
        );
        app.connect(s, m, r)?;
        msgs.push(m);
    }
    let mut bus = BusConfig::new(paper_unit_phy());
    bus.static_slot_len = Time::from_us(8.0);
    bus.static_slot_owners = vec![NodeId::new(0)];
    bus.n_minislots = sc.n_minislots;
    for (i, &m) in msgs.iter().enumerate() {
        bus.frame_ids.insert(m, FrameId::new(sc.frame_ids[i]));
    }
    let sys = System::validated(Platform::with_nodes(2), app, bus)?;
    Ok((sys, [msgs[0], msgs[1], msgs[2]]))
}

/// Simulated response time of m2 and the analysed worst-case bound.
///
/// # Errors
///
/// Propagates model/simulation errors.
pub fn response_of_m2(sc: &Fig4Scenario) -> Result<(Time, Time), ModelError> {
    let (sys, [_, m2, _]) = fig4_system(sc)?;
    let report = simulate_default(&sys)?;
    let simulated = report
        .response(m2)
        .ok_or_else(|| ModelError::MalformedGraph("m2 never delivered".into()))?;
    let analysis = analyse(&sys, &AnalysisConfig::default())?;
    Ok((simulated, analysis.response(m2)))
}

/// Runs all three scenarios and renders the comparison table.
///
/// # Errors
///
/// Propagates model/simulation errors.
pub fn run() -> Result<String, ModelError> {
    let mut rows = Vec::new();
    for sc in scenarios() {
        let (sim, wcrt) = response_of_m2(&sc)?;
        rows.push(vec![
            sc.label.to_owned(),
            format!("{:?}", sc.frame_ids),
            sc.n_minislots.to_string(),
            format!("{:.0}", sc.paper_r2),
            format!("{:.0}", sim.as_us()),
            format!("{:.0}", wcrt.as_us()),
        ]);
    }
    Ok(crate::render_table(
        &[
            "scenario",
            "FrameIDs(m1,m2,m3)",
            "DYN(ms)",
            "paper R2",
            "simulated R2",
            "analysed WCRT",
        ],
        &rows,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulation_matches_paper_exactly() {
        for sc in scenarios() {
            let (sim, _) = response_of_m2(&sc).expect("scenario runs");
            assert_eq!(
                sim,
                Time::from_us(sc.paper_r2),
                "scenario {}: paper {} vs simulated {}",
                sc.label,
                sc.paper_r2,
                sim.as_us()
            );
        }
    }

    #[test]
    fn analysis_bounds_simulation() {
        for sc in scenarios() {
            let (sim, wcrt) = response_of_m2(&sc).expect("scenario runs");
            assert!(
                wcrt >= sim,
                "scenario {}: WCRT {} < simulated {}",
                sc.label,
                wcrt.as_us(),
                sim.as_us()
            );
        }
    }

    #[test]
    fn separate_ids_and_longer_segment_help() {
        let scs = scenarios();
        let (ra, _) = response_of_m2(&scs[0]).expect("a");
        let (rb, _) = response_of_m2(&scs[1]).expect("b");
        let (rc, _) = response_of_m2(&scs[2]).expect("c");
        assert!(ra > rb && rb > rc);
    }
}
