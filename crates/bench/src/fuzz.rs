//! Divergence-hunting fuzz campaign over execution orders.
//!
//! The component engine of `flexray-sim` can permute the service order
//! of simultaneous same-phase events ([`ExecutionOrder::Fuzzed`]). This
//! campaign sweeps the grid engine's point enumeration (generator
//! corners) crossed with a set of order seeds and checks, for every
//! schedulable optimised instance, that **no execution order can push
//! the simulation outside the analysis**:
//!
//! * no precedence violation may appear under any order;
//! * every observed response must stay within its analytic WCRT;
//! * every observed response must meet its deadline.
//!
//! Any such finding is a *divergence* — evidence against either the
//! engine's ordering policy or the analysis — and fails the campaign.
//! Fuzzed runs whose response vector differs from the canonical order's
//! (without leaving the bounds) are *order-sensitive*: a legitimate
//! protocol race (e.g. CHI insertion order between equal-priority
//! frames) that the analysis must and does cover; they are counted and
//! reported, not failed.
//!
//! Points are enumerated and seeded exactly like the grid engine
//! ([`GridConfig::point`] / [`GridConfig::seed`]); `(point, app)` units
//! fan out over the shared [`scoped_consume`] pool and the report
//! streams as JSON lines (`flexray-fuzz` schema v1) in point order.

use crate::grid::{GridConfig, PointSpec, SeedPolicy};
use crate::report::{arr_field, field, malformed, num_field, str_field, Json};
use crate::sweep::{Algo, SweepAxis};
use flexray_analysis::{analyse, Analysis, AnalysisConfig};
use flexray_gen::{generate, GeneratorConfig};
use flexray_model::{ModelError, System};
use flexray_opt::{obc, DynSearch, OptParams, SaParams};
use flexray_sim::{simulate_configured, ExecutionOrder, SimConfig, SimReport};
use flexray_util::scoped_consume;

/// The JSON-lines schema name of fuzz reports.
pub const FUZZ_SCHEMA: &str = "flexray-fuzz";
/// The fuzz record-layout version.
pub const FUZZ_SCHEMA_VERSION: u32 = 1;

/// Scale and scope of one fuzz campaign.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Base generator configuration the axes perturb.
    pub base: GeneratorConfig,
    /// Factorial axes, exactly as in [`GridConfig::axes`].
    pub axes: Vec<SweepAxis>,
    /// Applications (seeds) per grid point.
    pub apps_per_point: usize,
    /// Execution-order seeds fuzzed per schedulable application (the
    /// canonical order always runs as the baseline).
    pub order_seeds: Vec<u64>,
    /// Hyperperiods per simulation run.
    pub reps: i64,
    /// Hyperperiod compression on the simulation runs.
    pub compress: bool,
    /// Optimiser parameters (OBC/curve-fit configures each instance).
    pub params: OptParams,
    /// Base RNG seed; application `i` of point `p` is seeded
    /// `seed0 + 1000·p + i`, the grid convention.
    pub seed0: u64,
    /// Worker threads (`0` = all cores, `1` = serial).
    pub threads: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            base: GeneratorConfig::small(3),
            axes: Vec::new(),
            apps_per_point: 2,
            order_seeds: vec![1, 2, 3, 4],
            reps: 4,
            compress: true,
            params: OptParams::default(),
            seed0: 42,
            threads: 0,
        }
    }
}

impl FuzzConfig {
    /// The equivalent grid configuration (single dummy algorithm; the
    /// campaign drives the optimiser itself) used for enumeration,
    /// seeding and validation — public so external dispatchers (the
    /// `flexray-serve` daemon) can enumerate and seed fuzz units
    /// exactly like [`run_fuzz`] does.
    #[must_use]
    pub fn grid(&self) -> GridConfig {
        GridConfig {
            base: self.base.clone(),
            axes: self.axes.clone(),
            apps_per_point: self.apps_per_point,
            algos: vec![Algo::ObcCf],
            params: self.params.clone(),
            sa: SaParams::default(),
            seed0: self.seed0,
            seed_policy: SeedPolicy::PointIndex,
            threads: self.threads,
            workload: None,
        }
    }

    /// Number of grid points.
    #[must_use]
    pub fn total_points(&self) -> usize {
        self.grid().total_points()
    }

    /// Checks the campaign for internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] on grid inconsistencies
    /// (see [`GridConfig::validate`]), an empty order-seed set, a
    /// duplicate order seed, or a non-positive hyperperiod count.
    pub fn validate(&self) -> Result<(), ModelError> {
        self.grid().validate()?;
        if self.order_seeds.is_empty() {
            return Err(ModelError::InvalidConfig(
                "fuzz campaign needs at least one order seed".into(),
            ));
        }
        for (k, &s) in self.order_seeds.iter().enumerate() {
            if self.order_seeds[..k].contains(&s) {
                return Err(ModelError::InvalidConfig(format!(
                    "duplicate order seed {s}"
                )));
            }
        }
        if self.reps < 1 {
            return Err(ModelError::InvalidConfig(
                "fuzz campaign needs at least one hyperperiod per run".into(),
            ));
        }
        Ok(())
    }

    /// Serialises the campaign header as the first report line (no
    /// newline).
    ///
    /// # Errors
    ///
    /// Propagates the non-finite-number error of [`Json::write`].
    pub fn header_line(&self) -> Result<String, ModelError> {
        Json::Obj(vec![
            ("schema".into(), Json::Str(FUZZ_SCHEMA.into())),
            ("version".into(), Json::Num(f64::from(FUZZ_SCHEMA_VERSION))),
            (
                "axes".into(),
                Json::Arr(
                    self.axes
                        .iter()
                        .map(|axis| {
                            Json::Obj(vec![
                                ("name".into(), Json::Str(axis.name().into())),
                                (
                                    "values".into(),
                                    Json::Arr(
                                        (0..axis.len()).map(|i| Json::Str(axis.value(i))).collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "apps_per_point".into(),
                Json::Num(self.apps_per_point as f64),
            ),
            (
                "order_seeds".into(),
                Json::Arr(
                    self.order_seeds
                        .iter()
                        .map(|s| Json::Str(s.to_string()))
                        .collect(),
                ),
            ),
            ("reps".into(), Json::Num(self.reps as f64)),
            ("compress".into(), Json::Bool(self.compress)),
            ("seed0".into(), Json::Str(self.seed0.to_string())),
            ("total_points".into(), Json::Num(self.total_points() as f64)),
        ])
        .write()
    }
}

/// Outcome of one fuzzed grid point.
#[derive(Debug, Clone)]
pub struct FuzzPoint {
    /// Flat point index in enumeration order.
    pub index: usize,
    /// Point label, e.g. `nodes=5,busutil=0.20`.
    pub label: String,
    /// `(axis name, value)` coordinates in axis order.
    pub coords: Vec<(String, String)>,
    /// Generated applications.
    pub apps: usize,
    /// Applications the optimiser made schedulable (only these are
    /// simulated and fuzzed).
    pub schedulable: usize,
    /// Simulation runs performed (canonical + fuzzed, schedulable apps
    /// only).
    pub runs: usize,
    /// Fuzzed runs whose response vector differed from the canonical
    /// order's without leaving the analysis bounds (legitimate protocol
    /// races).
    pub order_sensitive: usize,
    /// Divergence descriptions — sorted, deduplicated; an empty list is
    /// a pass.
    pub divergences: Vec<String>,
    /// Tightest observed analysis margin (µs) across all runs: the
    /// minimum of `WCRT − observed`. `None` if nothing completed.
    pub min_margin_us: Option<f64>,
}

impl FuzzPoint {
    /// Serialises the point as one report line (no newline).
    ///
    /// # Errors
    ///
    /// Propagates the non-finite-number error of [`Json::write`] (a
    /// NaN margin would be a campaign bug, surfaced here).
    pub fn to_line(&self) -> Result<String, ModelError> {
        self.to_json().write()
    }

    /// The JSON value behind [`FuzzPoint::to_line`] — the form the
    /// `flexray-serve` journal embeds as the `data` member of its
    /// point records.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("point".into(), Json::Num(self.index as f64)),
            ("label".into(), Json::Str(self.label.clone())),
            (
                "coords".into(),
                Json::Obj(
                    self.coords
                        .iter()
                        .map(|(name, value)| (name.clone(), Json::Str(value.clone())))
                        .collect(),
                ),
            ),
            ("apps".into(), Json::Num(self.apps as f64)),
            ("schedulable".into(), Json::Num(self.schedulable as f64)),
            ("runs".into(), Json::Num(self.runs as f64)),
            (
                "order_sensitive".into(),
                Json::Num(self.order_sensitive as f64),
            ),
            (
                "divergences".into(),
                Json::Arr(
                    self.divergences
                        .iter()
                        .map(|d| Json::Str(d.clone()))
                        .collect(),
                ),
            ),
            (
                "min_margin_us".into(),
                self.min_margin_us.map_or(Json::Null, Json::Num),
            ),
        ])
    }

    /// Aggregates the fuzz outcomes of one point (in application
    /// order) into its [`FuzzPoint`] — the completion half of
    /// [`fuzz_app`], shared by [`run_fuzz`] and external dispatchers.
    #[must_use]
    pub fn from_apps(spec: &PointSpec, apps: Vec<FuzzAppOutcome>) -> FuzzPoint {
        let mut point = FuzzPoint {
            index: spec.index,
            label: spec.label.clone(),
            coords: spec.coords.clone(),
            apps: apps.len(),
            schedulable: 0,
            runs: 0,
            order_sensitive: 0,
            divergences: Vec::new(),
            min_margin_us: None,
        };
        for o in apps {
            point.schedulable += usize::from(o.schedulable);
            point.runs += o.runs;
            point.order_sensitive += o.order_sensitive;
            point.divergences.extend(o.divergences);
            if let Some(m) = o.min_margin_us {
                if point.min_margin_us.is_none_or(|cur| m < cur) {
                    point.min_margin_us = Some(m);
                }
            }
        }
        point.divergences.sort();
        point.divergences.dedup();
        point
    }

    /// Parses one point record — the inverse of [`FuzzPoint::to_line`],
    /// used by journal replay.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] on syntax errors or
    /// missing / mistyped fields.
    pub fn parse(line: &str) -> Result<FuzzPoint, ModelError> {
        FuzzPoint::from_json(&Json::parse(line)?)
    }

    /// Parses one point record from an already-decoded JSON value.
    ///
    /// # Errors
    ///
    /// See [`FuzzPoint::parse`].
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn from_json(json: &Json) -> Result<FuzzPoint, ModelError> {
        let coords = match field(json, "coords")? {
            Json::Obj(members) => members
                .iter()
                .map(|(name, value)| match value {
                    Json::Str(s) => Ok((name.clone(), s.clone())),
                    _ => Err(malformed(&format!(
                        "fuzz coordinate '{name}' is not a string"
                    ))),
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err(malformed("'coords' is not an object")),
        };
        let divergences = arr_field(json, "divergences")?
            .iter()
            .map(|d| match d {
                Json::Str(s) => Ok(s.clone()),
                _ => Err(malformed("divergence is not a string")),
            })
            .collect::<Result<Vec<_>, _>>()?;
        let min_margin_us = match field(json, "min_margin_us")? {
            Json::Null => None,
            Json::Num(m) => Some(*m),
            _ => return Err(malformed("'min_margin_us' is not a number or null")),
        };
        Ok(FuzzPoint {
            index: num_field(json, "point")? as usize,
            label: str_field(json, "label")?.to_owned(),
            coords,
            apps: num_field(json, "apps")? as usize,
            schedulable: num_field(json, "schedulable")? as usize,
            runs: num_field(json, "runs")? as usize,
            order_sensitive: num_field(json, "order_sensitive")? as usize,
            divergences,
            min_margin_us,
        })
    }
}

/// Result of one `(point, app)` unit — the fuzz analogue of
/// [`crate::grid::AppRun`], public for external dispatchers.
#[derive(Debug, Clone)]
pub struct FuzzAppOutcome {
    /// Whether the optimiser made the application schedulable.
    pub schedulable: bool,
    /// Simulation runs performed (0 when unschedulable).
    pub runs: usize,
    /// Fuzzed runs whose response vector differed from the canonical
    /// order's without leaving the analysis bounds.
    pub order_sensitive: usize,
    /// Divergence descriptions found on this application.
    pub divergences: Vec<String>,
    /// Tightest observed analysis margin (µs) across this
    /// application's runs.
    pub min_margin_us: Option<f64>,
    /// Scheduling + schedulability evaluations the optimiser spent on
    /// this application — the counter crash-safe dispatchers check to
    /// prove completed work is never recomputed.
    pub evaluations: usize,
}

/// Audits one simulation run against the analysis: collects divergences
/// and tightens the running margin.
fn audit_run(
    sys: &System,
    analysis: &Analysis,
    ctx: &str,
    report: &SimReport,
    divergences: &mut Vec<String>,
    margin: &mut Option<f64>,
) {
    for v in &report.violations {
        divergences.push(format!("{ctx}: precedence violation: {v}"));
    }
    for id in sys.app.ids() {
        let Some(observed) = report.response(id) else {
            continue;
        };
        let name = &sys.app.activity(id).name;
        let bound = analysis.response(id);
        if observed > bound {
            divergences.push(format!(
                "{ctx}: '{name}' observed {observed} > WCRT {bound}"
            ));
        } else {
            let m = (bound - observed).as_us();
            if margin.is_none_or(|cur| m < cur) {
                *margin = Some(m);
            }
        }
        let deadline = sys.app.deadline_of(id);
        if observed > deadline {
            divergences.push(format!(
                "{ctx}: '{name}' observed {observed} misses its deadline {deadline}"
            ));
        }
    }
}

/// Generates, optimises and fuzz-simulates one application — the
/// single work unit of the campaign, exposed so external dispatchers
/// (the `flexray-serve` daemon) can drive fuzz jobs on their own
/// worker pool. Seeds follow [`GridConfig::seed`] of
/// [`FuzzConfig::grid`].
///
/// # Errors
///
/// Propagates generation, analysis and simulation errors.
pub fn fuzz_app(
    cfg: &FuzzConfig,
    spec: &PointSpec,
    app_index: usize,
    seed: u64,
) -> Result<FuzzAppOutcome, ModelError> {
    let generated = generate(&spec.config, seed)?;
    let result = obc(
        &generated.platform,
        &generated.app,
        spec.config.phy,
        &cfg.params,
        DynSearch::CurveFit,
    );
    let evaluations = result.evaluations;
    if !result.is_schedulable() {
        return Ok(FuzzAppOutcome {
            schedulable: false,
            runs: 0,
            order_sensitive: 0,
            divergences: Vec::new(),
            min_margin_us: None,
            evaluations,
        });
    }
    let sys = System::validated(generated.platform, generated.app, result.bus)?;
    let analysis = analyse(&sys, &AnalysisConfig::default())?;
    let sim = |order: ExecutionOrder| {
        simulate_configured(
            &sys,
            &SimConfig {
                reps: cfg.reps,
                order,
                compress: cfg.compress,
                ..SimConfig::default()
            },
        )
    };
    let mut divergences = Vec::new();
    let mut margin = None;
    let canonical = sim(ExecutionOrder::Canonical)?;
    let label = &spec.label;
    audit_run(
        &sys,
        &analysis,
        &format!("{label} app {app_index} canonical"),
        &canonical,
        &mut divergences,
        &mut margin,
    );
    let mut runs = 1;
    let mut order_sensitive = 0;
    for &order_seed in &cfg.order_seeds {
        let fuzzed = sim(ExecutionOrder::Fuzzed { seed: order_seed })?;
        runs += 1;
        audit_run(
            &sys,
            &analysis,
            &format!("{label} app {app_index} order-seed {order_seed}"),
            &fuzzed,
            &mut divergences,
            &mut margin,
        );
        if fuzzed.responses != canonical.responses {
            order_sensitive += 1;
        }
    }
    Ok(FuzzAppOutcome {
        schedulable: true,
        runs,
        order_sensitive,
        divergences,
        min_margin_us: margin,
        evaluations,
    })
}

/// Runs the whole campaign, emitting every finished point to `sink` in
/// point order, and returns all points.
///
/// # Errors
///
/// Propagates campaign validation, per-point generator-configuration
/// validation, and generation/analysis/simulation errors.
pub fn run_fuzz<S>(cfg: &FuzzConfig, mut sink: S) -> Result<Vec<FuzzPoint>, ModelError>
where
    S: FnMut(&FuzzPoint),
{
    cfg.validate()?;
    let grid = cfg.grid();
    let total = grid.total_points();
    let specs: Vec<PointSpec> = (0..total).map(|p| grid.point(p)).collect();
    for spec in &specs {
        spec.config.validate()?;
    }

    let units: Vec<(usize, usize)> = (0..total)
        .flat_map(|p| (0..cfg.apps_per_point).map(move |i| (p, i)))
        .collect();
    let mut pending: Vec<Vec<Option<FuzzAppOutcome>>> = (0..total)
        .map(|_| (0..cfg.apps_per_point).map(|_| None).collect())
        .collect();
    let mut slots: Vec<Option<FuzzPoint>> = (0..total).map(|_| None).collect();
    let mut next_emit = 0usize;
    let mut first_error: Option<ModelError> = None;

    let abort = std::sync::atomic::AtomicBool::new(false);
    let abort = &abort;
    let solve_unit = |u: usize| -> Result<FuzzAppOutcome, ModelError> {
        if abort.load(std::sync::atomic::Ordering::Relaxed) {
            return Err(ModelError::InvalidConfig(
                "fuzz campaign aborted after an earlier unit failed".into(),
            ));
        }
        let (p, i) = units[u];
        fuzz_app(cfg, &specs[p], i, grid.seed(p, i))
    };

    scoped_consume(
        units.len(),
        grid.worker_threads(),
        solve_unit,
        |u, outcome| {
            let (p, i) = units[u];
            match outcome {
                Err(e) => {
                    abort.store(true, std::sync::atomic::Ordering::Relaxed);
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
                Ok(run) => {
                    let apps = &mut pending[p];
                    apps[i] = Some(run);
                    if apps.iter().all(Option::is_some) {
                        let outcomes: Vec<FuzzAppOutcome> = apps
                            .iter_mut()
                            .map(|app| app.take().expect("checked above"))
                            .collect();
                        slots[p] = Some(FuzzPoint::from_apps(&specs[p], outcomes));
                        while next_emit < total {
                            match &slots[next_emit] {
                                Some(done) => {
                                    sink(done);
                                    next_emit += 1;
                                }
                                None => break,
                            }
                        }
                    }
                }
            }
        },
    );

    if let Some(e) = first_error {
        return Err(e);
    }
    Ok(slots
        .into_iter()
        .map(|slot| slot.expect("every point completes"))
        .collect())
}

/// Renders the campaign as one text table.
#[must_use]
pub fn render(points: &[FuzzPoint]) -> String {
    let mut rows = Vec::new();
    for p in points {
        rows.push(vec![
            p.label.clone(),
            format!("{}/{}", p.schedulable, p.apps),
            p.runs.to_string(),
            p.order_sensitive.to_string(),
            p.divergences.len().to_string(),
            p.min_margin_us
                .map_or("-".to_owned(), |m| format!("{m:.1}")),
        ]);
    }
    format!(
        "Order-fuzz campaign\n{}",
        crate::render_table(
            &[
                "point",
                "schedulable",
                "sim runs",
                "order-sensitive",
                "divergences",
                "min margin (µs)",
            ],
            &rows
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FuzzConfig {
        FuzzConfig {
            base: GeneratorConfig::small(2),
            axes: vec![SweepAxis::NodeCount(vec![2, 3])],
            apps_per_point: 1,
            order_seeds: vec![1, 2],
            reps: 2,
            params: OptParams {
                max_extra_slots: 2,
                max_slot_len_steps: 3,
                max_dyn_candidates: 24,
                dyn_step: 32,
                ..OptParams::default()
            },
            seed0: 1,
            threads: 1,
            ..FuzzConfig::default()
        }
    }

    #[test]
    fn validate_rejects_bad_campaigns() {
        let mut cfg = tiny();
        cfg.order_seeds.clear();
        assert!(cfg.validate().is_err(), "no order seeds");
        let mut cfg = tiny();
        cfg.order_seeds = vec![1, 1];
        assert!(cfg.validate().is_err(), "duplicate order seed");
        let mut cfg = tiny();
        cfg.reps = 0;
        assert!(cfg.validate().is_err(), "no hyperperiods");
        let mut cfg = tiny();
        cfg.apps_per_point = 0;
        assert!(cfg.validate().is_err(), "grid validation still applies");
    }

    #[test]
    fn tiny_campaign_finds_no_divergences_and_streams_in_order() {
        let cfg = tiny();
        let mut streamed = Vec::new();
        let points = run_fuzz(&cfg, |p| streamed.push(p.index)).expect("campaign runs");
        assert_eq!(points.len(), 2);
        assert_eq!(streamed, vec![0, 1]);
        let mut any_schedulable = false;
        for p in &points {
            assert!(p.divergences.is_empty(), "{}: {:?}", p.label, p.divergences);
            assert_eq!(p.apps, 1);
            if p.schedulable > 0 {
                any_schedulable = true;
                // canonical + 2 fuzzed per schedulable app
                assert_eq!(p.runs, 3 * p.schedulable);
                assert!(p.min_margin_us.is_some());
            }
        }
        assert!(any_schedulable, "campaign never simulated anything");
        let text = render(&points);
        assert!(text.contains("order-sensitive"));
        let header = cfg.header_line().expect("finite header");
        assert!(header.contains("\"schema\":\"flexray-fuzz\""));
        let line = points[0].to_line().expect("finite point");
        assert!(line.contains("\"divergences\":[]"));
    }

    #[test]
    fn campaign_is_deterministic_across_thread_counts() {
        let serial = tiny();
        let parallel = FuzzConfig {
            threads: 4,
            ..serial.clone()
        };
        let s = run_fuzz(&serial, |_| {}).expect("serial");
        let p = run_fuzz(&parallel, |_| {}).expect("parallel");
        assert_eq!(s.len(), p.len());
        for (a, b) in s.iter().zip(&p) {
            assert_eq!(
                a.to_line().expect("finite point"),
                b.to_line().expect("finite point")
            );
        }
    }
}
