//! Fig. 3 — optimisation of the ST segment.
//!
//! Two nodes; N1 sends m1 (4 time units), N2 sends m2 (3) and m3 (2).
//! Three static-segment configurations are compared by the response time
//! of m3 (slot-end delivery):
//!
//! * (a) two slots of 4 → m3 waits for the second cycle: R3 = 16;
//! * (b) three slots of 4, N2 owning slots 2 and 3: R3 = 12;
//! * (c) two *longer* slots of 5, m2 and m3 sharing N2's frame: R3 = 10.

use flexray_analysis::build_schedule;
use flexray_model::{
    Application, BusConfig, MessageClass, ModelError, NodeId, PhyParams, Platform, SchedPolicy,
    System, Time,
};

/// One Fig. 3 scenario: slot owners and the slot length (µs ≙ paper time
/// units).
#[derive(Debug, Clone)]
pub struct Fig3Scenario {
    /// Scenario label: "a", "b" or "c".
    pub label: &'static str,
    /// Static slot owners in slot order.
    pub owners: Vec<NodeId>,
    /// Slot length in paper time units.
    pub slot_len: f64,
    /// The paper's reported response time of m3.
    pub paper_r3: f64,
}

/// The three configurations of Fig. 3.
#[must_use]
pub fn scenarios() -> Vec<Fig3Scenario> {
    let n1 = NodeId::new(0);
    let n2 = NodeId::new(1);
    vec![
        Fig3Scenario {
            label: "a",
            owners: vec![n1, n2],
            slot_len: 4.0,
            paper_r3: 16.0,
        },
        Fig3Scenario {
            label: "b",
            owners: vec![n1, n2, n2],
            slot_len: 4.0,
            paper_r3: 12.0,
        },
        Fig3Scenario {
            label: "c",
            owners: vec![n1, n2],
            slot_len: 5.0,
            paper_r3: 10.0,
        },
    ]
}

/// A physical layer where `2·n` bytes last exactly `n` µs and one
/// macrotick/minislot is 1 µs — paper time units map to µs.
#[must_use]
pub fn paper_unit_phy() -> PhyParams {
    PhyParams {
        gd_bit: Time::from_ns(50),
        gd_macrotick: Time::MICROSECOND,
        gd_minislot: Time::MICROSECOND,
        frame_overhead_bytes: 0,
    }
}

/// Builds the Fig. 3 application: three ST messages of sizes 4/3/2 time
/// units, senders as in the figure, receivers on the opposite node.
///
/// # Errors
///
/// Never fails for the built-in structure.
pub fn fig3_app() -> Result<Application, ModelError> {
    let mut app = Application::new();
    let g = app.add_graph("fig3", Time::from_us(1000.0), Time::from_us(1000.0));
    // negligible sender/receiver tasks so messages are ready at t ~ 0
    let sizes = [(0usize, 8u32, "m1"), (1, 6, "m2"), (1, 4, "m3")];
    for &(node, bytes, name) in &sizes {
        let s = app.add_task(
            g,
            &format!("{name}_src"),
            NodeId::new(node),
            Time::from_ns(1),
            SchedPolicy::Scs,
            0,
        );
        let r = app.add_task(
            g,
            &format!("{name}_dst"),
            NodeId::new(1 - node),
            Time::from_ns(1),
            SchedPolicy::Scs,
            0,
        );
        let m = app.add_message(g, name, bytes, MessageClass::Static, 0);
        app.connect(s, m, r)?;
    }
    app.validate()?;
    Ok(app)
}

/// The measured response time of m3 under one scenario.
///
/// # Errors
///
/// Propagates model/scheduling errors.
pub fn response_of_m3(scenario: &Fig3Scenario) -> Result<Time, ModelError> {
    let app = fig3_app()?;
    let mut bus = BusConfig::new(paper_unit_phy());
    bus.static_slot_len = Time::from_us(scenario.slot_len);
    bus.static_slot_owners = scenario.owners.clone();
    let sys = System::validated(Platform::with_nodes(2), app, bus)?;
    let bounds: Vec<Time> = sys.app.ids().map(|id| sys.duration_of(id)).collect();
    let table = build_schedule(&sys, &bounds)?;
    let m3 = sys.app.find("m3").expect("m3 exists");
    table
        .response_of(m3, sys.app.period_of(m3))
        .ok_or_else(|| ModelError::MalformedGraph("m3 not scheduled".into()))
}

/// Runs all three scenarios and renders the comparison table.
///
/// # Errors
///
/// Propagates model/scheduling errors.
pub fn run() -> Result<String, ModelError> {
    let mut rows = Vec::new();
    for sc in scenarios() {
        let r3 = response_of_m3(&sc)?;
        rows.push(vec![
            sc.label.to_owned(),
            format!("{} x {}", sc.owners.len(), sc.slot_len),
            format!("{:.0}", sc.paper_r3),
            format!("{:.0}", r3.as_us()),
        ]);
    }
    Ok(crate::render_table(
        &["scenario", "ST layout", "paper R3", "measured R3"],
        &rows,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_values_exactly() {
        for sc in scenarios() {
            let r3 = response_of_m3(&sc).expect("scenario runs");
            assert_eq!(
                r3,
                Time::from_us(sc.paper_r3),
                "scenario {}: expected {} got {}",
                sc.label,
                sc.paper_r3,
                r3.as_us()
            );
        }
    }

    #[test]
    fn longer_slots_beat_more_slots_here() {
        let scs = scenarios();
        let ra = response_of_m3(&scs[0]).expect("a");
        let rb = response_of_m3(&scs[1]).expect("b");
        let rc = response_of_m3(&scs[2]).expect("c");
        assert!(ra > rb && rb > rc);
    }

    #[test]
    fn table_mentions_all_scenarios() {
        let t = run().expect("runs");
        assert!(t.contains("a") && t.contains("b") && t.contains("c"));
    }
}
