//! Generic single-axis scenario sweeps over the v2 generator.
//!
//! [`run_sweep`] generalises [`fig9::run_experiment`](crate::fig9):
//! instead of sweeping the node count over the paper configuration, it
//! sweeps **any single [`SweepAxis`]** — node count (beyond the paper's
//! 7), graph depth (chain-shaped DAGs), gateway-relayed traffic
//! fraction, or bus utilisation — over a caller-supplied base
//! [`GeneratorConfig`], with a configurable subset of the four
//! optimisation algorithms.
//!
//! The execution machinery is shared with fig9: [`flexray_util::scoped_map`]
//! is the `std::thread::scope` worker pool distributing the per-seed loop, and
//! [`aggregate_algos`] is the [`AlgoStats`] aggregation — fig9 is the
//! special case `axis = NodeCount(2..=5)`, `base = paper`, all four
//! algorithms.
//!
//! # Determinism
//!
//! Application `i` of axis point `p` is generated from seed
//! `seed0 + 1000·p + i` and optimised independently; results are merged
//! by index, so every deterministic output (schedulability counts,
//! deviations, evaluation counts, chosen configurations) is identical
//! for any worker-thread count. Only measured wall-clock times vary.

use flexray_gen::{GeneratorConfig, GraphShape};
use flexray_model::{Application, ModelError, PhyParams, Platform};
use flexray_opt::{
    bbc, obc, optimise_network, simulated_annealing, DynSearch, NetworkTopology, OptParams,
    OptResult, SaParams,
};

// The scoped work-stealing pool lived here originally and moved to
// `flexray-util` so non-bench consumers (the multi-session `Evaluator`,
// the `flexray-serve` dispatcher) can share it; use
// `flexray_util::scoped_map` / `scoped_consume` directly.

/// Aggregated outcome of one algorithm on one sweep point.
#[derive(Debug, Clone, Default)]
pub struct AlgoStats {
    /// Number of applications solved schedulably.
    pub schedulable: usize,
    /// Applications evaluated.
    pub total: usize,
    /// Mean percentage deviation of the cost from the reference
    /// algorithm, over applications where both found schedulable
    /// configurations. Zero when no reference is in the algorithm set.
    pub avg_deviation_pct: f64,
    /// Mean wall-clock seconds per application.
    pub avg_time_s: f64,
    /// Mean number of full analyses per application.
    pub avg_evaluations: f64,
}

/// Percentage deviation of a cost from the reference result.
#[must_use]
pub fn deviation_pct(alg: &OptResult, reference: &OptResult) -> Option<f64> {
    if !(alg.is_schedulable() && reference.is_schedulable()) {
        return None;
    }
    let a = alg.cost.value();
    let s = reference.cost.value();
    if s.abs() < f64::EPSILON {
        return None;
    }
    // costs are negative laxities: less negative = worse
    Some((a - s) / s.abs() * 100.0)
}

/// Folds per-application optimiser results (`per_app[i][alg]`) into one
/// [`AlgoStats`] per algorithm — the aggregation shared by
/// [`run_sweep`] and [`fig9::run_experiment`](crate::fig9).
/// `reference` selects the algorithm deviations are measured against
/// (fig9: SA); `None` leaves all deviations at zero.
#[must_use]
pub fn aggregate_algos(
    names: &[&str],
    per_app: &[Vec<OptResult>],
    reference: Option<usize>,
) -> Vec<(String, AlgoStats)> {
    names
        .iter()
        .enumerate()
        .map(|(alg, name)| {
            let mut stats = AlgoStats {
                total: per_app.len(),
                ..AlgoStats::default()
            };
            let mut devs = Vec::new();
            for results in per_app {
                let r = &results[alg];
                if r.is_schedulable() {
                    stats.schedulable += 1;
                }
                if let Some(d) = reference.and_then(|s| deviation_pct(r, &results[s])) {
                    devs.push(d);
                }
                stats.avg_time_s += r.elapsed.as_secs_f64() / per_app.len() as f64;
                stats.avg_evaluations += r.evaluations as f64 / per_app.len() as f64;
            }
            if !devs.is_empty() {
                stats.avg_deviation_pct = devs.iter().sum::<f64>() / devs.len() as f64;
            }
            ((*name).to_owned(), stats)
        })
        .collect()
}

/// One of the four bus-configuration algorithms of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// Basic Bus Configuration (Fig. 5).
    Bbc,
    /// Optimised Bus Configuration with curve-fit DYN search (OBCCF).
    ObcCf,
    /// Optimised Bus Configuration with exhaustive DYN search (OBCEE).
    ObcEe,
    /// The simulated-annealing reference.
    Sa,
}

impl Algo {
    /// All four algorithms, in the fig9 reporting order.
    pub const ALL: [Algo; 4] = [Algo::Bbc, Algo::ObcCf, Algo::ObcEe, Algo::Sa];

    /// Reporting name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Algo::Bbc => "BBC",
            Algo::ObcCf => "OBCCF",
            Algo::ObcEe => "OBCEE",
            Algo::Sa => "SA",
        }
    }

    /// Parses a name as accepted by the `sweep` binary.
    #[must_use]
    pub fn parse(s: &str) -> Option<Algo> {
        match s.to_ascii_lowercase().as_str() {
            "bbc" => Some(Algo::Bbc),
            "obccf" => Some(Algo::ObcCf),
            "obcee" => Some(Algo::ObcEe),
            "sa" => Some(Algo::Sa),
            _ => None,
        }
    }

    /// Runs the algorithm on one generated application.
    #[must_use]
    pub fn solve(
        self,
        platform: &Platform,
        app: &Application,
        phy: PhyParams,
        params: &OptParams,
        sa: &SaParams,
    ) -> OptResult {
        match self {
            Algo::Bbc => bbc(platform, app, phy, params),
            Algo::ObcCf => obc(platform, app, phy, params, DynSearch::CurveFit),
            Algo::ObcEe => obc(platform, app, phy, params, DynSearch::Exhaustive),
            Algo::Sa => simulated_annealing(platform, app, phy, params, sa),
        }
    }

    /// Runs the algorithm on an application with an explicit cluster
    /// topology. Single-cluster topologies dispatch to [`Algo::solve`]
    /// unchanged; multi-cluster ones run
    /// [`optimise_network`](flexray_opt::optimise_network) — one
    /// skeleton-building round for [`Algo::Bbc`] (the BBC treatment
    /// lifted to N clusters), a coordinate descent over the per-cluster
    /// dynamic-segment lengths for the optimising algorithms — and
    /// report the network result through its cluster-0 representative.
    ///
    /// # Errors
    ///
    /// Propagates topology validation errors of `optimise_network`.
    pub fn solve_on(
        self,
        platform: &Platform,
        app: &Application,
        topo: &NetworkTopology,
        phy: PhyParams,
        params: &OptParams,
        sa: &SaParams,
    ) -> Result<OptResult, ModelError> {
        if topo.clusters <= 1 {
            return Ok(self.solve(platform, app, phy, params, sa));
        }
        let max_rounds = match self {
            Algo::Bbc => 1,
            Algo::ObcCf | Algo::ObcEe | Algo::Sa => 8,
        };
        optimise_network(platform, app, topo, phy, params, max_rounds)
            .map(|network| network.representative())
    }
}

/// Parses a comma-separated algorithm subset (`bbc,obccf,obcee,sa`,
/// case-insensitive) as accepted by the `sweep` and `grid` binaries.
///
/// Unlike a lenient filter, every token must name a known algorithm:
/// unknown names, empty tokens and duplicates are rejected with an
/// error naming the offending token, so a typo (`obc` for `obccf`)
/// cannot silently shrink the algorithm set.
///
/// # Errors
///
/// Returns [`ModelError::InvalidConfig`] naming the first offending
/// token.
pub fn parse_algo_set(s: &str) -> Result<Vec<Algo>, ModelError> {
    let mut algos = Vec::new();
    for token in s.split(',') {
        let token = token.trim();
        if token.is_empty() {
            return Err(ModelError::InvalidConfig(format!(
                "empty algorithm name in subset '{s}' (expected bbc, obccf, obcee or sa)"
            )));
        }
        let Some(algo) = Algo::parse(token) else {
            return Err(ModelError::InvalidConfig(format!(
                "unknown algorithm '{token}' in subset '{s}' (expected bbc, obccf, obcee or sa)"
            )));
        };
        if algos.contains(&algo) {
            return Err(ModelError::InvalidConfig(format!(
                "duplicate algorithm '{token}' in subset '{s}'"
            )));
        }
        algos.push(algo);
    }
    Ok(algos)
}

/// Parses a thread-count option (`threads=`/`eval_threads=` in the
/// `sweep`, `grid` and `fuzz` binaries): a non-negative integer where
/// `0` means "all available cores".
///
/// Strict like [`parse_algo_set`]: anything that is not a plain decimal
/// count is rejected with an error naming the offending value, so a
/// typo (`threads=fuor`) cannot silently fall back to a default.
///
/// # Errors
///
/// Returns [`ModelError::InvalidConfig`] naming the offending value.
pub fn parse_thread_count(value: &str) -> Result<usize, ModelError> {
    let token = value.trim();
    token.parse::<usize>().map_err(|_| {
        ModelError::InvalidConfig(format!(
            "invalid thread count '{value}' (expected a non-negative integer; 0 = all cores)"
        ))
    })
}

/// The `fast`/`full`/`smoke` search-parameter presets shared by the
/// `fig9`, `sweep` and `grid` binaries (and the differential test
/// suite): `full` keeps the defaults, `fast` shrinks the search caps
/// for a quick qualitative run, `smoke` shrinks them further for CI.
/// Returns `None` for an unknown mode name.
#[must_use]
pub fn search_mode(mode: &str) -> Option<(OptParams, SaParams)> {
    match mode {
        "full" => Some((OptParams::default(), SaParams::default())),
        "fast" => Some((
            OptParams {
                max_extra_slots: 4,
                max_slot_len_steps: 6,
                max_dyn_candidates: 96,
                dyn_step: 8,
                ..OptParams::default()
            },
            SaParams {
                iterations: 400,
                ..SaParams::default()
            },
        )),
        "smoke" => Some((
            OptParams {
                max_extra_slots: 2,
                max_slot_len_steps: 3,
                max_dyn_candidates: 24,
                dyn_step: 32,
                ..OptParams::default()
            },
            SaParams {
                iterations: 30,
                ..SaParams::default()
            },
        )),
        _ => None,
    }
}

/// The configuration axis a sweep walks, with its points.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepAxis {
    /// Node count (the paper stops at 7; the v2 generator does not).
    NodeCount(Vec<usize>),
    /// Task-graph depth: chain-shaped graphs of the given sizes.
    GraphDepth(Vec<usize>),
    /// Fraction of cross-node dependencies relayed through a gateway.
    GatewayFraction(Vec<f64>),
    /// Bus utilisation target (the range collapses onto the value).
    BusUtil(Vec<f64>),
    /// Number of FlexRay clusters (1 = single bus; more partition the
    /// non-gateway nodes and join the parts through the gateways).
    Clusters(Vec<usize>),
}

impl SweepAxis {
    /// Name of the axis, for reporting.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            SweepAxis::NodeCount(_) => "nodes",
            SweepAxis::GraphDepth(_) => "depth",
            SweepAxis::GatewayFraction(_) => "gateway",
            SweepAxis::BusUtil(_) => "busutil",
            SweepAxis::Clusters(_) => "clusters",
        }
    }

    /// Number of points on the axis.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            SweepAxis::NodeCount(v) | SweepAxis::GraphDepth(v) | SweepAxis::Clusters(v) => v.len(),
            SweepAxis::GatewayFraction(v) | SweepAxis::BusUtil(v) => v.len(),
        }
    }

    /// `true` if the axis has no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Canonical rendering of point `idx`'s value — the single source
    /// of the axis-value strings used in point labels, report
    /// coordinates and header axis listings.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn value(&self, idx: usize) -> String {
        match self {
            SweepAxis::NodeCount(v) | SweepAxis::GraphDepth(v) | SweepAxis::Clusters(v) => {
                v[idx].to_string()
            }
            SweepAxis::GatewayFraction(v) | SweepAxis::BusUtil(v) => format!("{:.2}", v[idx]),
        }
    }

    /// The generator configuration and label of point `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn configure(&self, base: &GeneratorConfig, idx: usize) -> (String, GeneratorConfig) {
        match self {
            SweepAxis::NodeCount(v) => {
                let n = v[idx];
                let mut cfg = GeneratorConfig {
                    n_nodes: n,
                    ..base.clone()
                };
                // keep configured gateways; only out-of-range ones are
                // dropped, falling back to the last node when none is
                // left on a shrunk cluster
                cfg.gateways.retain(|&gw| gw < n);
                if cfg.gateway_fraction > 0.0 && cfg.gateways.is_empty() {
                    cfg.gateways = vec![n.saturating_sub(1)];
                }
                (format!("nodes={}", self.value(idx)), cfg)
            }
            SweepAxis::GraphDepth(v) => {
                let d = v[idx];
                let cfg = GeneratorConfig {
                    graph_size: d.max(1),
                    graph_sizes: None,
                    shape: GraphShape::Chain,
                    ..base.clone()
                };
                (format!("depth={}", self.value(idx)), cfg)
            }
            SweepAxis::GatewayFraction(v) => {
                let f = v[idx];
                let mut cfg = GeneratorConfig {
                    gateway_fraction: f,
                    ..base.clone()
                };
                if f > 0.0 && cfg.gateways.is_empty() {
                    cfg.gateways = vec![cfg.n_nodes.saturating_sub(1)];
                }
                (format!("gateway={}", self.value(idx)), cfg)
            }
            SweepAxis::BusUtil(v) => {
                let u = v[idx];
                let cfg = GeneratorConfig {
                    bus_util: (u, u),
                    ..base.clone()
                };
                (format!("busutil={}", self.value(idx)), cfg)
            }
            SweepAxis::Clusters(v) => {
                let k = v[idx];
                let mut cfg = GeneratorConfig {
                    clusters: k,
                    ..base.clone()
                };
                if k > 1 && cfg.gateways.is_empty() {
                    cfg.gateways = vec![cfg.n_nodes.saturating_sub(1)];
                }
                (format!("clusters={}", self.value(idx)), cfg)
            }
        }
    }
}

/// Scale and scope of one sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Base generator configuration the axis perturbs.
    pub base: GeneratorConfig,
    /// The swept axis and its points.
    pub axis: SweepAxis,
    /// Applications (seeds) per axis point.
    pub apps_per_point: usize,
    /// Algorithms to run on every application.
    pub algos: Vec<Algo>,
    /// Optimiser parameters.
    pub params: OptParams,
    /// SA parameters (used when [`Algo::Sa`] is in the set).
    pub sa: SaParams,
    /// Base RNG seed; application `i` of point `p` uses
    /// `seed0 + 1000·p + i`.
    pub seed0: u64,
    /// Worker threads for the per-seed loop: `1` runs serially, `0`
    /// uses the available hardware parallelism.
    pub threads: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            base: GeneratorConfig::paper(5),
            axis: SweepAxis::NodeCount(vec![2, 5, 10, 20]),
            apps_per_point: 3,
            algos: Algo::ALL.to_vec(),
            params: OptParams::default(),
            sa: SaParams::default(),
            seed0: 42,
            threads: 0,
        }
    }
}

impl SweepConfig {
    /// The effective worker-thread count: `threads`, with `0` resolved
    /// to the available hardware parallelism.
    #[must_use]
    pub fn worker_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.threads
        }
    }

    /// Index of the deviation reference within
    /// [`SweepConfig::algos`]: SA when present, else none.
    #[must_use]
    pub fn reference(&self) -> Option<usize> {
        self.algos.iter().position(|&a| a == Algo::Sa)
    }
}

/// All configured algorithms on one axis point.
#[derive(Debug, Clone, Default)]
pub struct SweepPoint {
    /// Axis label of the point (e.g. `nodes=20`).
    pub label: String,
    /// Per-algorithm stats, in [`SweepConfig::algos`] order.
    pub algos: Vec<(String, AlgoStats)>,
}

impl SweepPoint {
    /// Equality over the deterministic fields (everything except the
    /// measured wall-clock times) — the invariant the parallel runner
    /// must preserve against a serial run.
    #[must_use]
    pub fn deterministic_eq(&self, other: &SweepPoint) -> bool {
        self.label == other.label
            && self.algos.len() == other.algos.len()
            && self.algos.iter().zip(&other.algos).all(|(a, b)| {
                a.0 == b.0
                    && a.1.schedulable == b.1.schedulable
                    && a.1.total == b.1.total
                    && a.1.avg_deviation_pct == b.1.avg_deviation_pct
                    && a.1.avg_evaluations == b.1.avg_evaluations
            })
    }
}

/// Runs the sweep: every axis point, `apps_per_point` seeded
/// applications each, every configured algorithm per application —
/// executed as a degenerate one-axis [`grid`](crate::grid), so the
/// `(point, seed)` units share the work-stealing pool and the seed
/// schedule (`seed0 + 1000·p + i`) of the factorial engine. The
/// deterministic output is bit-identical to the pre-grid single-axis
/// implementation (locked down by the differential suite in
/// `tests/grid.rs`).
///
/// # Errors
///
/// Propagates generator errors (including invalid derived
/// configurations) and rejects empty axes and algorithm sets.
pub fn run_sweep(cfg: &SweepConfig) -> Result<Vec<SweepPoint>, ModelError> {
    if cfg.axis.is_empty() {
        return Err(ModelError::InvalidConfig("sweep axis has no points".into()));
    }
    if cfg.algos.is_empty() {
        return Err(ModelError::InvalidConfig(
            "sweep algorithm set is empty".into(),
        ));
    }
    let grid = crate::grid::GridConfig {
        base: cfg.base.clone(),
        axes: vec![cfg.axis.clone()],
        apps_per_point: cfg.apps_per_point,
        algos: cfg.algos.clone(),
        params: cfg.params.clone(),
        sa: cfg.sa,
        seed0: cfg.seed0,
        seed_policy: crate::grid::SeedPolicy::PointIndex,
        threads: cfg.threads,
        workload: None,
    };
    Ok(crate::grid::run_grid(&grid)?
        .into_iter()
        .map(|p| SweepPoint {
            label: p.label,
            algos: p.algos,
        })
        .collect())
}

/// Renders a sweep as one text table. `reference` is the name of the
/// deviation reference algorithm ([`SweepConfig::reference`]); without
/// one, the deviation column is marked absent instead of printing
/// misleading zeros.
#[must_use]
pub fn render(axis_name: &str, reference: Option<&str>, points: &[SweepPoint]) -> String {
    let mut rows = Vec::new();
    for point in points {
        for (name, s) in &point.algos {
            rows.push(vec![
                point.label.clone(),
                name.clone(),
                format!("{}/{}", s.schedulable, s.total),
                if reference.is_some() {
                    format!("{:+.2}", s.avg_deviation_pct)
                } else {
                    "-".to_owned()
                },
                format!("{:.3}", s.avg_time_s),
                format!("{:.0}", s.avg_evaluations),
            ]);
        }
    }
    let dev_header = reference.map_or("avg %dev (no ref)".to_owned(), |r| {
        format!("avg %dev vs {r}")
    });
    format!(
        "Sweep over {axis_name}\n{}",
        crate::render_table(
            &[
                "point",
                "algorithm",
                "schedulable",
                &dev_header,
                "avg time (s)",
                "avg analyses",
            ],
            &rows
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn fake(schedulable: bool, value: f64) -> OptResult {
        OptResult {
            bus: flexray_model::BusConfig::new(PhyParams::bmw_like()),
            cost: if schedulable {
                flexray_analysis::Cost { f1: 0.0, f2: value }
            } else {
                flexray_analysis::Cost {
                    f1: value,
                    f2: value,
                }
            },
            evaluations: 1,
            elapsed: Duration::from_millis(1),
        }
    }

    fn fast_cfg(axis: SweepAxis) -> SweepConfig {
        SweepConfig {
            base: GeneratorConfig::small(3),
            axis,
            apps_per_point: 2,
            algos: vec![Algo::Bbc, Algo::Sa],
            params: OptParams {
                max_extra_slots: 2,
                max_slot_len_steps: 3,
                max_dyn_candidates: 24,
                dyn_step: 32,
                ..OptParams::default()
            },
            sa: SaParams {
                iterations: 25,
                ..SaParams::default()
            },
            seed0: 7,
            threads: 1,
        }
    }

    #[test]
    fn deviation_requires_both_schedulable() {
        let sa = fake(true, -100.0);
        assert_eq!(deviation_pct(&fake(false, 5.0), &sa), None);
        // -96 laxity vs -100: 4% worse
        let d = deviation_pct(&fake(true, -96.0), &sa).expect("defined");
        assert!((d - 4.0).abs() < 1e-9);
    }

    #[test]
    fn aggregate_without_reference_leaves_deviation_zero() {
        let per_app = vec![vec![fake(true, -90.0)], vec![fake(false, 5.0)]];
        let stats = aggregate_algos(&["BBC"], &per_app, None);
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].1.schedulable, 1);
        assert_eq!(stats[0].1.total, 2);
        assert_eq!(stats[0].1.avg_deviation_pct, 0.0);
    }

    #[test]
    fn axis_points_derive_labelled_configs() {
        let base = GeneratorConfig::paper(5);

        let (label, cfg) = SweepAxis::NodeCount(vec![2, 20]).configure(&base, 1);
        assert_eq!(label, "nodes=20");
        assert_eq!(cfg.n_nodes, 20);

        let (label, cfg) = SweepAxis::GraphDepth(vec![4, 12]).configure(&base, 1);
        assert_eq!(label, "depth=12");
        assert_eq!(cfg.shape, GraphShape::Chain);
        assert_eq!(cfg.graph_size, 12);

        let (label, cfg) = SweepAxis::GatewayFraction(vec![0.0, 0.5]).configure(&base, 1);
        assert_eq!(label, "gateway=0.50");
        assert_eq!(cfg.gateway_fraction, 0.5);
        assert_eq!(cfg.gateways, vec![4]);

        let (label, cfg) = SweepAxis::BusUtil(vec![0.2, 0.4]).configure(&base, 0);
        assert_eq!(label, "busutil=0.20");
        assert_eq!(cfg.bus_util, (0.2, 0.2));

        for axis in [
            SweepAxis::NodeCount(vec![2, 20]),
            SweepAxis::GraphDepth(vec![4]),
            SweepAxis::GatewayFraction(vec![0.5]),
            SweepAxis::BusUtil(vec![0.2]),
        ] {
            for idx in 0..axis.len() {
                let (_, cfg) = axis.configure(&base, idx);
                cfg.validate().expect("derived config validates");
            }
        }
    }

    #[test]
    fn gateway_axis_keeps_gateways_in_range_when_nodes_shrink() {
        let base = GeneratorConfig::gateway(8, 0.5); // gateway node 7
        let (_, cfg) = SweepAxis::NodeCount(vec![3]).configure(&base, 0);
        assert_eq!(cfg.gateways, vec![2]);
        cfg.validate().expect("rescaled gateway validates");
    }

    #[test]
    fn tiny_sweeps_run_on_all_axes() {
        for axis in [
            SweepAxis::NodeCount(vec![2, 3]),
            SweepAxis::GraphDepth(vec![3, 6]),
            SweepAxis::GatewayFraction(vec![0.0, 0.6]),
            SweepAxis::BusUtil(vec![0.15, 0.35]),
        ] {
            let name = axis.name();
            let cfg = fast_cfg(axis);
            let points = run_sweep(&cfg).expect("sweep runs");
            assert_eq!(points.len(), 2, "axis {name}");
            for point in &points {
                assert_eq!(point.algos.len(), 2);
                for (_, s) in &point.algos {
                    assert_eq!(s.total, 2);
                }
            }
            let text = render(name, Some("SA"), &points);
            assert!(text.contains(name));
            assert!(text.contains("BBC"));
            assert!(text.contains("avg %dev vs SA"));
            let no_ref = render(name, None, &points);
            assert!(no_ref.contains("avg %dev (no ref)"));
        }
    }

    #[test]
    fn parallel_sweep_equals_serial() {
        let serial = fast_cfg(SweepAxis::GatewayFraction(vec![0.0, 0.5]));
        let parallel = SweepConfig {
            threads: 4,
            ..serial.clone()
        };
        let s = run_sweep(&serial).expect("serial");
        let p = run_sweep(&parallel).expect("parallel");
        assert_eq!(s.len(), p.len());
        for (a, b) in s.iter().zip(&p) {
            assert!(a.deterministic_eq(b), "{a:?} vs {b:?} diverged");
        }
    }

    #[test]
    fn empty_axis_and_empty_algo_set_are_rejected() {
        let cfg = fast_cfg(SweepAxis::NodeCount(vec![]));
        assert!(run_sweep(&cfg).is_err());
        let mut cfg = fast_cfg(SweepAxis::NodeCount(vec![2]));
        cfg.algos.clear();
        assert!(run_sweep(&cfg).is_err());
    }

    #[test]
    fn algo_names_round_trip() {
        for algo in Algo::ALL {
            assert_eq!(Algo::parse(algo.name()), Some(algo));
        }
        assert_eq!(Algo::parse("nope"), None);
    }

    #[test]
    fn algo_set_parser_accepts_known_subsets() {
        assert_eq!(
            parse_algo_set("bbc,obccf,obcee,sa").expect("all four"),
            Algo::ALL.to_vec()
        );
        assert_eq!(
            parse_algo_set("SA , bbc").expect("case and spaces"),
            vec![Algo::Sa, Algo::Bbc]
        );
        assert_eq!(parse_algo_set("obcee").expect("single"), vec![Algo::ObcEe]);
    }

    #[test]
    fn algo_set_parser_rejects_unknown_empty_and_duplicate_names() {
        for (input, needle) in [
            ("obc", "unknown algorithm 'obc'"),
            ("bbc,nope,sa", "unknown algorithm 'nope'"),
            ("", "empty algorithm name"),
            ("bbc,,sa", "empty algorithm name"),
            ("bbc,sa,bbc", "duplicate algorithm 'bbc'"),
        ] {
            let err = parse_algo_set(input).expect_err(input);
            assert!(
                matches!(&err, ModelError::InvalidConfig(msg) if msg.contains(needle)),
                "{input}: {err}"
            );
        }
    }

    #[test]
    fn thread_count_parser_accepts_counts_and_trims() {
        assert_eq!(parse_thread_count("0").expect("all cores"), 0);
        assert_eq!(parse_thread_count("1").expect("serial"), 1);
        assert_eq!(parse_thread_count(" 8 ").expect("spaces"), 8);
    }

    #[test]
    fn thread_count_parser_rejects_non_counts_naming_the_value() {
        for input in ["", "fuor", "-1", "2.5", "4x"] {
            let err = parse_thread_count(input).expect_err(input);
            assert!(
                matches!(&err, ModelError::InvalidConfig(msg)
                    if msg.contains("invalid thread count") && msg.contains(input)),
                "{input}: {err}"
            );
        }
    }
}
