//! Workgraph interchange: a line-oriented format for hand-written
//! benchmarks.
//!
//! Every scenario the harnesses run so far is produced by the seeded
//! generator; this module adds the missing ingestion path. A
//! *workgraph* file is JSON-lines text — one record per line, blank
//! lines and `#` comments ignored — that describes an application
//! directly:
//!
//! ```text
//! {"kind":"workgraph","version":1,"nodes":3}
//! {"kind":"graph","id":"g","period_ns":10000000,"deadline_ns":9000000}
//! {"kind":"task","id":"t0","graph":"g","node":0,"wcet_ns":20000,"policy":"scs","prio":0,"deps":[]}
//! {"kind":"msg","id":"m0","graph":"g","bytes":8,"class":"st","prio":0,"deps":["t0"]}
//! {"kind":"task","id":"t1","graph":"g","node":1,"wcet_ns":30000,"policy":"fps","prio":2,"deps":["m0"]}
//! ```
//!
//! * the first record is the **header** — node count plus, for
//!   multi-cluster networks, `clusters`, `node_cluster` (home cluster
//!   per node) and `gateways`;
//! * a **graph** record declares a task graph with its period and
//!   end-to-end deadline (`*_ns` integers, or `*_us` floats);
//! * **task** and **msg** records declare activities; `deps` lists the
//!   ids of the record's predecessors (a message's deps name its
//!   sender task; a task listing a message among its deps is that
//!   message's receiver). Records may reference ids defined on later
//!   lines.
//!
//! [`Workload::import`] parses strictly — every rejection names the
//! offending line and token, following the `parse_algo_set` /
//! `flexray-serve` spec convention — and loads straight into
//! [`Platform`] / [`Application`]. [`Workload::export`] writes any
//! in-memory workload (e.g. a generated scenario) in the same format,
//! and the two compose into a bit-identical round trip: re-importing
//! an export reproduces the activity specs, the edge set and the
//! [`WorkloadStats`] exactly.

use flexray_gen::Generated;
use flexray_model::{
    mix_words, ActivityKind, Application, MessageClass, ModelError, NodeId, PhyParams, Platform,
    SchedPolicy, Time, WorkloadStats,
};
use flexray_opt::NetworkTopology;

use crate::report::Json;

/// Version of the workgraph record layout; bump on any schema change.
pub const WORKGRAPH_VERSION: u32 = 1;

/// A self-contained benchmark scenario: platform, application and
/// cluster topology (trivial for single-bus scenarios).
#[derive(Debug, Clone)]
pub struct Workload {
    /// The processing nodes.
    pub platform: Platform,
    /// The task graphs.
    pub app: Application,
    /// Number of FlexRay clusters (1 = single bus).
    pub clusters: usize,
    /// Home cluster of each node.
    pub node_cluster: Vec<u16>,
    /// Gateway nodes bridging the clusters (sorted, deduplicated).
    pub gateways: Vec<NodeId>,
}

impl Workload {
    /// Packages a generated scenario for export.
    #[must_use]
    pub fn of_generated(generated: &Generated) -> Workload {
        Workload {
            platform: generated.platform.clone(),
            app: generated.app.clone(),
            clusters: generated.clusters,
            node_cluster: generated.node_cluster.clone(),
            gateways: generated.gateways.clone(),
        }
    }

    /// The cluster topology, for [`flexray_opt::optimise_network`].
    #[must_use]
    pub fn topology(&self) -> NetworkTopology {
        NetworkTopology {
            clusters: self.clusters,
            node_cluster: self.node_cluster.clone(),
            gateways: self.gateways.clone(),
        }
    }

    /// Achieved workload statistics, measuring payloads against `phy`.
    ///
    /// # Errors
    ///
    /// See [`WorkloadStats::collect`].
    pub fn stats(&self, phy: &PhyParams) -> Result<WorkloadStats, ModelError> {
        WorkloadStats::collect(&self.platform, &self.app, phy)
    }

    /// A 16-hex-digit structural fingerprint, carried in grid report
    /// headers so a resumed report can only be completed against the
    /// workload that wrote it. The edge set is hashed in sorted order,
    /// so a round trip through the interchange format (which may
    /// reorder edge insertion) keeps the fingerprint stable.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        let mut edges: Vec<(usize, usize)> = self
            .app
            .edges()
            .iter()
            .map(|&(a, b)| (a.index(), b.index()))
            .collect();
        edges.sort_unstable();
        let text = format!(
            "{}|{:?}|{:?}|{edges:?}|{}|{:?}|{:?}",
            self.platform.len(),
            self.app.graphs(),
            self.app.activities(),
            self.clusters,
            self.node_cluster,
            self.gateways
        );
        let bytes = text.as_bytes();
        let mut words: Vec<u64> = Vec::with_capacity(bytes.len() / 8 + 2);
        words.push(bytes.len() as u64);
        for chunk in bytes.chunks(8) {
            let mut word = 0u64;
            for (i, &b) in chunk.iter().enumerate() {
                word |= u64::from(b) << (8 * i);
            }
            words.push(word);
        }
        format!("{:016x}", mix_words(&words))
    }

    /// Serialises the workload as workgraph lines (newline-terminated).
    ///
    /// Times are written as exact nanosecond integers, activities in
    /// id order, so export → import → export is byte-identical.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] when activity or graph
    /// names are not unique (the interchange format addresses records
    /// by name) or a name is empty.
    pub fn export(&self) -> Result<String, ModelError> {
        let dup = |what: &str, name: &str| {
            ModelError::InvalidConfig(format!(
                "cannot export workgraph: duplicate {what} name '{name}'"
            ))
        };
        let mut seen = std::collections::HashSet::new();
        for g in self.app.graphs() {
            if g.name.is_empty() {
                return Err(ModelError::InvalidConfig(
                    "cannot export workgraph: empty graph name".into(),
                ));
            }
            if !seen.insert(g.name.as_str()) {
                return Err(dup("graph", &g.name));
            }
        }
        let mut seen = std::collections::HashSet::new();
        for a in self.app.activities() {
            if a.name.is_empty() {
                return Err(ModelError::InvalidConfig(
                    "cannot export workgraph: empty activity name".into(),
                ));
            }
            if !seen.insert(a.name.as_str()) {
                return Err(dup("activity", &a.name));
            }
        }

        let num = |n: i64| Json::Num(n as f64);
        let mut out = String::new();
        let mut header = vec![
            ("kind".into(), Json::Str("workgraph".into())),
            ("version".into(), Json::Num(f64::from(WORKGRAPH_VERSION))),
            ("nodes".into(), num(self.platform.len() as i64)),
        ];
        if self.clusters > 1 {
            header.push(("clusters".into(), num(self.clusters as i64)));
            header.push((
                "node_cluster".into(),
                Json::Arr(
                    self.node_cluster
                        .iter()
                        .map(|&c| num(i64::from(c)))
                        .collect(),
                ),
            ));
            header.push((
                "gateways".into(),
                Json::Arr(
                    self.gateways
                        .iter()
                        .map(|g| num(g.index() as i64))
                        .collect(),
                ),
            ));
        }
        let writable = "workgraph numbers are integers, which are always finite";
        out.push_str(&Json::Obj(header).write().expect(writable));
        out.push('\n');

        for g in self.app.graphs() {
            let line = Json::Obj(vec![
                ("kind".into(), Json::Str("graph".into())),
                ("id".into(), Json::Str(g.name.clone())),
                ("period_ns".into(), num(g.period.as_ns())),
                ("deadline_ns".into(), num(g.deadline.as_ns())),
            ]);
            out.push_str(&line.write().expect(writable));
            out.push('\n');
        }

        for (id, a) in self.app.ids().zip(self.app.activities()) {
            let deps = Json::Arr(
                self.app
                    .preds(id)
                    .iter()
                    .map(|p| Json::Str(self.app.activity(*p).name.clone()))
                    .collect(),
            );
            let graph = Json::Str(self.app.graph_of(id).name.clone());
            let mut members = match &a.kind {
                ActivityKind::Task(t) => vec![
                    ("kind".into(), Json::Str("task".into())),
                    ("id".into(), Json::Str(a.name.clone())),
                    ("graph".into(), graph),
                    ("node".into(), num(t.node.index() as i64)),
                    ("wcet_ns".into(), num(t.wcet.as_ns())),
                    (
                        "policy".into(),
                        Json::Str(
                            match t.policy {
                                SchedPolicy::Scs => "scs",
                                SchedPolicy::Fps => "fps",
                            }
                            .into(),
                        ),
                    ),
                    ("prio".into(), num(i64::from(t.priority))),
                ],
                ActivityKind::Message(m) => vec![
                    ("kind".into(), Json::Str("msg".into())),
                    ("id".into(), Json::Str(a.name.clone())),
                    ("graph".into(), graph),
                    ("bytes".into(), num(i64::from(m.size_bytes))),
                    (
                        "class".into(),
                        Json::Str(
                            match m.class {
                                MessageClass::Static => "st",
                                MessageClass::Dynamic => "dyn",
                            }
                            .into(),
                        ),
                    ),
                    ("prio".into(), num(i64::from(m.priority))),
                ],
            };
            if a.release != Time::ZERO {
                members.push(("release_ns".into(), num(a.release.as_ns())));
            }
            if let Some(d) = a.deadline {
                members.push(("deadline_ns".into(), num(d.as_ns())));
            }
            members.push(("deps".into(), deps));
            out.push_str(&Json::Obj(members).write().expect(writable));
            out.push('\n');
        }
        Ok(out)
    }

    /// Parses workgraph text into a validated workload.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] naming the offending line
    /// and token: malformed JSON, a missing or misplaced header, an
    /// unknown record kind or key, a duplicate or dangling id, an
    /// out-of-range node or cluster, a dependency cycle (naming a
    /// member), and any structural violation caught by
    /// [`Application::validate`].
    pub fn import(text: &str) -> Result<Workload, ModelError> {
        let mut records = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            records.push(parse_record(i + 1, trimmed)?);
        }
        build(records)
    }
}

/// A "line N: …" import error.
fn at(line: usize, msg: &str) -> ModelError {
    ModelError::InvalidConfig(format!("workgraph line {line}: {msg}"))
}

/// One parsed workgraph record, tagged with its 1-based line number.
enum Record {
    Header {
        line: usize,
        nodes: usize,
        clusters: usize,
        node_cluster: Option<Vec<u16>>,
        gateways: Vec<usize>,
    },
    Graph {
        line: usize,
        id: String,
        period: Time,
        deadline: Time,
    },
    Activity {
        line: usize,
        id: String,
        graph: String,
        kind: ActivityKind,
        release: Time,
        deadline: Option<Time>,
        deps: Vec<String>,
    },
}

/// The object members of `json`, or a "not an object" error.
fn members(line: usize, json: &Json) -> Result<Vec<(String, Json)>, ModelError> {
    match json {
        Json::Obj(members) => Ok(members.clone()),
        _ => Err(at(line, "record is not a JSON object")),
    }
}

/// Takes member `key` out of `found`, or errors.
fn take(
    line: usize,
    kind: &str,
    found: &mut Vec<(String, Json)>,
    key: &str,
) -> Result<Json, ModelError> {
    match found.iter().position(|(k, _)| k == key) {
        Some(i) => Ok(found.remove(i).1),
        None => Err(at(line, &format!("'{kind}' record lacks key '{key}'"))),
    }
}

/// Takes optional member `key` out of `found`.
fn take_opt(found: &mut Vec<(String, Json)>, key: &str) -> Option<Json> {
    found
        .iter()
        .position(|(k, _)| k == key)
        .map(|i| found.remove(i).1)
}

/// Errors on any member left in `found` after the known keys were
/// taken — the strictness that catches misspelled keys.
fn reject_unknown(line: usize, kind: &str, found: &[(String, Json)]) -> Result<(), ModelError> {
    if let Some((key, _)) = found.first() {
        return Err(at(line, &format!("unknown key '{key}' in '{kind}' record")));
    }
    Ok(())
}

/// A non-negative integer (exact, within f64's integer range).
fn as_count(line: usize, key: &str, json: &Json) -> Result<i64, ModelError> {
    let bad = || at(line, &format!("key '{key}' is not a non-negative integer"));
    let n = json.as_f64().ok_or_else(bad)?;
    if !n.is_finite() || n.fract() != 0.0 || !(0.0..=9_007_199_254_740_992.0).contains(&n) {
        return Err(bad());
    }
    #[allow(clippy::cast_possible_truncation)]
    Ok(n as i64)
}

/// A string member.
fn as_str(line: usize, key: &str, json: &Json) -> Result<String, ModelError> {
    json.as_str()
        .map(str::to_owned)
        .ok_or_else(|| at(line, &format!("key '{key}' is not a string")))
}

/// A duration: `<key>_ns` integer or `<key>_us` float, exactly one.
fn take_duration(
    line: usize,
    kind: &str,
    found: &mut Vec<(String, Json)>,
    key: &str,
) -> Result<Time, ModelError> {
    let ns_key = format!("{key}_ns");
    let us_key = format!("{key}_us");
    let ns = take_opt(found, &ns_key);
    let us = take_opt(found, &us_key);
    match (ns, us) {
        (Some(_), Some(_)) => Err(at(
            line,
            &format!("record has both '{ns_key}' and '{us_key}'; use one"),
        )),
        (Some(v), None) => Ok(Time::from_ns(as_count(line, &ns_key, &v)?)),
        (None, Some(v)) => {
            let us = v
                .as_f64()
                .ok_or_else(|| at(line, &format!("key '{us_key}' is not a number")))?;
            Ok(Time::from_us(us))
        }
        (None, None) => Err(at(
            line,
            &format!("'{kind}' record lacks key '{ns_key}' (or '{us_key}')"),
        )),
    }
}

/// An optional duration: `<key>_ns` / `<key>_us`, or `None`.
fn take_opt_duration(
    line: usize,
    kind: &str,
    found: &mut Vec<(String, Json)>,
    key: &str,
) -> Result<Option<Time>, ModelError> {
    if found
        .iter()
        .any(|(k, _)| k == &format!("{key}_ns") || k == &format!("{key}_us"))
    {
        return take_duration(line, kind, found, key).map(Some);
    }
    Ok(None)
}

#[allow(clippy::too_many_lines)]
fn parse_record(line: usize, text: &str) -> Result<Record, ModelError> {
    let json = Json::parse(text).map_err(|e| at(line, &e.to_string()))?;
    let mut found = members(line, &json)?;
    let kind_json = take(line, "workgraph", &mut found, "kind")?;
    let kind = as_str(line, "kind", &kind_json)?;
    match kind.as_str() {
        "workgraph" => {
            let version = as_count(line, "version", &take(line, &kind, &mut found, "version")?)?;
            if version != i64::from(WORKGRAPH_VERSION) {
                return Err(at(
                    line,
                    &format!(
                        "workgraph version {version} unsupported (this build reads \
                         {WORKGRAPH_VERSION})"
                    ),
                ));
            }
            let nodes = as_count(line, "nodes", &take(line, &kind, &mut found, "nodes")?)?;
            let clusters = match take_opt(&mut found, "clusters") {
                Some(v) => as_count(line, "clusters", &v)?,
                None => 1,
            };
            let node_cluster = match take_opt(&mut found, "node_cluster") {
                Some(Json::Arr(values)) => Some(
                    values
                        .iter()
                        .map(|v| {
                            let c = as_count(line, "node_cluster", v)?;
                            u16::try_from(c).map_err(|_| {
                                at(line, &format!("home cluster {c} does not fit in u16"))
                            })
                        })
                        .collect::<Result<Vec<u16>, _>>()?,
                ),
                Some(_) => return Err(at(line, "key 'node_cluster' is not an array")),
                None => None,
            };
            let gateways = match take_opt(&mut found, "gateways") {
                Some(Json::Arr(values)) => values
                    .iter()
                    .map(|v| {
                        as_count(line, "gateways", v).and_then(|g| {
                            usize::try_from(g)
                                .map_err(|_| at(line, &format!("gateway {g} out of range")))
                        })
                    })
                    .collect::<Result<Vec<usize>, _>>()?,
                Some(_) => return Err(at(line, "key 'gateways' is not an array")),
                None => Vec::new(),
            };
            reject_unknown(line, &kind, &found)?;
            let nodes = usize::try_from(nodes)
                .map_err(|_| at(line, &format!("node count {nodes} out of range")))?;
            let clusters = usize::try_from(clusters.max(1))
                .map_err(|_| at(line, &format!("cluster count {clusters} out of range")))?;
            Ok(Record::Header {
                line,
                nodes,
                clusters,
                node_cluster,
                gateways,
            })
        }
        "graph" => {
            let id = as_str(line, "id", &take(line, &kind, &mut found, "id")?)?;
            let period = take_duration(line, &kind, &mut found, "period")?;
            let deadline = take_duration(line, &kind, &mut found, "deadline")?;
            reject_unknown(line, &kind, &found)?;
            Ok(Record::Graph {
                line,
                id,
                period,
                deadline,
            })
        }
        "task" | "msg" => {
            let id = as_str(line, "id", &take(line, &kind, &mut found, "id")?)?;
            let graph = as_str(line, "graph", &take(line, &kind, &mut found, "graph")?)?;
            let prio = as_count(line, "prio", &take(line, &kind, &mut found, "prio")?)?;
            let prio = u32::try_from(prio)
                .map_err(|_| at(line, &format!("priority {prio} out of range")))?;
            let activity_kind = if kind == "task" {
                let node = as_count(line, "node", &take(line, &kind, &mut found, "node")?)?;
                let wcet = take_duration(line, &kind, &mut found, "wcet")?;
                let policy = as_str(line, "policy", &take(line, &kind, &mut found, "policy")?)?;
                let policy = match policy.as_str() {
                    "scs" => SchedPolicy::Scs,
                    "fps" => SchedPolicy::Fps,
                    other => {
                        return Err(at(
                            line,
                            &format!("unknown policy '{other}' (expected 'scs' or 'fps')"),
                        ))
                    }
                };
                ActivityKind::Task(flexray_model::TaskSpec {
                    node: NodeId::new(
                        usize::try_from(node)
                            .map_err(|_| at(line, &format!("node index {node} out of range")))?,
                    ),
                    wcet,
                    policy,
                    priority: prio,
                })
            } else {
                let bytes = as_count(line, "bytes", &take(line, &kind, &mut found, "bytes")?)?;
                let class = as_str(line, "class", &take(line, &kind, &mut found, "class")?)?;
                let class = match class.as_str() {
                    "st" => MessageClass::Static,
                    "dyn" => MessageClass::Dynamic,
                    other => {
                        return Err(at(
                            line,
                            &format!("unknown class '{other}' (expected 'st' or 'dyn')"),
                        ))
                    }
                };
                ActivityKind::Message(flexray_model::MessageSpec {
                    size_bytes: u32::try_from(bytes)
                        .map_err(|_| at(line, &format!("payload of {bytes} bytes out of range")))?,
                    class,
                    priority: prio,
                })
            };
            let release =
                take_opt_duration(line, &kind, &mut found, "release")?.unwrap_or(Time::ZERO);
            let deadline = take_opt_duration(line, &kind, &mut found, "deadline")?;
            let deps = match take(line, &kind, &mut found, "deps")? {
                Json::Arr(values) => values
                    .iter()
                    .map(|v| as_str(line, "deps", v))
                    .collect::<Result<Vec<String>, _>>()?,
                _ => return Err(at(line, "key 'deps' is not an array")),
            };
            reject_unknown(line, &kind, &found)?;
            Ok(Record::Activity {
                line,
                id,
                graph,
                kind: activity_kind,
                release,
                deadline,
                deps,
            })
        }
        other => Err(at(line, &format!("unknown record kind '{other}'"))),
    }
}

/// Assembles parsed records into a validated workload.
#[allow(clippy::too_many_lines)]
fn build(records: Vec<Record>) -> Result<Workload, ModelError> {
    use std::collections::HashMap;

    let mut records = records.into_iter();
    let (header_line, nodes, clusters, node_cluster, gateway_indices) = match records.next() {
        Some(Record::Header {
            line,
            nodes,
            clusters,
            node_cluster,
            gateways,
        }) => (line, nodes, clusters, node_cluster, gateways),
        Some(Record::Graph { line, .. } | Record::Activity { line, .. }) => {
            return Err(at(line, "the first record must be the 'workgraph' header"))
        }
        None => {
            return Err(ModelError::InvalidConfig(
                "workgraph is empty: expected a 'workgraph' header record".into(),
            ))
        }
    };

    let node_cluster = node_cluster.unwrap_or_else(|| vec![0u16; nodes]);
    if node_cluster.len() != nodes {
        return Err(at(
            header_line,
            &format!(
                "'node_cluster' lists {} homes for {nodes} nodes",
                node_cluster.len()
            ),
        ));
    }
    for (n, &c) in node_cluster.iter().enumerate() {
        if usize::from(c) >= clusters {
            return Err(at(
                header_line,
                &format!(
                    "node {n} homed on cluster {c} but the workgraph declares \
                     {clusters} cluster(s)"
                ),
            ));
        }
    }
    let mut gateways: Vec<NodeId> = Vec::with_capacity(gateway_indices.len());
    for g in gateway_indices {
        if g >= nodes {
            return Err(at(
                header_line,
                &format!("gateway node {g} out of range for {nodes} nodes"),
            ));
        }
        gateways.push(NodeId::new(g));
    }
    gateways.sort_unstable();
    gateways.dedup();
    if clusters > 1 && gateways.is_empty() {
        return Err(at(
            header_line,
            &format!("{clusters} clusters but no 'gateways' to join them"),
        ));
    }

    let mut app = Application::new();
    let mut graph_ids = HashMap::new();
    let mut activity_ids = HashMap::new();
    let mut activity_records = Vec::new();
    for record in records {
        match record {
            Record::Header { line, .. } => {
                return Err(at(line, "duplicate 'workgraph' header record"))
            }
            Record::Graph {
                line,
                id,
                period,
                deadline,
            } => {
                if graph_ids.contains_key(&id) {
                    return Err(at(line, &format!("duplicate graph id '{id}'")));
                }
                let gid = app.add_graph(&id, period, deadline);
                graph_ids.insert(id, gid);
            }
            Record::Activity {
                line,
                id,
                graph,
                kind,
                release,
                deadline,
                deps,
            } => {
                if activity_ids.contains_key(&id) {
                    return Err(at(line, &format!("duplicate id '{id}'")));
                }
                let Some(&gid) = graph_ids.get(&graph) else {
                    return Err(at(
                        line,
                        &format!("unknown graph '{graph}' in record '{id}'"),
                    ));
                };
                let aid = match kind {
                    ActivityKind::Task(t) => {
                        if t.node.index() >= nodes {
                            return Err(at(
                                line,
                                &format!(
                                    "task '{id}' mapped to node {} but the workgraph \
                                     declares {nodes} nodes",
                                    t.node.index()
                                ),
                            ));
                        }
                        app.add_task(gid, &id, t.node, t.wcet, t.policy, t.priority)
                    }
                    ActivityKind::Message(m) => {
                        app.add_message(gid, &id, m.size_bytes, m.class, m.priority)
                    }
                };
                if release != Time::ZERO {
                    app.set_release(aid, release);
                }
                if let Some(d) = deadline {
                    app.set_deadline(aid, d);
                }
                activity_ids.insert(id.clone(), aid);
                activity_records.push((line, id, deps));
            }
        }
    }

    // Second pass: deps may reference ids defined on later lines.
    for (line, id, deps) in &activity_records {
        for dep in deps {
            let Some(&from) = activity_ids.get(dep) else {
                return Err(at(*line, &format!("unknown dep '{dep}' of '{id}'")));
            };
            let to = activity_ids[id];
            app.add_edge(from, to)
                .map_err(|e| at(*line, &format!("dep '{dep}' of '{id}': {e}")))?;
        }
    }

    // Own cycle pass so the error names a member (the model's check
    // only states that a cycle exists).
    let n = app.activities().len();
    let mut indegree: Vec<usize> = app.ids().map(|id| app.preds(id).len()).collect();
    let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut visited = 0usize;
    while let Some(i) = queue.pop() {
        visited += 1;
        for s in app.succs(flexray_model::ActivityId::new(i)) {
            indegree[s.index()] -= 1;
            if indegree[s.index()] == 0 {
                queue.push(s.index());
            }
        }
    }
    if visited != n {
        let member = app
            .ids()
            .find(|id| indegree[id.index()] > 0)
            .map(|id| app.activity(id).name.clone())
            .expect("a cycle has members");
        return Err(ModelError::InvalidConfig(format!(
            "workgraph has a dependency cycle through '{member}'"
        )));
    }

    app.validate()
        .map_err(|e| ModelError::InvalidConfig(format!("invalid workgraph: {e}")))?;

    Ok(Workload {
        platform: Platform::with_nodes(nodes),
        app,
        clusters,
        node_cluster,
        gateways,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexray_gen::{generate, GeneratorConfig};

    fn two_cluster_text() -> String {
        let generated =
            generate(&GeneratorConfig::clustered(7, 2), 11).expect("clustered scenario");
        Workload::of_generated(&generated)
            .export()
            .expect("exports")
    }

    #[test]
    fn export_import_round_trips_bit_identically() {
        let text = two_cluster_text();
        let back = Workload::import(&text).expect("imports");
        assert_eq!(back.export().expect("re-exports"), text);
        let generated =
            generate(&GeneratorConfig::clustered(7, 2), 11).expect("clustered scenario");
        let phy = GeneratorConfig::clustered(7, 2).phy;
        let original = Workload::of_generated(&generated);
        // specs, topology and achieved stats survive the round trip
        assert_eq!(back.platform.len(), original.platform.len());
        assert_eq!(back.clusters, original.clusters);
        assert_eq!(back.node_cluster, original.node_cluster);
        assert_eq!(back.gateways, original.gateways);
        assert_eq!(back.app.activities(), original.app.activities());
        let edges = |app: &Application| {
            let mut e: Vec<(String, String)> = app
                .edges()
                .iter()
                .map(|&(a, b)| (app.activity(a).name.clone(), app.activity(b).name.clone()))
                .collect();
            e.sort();
            e
        };
        assert_eq!(edges(&back.app), edges(&original.app));
        assert_eq!(
            back.stats(&phy).expect("stats"),
            original.stats(&phy).expect("stats"),
            "round trip changed the workload statistics"
        );
        assert_eq!(back.fingerprint(), original.fingerprint());
    }

    #[test]
    fn import_loads_a_hand_written_scenario() {
        let text = r#"
# a two-node hand-written benchmark
{"kind":"workgraph","version":1,"nodes":2}
{"kind":"graph","id":"g","period_us":4000.0,"deadline_us":3000.0}
{"kind":"task","id":"a","graph":"g","node":0,"wcet_us":20.0,"policy":"scs","prio":0,"deps":[]}
{"kind":"msg","id":"m","graph":"g","bytes":8,"class":"st","prio":0,"deps":["a"]}
{"kind":"task","id":"b","graph":"g","node":1,"wcet_us":20.0,"policy":"scs","prio":0,"deps":["m"]}
"#;
        let w = Workload::import(text).expect("imports");
        assert_eq!(w.platform.len(), 2);
        assert_eq!(w.clusters, 1);
        assert_eq!(w.app.activities().len(), 3);
        let result = flexray_opt::bbc(
            &w.platform,
            &w.app,
            flexray_model::PhyParams::bmw_like(),
            &flexray_opt::OptParams::default(),
        );
        assert!(result.is_schedulable(), "hand-written scenario solves");
    }

    #[test]
    fn forward_references_are_resolved() {
        let text = r#"
{"kind":"workgraph","version":1,"nodes":2}
{"kind":"graph","id":"g","period_us":4000.0,"deadline_us":3000.0}
{"kind":"task","id":"b","graph":"g","node":1,"wcet_us":20.0,"policy":"scs","prio":0,"deps":["m"]}
{"kind":"msg","id":"m","graph":"g","bytes":8,"class":"st","prio":0,"deps":["a"]}
{"kind":"task","id":"a","graph":"g","node":0,"wcet_us":20.0,"policy":"scs","prio":0,"deps":[]}
"#;
        let w = Workload::import(text).expect("forward refs import");
        assert_eq!(w.app.activities().len(), 3);
    }

    fn assert_rejects(text: &str, token: &str) {
        let err = Workload::import(text).expect_err("must reject");
        let msg = err.to_string();
        assert!(msg.contains(token), "error must name '{token}', got: {msg}");
    }

    #[test]
    fn malformed_inputs_are_rejected_with_the_offending_token() {
        let header = r#"{"kind":"workgraph","version":1,"nodes":2}"#;
        let graph = r#"{"kind":"graph","id":"g","period_us":4000.0,"deadline_us":3000.0}"#;
        // unknown key
        assert_rejects(
            &format!(
                "{header}\n{graph}\n{}",
                r#"{"kind":"task","id":"a","graph":"g","node":0,"wcet_us":1.0,"policy":"scs","prio":0,"threads":4,"deps":[]}"#
            ),
            "'threads'",
        );
        // unknown kind
        assert_rejects(
            &format!("{header}\n{}", r#"{"kind":"job","id":"x"}"#),
            "'job'",
        );
        // dangling dep
        assert_rejects(
            &format!(
                "{header}\n{graph}\n{}",
                r#"{"kind":"task","id":"a","graph":"g","node":0,"wcet_us":1.0,"policy":"scs","prio":0,"deps":["ghost"]}"#
            ),
            "'ghost'",
        );
        // dependency cycle, naming a member
        assert_rejects(
            &format!(
                "{header}\n{graph}\n{}\n{}",
                r#"{"kind":"task","id":"a","graph":"g","node":0,"wcet_us":1.0,"policy":"scs","prio":0,"deps":["b"]}"#,
                r#"{"kind":"task","id":"b","graph":"g","node":0,"wcet_us":1.0,"policy":"scs","prio":0,"deps":["a"]}"#
            ),
            "cycle",
        );
        // bad home cluster
        assert_rejects(
            r#"{"kind":"workgraph","version":1,"nodes":2,"clusters":2,"node_cluster":[0,7],"gateways":[1]}"#,
            "cluster 7",
        );
        // unknown graph
        assert_rejects(
            &format!(
                "{header}\n{}",
                r#"{"kind":"task","id":"a","graph":"h","node":0,"wcet_us":1.0,"policy":"scs","prio":0,"deps":[]}"#
            ),
            "'h'",
        );
        // bad policy token
        assert_rejects(
            &format!(
                "{header}\n{graph}\n{}",
                r#"{"kind":"task","id":"a","graph":"g","node":0,"wcet_us":1.0,"policy":"rr","prio":0,"deps":[]}"#
            ),
            "'rr'",
        );
        // missing header
        assert_rejects(graph, "header");
        // clusters without gateways
        assert_rejects(
            r#"{"kind":"workgraph","version":1,"nodes":4,"clusters":2,"node_cluster":[0,0,1,1]}"#,
            "gateways",
        );
    }

    #[test]
    fn errors_carry_the_line_number() {
        let text = format!(
            "{}\n\n# comment\n{}",
            r#"{"kind":"workgraph","version":1,"nodes":2}"#,
            r#"{"kind":"graph","id":"g","period_us":4000.0}"#
        );
        let err = Workload::import(&text).expect_err("missing deadline");
        assert!(
            err.to_string().contains("line 4"),
            "blank and comment lines still count: {err}"
        );
    }
}
