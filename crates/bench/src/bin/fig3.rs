//! Regenerates Fig. 3 of the paper (ST-segment optimisation example).

fn main() {
    println!("Fig. 3 — optimisation of the ST segment (response time of m3)");
    match flexray_bench::fig3::run() {
        Ok(table) => println!("{table}"),
        Err(e) => {
            eprintln!("fig3 failed: {e}");
            std::process::exit(1);
        }
    }
}
