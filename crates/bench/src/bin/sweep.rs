//! Generic single-axis scenario sweeps beyond the paper envelope.
//!
//! Usage: sweep [axis] [values] [apps] [fast|full|smoke] [threads] [seed0]
//!        [algos] [eval_threads]
//!
//! * `axis` — `nodes`, `depth`, `gateway`, `busutil` or `clusters`
//!   (default `nodes`);
//! * `values` — comma-separated axis points, e.g. `2,8,12,20` for
//!   `nodes`, `4,8,12` for `depth` (chain length), `0.0,0.25,0.5` for
//!   `gateway`, `0.2,0.4,0.6` for `busutil`, `1,2,3` for `clusters`;
//! * `apps` — applications (seeds) per point (default 3);
//! * `fast` shrinks the search caps for a quick qualitative run and
//!   `smoke` shrinks them further for CI; `full` keeps the defaults;
//! * `threads` — worker threads (`0` = all cores, `1` = serial; both
//!   produce bit-identical deterministic output);
//! * `seed0` — base seed; application `i` of point `p` uses
//!   `seed0 + 1000·p + i`;
//! * `algos` — comma-separated subset of `bbc,obccf,obcee,sa`
//!   (default all four; deviations are reported against SA when it is
//!   in the set);
//! * `eval_threads` — warm analysis sessions of the in-run parallel
//!   `Evaluator` (`0` = all cores, default `1` = serial; bit-identical
//!   results for any value).

use flexray_bench::sweep::{
    parse_algo_set, parse_thread_count, render, run_sweep, search_mode, SweepAxis, SweepConfig,
};

fn parse_values<T: std::str::FromStr>(s: &str) -> Option<Vec<T>> {
    let vals: Result<Vec<T>, _> = s.split(',').map(str::parse).collect();
    vals.ok().filter(|v| !v.is_empty())
}

fn usage_exit() -> ! {
    eprintln!(
        "usage: sweep [nodes|depth|gateway|busutil|clusters] [v1,v2,...] [apps] \
         [fast|full|smoke] [threads] [seed0] [algos] [eval_threads]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let axis_name = args.first().map_or("nodes", String::as_str);
    let values = args.get(1).map_or("2,5,10", String::as_str);
    let axis = match axis_name {
        "nodes" => parse_values(values).map(SweepAxis::NodeCount),
        "depth" => parse_values(values).map(SweepAxis::GraphDepth),
        "gateway" => parse_values(values).map(SweepAxis::GatewayFraction),
        "busutil" => parse_values(values).map(SweepAxis::BusUtil),
        "clusters" => parse_values(values).map(SweepAxis::Clusters),
        _ => None,
    };
    let Some(axis) = axis else { usage_exit() };

    let mut cfg = SweepConfig {
        axis,
        ..SweepConfig::default()
    };
    if let Some(s) = args.get(2) {
        match s.parse() {
            Ok(apps) => cfg.apps_per_point = apps,
            Err(_) => usage_exit(),
        }
    }
    if let Some(mode) = args.get(3) {
        match search_mode(mode) {
            Some((params, sa)) => {
                cfg.params = params;
                cfg.sa = sa;
            }
            None => usage_exit(),
        }
    }
    if let Some(s) = args.get(4) {
        match parse_thread_count(s) {
            Ok(threads) => cfg.threads = threads,
            Err(e) => {
                eprintln!("sweep: {e}");
                std::process::exit(2);
            }
        }
    }
    if let Some(s) = args.get(5) {
        match s.parse() {
            Ok(seed0) => cfg.seed0 = seed0,
            Err(_) => usage_exit(),
        }
    }
    if let Some(names) = args.get(6) {
        // a typo must not silently shrink the algorithm set: reject
        // unknown, empty and duplicate names with a proper error
        match parse_algo_set(names) {
            Ok(algos) => cfg.algos = algos,
            Err(e) => {
                eprintln!("sweep: {e}");
                std::process::exit(2);
            }
        }
    }
    if let Some(s) = args.get(7) {
        match parse_thread_count(s) {
            Ok(threads) => cfg.params.eval_threads = threads,
            Err(e) => {
                eprintln!("sweep: {e}");
                std::process::exit(2);
            }
        }
    }

    println!(
        "Sweep — axis {} ({} points), {} application(s) per point, algos {:?}, \
         {} worker thread(s), {} evaluator thread(s), seed0 {}",
        cfg.axis.name(),
        cfg.axis.len(),
        cfg.apps_per_point,
        cfg.algos.iter().map(|a| a.name()).collect::<Vec<_>>(),
        cfg.worker_threads(),
        cfg.params.eval_threads,
        cfg.seed0,
    );
    let reference = cfg.reference().map(|i| cfg.algos[i].name());
    match run_sweep(&cfg) {
        Ok(points) => println!("{}", render(cfg.axis.name(), reference, &points)),
        Err(e) => {
            eprintln!("sweep failed: {e}");
            std::process::exit(1);
        }
    }
}
