//! Regenerates Fig. 9: evaluation of the bus optimisation algorithms.
//!
//! Usage: fig9 [apps_per_point] [max_nodes] [fast]
//! Defaults: 5 applications per node count, nodes 2..=5, full search
//! parameters. The paper uses 25 applications per point; pass 25 for
//! the full run (slow: expect tens of minutes in release mode). The
//! optional third argument `fast` shrinks the search caps for a quick
//! qualitative run.

use flexray_bench::fig9::{render, run_experiment, Fig9Config};
use flexray_opt::{OptParams, SaParams};

fn main() {
    let mut cfg = Fig9Config::default();
    if let Some(apps) = std::env::args().nth(1).and_then(|s| s.parse().ok()) {
        cfg.apps_per_point = apps;
    }
    if let Some(maxn) = std::env::args().nth(2).and_then(|s| s.parse().ok()) {
        cfg.node_counts = (2..=maxn).collect();
    }
    if std::env::args().nth(3).as_deref() == Some("fast") {
        cfg.params = OptParams {
            max_extra_slots: 4,
            max_slot_len_steps: 6,
            max_dyn_candidates: 96,
            dyn_step: 8,
            ..OptParams::default()
        };
        cfg.sa = SaParams {
            iterations: 400,
            ..SaParams::default()
        };
    }
    println!(
        "Fig. 9 — {} applications per point, nodes {:?}",
        cfg.apps_per_point, cfg.node_counts
    );
    match run_experiment(&cfg) {
        Ok(points) => println!("{}", render(&points)),
        Err(e) => {
            eprintln!("fig9 failed: {e}");
            std::process::exit(1);
        }
    }
}
