//! Regenerates Fig. 9: evaluation of the bus optimisation algorithms.
//!
//! Usage: fig9 [apps_per_point] [max_nodes] [fast|full|smoke] [threads]
//! Defaults: 5 applications per node count, nodes 2..=5, full search
//! parameters, one worker thread per hardware thread. The paper uses 25
//! applications per point; pass 25 for the full run (slow: expect tens
//! of minutes in release mode on one core — the per-seed loop scales
//! with the thread count). The optional third argument `fast` shrinks
//! the search caps for a quick qualitative run; the optional fourth
//! argument pins the worker-thread count (`1` forces the serial path,
//! whose deterministic output is identical to any parallel run).

use flexray_bench::fig9::{render, run_experiment, Fig9Config};
use flexray_bench::sweep::search_mode;

fn main() {
    let mut cfg = Fig9Config::default();
    if let Some(apps) = std::env::args().nth(1).and_then(|s| s.parse().ok()) {
        cfg.apps_per_point = apps;
    }
    if let Some(maxn) = std::env::args().nth(2).and_then(|s| s.parse().ok()) {
        cfg.node_counts = (2..=maxn).collect();
    }
    // the shared preset table; an unrecognised mode keeps the full
    // search parameters, as this binary always did
    if let Some((params, sa)) = std::env::args().nth(3).as_deref().and_then(search_mode) {
        cfg.params = params;
        cfg.sa = sa;
    }
    if let Some(threads) = std::env::args().nth(4).and_then(|s| s.parse().ok()) {
        cfg.threads = threads;
    }
    println!(
        "Fig. 9 — {} applications per point, nodes {:?}, {} worker thread(s)",
        cfg.apps_per_point,
        cfg.node_counts,
        cfg.worker_threads()
    );
    match run_experiment(&cfg) {
        Ok(points) => println!("{}", render(&points)),
        Err(e) => {
            eprintln!("fig9 failed: {e}");
            std::process::exit(1);
        }
    }
}
