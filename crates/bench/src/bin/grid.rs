//! Factorial grid sweeps over the v2 generator, with a streaming,
//! resumable JSON-lines/CSV report.
//!
//! Usage: grid <axis>=<v1,v2,...> [<axis>=...] [key=value options]
//!
//! Axes (any non-empty subset, each at most once; the grid is their
//! cartesian product, first axis slowest):
//!
//! * `nodes=2,5,10` — node count;
//! * `depth=4,8` — graph depth (chain-shaped DAGs);
//! * `gateway=0.0,0.5` — gateway-relayed traffic fraction;
//! * `busutil=0.2,0.6` — bus utilisation target;
//! * `clusters=1,2,3` — FlexRay cluster count (multi-cluster points
//!   home the last node as the gateway unless the base config names
//!   gateways).
//!
//! Instead of axes, `workload=FILE` imports a hand-written workgraph
//! (the JSONL interchange format of `flexray-bench::workload`) and
//! runs it as a single fixed point — the generator axes do not apply.
//!
//! Options:
//!
//! * `apps=N` — applications (seeds) per grid point (default 3);
//! * `mode=fast|full|smoke` — search-parameter scale (default `full`);
//! * `threads=N` — worker threads (`0` = all cores, `1` = serial; the
//!   deterministic output is identical either way);
//! * `eval_threads=N` — warm analysis sessions of the in-run parallel
//!   `Evaluator` per worker (`0` = all cores, default `1` = serial;
//!   bit-identical results for any value);
//! * `seed0=N` — base seed (application `i` of point `p` uses
//!   `seed0 + 1000·p + i`);
//! * `algos=bbc,obccf,obcee,sa` — algorithm subset (default all four;
//!   unknown or duplicate names are rejected);
//! * `out=FILE` — stream the JSON-lines report to FILE (default:
//!   stdout);
//! * `csv=FILE` — additionally write the CSV projection to FILE;
//! * `resume=FILE` — recover the completed points of a partial report
//!   (a killed run leaves a well-formed prefix), re-run only the rest
//!   and rewrite FILE in full; implies `out=FILE` unless `out` is
//!   given. The file's header must match the configured grid.

use flexray_bench::grid::{render, run_grid_resumed, GridConfig, GridPoint, WorkloadSource};
use flexray_bench::report::{from_jsonl, point_to_line, to_csv, GridReportHeader};
use flexray_bench::sweep::{parse_algo_set, parse_thread_count, search_mode, SweepAxis};
use flexray_bench::workload::Workload;
use std::io::Write;

fn usage_exit() -> ! {
    eprintln!(
        "usage: grid <nodes|depth|gateway|busutil|clusters>=<v1,v2,...> [more axes] \
         [workload=FILE] [apps=N] [mode=fast|full|smoke] [threads=N] [eval_threads=N] \
         [seed0=N] [algos=a,b,...] [out=FILE] [csv=FILE] [resume=FILE]"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("grid: {msg}");
    std::process::exit(1);
}

fn parse_values<T: std::str::FromStr>(key: &str, s: &str) -> Vec<T> {
    let values: Result<Vec<T>, _> = s.split(',').map(str::parse).collect();
    match values {
        Ok(v) if !v.is_empty() => v,
        _ => {
            eprintln!("grid: invalid value list '{s}' for axis '{key}'");
            usage_exit()
        }
    }
}

fn main() {
    let mut cfg = GridConfig {
        axes: Vec::new(),
        ..GridConfig::default()
    };
    let mut out_path: Option<String> = None;
    let mut csv_path: Option<String> = None;
    let mut resume_path: Option<String> = None;
    // `mode=` replaces `cfg.params` wholesale, so remember the knob and
    // apply it after the whole argument loop, order-independently.
    let mut eval_threads: Option<usize> = None;

    for arg in std::env::args().skip(1) {
        let Some((key, value)) = arg.split_once('=') else {
            eprintln!("grid: expected key=value, got '{arg}'");
            usage_exit()
        };
        match key {
            "nodes" => cfg
                .axes
                .push(SweepAxis::NodeCount(parse_values(key, value))),
            "depth" => cfg
                .axes
                .push(SweepAxis::GraphDepth(parse_values(key, value))),
            "gateway" => cfg
                .axes
                .push(SweepAxis::GatewayFraction(parse_values(key, value))),
            "busutil" => cfg.axes.push(SweepAxis::BusUtil(parse_values(key, value))),
            "clusters" => cfg.axes.push(SweepAxis::Clusters(parse_values(key, value))),
            "workload" => {
                let text = match std::fs::read_to_string(value) {
                    Ok(text) => text,
                    Err(e) => fail(&format!("cannot read workload '{value}': {e}")),
                };
                let workload = match Workload::import(&text) {
                    Ok(workload) => workload,
                    Err(e) => fail(&format!("workload '{value}': {e}")),
                };
                let name = std::path::Path::new(value)
                    .file_stem()
                    .map_or_else(|| value.to_owned(), |s| s.to_string_lossy().into_owned());
                cfg.workload = Some(WorkloadSource { name, workload });
            }
            "apps" => match value.parse() {
                Ok(apps) => cfg.apps_per_point = apps,
                Err(_) => usage_exit(),
            },
            "mode" => match search_mode(value) {
                Some((params, sa)) => {
                    cfg.params = params;
                    cfg.sa = sa;
                }
                None => usage_exit(),
            },
            "threads" => match parse_thread_count(value) {
                Ok(threads) => cfg.threads = threads,
                Err(e) => {
                    eprintln!("grid: {e}");
                    std::process::exit(2);
                }
            },
            "eval_threads" => match parse_thread_count(value) {
                Ok(threads) => eval_threads = Some(threads),
                Err(e) => {
                    eprintln!("grid: {e}");
                    std::process::exit(2);
                }
            },
            "seed0" => match value.parse() {
                Ok(seed0) => cfg.seed0 = seed0,
                Err(_) => usage_exit(),
            },
            "algos" => match parse_algo_set(value) {
                Ok(algos) => cfg.algos = algos,
                Err(e) => {
                    eprintln!("grid: {e}");
                    std::process::exit(2);
                }
            },
            "out" => out_path = Some(value.to_owned()),
            "csv" => csv_path = Some(value.to_owned()),
            "resume" => resume_path = Some(value.to_owned()),
            _ => {
                eprintln!("grid: unknown option '{key}'");
                usage_exit()
            }
        }
    }
    if let Some(threads) = eval_threads {
        cfg.params.eval_threads = threads;
    }
    if cfg.axes.is_empty() && cfg.workload.is_none() {
        eprintln!("grid: at least one axis (or a workload) is required");
        usage_exit()
    }
    if let Err(e) = cfg.validate() {
        fail(&e.to_string());
    }
    let header = GridReportHeader::of(&cfg);

    // Recover the completed points of a partial report.
    let mut done: Vec<GridPoint> = Vec::new();
    if let Some(path) = &resume_path {
        let content = match std::fs::read_to_string(path) {
            Ok(content) => content,
            Err(e) => fail(&format!("cannot read resume report '{path}': {e}")),
        };
        match from_jsonl(&content) {
            Ok((prev_header, points)) => {
                if prev_header != header {
                    fail(&format!(
                        "resume report '{path}' was written by a different grid \
                         configuration; refusing to mix reports"
                    ));
                }
                done = points;
            }
            Err(e) => fail(&format!("resume report '{path}': {e}")),
        }
        if out_path.is_none() {
            out_path = Some(path.clone());
        }
    }

    eprintln!(
        "Grid — {} axes, {} points, {} application(s) per point, algos {:?}, \
         {} worker thread(s), seed0 {}{}",
        cfg.axes.len(),
        cfg.total_points(),
        cfg.apps_per_point,
        cfg.algos.iter().map(|a| a.name()).collect::<Vec<_>>(),
        cfg.worker_threads(),
        cfg.seed0,
        if done.is_empty() {
            String::new()
        } else {
            format!(" ({} point(s) recovered)", done.len())
        },
    );

    // Open the streaming JSONL sink: a file, or stdout. When the
    // output rewrites the resume report in place, stream to a `.tmp`
    // sibling and swap it in only on success — `File::create` would
    // truncate the recovered report before the first point lands, so a
    // kill in that window would destroy all completed work.
    // compare canonicalized paths, not spellings: `out=./g.jsonl
    // resume=g.jsonl` must still get the protection (canonicalize
    // fails only when the out file does not exist yet — then it cannot
    // be the report we just read)
    let rewrites_resume_source = match (&out_path, &resume_path) {
        (Some(out), Some(resume)) => {
            out == resume
                || matches!(
                    (std::fs::canonicalize(out), std::fs::canonicalize(resume)),
                    (Ok(a), Ok(b)) if a == b
                )
        }
        _ => false,
    };
    let stream_path = out_path.as_ref().map(|path| {
        if rewrites_resume_source {
            format!("{path}.tmp")
        } else {
            path.clone()
        }
    });
    let mut sink: Box<dyn Write> = match &stream_path {
        Some(path) => match std::fs::File::create(path) {
            Ok(file) => Box::new(std::io::BufWriter::new(file)),
            Err(e) => fail(&format!("cannot write report '{path}': {e}")),
        },
        None => Box::new(std::io::stdout().lock()),
    };
    let write_line = |sink: &mut dyn Write, line: &str| {
        if let Err(e) = writeln!(sink, "{line}").and_then(|()| sink.flush()) {
            fail(&format!("report write failed: {e}"));
        }
    };
    let render_line = |line: Result<String, flexray_model::ModelError>| match line {
        Ok(line) => line,
        Err(e) => fail(&format!("report encode failed: {e}")),
    };
    write_line(sink.as_mut(), &render_line(header.to_line()));

    let result = run_grid_resumed(&cfg, done, |point| {
        write_line(sink.as_mut(), &render_line(point_to_line(point)));
    });
    let points = match result {
        Ok(points) => points,
        Err(e) => fail(&format!("run failed: {e}")),
    };
    drop(sink);
    if rewrites_resume_source {
        let (tmp, path) = (
            stream_path.as_ref().expect("streamed to a file"),
            out_path.as_ref().expect("rewrites a file"),
        );
        if let Err(e) = std::fs::rename(tmp, path) {
            fail(&format!("cannot replace report '{path}' with '{tmp}': {e}"));
        }
    }

    if let Some(path) = &csv_path {
        if let Err(e) = std::fs::write(path, to_csv(&header, &points)) {
            fail(&format!("cannot write CSV '{path}': {e}"));
        }
    }

    // Human-readable summary on stderr when the JSONL went to a file,
    // on stdout otherwise left to the JSONL alone.
    if out_path.is_some() {
        let reference = cfg.reference().map(|i| cfg.algos[i].name());
        eprintln!("{}", render(reference, &points));
    }
}
