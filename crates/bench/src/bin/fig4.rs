//! Regenerates Fig. 4 of the paper (DYN-segment optimisation example).

fn main() {
    println!("Fig. 4 — optimisation of the DYN segment (response time of m2)");
    match flexray_bench::fig4::run() {
        Ok(table) => println!("{table}"),
        Err(e) => {
            eprintln!("fig4 failed: {e}");
            std::process::exit(1);
        }
    }
}
