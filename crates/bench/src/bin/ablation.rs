//! Runs the ablation studies for the reproduction's design choices.
//!
//! Usage: ablation [n_apps]   (default 5)

use flexray_bench::ablation::{dyn_mode_ablation, frame_id_ablation, placement_ablation, render};

fn main() {
    let n = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let run = || -> Result<(), flexray_model::ModelError> {
        println!(
            "{}",
            render(
                "Ablation 1: frame-identifier assignment (Eq. 4 rule vs identity)",
                "avg cost (µs)",
                &frame_id_ablation(n)?,
                n
            )
        );
        println!(
            "{}",
            render(
                "Ablation 2: SCS placement (Fig. 2 line 11)",
                "avg cost (µs)",
                &placement_ablation(n)?,
                n
            )
        );
        println!(
            "{}",
            render(
                "Ablation 3: DYN interference mode (greedy vs exact)",
                "avg DYN WCRT (µs)",
                &dyn_mode_ablation(n)?,
                n
            )
        );
        Ok(())
    };
    if let Err(e) = run() {
        eprintln!("ablation failed: {e}");
        std::process::exit(1);
    }
}
