//! Grid-driven execution-order fuzz campaign for the simulator.
//!
//! Usage: fuzz <axis>=<v1,v2,...> [<axis>=...] [key=value options]
//!
//! Axes (any non-empty subset, each at most once; the grid is their
//! cartesian product, first axis slowest):
//!
//! * `nodes=2,5,10` — node count;
//! * `depth=4,8` — graph depth (chain-shaped DAGs);
//! * `gateway=0.0,0.5` — gateway-relayed traffic fraction;
//! * `busutil=0.2,0.6` — bus utilisation target.
//!
//! Options:
//!
//! * `apps=N` — applications (seeds) per grid point (default 2);
//! * `orders=s1,s2,...` — execution-order seeds fuzzed per schedulable
//!   application, on top of the canonical baseline (default `1,2,3,4`);
//! * `reps=N` — hyperperiods per simulation run (default 4);
//! * `compress=on|off` — hyperperiod compression (default `on`);
//! * `mode=fast|full|smoke` — optimiser search scale (default `full`);
//! * `threads=N` — worker threads (`0` = all cores, `1` = serial; the
//!   deterministic output is identical either way);
//! * `eval_threads=N` — warm analysis sessions of the in-run parallel
//!   `Evaluator` per worker (`0` = all cores, default `1` = serial;
//!   bit-identical results for any value);
//! * `seed0=N` — base seed (application `i` of point `p` uses
//!   `seed0 + 1000·p + i`);
//! * `out=FILE` — stream the JSON-lines report to FILE (default:
//!   stdout).
//!
//! Exits non-zero if any divergence is found: a precedence violation,
//! an observed response above its analytic WCRT, or a deadline miss,
//! under any execution order.

use flexray_bench::fuzz::{render, run_fuzz, FuzzConfig};
use flexray_bench::sweep::{parse_thread_count, search_mode, SweepAxis};
use std::io::Write;

fn usage_exit() -> ! {
    eprintln!(
        "usage: fuzz <nodes|depth|gateway|busutil>=<v1,v2,...> [more axes] \
         [apps=N] [orders=s1,s2,...] [reps=N] [compress=on|off] \
         [mode=fast|full|smoke] [threads=N] [eval_threads=N] [seed0=N] \
         [out=FILE]"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("fuzz: {msg}");
    std::process::exit(1);
}

fn parse_values<T: std::str::FromStr>(key: &str, s: &str) -> Vec<T> {
    let values: Result<Vec<T>, _> = s.split(',').map(str::parse).collect();
    match values {
        Ok(v) if !v.is_empty() => v,
        _ => {
            eprintln!("fuzz: invalid value list '{s}' for '{key}'");
            usage_exit()
        }
    }
}

fn main() {
    let mut cfg = FuzzConfig::default();
    let mut out_path: Option<String> = None;
    // `mode=` replaces `cfg.params` wholesale, so remember the knob and
    // apply it after the whole argument loop, order-independently.
    let mut eval_threads: Option<usize> = None;

    for arg in std::env::args().skip(1) {
        let Some((key, value)) = arg.split_once('=') else {
            eprintln!("fuzz: expected key=value, got '{arg}'");
            usage_exit()
        };
        match key {
            "nodes" => cfg
                .axes
                .push(SweepAxis::NodeCount(parse_values(key, value))),
            "depth" => cfg
                .axes
                .push(SweepAxis::GraphDepth(parse_values(key, value))),
            "gateway" => cfg
                .axes
                .push(SweepAxis::GatewayFraction(parse_values(key, value))),
            "busutil" => cfg.axes.push(SweepAxis::BusUtil(parse_values(key, value))),
            "apps" => match value.parse() {
                Ok(apps) => cfg.apps_per_point = apps,
                Err(_) => usage_exit(),
            },
            "orders" => cfg.order_seeds = parse_values(key, value),
            "reps" => match value.parse() {
                Ok(reps) => cfg.reps = reps,
                Err(_) => usage_exit(),
            },
            "compress" => match value {
                "on" => cfg.compress = true,
                "off" => cfg.compress = false,
                _ => usage_exit(),
            },
            "mode" => match search_mode(value) {
                Some((params, _)) => cfg.params = params,
                None => usage_exit(),
            },
            "threads" => match parse_thread_count(value) {
                Ok(threads) => cfg.threads = threads,
                Err(e) => {
                    eprintln!("fuzz: {e}");
                    std::process::exit(2);
                }
            },
            "eval_threads" => match parse_thread_count(value) {
                Ok(threads) => eval_threads = Some(threads),
                Err(e) => {
                    eprintln!("fuzz: {e}");
                    std::process::exit(2);
                }
            },
            "seed0" => match value.parse() {
                Ok(seed0) => cfg.seed0 = seed0,
                Err(_) => usage_exit(),
            },
            "out" => out_path = Some(value.to_owned()),
            _ => {
                eprintln!("fuzz: unknown option '{key}'");
                usage_exit()
            }
        }
    }
    if let Some(threads) = eval_threads {
        cfg.params.eval_threads = threads;
    }
    if cfg.axes.is_empty() {
        eprintln!("fuzz: at least one axis is required");
        usage_exit()
    }
    if let Err(e) = cfg.validate() {
        fail(&e.to_string());
    }

    eprintln!(
        "Fuzz — {} axes, {} points, {} application(s) per point, \
         {} order seed(s) + canonical, {} hyperperiod(s), compression {}, seed0 {}",
        cfg.axes.len(),
        cfg.total_points(),
        cfg.apps_per_point,
        cfg.order_seeds.len(),
        cfg.reps,
        if cfg.compress { "on" } else { "off" },
        cfg.seed0,
    );

    let mut sink: Box<dyn Write> = match &out_path {
        Some(path) => match std::fs::File::create(path) {
            Ok(file) => Box::new(std::io::BufWriter::new(file)),
            Err(e) => fail(&format!("cannot write report '{path}': {e}")),
        },
        None => Box::new(std::io::stdout().lock()),
    };
    let write_line = |sink: &mut dyn Write, line: &str| {
        if let Err(e) = writeln!(sink, "{line}").and_then(|()| sink.flush()) {
            fail(&format!("report write failed: {e}"));
        }
    };
    let render_line = |line: Result<String, flexray_model::ModelError>| match line {
        Ok(line) => line,
        Err(e) => fail(&format!("report encode failed: {e}")),
    };
    write_line(sink.as_mut(), &render_line(cfg.header_line()));

    let result = run_fuzz(&cfg, |point| {
        write_line(sink.as_mut(), &render_line(point.to_line()));
    });
    let points = match result {
        Ok(points) => points,
        Err(e) => fail(&format!("run failed: {e}")),
    };
    drop(sink);

    if out_path.is_some() {
        eprintln!("{}", render(&points));
    }

    let divergences: usize = points.iter().map(|p| p.divergences.len()).sum();
    if divergences > 0 {
        for p in &points {
            for d in &p.divergences {
                eprintln!("fuzz: DIVERGENCE: {d}");
            }
        }
        fail(&format!("{divergences} divergence(s) found"));
    }
    let runs: usize = points.iter().map(|p| p.runs).sum();
    eprintln!("fuzz: {runs} simulation run(s), no divergences");
}
