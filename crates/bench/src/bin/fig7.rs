//! Regenerates Fig. 7: message response times vs DYN segment length.
//!
//! Usage: fig7 [n_points]   (default 21, like the paper's x-axis)

fn main() {
    let n_points = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(21);
    println!("Fig. 7 — influence of DYN segment length on response times");
    match flexray_bench::fig7::run(n_points) {
        Ok(table) => println!("{table}"),
        Err(e) => {
            eprintln!("fig7 failed: {e}");
            std::process::exit(1);
        }
    }
}
