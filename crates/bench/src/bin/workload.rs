//! Workgraph interchange utility: export generated scenarios as
//! hand-editable workgraph files and sanity-check imported ones.
//!
//! Usage:
//!
//! * `workload export [nodes=N] [clusters=K] [seed=S] [out=FILE]` —
//!   generate a scenario (the paper-scale generator; `clusters>1`
//!   homes the last node as the gateway) and print its workgraph
//!   (JSONL interchange, see `flexray-bench::workload`) to FILE or
//!   stdout;
//! * `workload check FILE` — import FILE, validate it and print a
//!   one-line summary (nodes, clusters, census, bus utilisation) plus
//!   the workload fingerprint;
//! * `workload roundtrip FILE` — import FILE, re-export it and
//!   re-import the export; fail unless the second export is
//!   byte-identical and the fingerprints match.
//!
//! `check` and `roundtrip` exit non-zero on any malformed input, with
//! the parser's line-numbered error on stderr — which makes them the
//! CI smoke test for the interchange format.

use flexray_bench::workload::Workload;
use flexray_gen::{generate, GeneratorConfig};

fn usage_exit() -> ! {
    eprintln!(
        "usage: workload export [nodes=N] [clusters=K] [seed=S] [out=FILE]\n\
                workload check FILE\n\
                workload roundtrip FILE"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("workload: {msg}");
    std::process::exit(1);
}

fn read(path: &str) -> String {
    match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => fail(&format!("cannot read '{path}': {e}")),
    }
}

fn import(path: &str, text: &str) -> Workload {
    match Workload::import(text) {
        Ok(w) => w,
        Err(e) => fail(&format!("'{path}': {e}")),
    }
}

fn summarise(w: &Workload) -> String {
    let cfg = GeneratorConfig::paper(w.platform.len());
    let stats = match w.stats(&cfg.phy) {
        Ok(stats) => stats,
        Err(e) => fail(&format!("stats failed: {e}")),
    };
    format!(
        "nodes={} clusters={} gateways={} graphs={} scs={} fps={} st={} dyn={} \
         busutil={:.4} fingerprint={}",
        w.platform.len(),
        w.clusters,
        w.gateways.len(),
        stats.graphs,
        stats.census.scs_tasks,
        stats.census.fps_tasks,
        stats.census.st_messages,
        stats.census.dyn_messages,
        stats.bus_util,
        w.fingerprint(),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("export") => {
            let (mut nodes, mut clusters, mut seed) = (5usize, 1usize, 42u64);
            let mut out: Option<String> = None;
            for arg in &args[1..] {
                let Some((key, value)) = arg.split_once('=') else {
                    usage_exit()
                };
                match (key, value.parse::<u64>()) {
                    ("nodes", Ok(n)) if n >= 2 => nodes = n as usize,
                    ("clusters", Ok(k)) if k >= 1 => clusters = k as usize,
                    ("seed", Ok(s)) => seed = s,
                    ("out", _) => out = Some(value.to_owned()),
                    _ => usage_exit(),
                }
            }
            let cfg = if clusters > 1 {
                GeneratorConfig::clustered(nodes, clusters)
            } else {
                GeneratorConfig::paper(nodes)
            };
            let generated = match generate(&cfg, seed) {
                Ok(g) => g,
                Err(e) => fail(&format!("generation failed: {e}")),
            };
            let workload = Workload::of_generated(&generated);
            let text = match workload.export() {
                Ok(text) => text,
                Err(e) => fail(&format!("export failed: {e}")),
            };
            match out {
                Some(path) => {
                    if let Err(e) = std::fs::write(&path, &text) {
                        fail(&format!("cannot write '{path}': {e}"));
                    }
                    eprintln!("{}", summarise(&workload));
                }
                None => print!("{text}"),
            }
        }
        Some("check") => {
            let Some(path) = args.get(1) else {
                usage_exit()
            };
            let workload = import(path, &read(path));
            println!("{}", summarise(&workload));
        }
        Some("roundtrip") => {
            let Some(path) = args.get(1) else {
                usage_exit()
            };
            let first = import(path, &read(path));
            let exported = match first.export() {
                Ok(text) => text,
                Err(e) => fail(&format!("re-export failed: {e}")),
            };
            let second = import(path, &exported);
            let again = match second.export() {
                Ok(text) => text,
                Err(e) => fail(&format!("second export failed: {e}")),
            };
            if exported != again {
                fail("round trip is not byte-identical");
            }
            if first.fingerprint() != second.fingerprint() {
                fail("round trip changed the workload fingerprint");
            }
            println!("roundtrip ok: {}", summarise(&first));
        }
        _ => usage_exit(),
    }
}
