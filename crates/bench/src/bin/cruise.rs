//! Runs the vehicle cruise-controller case study (Section 7).
//!
//! Usage: cruise [wcet_us]   (default 180)

use flexray_bench::cruise::{render, run_case_study, DEFAULT_WCET_US};
use flexray_opt::{OptParams, SaParams};

fn main() {
    let wcet = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_WCET_US);
    println!("Cruise controller case study (54 tasks, 26 messages, 5 nodes), wcet scale {wcet} µs");
    match run_case_study(wcet, &OptParams::default(), &SaParams::default()) {
        Ok(outcome) => println!("{}", render(&outcome)),
        Err(e) => {
            eprintln!("cruise failed: {e}");
            std::process::exit(1);
        }
    }
}
