//! Ablation studies for the design choices of the reproduction.
//!
//! Three knobs the paper motivates qualitatively are quantified here:
//!
//! 1. **Frame-identifier assignment** — criticality-ordered unique
//!    identifiers (the BBC rule, Eq. 4) vs an arbitrary identity
//!    assignment;
//! 2. **SCS placement** — ASAP vs the FPS-aware placement of Fig. 2
//!    line 11;
//! 3. **DYN interference mode** — greedy vs per-cycle-optimal filled
//!    cycle maximisation (analysis pessimism vs run time).

use flexray_analysis::{analyse, AnalysisConfig, DynAnalysisMode, ScsPlacement};
use flexray_gen::{generate, Generated, GeneratorConfig};
use flexray_model::{BusConfig, MessageClass, ModelError, PhyParams, System};
use flexray_opt::{bbc_skeleton, identity_frame_ids, Evaluator};
use std::time::Instant;

/// One ablation row: a configuration label and the cost/time it
/// achieves.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Which variant.
    pub label: String,
    /// Cost value (Eq. 5) averaged over the sampled applications.
    pub avg_cost: f64,
    /// Fraction of sampled applications that were schedulable.
    pub schedulable: usize,
    /// Average analysis wall-clock (µs).
    pub avg_time_us: f64,
}

fn mid_dyn_bus(generated: &Generated) -> BusConfig {
    let mut bus = bbc_skeleton(&generated.platform, &generated.app, PhyParams::bmw_like());
    let ev = Evaluator::new(
        generated.platform.clone(),
        generated.app.clone(),
        AnalysisConfig::default(),
    );
    if let Some((min, max)) = ev.dyn_bounds(&bus) {
        bus.n_minislots = min + (max - min) / 8;
    }
    bus
}

/// Ablation 1: criticality-ordered vs identity frame identifiers, over
/// `n` generated 3-node applications.
///
/// # Errors
///
/// Propagates generator errors.
pub fn frame_id_ablation(n: usize) -> Result<Vec<AblationRow>, ModelError> {
    let cfg = GeneratorConfig::paper(3);
    let mut rows = vec![
        AblationRow {
            label: "criticality ids (BBC rule)".into(),
            avg_cost: 0.0,
            schedulable: 0,
            avg_time_us: 0.0,
        },
        AblationRow {
            label: "identity ids".into(),
            avg_cost: 0.0,
            schedulable: 0,
            avg_time_us: 0.0,
        },
    ];
    for seed in 0..n as u64 {
        let generated = generate(&cfg, 9000 + seed)?;
        let bus_crit = mid_dyn_bus(&generated);
        let mut bus_ident = bus_crit.clone();
        bus_ident.frame_ids = identity_frame_ids(&generated.app).into_iter().collect();
        for (row, bus) in rows.iter_mut().zip([&bus_crit, &bus_ident]) {
            let sys = System {
                platform: generated.platform.clone(),
                app: generated.app.clone(),
                bus: bus.clone(),
            };
            let analysis = analyse(&sys, &AnalysisConfig::default())?;
            row.avg_cost += analysis.cost.value() / n as f64;
            row.schedulable += usize::from(analysis.cost.is_schedulable());
        }
    }
    Ok(rows)
}

/// Ablation 2: SCS placement policy, over `n` generated applications.
///
/// # Errors
///
/// Propagates generator errors.
pub fn placement_ablation(n: usize) -> Result<Vec<AblationRow>, ModelError> {
    let cfg = GeneratorConfig::paper(3);
    let variants = [
        ("asap placement", ScsPlacement::Asap),
        ("fps-aware placement", ScsPlacement::MinimiseFpsImpact),
    ];
    let mut rows: Vec<AblationRow> = variants
        .iter()
        .map(|(label, _)| AblationRow {
            label: (*label).into(),
            avg_cost: 0.0,
            schedulable: 0,
            avg_time_us: 0.0,
        })
        .collect();
    for seed in 0..n as u64 {
        let generated = generate(&cfg, 9500 + seed)?;
        let bus = mid_dyn_bus(&generated);
        let sys = System {
            platform: generated.platform.clone(),
            app: generated.app.clone(),
            bus,
        };
        for (row, (_, placement)) in rows.iter_mut().zip(&variants) {
            let t0 = Instant::now();
            let analysis = analyse(
                &sys,
                &AnalysisConfig {
                    scs_placement: *placement,
                    ..AnalysisConfig::default()
                },
            )?;
            row.avg_time_us += t0.elapsed().as_micros() as f64 / n as f64;
            row.avg_cost += analysis.cost.value() / n as f64;
            row.schedulable += usize::from(analysis.cost.is_schedulable());
        }
    }
    Ok(rows)
}

/// Ablation 3: greedy vs exact DYN interference mode (pessimism and run
/// time), over `n` generated applications.
///
/// # Errors
///
/// Propagates generator errors.
pub fn dyn_mode_ablation(n: usize) -> Result<Vec<AblationRow>, ModelError> {
    let cfg = GeneratorConfig::paper(4);
    let variants = [
        ("greedy filled-cycles", DynAnalysisMode::Greedy),
        ("exact filled-cycles", DynAnalysisMode::Exact),
    ];
    let mut rows: Vec<AblationRow> = variants
        .iter()
        .map(|(label, _)| AblationRow {
            label: (*label).into(),
            avg_cost: 0.0,
            schedulable: 0,
            avg_time_us: 0.0,
        })
        .collect();
    for seed in 0..n as u64 {
        let generated = generate(&cfg, 9900 + seed)?;
        let bus = mid_dyn_bus(&generated);
        let sys = System {
            platform: generated.platform.clone(),
            app: generated.app.clone(),
            bus,
        };
        for (row, (_, mode)) in rows.iter_mut().zip(&variants) {
            let t0 = Instant::now();
            let analysis = analyse(
                &sys,
                &AnalysisConfig {
                    dyn_mode: *mode,
                    ..AnalysisConfig::default()
                },
            )?;
            row.avg_time_us += t0.elapsed().as_micros() as f64 / n as f64;
            // average DYN response instead of global cost: the knob only
            // touches dynamic messages
            let dyn_mean: f64 = {
                let msgs: Vec<_> = sys.app.messages_of_class(MessageClass::Dynamic).collect();
                msgs.iter()
                    .map(|&m| analysis.response(m).as_us())
                    .sum::<f64>()
                    / msgs.len().max(1) as f64
            };
            row.avg_cost += dyn_mean / n as f64;
            row.schedulable += usize::from(analysis.cost.is_schedulable());
        }
    }
    Ok(rows)
}

/// Renders one ablation as a table.
#[must_use]
pub fn render(title: &str, metric: &str, rows: &[AblationRow], n: usize) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                format!("{:+.1}", r.avg_cost),
                format!("{}/{n}", r.schedulable),
                format!("{:.0}", r.avg_time_us),
            ]
        })
        .collect();
    format!(
        "{title}\n{}",
        crate::render_table(&["variant", metric, "schedulable", "avg time (µs)"], &body)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn criticality_ids_no_worse_on_average() {
        let rows = frame_id_ablation(3).expect("ablation runs");
        assert_eq!(rows.len(), 2);
        // The BBC rule (Eq. 4) must not lose schedulable samples to an
        // arbitrary assignment, and its average cost must not lose by
        // more than sampling noise: on deeply-schedulable draws the two
        // assignments differ by <0.5% of |cost| either way, so an exact
        // `<=` flips with the RNG stream.
        assert!(
            rows[0].schedulable >= rows[1].schedulable,
            "criticality schedulable {} vs identity {}",
            rows[0].schedulable,
            rows[1].schedulable
        );
        assert!(
            rows[0].avg_cost <= rows[1].avg_cost + 0.01 * rows[1].avg_cost.abs() + 1e-6,
            "criticality {} vs identity {}",
            rows[0].avg_cost,
            rows[1].avg_cost
        );
    }

    #[test]
    fn exact_mode_is_slower_not_less_safe() {
        let rows = dyn_mode_ablation(2).expect("ablation runs");
        // exact packs interference at least as tightly: mean DYN WCRT >=
        assert!(rows[1].avg_cost >= rows[0].avg_cost - 1e-6);
    }

    #[test]
    fn render_includes_labels() {
        let rows = placement_ablation(1).expect("ablation runs");
        let text = render("t", "cost", &rows, 1);
        assert!(text.contains("asap"));
        assert!(text.contains("fps-aware"));
    }
}
