//! Factorial (grid) experiment engine over the v2 generator.
//!
//! [`run_grid`] generalises the single-axis [`sweep`](crate::sweep)
//! harness to the cartesian product of **any subset of the axes**
//! (node count × graph depth × gateway fraction × bus utilisation): a
//! [`GridConfig`] enumerates the product deterministically, every
//! `(point, seed)` pair becomes one work unit on the shared
//! work-stealing [`flexray_util::scoped_map`] pool — so
//! workers steal across *points*, not just across the seeds of one
//! point — and each completed point carries the per-algorithm
//! [`AlgoStats`] **and** the achieved generator statistics
//! ([`AggregatedGenStats`]: bus/CPU utilisation, relay and message
//! counts, graph-depth histogram) of its instances.
//!
//! The single-axis harness and fig9 are degenerate grids:
//! [`run_sweep`](crate::sweep::run_sweep) and
//! [`fig9::run_experiment`](crate::fig9::run_experiment) both delegate
//! here, with outputs bit-identical to their pre-grid implementations
//! (locked down by the differential suite in `tests/grid.rs`).
//!
//! # Determinism and ordering
//!
//! Points are numbered row-major over [`GridConfig::axes`] — the first
//! axis varies slowest, the last fastest — and application `i` of point
//! `p` is seeded by [`SeedPolicy`] (by default `seed0 + 1000·p + i`,
//! the sweep convention). Each unit is generated and optimised
//! independently and merged by index, so every deterministic output is
//! identical for any worker-thread count and any resume split; only
//! measured wall-clock times vary.
//!
//! # Streaming and resume
//!
//! [`run_grid_resumed`] emits every finished [`GridPoint`] to a sink
//! callback *in point order* while later points are still being solved
//! (a reorder buffer holds out-of-order completions), which is what the
//! `grid` binary streams to its JSON-lines report. Passing the points
//! recovered from a partial report skips exactly those points; the
//! engine re-emits them to the sink in place, so the final report of a
//! killed-and-resumed run equals a full run's.

use crate::sweep::{aggregate_algos, Algo, AlgoStats, SweepAxis};
use crate::workload::Workload;
use flexray_gen::{generate, AggregatedGenStats, GenStats, GeneratorConfig};
use flexray_model::ModelError;
use flexray_opt::{NetworkTopology, OptParams, OptResult, SaParams};
use flexray_util::scoped_consume;

/// How the base seed of a grid point is derived.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeedPolicy {
    /// `seed0 + 1000·point_index + app` — the sweep convention; a
    /// single-axis grid reproduces `run_sweep` seeds exactly.
    PointIndex,
    /// `seed0 + offsets[point_index] + app` — for harnesses whose seed
    /// schedule predates the grid engine (fig9 seeds by *node count*,
    /// not point index). Must hold one offset per grid point.
    PointOffsets(Vec<u64>),
}

/// A fixed, imported workload a grid runs instead of generated
/// scenarios — the ingestion path of the workgraph interchange format
/// ([`crate::workload`]).
#[derive(Debug, Clone)]
pub struct WorkloadSource {
    /// Display name (usually the file stem), carried in the report
    /// header alongside the workload fingerprint.
    pub name: String,
    /// The imported workload.
    pub workload: Workload,
}

/// Scale and scope of one factorial experiment.
#[derive(Debug, Clone)]
pub struct GridConfig {
    /// Base generator configuration the axes perturb.
    pub base: GeneratorConfig,
    /// The factorial axes; the grid is their cartesian product, first
    /// axis slowest. An empty list yields the single base point.
    pub axes: Vec<SweepAxis>,
    /// When set, the grid runs this imported workload instead of
    /// generating scenarios: the grid collapses to a single point
    /// (axes must be empty) and [`GridConfig::base`] contributes only
    /// its physical-layer parameters.
    pub workload: Option<WorkloadSource>,
    /// Applications (seeds) per grid point.
    pub apps_per_point: usize,
    /// Algorithms to run on every application.
    pub algos: Vec<Algo>,
    /// Optimiser parameters.
    pub params: OptParams,
    /// SA parameters (used when [`Algo::Sa`] is in the set).
    pub sa: SaParams,
    /// Base RNG seed, combined per [`GridConfig::seed_policy`].
    pub seed0: u64,
    /// Per-point seed derivation.
    pub seed_policy: SeedPolicy,
    /// Worker threads for the unit pool: `1` runs serially, `0` uses
    /// the available hardware parallelism.
    pub threads: usize,
}

impl Default for GridConfig {
    fn default() -> Self {
        GridConfig {
            base: GeneratorConfig::paper(5),
            axes: vec![
                SweepAxis::NodeCount(vec![2, 5]),
                SweepAxis::BusUtil(vec![0.2, 0.5]),
            ],
            workload: None,
            apps_per_point: 3,
            algos: Algo::ALL.to_vec(),
            params: OptParams::default(),
            sa: SaParams::default(),
            seed0: 42,
            seed_policy: SeedPolicy::PointIndex,
            threads: 0,
        }
    }
}

/// Fully derived description of one grid point: its label, its
/// axis coordinates and the generator configuration it runs.
#[derive(Debug, Clone)]
pub struct PointSpec {
    /// Flat point index in enumeration order.
    pub index: usize,
    /// Human-readable label, e.g. `nodes=5,busutil=0.20` (or `base`
    /// for an axis-less grid).
    pub label: String,
    /// `(axis name, value)` pairs in axis order.
    pub coords: Vec<(String, String)>,
    /// The generator configuration of the point.
    pub config: GeneratorConfig,
}

impl GridConfig {
    /// Number of grid points: the product of the axis lengths (1 for an
    /// axis-less grid).
    #[must_use]
    pub fn total_points(&self) -> usize {
        self.axes.iter().map(SweepAxis::len).product()
    }

    /// The effective worker-thread count: `threads`, with `0` resolved
    /// to the available hardware parallelism.
    #[must_use]
    pub fn worker_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.threads
        }
    }

    /// Index of the deviation reference within [`GridConfig::algos`]:
    /// SA when present, else none.
    #[must_use]
    pub fn reference(&self) -> Option<usize> {
        self.algos.iter().position(|&a| a == Algo::Sa)
    }

    /// Per-axis indices of flat point `p`, row-major (first axis
    /// slowest, last axis fastest).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[must_use]
    pub fn axis_indices(&self, p: usize) -> Vec<usize> {
        assert!(p < self.total_points(), "point {p} out of range");
        let mut indices = vec![0usize; self.axes.len()];
        let mut rem = p;
        for k in (0..self.axes.len()).rev() {
            let len = self.axes[k].len();
            indices[k] = rem % len;
            rem /= len;
        }
        indices
    }

    /// Derives grid point `p`: applies every axis to the base
    /// configuration and assembles the label and coordinates (in axis
    /// order).
    ///
    /// The axes are *applied* in a canonical order — node count, depth,
    /// bus utilisation, gateway fraction last — independent of the
    /// order they were configured in, so `nodes=… gateway=…` and
    /// `gateway=… nodes=…` derive the same topology (the gateway
    /// fallback picks the last node of the *final* cluster size, never
    /// of the base configuration's).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[must_use]
    pub fn point(&self, p: usize) -> PointSpec {
        let indices = self.axis_indices(p);
        let coords: Vec<(String, String)> = self
            .axes
            .iter()
            .zip(&indices)
            .map(|(axis, &idx)| (axis.name().to_owned(), axis.value(idx)))
            .collect();
        let apply_rank = |axis: &SweepAxis| match axis {
            SweepAxis::NodeCount(_) => 0usize,
            SweepAxis::GraphDepth(_) => 1,
            SweepAxis::BusUtil(_) => 2,
            SweepAxis::GatewayFraction(_) => 3,
            // last: the gateway fallback must see the final node count
            SweepAxis::Clusters(_) => 4,
        };
        let mut order: Vec<usize> = (0..self.axes.len()).collect();
        order.sort_by_key(|&k| apply_rank(&self.axes[k]));
        let mut config = self.base.clone();
        for &k in &order {
            let (_, next) = self.axes[k].configure(&config, indices[k]);
            config = next;
        }
        let label = if coords.is_empty() {
            "base".to_owned()
        } else {
            coords
                .iter()
                .map(|(name, value)| format!("{name}={value}"))
                .collect::<Vec<_>>()
                .join(",")
        };
        PointSpec {
            index: p,
            label,
            coords,
            config,
        }
    }

    /// Seed of application `app` of point `p` under the configured
    /// [`SeedPolicy`].
    #[must_use]
    pub fn seed(&self, p: usize, app: usize) -> u64 {
        let offset = match &self.seed_policy {
            SeedPolicy::PointIndex => 1000 * p as u64,
            SeedPolicy::PointOffsets(offsets) => offsets[p],
        };
        self.seed0 + offset + app as u64
    }

    /// Checks the grid for internal consistency (axes, algorithm set,
    /// seed policy); the per-point generator configurations are
    /// validated separately by [`run_grid`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] on an empty axis, a
    /// duplicate axis, an empty algorithm set, zero applications per
    /// point, or a seed-offset table of the wrong length.
    pub fn validate(&self) -> Result<(), ModelError> {
        let fail = |msg: String| Err(ModelError::InvalidConfig(msg));
        if self.workload.is_some() && !self.axes.is_empty() {
            return fail(format!(
                "a workload grid runs one fixed scenario; remove the {} configured axes",
                self.axes.len()
            ));
        }
        for (k, axis) in self.axes.iter().enumerate() {
            if axis.is_empty() {
                return fail(format!("grid axis {k} ({}) has no points", axis.name()));
            }
            if self.axes[..k].iter().any(|a| a.name() == axis.name()) {
                return fail(format!("duplicate grid axis '{}'", axis.name()));
            }
        }
        if self.algos.is_empty() {
            return fail("grid algorithm set is empty".into());
        }
        if self.apps_per_point == 0 {
            return fail("grid needs at least one application per point".into());
        }
        if let SeedPolicy::PointOffsets(offsets) = &self.seed_policy {
            if offsets.len() != self.total_points() {
                return fail(format!(
                    "seed policy holds {} offsets for {} grid points",
                    offsets.len(),
                    self.total_points()
                ));
            }
        }
        Ok(())
    }
}

/// All configured algorithms plus the achieved generator statistics on
/// one grid point.
#[derive(Debug, Clone, Default)]
pub struct GridPoint {
    /// Flat point index in enumeration order.
    pub index: usize,
    /// Point label, e.g. `nodes=5,busutil=0.20`.
    pub label: String,
    /// `(axis name, value)` coordinates in axis order.
    pub coords: Vec<(String, String)>,
    /// Per-algorithm stats, in [`GridConfig::algos`] order.
    pub algos: Vec<(String, AlgoStats)>,
    /// Achieved generator statistics, aggregated over the point's
    /// applications.
    pub gen: AggregatedGenStats,
}

impl GridPoint {
    /// Equality over the deterministic fields — everything except the
    /// measured wall-clock times — the invariant any parallel or
    /// resumed run must preserve against a serial full run.
    #[must_use]
    pub fn deterministic_eq(&self, other: &GridPoint) -> bool {
        self.index == other.index
            && self.label == other.label
            && self.coords == other.coords
            && self.gen == other.gen
            && self.algos.len() == other.algos.len()
            && self.algos.iter().zip(&other.algos).all(|(a, b)| {
                a.0 == b.0
                    && a.1.schedulable == b.1.schedulable
                    && a.1.total == b.1.total
                    && a.1.avg_deviation_pct == b.1.avg_deviation_pct
                    && a.1.avg_evaluations == b.1.avg_evaluations
            })
    }
}

/// One solved application: the per-algorithm optimiser results and the
/// achieved generator statistics of its instance.
pub type AppRun = (Vec<OptResult>, GenStats);

/// Generates and solves application `app` of grid point `spec` — the
/// single work unit of the grid engine, exposed so external dispatchers
/// (the `flexray-serve` daemon) can drive grid jobs on their own worker
/// pool. The seed follows [`GridConfig::seed`].
///
/// With a [`GridConfig::workload`] the fixed imported scenario is
/// solved instead of a generated one; either way a multi-cluster
/// topology routes through [`Algo::solve_on`].
///
/// # Errors
///
/// Propagates generation errors and multi-cluster topology errors
/// ([`ModelError`]).
pub fn solve_app(cfg: &GridConfig, spec: &PointSpec, app: usize) -> Result<AppRun, ModelError> {
    let (platform, application, topo, stats);
    if let Some(source) = &cfg.workload {
        let w = &source.workload;
        platform = w.platform.clone();
        application = w.app.clone();
        topo = w.topology();
        stats = GenStats {
            seed: cfg.seed(spec.index, app),
            relay_tasks: 0,
            workload: w.stats(&spec.config.phy)?,
        };
    } else {
        let generated = generate(&spec.config, cfg.seed(spec.index, app))?;
        stats = generated.stats(&spec.config.phy)?;
        topo = NetworkTopology {
            clusters: generated.clusters,
            node_cluster: generated.node_cluster,
            gateways: generated.gateways,
        };
        platform = generated.platform;
        application = generated.app;
    }
    let results = cfg
        .algos
        .iter()
        .map(|a| {
            a.solve_on(
                &platform,
                &application,
                &topo,
                spec.config.phy,
                &cfg.params,
                &cfg.sa,
            )
        })
        .collect::<Result<Vec<OptResult>, ModelError>>()?;
    Ok((results, stats))
}

impl GridPoint {
    /// Aggregates the solved applications of one grid point (in
    /// application order) into its [`GridPoint`] — the completion half
    /// of [`solve_app`], shared by [`run_grid_resumed`] and external
    /// dispatchers.
    #[must_use]
    pub fn from_apps(cfg: &GridConfig, spec: &PointSpec, apps: Vec<AppRun>) -> GridPoint {
        let names: Vec<&str> = cfg.algos.iter().map(|a| a.name()).collect();
        let mut per_app = Vec::with_capacity(apps.len());
        let mut gens = Vec::with_capacity(apps.len());
        for (results, stats) in apps {
            per_app.push(results);
            gens.push(stats);
        }
        GridPoint {
            index: spec.index,
            label: spec.label.clone(),
            coords: spec.coords.clone(),
            algos: aggregate_algos(&names, &per_app, cfg.reference()),
            gen: GenStats::aggregate(&gens),
        }
    }
}

/// Runs the whole grid and returns every point in enumeration order.
///
/// # Errors
///
/// See [`run_grid_resumed`].
pub fn run_grid(cfg: &GridConfig) -> Result<Vec<GridPoint>, ModelError> {
    run_grid_resumed(cfg, Vec::new(), |_| {})
}

/// Runs the grid, skipping the `done` points recovered from a partial
/// report, and emits every point (recovered or computed) to `sink` in
/// point order as soon as its prefix is complete.
///
/// Work units are `(point, application)` pairs fanned out over the
/// shared work-stealing pool, so long-running points overlap with their
/// neighbours instead of serialising the grid.
///
/// # Errors
///
/// Propagates grid validation ([`GridConfig::validate`]), per-point
/// generator-configuration validation, generation errors, and rejects
/// `done` points that do not belong to this grid (index out of range,
/// label mismatch, duplicate, or wrong algorithm set).
pub fn run_grid_resumed<S>(
    cfg: &GridConfig,
    done: Vec<GridPoint>,
    mut sink: S,
) -> Result<Vec<GridPoint>, ModelError>
where
    S: FnMut(&GridPoint),
{
    cfg.validate()?;
    let total = cfg.total_points();
    let specs: Vec<PointSpec> = (0..total).map(|p| cfg.point(p)).collect();
    for spec in &specs {
        spec.config.validate()?;
    }
    let names: Vec<&str> = cfg.algos.iter().map(|a| a.name()).collect();

    let mut slots: Vec<Option<GridPoint>> = vec![None; total];
    for point in done {
        if point.index >= total {
            return Err(ModelError::InvalidConfig(format!(
                "resume point {} out of range for a {total}-point grid",
                point.index
            )));
        }
        if point.label != specs[point.index].label {
            return Err(ModelError::InvalidConfig(format!(
                "resume point {} is labelled '{}' but this grid expects '{}'",
                point.index, point.label, specs[point.index].label
            )));
        }
        if point.algos.len() != names.len()
            || point
                .algos
                .iter()
                .zip(&names)
                .any(|((n, _), want)| n != want)
        {
            return Err(ModelError::InvalidConfig(format!(
                "resume point {} carries a different algorithm set",
                point.index
            )));
        }
        if slots[point.index].is_some() {
            return Err(ModelError::InvalidConfig(format!(
                "duplicate resume point {}",
                point.index
            )));
        }
        let index = point.index;
        slots[index] = Some(point);
    }

    let todo: Vec<usize> = (0..total).filter(|&p| slots[p].is_none()).collect();
    let units: Vec<(usize, usize)> = todo
        .iter()
        .flat_map(|&p| (0..cfg.apps_per_point).map(move |i| (p, i)))
        .collect();
    // position of each todo point in `todo`, for the completion buffers
    let mut todo_pos = vec![usize::MAX; total];
    for (k, &p) in todo.iter().enumerate() {
        todo_pos[p] = k;
    }
    let mut pending: Vec<Vec<Option<AppRun>>> = todo
        .iter()
        .map(|_| vec![None; cfg.apps_per_point])
        .collect();
    let mut next_emit = 0usize;
    let mut first_error: Option<ModelError> = None;

    // Emit the ready prefix (recovered points, then completed ones).
    let flush = |slots: &[Option<GridPoint>], next_emit: &mut usize, sink: &mut S| {
        while *next_emit < total {
            match &slots[*next_emit] {
                Some(point) => {
                    sink(point);
                    *next_emit += 1;
                }
                None => break,
            }
        }
    };
    flush(&slots, &mut next_emit, &mut sink);

    // A failed unit aborts the run: later units bail out immediately
    // instead of burning the rest of a long grid before the error is
    // finally reported. Units already in flight still finish.
    let abort = std::sync::atomic::AtomicBool::new(false);
    let abort = &abort;
    let solve_unit = |u: usize| -> Result<AppRun, ModelError> {
        if abort.load(std::sync::atomic::Ordering::Relaxed) {
            return Err(ModelError::InvalidConfig(
                "grid run aborted after an earlier unit failed".into(),
            ));
        }
        let (p, i) = units[u];
        solve_app(cfg, &specs[p], i)
    };

    scoped_consume(
        units.len(),
        cfg.worker_threads(),
        solve_unit,
        |u, outcome| {
            let (p, i) = units[u];
            match outcome {
                Err(e) => {
                    abort.store(true, std::sync::atomic::Ordering::Relaxed);
                    // the first consumed error is a real one: abort
                    // placeholders only exist after the flag is set
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
                Ok(run) => {
                    let apps = &mut pending[todo_pos[p]];
                    apps[i] = Some(run);
                    if apps.iter().all(Option::is_some) {
                        let runs: Vec<AppRun> = apps
                            .iter_mut()
                            .map(|app| app.take().expect("checked above"))
                            .collect();
                        slots[p] = Some(GridPoint::from_apps(cfg, &specs[p], runs));
                        flush(&slots, &mut next_emit, &mut sink);
                    }
                }
            }
        },
    );

    if let Some(e) = first_error {
        return Err(e);
    }
    Ok(slots
        .into_iter()
        .map(|slot| slot.expect("every grid point is recovered or computed"))
        .collect())
}

/// Renders a grid as one text table: per point and algorithm the
/// schedulability, deviation, timing and evaluation figures, plus the
/// point's achieved generator stats (mean bus/CPU utilisation, relay
/// and message counts). `reference` names the deviation reference
/// ([`GridConfig::reference`]); without one the deviation column is
/// marked absent.
#[must_use]
pub fn render(reference: Option<&str>, points: &[GridPoint]) -> String {
    let mut rows = Vec::new();
    for point in points {
        for (name, s) in &point.algos {
            rows.push(vec![
                point.label.clone(),
                name.clone(),
                format!("{}/{}", s.schedulable, s.total),
                if reference.is_some() {
                    format!("{:+.2}", s.avg_deviation_pct)
                } else {
                    "-".to_owned()
                },
                format!("{:.3}", s.avg_time_s),
                format!("{:.0}", s.avg_evaluations),
                format!("{:.3}", point.gen.avg_bus_util),
                format!("{:.3}", point.gen.node_util.mean),
                format!("{:.1}", point.gen.avg_relay_tasks),
                format!(
                    "{:.1}",
                    point.gen.avg_st_messages + point.gen.avg_dyn_messages
                ),
            ]);
        }
    }
    let dev_header = reference.map_or("avg %dev (no ref)".to_owned(), |r| {
        format!("avg %dev vs {r}")
    });
    format!(
        "Factorial grid\n{}",
        crate::render_table(
            &[
                "point",
                "algorithm",
                "schedulable",
                &dev_header,
                "avg time (s)",
                "avg analyses",
                "bus util",
                "cpu util",
                "relays",
                "messages",
            ],
            &rows
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexray_opt::{OptParams, SaParams};

    fn fast_grid(axes: Vec<SweepAxis>) -> GridConfig {
        GridConfig {
            base: GeneratorConfig::small(3),
            axes,
            apps_per_point: 2,
            algos: vec![Algo::Bbc, Algo::Sa],
            params: OptParams {
                max_extra_slots: 2,
                max_slot_len_steps: 3,
                max_dyn_candidates: 24,
                dyn_step: 32,
                ..OptParams::default()
            },
            sa: SaParams {
                iterations: 25,
                ..SaParams::default()
            },
            seed0: 7,
            seed_policy: SeedPolicy::PointIndex,
            threads: 1,
            workload: None,
        }
    }

    #[test]
    fn enumeration_is_row_major() {
        let cfg = fast_grid(vec![
            SweepAxis::NodeCount(vec![2, 3]),
            SweepAxis::BusUtil(vec![0.2, 0.4, 0.6]),
        ]);
        assert_eq!(cfg.total_points(), 6);
        let labels: Vec<String> = (0..6).map(|p| cfg.point(p).label).collect();
        assert_eq!(
            labels,
            vec![
                "nodes=2,busutil=0.20",
                "nodes=2,busutil=0.40",
                "nodes=2,busutil=0.60",
                "nodes=3,busutil=0.20",
                "nodes=3,busutil=0.40",
                "nodes=3,busutil=0.60",
            ]
        );
        assert_eq!(cfg.axis_indices(4), vec![1, 1]);
    }

    #[test]
    fn axis_less_grid_is_the_single_base_point() {
        let cfg = fast_grid(vec![]);
        assert_eq!(cfg.total_points(), 1);
        assert_eq!(cfg.point(0).label, "base");
        let points = run_grid(&cfg).expect("runs");
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].gen.apps, 2);
    }

    #[test]
    fn derived_configs_are_independent_of_axis_order() {
        let ab = fast_grid(vec![
            SweepAxis::GatewayFraction(vec![0.0, 0.5]),
            SweepAxis::NodeCount(vec![2, 10]),
        ]);
        let ba = fast_grid(vec![
            SweepAxis::NodeCount(vec![2, 10]),
            SweepAxis::GatewayFraction(vec![0.0, 0.5]),
        ]);
        // match points across the two grids by their coordinate sets
        for p in 0..ab.total_points() {
            let spec = ab.point(p);
            let mut want = spec.coords.clone();
            want.sort();
            let partner = (0..ba.total_points())
                .map(|q| ba.point(q))
                .find(|s| {
                    let mut have = s.coords.clone();
                    have.sort();
                    have == want
                })
                .expect("same coordinate set exists in both grids");
            assert_eq!(
                spec.config, partner.config,
                "axis order changed the derived config at {want:?}"
            );
        }
        // in particular, the gateway fallback must target the final
        // cluster's last node, not the base configuration's
        let corner = ab.point(3); // gateway=0.50, nodes=10
        assert_eq!(corner.config.n_nodes, 10);
        assert_eq!(corner.config.gateways, vec![9]);
    }

    #[test]
    fn seeds_follow_the_policy() {
        let mut cfg = fast_grid(vec![SweepAxis::NodeCount(vec![2, 3])]);
        assert_eq!(cfg.seed(1, 2), 7 + 1000 + 2);
        cfg.seed_policy = SeedPolicy::PointOffsets(vec![5000, 9000]);
        assert_eq!(cfg.seed(1, 2), 7 + 9000 + 2);
    }

    #[test]
    fn validate_rejects_inconsistent_grids() {
        let mut cfg = fast_grid(vec![SweepAxis::NodeCount(vec![])]);
        assert!(cfg.validate().is_err(), "empty axis");
        cfg = fast_grid(vec![
            SweepAxis::NodeCount(vec![2]),
            SweepAxis::NodeCount(vec![3]),
        ]);
        assert!(cfg.validate().is_err(), "duplicate axis");
        cfg = fast_grid(vec![SweepAxis::NodeCount(vec![2])]);
        cfg.algos.clear();
        assert!(cfg.validate().is_err(), "no algorithms");
        cfg = fast_grid(vec![SweepAxis::NodeCount(vec![2])]);
        cfg.apps_per_point = 0;
        assert!(cfg.validate().is_err(), "no applications");
        cfg = fast_grid(vec![SweepAxis::NodeCount(vec![2, 3])]);
        cfg.seed_policy = SeedPolicy::PointOffsets(vec![0]);
        assert!(cfg.validate().is_err(), "offset table too short");
    }

    #[test]
    fn tiny_grid_runs_and_streams_in_order() {
        let cfg = GridConfig {
            threads: 4,
            ..fast_grid(vec![
                SweepAxis::NodeCount(vec![2, 3]),
                SweepAxis::GatewayFraction(vec![0.0, 1.0]),
            ])
        };
        let mut streamed = Vec::new();
        let points =
            run_grid_resumed(&cfg, Vec::new(), |p| streamed.push(p.index)).expect("grid runs");
        assert_eq!(points.len(), 4);
        assert_eq!(streamed, vec![0, 1, 2, 3], "sink sees points in order");
        for (p, point) in points.iter().enumerate() {
            assert_eq!(point.index, p);
            assert_eq!(point.algos.len(), 2);
            assert_eq!(point.gen.apps, 2);
            assert!(point.gen.avg_bus_util > 0.0);
            assert!(point.gen.node_util.max > 0.0);
            assert!(!point.gen.depth_histogram.is_empty());
        }
        // gateway=0.00 points carry no relays; with 2 nodes the only
        // gateway is always an endpoint (direct fallback), so relays
        // can only appear on the 3-node full-gateway point
        assert_eq!(points[0].gen.avg_relay_tasks, 0.0);
        assert_eq!(points[2].gen.avg_relay_tasks, 0.0);
        assert!(points[3].gen.avg_relay_tasks > 0.0);
        let text = render(Some("SA"), &points);
        assert!(text.contains("nodes=3,gateway=1.00"));
        assert!(text.contains("bus util"));
    }

    #[test]
    fn parallel_grid_equals_serial() {
        let serial = fast_grid(vec![
            SweepAxis::GraphDepth(vec![3, 5]),
            SweepAxis::BusUtil(vec![0.2, 0.4]),
        ]);
        let parallel = GridConfig {
            threads: 4,
            ..serial.clone()
        };
        let s = run_grid(&serial).expect("serial");
        let p = run_grid(&parallel).expect("parallel");
        assert_eq!(s.len(), p.len());
        for (a, b) in s.iter().zip(&p) {
            assert!(a.deterministic_eq(b), "{a:?} vs {b:?} diverged");
        }
    }

    #[test]
    fn resume_rejects_foreign_points() {
        let cfg = fast_grid(vec![SweepAxis::NodeCount(vec![2, 3])]);
        let full = run_grid(&cfg).expect("full");
        // out of range
        let mut bad = full[0].clone();
        bad.index = 7;
        assert!(run_grid_resumed(&cfg, vec![bad], |_| {}).is_err());
        // label mismatch
        let mut bad = full[0].clone();
        bad.label = "nodes=9".into();
        assert!(run_grid_resumed(&cfg, vec![bad], |_| {}).is_err());
        // duplicate
        assert!(run_grid_resumed(&cfg, vec![full[0].clone(), full[0].clone()], |_| {}).is_err());
        // different algorithm set
        let mut bad = full[0].clone();
        bad.algos.pop();
        assert!(run_grid_resumed(&cfg, vec![bad], |_| {}).is_err());
    }
}
