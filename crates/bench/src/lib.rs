//! # flexray-bench
//!
//! Experiment harnesses regenerating every figure of the DATE'07
//! evaluation:
//!
//! * [`fig3`] — ST-segment optimisation example (R3 = 16/12/10);
//! * [`fig4`] — DYN-segment optimisation example (R2 = 37/35/21);
//! * [`fig7`] — response time vs dynamic-segment length (U-shape);
//! * [`fig9`] — BBC/OBCCF/OBCEE/SA comparison over synthetic sets;
//! * [`sweep`] — generic single-axis sweeps over the v2 generator
//!   (node count beyond 7, graph depth, gateway traffic, bus
//!   utilisation), generalising `fig9`;
//! * [`grid`] — the factorial (cartesian-product) experiment engine
//!   behind `sweep` and `fig9`, with per-point generator statistics
//!   and a streaming, resumable JSON-lines/CSV [`report`];
//! * [`fuzz`] — a grid-driven divergence-hunting campaign that fuzzes
//!   the simulator's execution order of simultaneous events across
//!   generator corners and audits every run against the analysis;
//! * [`report`] — the schema-versioned grid report codec;
//! * [`workload`] — the workgraph interchange format: hand-written
//!   (or exported) benchmark scenarios the grid, sweep and serve
//!   harnesses can ingest instead of generating;
//! * [`cruise`] — the vehicle cruise-controller case study;
//! * [`ablation`] — ablations of the reproduction's design choices.
//!
//! Each module has a `run`-style entry point used by the corresponding
//! binary (`cargo run -p flexray-bench --bin fig3`, ...) and asserts the
//! paper's qualitative claims in its tests.

#![warn(missing_docs)]
#![warn(clippy::all)]
#![deny(deprecated)]

pub mod ablation;
pub mod cruise;
pub mod fig3;
pub mod fig4;
pub mod fig7;
pub mod fig9;
pub mod fuzz;
pub mod grid;
pub mod report;
pub mod sweep;
mod table;
pub mod workload;

pub use table::render_table;
