//! Plain-text table rendering for the experiment harnesses.

/// Renders a padded text table: header row, separator, data rows.
///
/// # Examples
///
/// ```
/// use flexray_bench::render_table;
///
/// let t = render_table(
///     &["algo", "cost"],
///     &[vec!["BBC".into(), "12.0".into()], vec!["OBC".into(), "-3.5".into()]],
/// );
/// assert!(t.contains("BBC"));
/// assert!(t.lines().count() >= 4);
/// ```
#[must_use]
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let n_cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(n_cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:>width$}", width = widths[i]));
        }
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|s| (*s).to_owned()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (n_cols.saturating_sub(1));
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with('-'));
        // all rows same width
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn empty_rows_render_header_only() {
        let t = render_table(&["x"], &[]);
        assert_eq!(t.lines().count(), 2);
    }
}
