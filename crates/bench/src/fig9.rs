//! Fig. 9 — evaluation of the bus optimisation algorithms.
//!
//! Synthetic systems of 2–7 nodes (sets of applications per node count)
//! are optimised with BBC, OBCCF, OBCEE and SA. The left chart of Fig. 9
//! reports the average percentage deviation of the cost function from
//! the SA reference; the right chart reports run times.
//!
//! Expected shape (the paper's claims): BBC runs in near-zero time but
//! stops finding schedulable configurations as systems grow; OBCCF and
//! OBCEE stay within a few percent of SA; OBCCF is much faster than
//! OBCEE.

use flexray_gen::{generate, GeneratorConfig};
use flexray_model::{ModelError, PhyParams};
use flexray_opt::{bbc, obc, simulated_annealing, DynSearch, OptParams, OptResult, SaParams};

/// Scale of the Fig. 9 experiment.
#[derive(Debug, Clone)]
pub struct Fig9Config {
    /// Node counts to sweep (the paper generates sets for 2–7 and plots
    /// 2–5).
    pub node_counts: Vec<usize>,
    /// Applications per node count (the paper uses 25).
    pub apps_per_point: usize,
    /// Optimiser parameters.
    pub params: OptParams,
    /// SA baseline parameters.
    pub sa: SaParams,
    /// Base RNG seed; application `i` of point `n` uses
    /// `seed0 + 1000·n + i`.
    pub seed0: u64,
}

impl Default for Fig9Config {
    fn default() -> Self {
        Fig9Config {
            node_counts: vec![2, 3, 4, 5],
            apps_per_point: 5,
            params: OptParams::default(),
            sa: SaParams::default(),
            seed0: 42,
        }
    }
}

/// Aggregated outcome of one algorithm on one node-count set.
#[derive(Debug, Clone, Default)]
pub struct AlgoStats {
    /// Number of applications solved schedulably.
    pub schedulable: usize,
    /// Applications evaluated.
    pub total: usize,
    /// Mean percentage deviation of the cost from SA, over applications
    /// where both the algorithm and SA found schedulable configurations.
    pub avg_deviation_pct: f64,
    /// Mean wall-clock seconds per application.
    pub avg_time_s: f64,
    /// Mean number of full analyses per application.
    pub avg_evaluations: f64,
}

/// All four algorithms on one node-count set.
#[derive(Debug, Clone, Default)]
pub struct PointStats {
    /// Node count of the set.
    pub n_nodes: usize,
    /// Per-algorithm stats in order BBC, OBCCF, OBCEE, SA.
    pub algos: Vec<(String, AlgoStats)>,
}

/// Percentage deviation of a cost from the SA reference.
fn deviation_pct(alg: &OptResult, sa: &OptResult) -> Option<f64> {
    if !(alg.is_schedulable() && sa.is_schedulable()) {
        return None;
    }
    let a = alg.cost.value();
    let s = sa.cost.value();
    if s.abs() < f64::EPSILON {
        return None;
    }
    // costs are negative laxities: less negative = worse
    Some((a - s) / s.abs() * 100.0)
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates generator errors.
pub fn run_experiment(cfg: &Fig9Config) -> Result<Vec<PointStats>, ModelError> {
    let phy = PhyParams::bmw_like();
    let mut out = Vec::new();
    for &n in &cfg.node_counts {
        let gen_cfg = GeneratorConfig::paper(n);
        let mut results: Vec<Vec<OptResult>> = vec![Vec::new(); 4];
        for i in 0..cfg.apps_per_point {
            let seed = cfg.seed0 + 1000 * n as u64 + i as u64;
            let generated = generate(&gen_cfg, seed)?;
            let (p, a) = (&generated.platform, &generated.app);
            results[0].push(bbc(p, a, phy, &cfg.params));
            results[1].push(obc(p, a, phy, &cfg.params, DynSearch::CurveFit));
            results[2].push(obc(p, a, phy, &cfg.params, DynSearch::Exhaustive));
            results[3].push(simulated_annealing(p, a, phy, &cfg.params, &cfg.sa));
        }
        let names = ["BBC", "OBCCF", "OBCEE", "SA"];
        let sa_results = results[3].clone();
        let algos = names
            .iter()
            .zip(&results)
            .map(|(name, rs)| {
                let mut stats = AlgoStats {
                    total: rs.len(),
                    ..AlgoStats::default()
                };
                let mut devs = Vec::new();
                for (r, sa_r) in rs.iter().zip(&sa_results) {
                    if r.is_schedulable() {
                        stats.schedulable += 1;
                    }
                    if let Some(d) = deviation_pct(r, sa_r) {
                        devs.push(d);
                    }
                    stats.avg_time_s += r.elapsed.as_secs_f64() / rs.len() as f64;
                    stats.avg_evaluations += r.evaluations as f64 / rs.len() as f64;
                }
                if !devs.is_empty() {
                    stats.avg_deviation_pct = devs.iter().sum::<f64>() / devs.len() as f64;
                }
                ((*name).to_owned(), stats)
            })
            .collect();
        out.push(PointStats { n_nodes: n, algos });
    }
    Ok(out)
}

/// Renders the two Fig. 9 panels as text tables.
#[must_use]
pub fn render(points: &[PointStats]) -> String {
    let mut rows_left = Vec::new();
    let mut rows_right = Vec::new();
    for p in points {
        for (name, s) in &p.algos {
            rows_left.push(vec![
                p.n_nodes.to_string(),
                name.clone(),
                format!("{}/{}", s.schedulable, s.total),
                format!("{:+.2}", s.avg_deviation_pct),
            ]);
            rows_right.push(vec![
                p.n_nodes.to_string(),
                name.clone(),
                format!("{:.3}", s.avg_time_s),
                format!("{:.0}", s.avg_evaluations),
            ]);
        }
    }
    format!(
        "Fig. 9 (left): schedulability degree (% deviation vs SA)\n{}\n\
         Fig. 9 (right): run times\n{}",
        crate::render_table(
            &["nodes", "algorithm", "schedulable", "avg %dev vs SA"],
            &rows_left
        ),
        crate::render_table(
            &["nodes", "algorithm", "avg time (s)", "avg analyses"],
            &rows_right
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn fake(schedulable: bool, value: f64) -> OptResult {
        OptResult {
            bus: flexray_model::BusConfig::new(PhyParams::bmw_like()),
            cost: if schedulable {
                flexray_analysis::Cost { f1: 0.0, f2: value }
            } else {
                flexray_analysis::Cost {
                    f1: value,
                    f2: value,
                }
            },
            evaluations: 1,
            elapsed: Duration::from_millis(1),
        }
    }

    #[test]
    fn deviation_requires_both_schedulable() {
        let sa = fake(true, -100.0);
        assert_eq!(deviation_pct(&fake(false, 5.0), &sa), None);
        // -96 laxity vs -100: 4% worse
        let d = deviation_pct(&fake(true, -96.0), &sa).expect("defined");
        assert!((d - 4.0).abs() < 1e-9);
    }

    #[test]
    fn tiny_experiment_runs_end_to_end() {
        let cfg = Fig9Config {
            node_counts: vec![2],
            apps_per_point: 1,
            params: OptParams {
                max_extra_slots: 2,
                max_slot_len_steps: 3,
                max_dyn_candidates: 24,
                dyn_step: 32,
                ..OptParams::default()
            },
            sa: flexray_opt::SaParams {
                iterations: 30,
                ..flexray_opt::SaParams::default()
            },
            seed0: 7,
        };
        let points = run_experiment(&cfg).expect("experiment runs");
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].algos.len(), 4);
        let text = render(&points);
        assert!(text.contains("OBCCF"));
        assert!(text.contains("BBC"));
    }
}
