//! Fig. 9 — evaluation of the bus optimisation algorithms.
//!
//! Synthetic systems of 2–7 nodes (sets of applications per node count)
//! are optimised with BBC, OBCCF, OBCEE and SA. The left chart of Fig. 9
//! reports the average percentage deviation of the cost function from
//! the SA reference; the right chart reports run times.
//!
//! Expected shape (the paper's claims): BBC runs in near-zero time but
//! stops finding schedulable configurations as systems grow; OBCCF and
//! OBCEE stay within a few percent of SA; OBCCF is much faster than
//! OBCEE.
//!
//! # Parallelism
//!
//! The applications of one point are embarrassingly parallel: each is
//! generated from its own seed (`seed0 + 1000·n + i`) and optimised
//! independently. [`run_experiment`] fans the per-seed loop out over
//! [`Fig9Config::threads`] scoped worker threads (the
//! [`scoped_map`](crate::sweep::scoped_map) pool shared with the generic
//! [`sweep`](crate::sweep) harness, no external deps) and collects
//! results by application index, so every deterministic output — costs,
//! chosen configurations, schedulability counts, deviations, evaluation
//! counts — is bit-identical to a serial run (`threads = 1`). Only the
//! measured wall-clock times differ, as they do between any two runs.

use crate::sweep::{aggregate_algos, scoped_map, Algo};
use flexray_gen::{generate, GeneratorConfig};
use flexray_model::{ModelError, PhyParams};
use flexray_opt::{OptParams, OptResult, SaParams};

pub use crate::sweep::AlgoStats;

/// Scale of the Fig. 9 experiment.
#[derive(Debug, Clone)]
pub struct Fig9Config {
    /// Node counts to sweep (the paper generates sets for 2–7 and plots
    /// 2–5).
    pub node_counts: Vec<usize>,
    /// Applications per node count (the paper uses 25).
    pub apps_per_point: usize,
    /// Optimiser parameters.
    pub params: OptParams,
    /// SA baseline parameters.
    pub sa: SaParams,
    /// Base RNG seed; application `i` of point `n` uses
    /// `seed0 + 1000·n + i`.
    pub seed0: u64,
    /// Worker threads for the per-seed loop: `1` runs serially, `0`
    /// uses the available hardware parallelism.
    pub threads: usize,
}

impl Default for Fig9Config {
    fn default() -> Self {
        Fig9Config {
            node_counts: vec![2, 3, 4, 5],
            apps_per_point: 5,
            params: OptParams::default(),
            sa: SaParams::default(),
            seed0: 42,
            threads: 0,
        }
    }
}

impl Fig9Config {
    /// The effective worker-thread count: `threads`, with `0` resolved
    /// to the available hardware parallelism.
    #[must_use]
    pub fn worker_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.threads
        }
    }
}

/// All four algorithms on one node-count set.
#[derive(Debug, Clone, Default)]
pub struct PointStats {
    /// Node count of the set.
    pub n_nodes: usize,
    /// Per-algorithm stats in order BBC, OBCCF, OBCEE, SA.
    pub algos: Vec<(String, AlgoStats)>,
}

impl PointStats {
    /// Equality over the deterministic fields (everything except the
    /// measured wall-clock times) — the invariant the parallel runner
    /// must preserve against a serial run.
    #[must_use]
    pub fn deterministic_eq(&self, other: &PointStats) -> bool {
        self.n_nodes == other.n_nodes
            && self.algos.len() == other.algos.len()
            && self.algos.iter().zip(&other.algos).all(|(a, b)| {
                a.0 == b.0
                    && a.1.schedulable == b.1.schedulable
                    && a.1.total == b.1.total
                    && a.1.avg_deviation_pct == b.1.avg_deviation_pct
                    && a.1.avg_evaluations == b.1.avg_evaluations
            })
    }
}

/// Generates and optimises application `i` of point `n` with all four
/// algorithms — the unit of work distributed over the worker threads.
fn solve_app(
    cfg: &Fig9Config,
    gen_cfg: &GeneratorConfig,
    phy: PhyParams,
    n: usize,
    i: usize,
) -> Result<Vec<OptResult>, ModelError> {
    let seed = cfg.seed0 + 1000 * n as u64 + i as u64;
    let generated = generate(gen_cfg, seed)?;
    Ok(Algo::ALL
        .iter()
        .map(|a| {
            a.solve(
                &generated.platform,
                &generated.app,
                phy,
                &cfg.params,
                &cfg.sa,
            )
        })
        .collect())
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates generator errors.
pub fn run_experiment(cfg: &Fig9Config) -> Result<Vec<PointStats>, ModelError> {
    let phy = PhyParams::bmw_like();
    let names: Vec<&str> = Algo::ALL.iter().map(|a| a.name()).collect();
    // SA is the deviation reference, as in the paper.
    let sa_idx = Algo::ALL.iter().position(|&a| a == Algo::Sa);
    let mut out = Vec::new();
    for &n in &cfg.node_counts {
        let gen_cfg = GeneratorConfig::paper(n);
        let per_app: Vec<Vec<OptResult>> =
            scoped_map(cfg.apps_per_point, cfg.worker_threads(), |i| {
                solve_app(cfg, &gen_cfg, phy, n, i)
            })
            .into_iter()
            .collect::<Result<_, _>>()?;
        let algos = aggregate_algos(&names, &per_app, sa_idx);
        out.push(PointStats { n_nodes: n, algos });
    }
    Ok(out)
}

/// Renders the two Fig. 9 panels as text tables.
#[must_use]
pub fn render(points: &[PointStats]) -> String {
    let mut rows_left = Vec::new();
    let mut rows_right = Vec::new();
    for p in points {
        for (name, s) in &p.algos {
            rows_left.push(vec![
                p.n_nodes.to_string(),
                name.clone(),
                format!("{}/{}", s.schedulable, s.total),
                format!("{:+.2}", s.avg_deviation_pct),
            ]);
            rows_right.push(vec![
                p.n_nodes.to_string(),
                name.clone(),
                format!("{:.3}", s.avg_time_s),
                format!("{:.0}", s.avg_evaluations),
            ]);
        }
    }
    format!(
        "Fig. 9 (left): schedulability degree (% deviation vs SA)\n{}\n\
         Fig. 9 (right): run times\n{}",
        crate::render_table(
            &["nodes", "algorithm", "schedulable", "avg %dev vs SA"],
            &rows_left
        ),
        crate::render_table(
            &["nodes", "algorithm", "avg time (s)", "avg analyses"],
            &rows_right
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cfg() -> Fig9Config {
        Fig9Config {
            node_counts: vec![2],
            apps_per_point: 1,
            params: OptParams {
                max_extra_slots: 2,
                max_slot_len_steps: 3,
                max_dyn_candidates: 24,
                dyn_step: 32,
                ..OptParams::default()
            },
            sa: flexray_opt::SaParams {
                iterations: 30,
                ..flexray_opt::SaParams::default()
            },
            seed0: 7,
            threads: 1,
        }
    }

    #[test]
    fn tiny_experiment_runs_end_to_end() {
        let cfg = fast_cfg();
        let points = run_experiment(&cfg).expect("experiment runs");
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].algos.len(), 4);
        let text = render(&points);
        assert!(text.contains("OBCCF"));
        assert!(text.contains("BBC"));
    }

    #[test]
    fn parallel_equals_serial() {
        let serial_cfg = Fig9Config {
            apps_per_point: 4,
            node_counts: vec![2, 3],
            ..fast_cfg()
        };
        let parallel_cfg = Fig9Config {
            threads: 4,
            ..serial_cfg.clone()
        };
        let serial = run_experiment(&serial_cfg).expect("serial run");
        let parallel = run_experiment(&parallel_cfg).expect("parallel run");
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert!(
                s.deterministic_eq(p),
                "serial {s:?} vs parallel {p:?} diverged"
            );
        }
    }

    #[test]
    fn worker_threads_resolution() {
        let mut cfg = fast_cfg();
        cfg.threads = 3;
        assert_eq!(cfg.worker_threads(), 3);
        cfg.threads = 0;
        assert!(cfg.worker_threads() >= 1);
    }
}
