//! Fig. 9 — evaluation of the bus optimisation algorithms.
//!
//! Synthetic systems of 2–7 nodes (sets of applications per node count)
//! are optimised with BBC, OBCCF, OBCEE and SA. The left chart of Fig. 9
//! reports the average percentage deviation of the cost function from
//! the SA reference; the right chart reports run times.
//!
//! Expected shape (the paper's claims): BBC runs in near-zero time but
//! stops finding schedulable configurations as systems grow; OBCCF and
//! OBCEE stay within a few percent of SA; OBCCF is much faster than
//! OBCEE.
//!
//! # Parallelism
//!
//! The applications of one point are embarrassingly parallel: each is
//! generated from its own seed (`seed0 + 1000·n + i`) and optimised
//! independently. [`run_experiment`] is a degenerate node-count grid on
//! the factorial [`grid`](crate::grid) engine: every `(point, seed)`
//! pair is one unit on the shared work-stealing
//! [`flexray_util::scoped_map`] pool
//! ([`Fig9Config::threads`] workers, no external deps), and results
//! merge by index — so every deterministic output — costs, chosen
//! configurations, schedulability counts, deviations, evaluation
//! counts — is bit-identical to a serial run (`threads = 1`). Only the
//! measured wall-clock times differ, as they do between any two runs.

use crate::sweep::Algo;
use flexray_gen::GeneratorConfig;
use flexray_model::ModelError;
use flexray_opt::{OptParams, SaParams};

pub use crate::sweep::AlgoStats;

/// Scale of the Fig. 9 experiment.
#[derive(Debug, Clone)]
pub struct Fig9Config {
    /// Node counts to sweep (the paper generates sets for 2–7 and plots
    /// 2–5).
    pub node_counts: Vec<usize>,
    /// Applications per node count (the paper uses 25).
    pub apps_per_point: usize,
    /// Optimiser parameters.
    pub params: OptParams,
    /// SA baseline parameters.
    pub sa: SaParams,
    /// Base RNG seed; application `i` of point `n` uses
    /// `seed0 + 1000·n + i`.
    pub seed0: u64,
    /// Worker threads for the per-seed loop: `1` runs serially, `0`
    /// uses the available hardware parallelism.
    pub threads: usize,
}

impl Default for Fig9Config {
    fn default() -> Self {
        Fig9Config {
            node_counts: vec![2, 3, 4, 5],
            apps_per_point: 5,
            params: OptParams::default(),
            sa: SaParams::default(),
            seed0: 42,
            threads: 0,
        }
    }
}

impl Fig9Config {
    /// The effective worker-thread count: `threads`, with `0` resolved
    /// to the available hardware parallelism.
    #[must_use]
    pub fn worker_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.threads
        }
    }
}

/// All four algorithms on one node-count set.
#[derive(Debug, Clone, Default)]
pub struct PointStats {
    /// Node count of the set.
    pub n_nodes: usize,
    /// Per-algorithm stats in order BBC, OBCCF, OBCEE, SA.
    pub algos: Vec<(String, AlgoStats)>,
}

impl PointStats {
    /// Equality over the deterministic fields (everything except the
    /// measured wall-clock times) — the invariant the parallel runner
    /// must preserve against a serial run.
    #[must_use]
    pub fn deterministic_eq(&self, other: &PointStats) -> bool {
        self.n_nodes == other.n_nodes
            && self.algos.len() == other.algos.len()
            && self.algos.iter().zip(&other.algos).all(|(a, b)| {
                a.0 == b.0
                    && a.1.schedulable == b.1.schedulable
                    && a.1.total == b.1.total
                    && a.1.avg_deviation_pct == b.1.avg_deviation_pct
                    && a.1.avg_evaluations == b.1.avg_evaluations
            })
    }
}

/// Runs the experiment: a degenerate one-axis node-count
/// [`grid`](crate::grid) over the paper configuration. The grid's
/// [`SeedPolicy::PointOffsets`](crate::grid::SeedPolicy) reproduces
/// fig9's historical seed schedule (`seed0 + 1000·n + i`, seeded by
/// *node count* rather than point index), so the deterministic output
/// is bit-identical to the pre-grid implementation (locked down by the
/// differential suite in `tests/grid.rs`).
///
/// # Errors
///
/// Propagates generator errors.
pub fn run_experiment(cfg: &Fig9Config) -> Result<Vec<PointStats>, ModelError> {
    if cfg.node_counts.is_empty() {
        return Ok(Vec::new());
    }
    // paper(n) differs from any other paper(k) only in the node count,
    // so the node-count axis over a paper base reproduces it exactly;
    // paper phy is the bmw_like layer fig9 always used.
    let grid = crate::grid::GridConfig {
        base: GeneratorConfig::paper(2),
        axes: vec![crate::sweep::SweepAxis::NodeCount(cfg.node_counts.clone())],
        apps_per_point: cfg.apps_per_point,
        algos: Algo::ALL.to_vec(),
        params: cfg.params.clone(),
        sa: cfg.sa,
        seed0: cfg.seed0,
        seed_policy: crate::grid::SeedPolicy::PointOffsets(
            cfg.node_counts.iter().map(|&n| 1000 * n as u64).collect(),
        ),
        threads: cfg.threads,
        workload: None,
    };
    Ok(crate::grid::run_grid(&grid)?
        .into_iter()
        .zip(&cfg.node_counts)
        .map(|(p, &n)| PointStats {
            n_nodes: n,
            algos: p.algos,
        })
        .collect())
}

/// Renders the two Fig. 9 panels as text tables.
#[must_use]
pub fn render(points: &[PointStats]) -> String {
    let mut rows_left = Vec::new();
    let mut rows_right = Vec::new();
    for p in points {
        for (name, s) in &p.algos {
            rows_left.push(vec![
                p.n_nodes.to_string(),
                name.clone(),
                format!("{}/{}", s.schedulable, s.total),
                format!("{:+.2}", s.avg_deviation_pct),
            ]);
            rows_right.push(vec![
                p.n_nodes.to_string(),
                name.clone(),
                format!("{:.3}", s.avg_time_s),
                format!("{:.0}", s.avg_evaluations),
            ]);
        }
    }
    format!(
        "Fig. 9 (left): schedulability degree (% deviation vs SA)\n{}\n\
         Fig. 9 (right): run times\n{}",
        crate::render_table(
            &["nodes", "algorithm", "schedulable", "avg %dev vs SA"],
            &rows_left
        ),
        crate::render_table(
            &["nodes", "algorithm", "avg time (s)", "avg analyses"],
            &rows_right
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cfg() -> Fig9Config {
        Fig9Config {
            node_counts: vec![2],
            apps_per_point: 1,
            params: OptParams {
                max_extra_slots: 2,
                max_slot_len_steps: 3,
                max_dyn_candidates: 24,
                dyn_step: 32,
                ..OptParams::default()
            },
            sa: flexray_opt::SaParams {
                iterations: 30,
                ..flexray_opt::SaParams::default()
            },
            seed0: 7,
            threads: 1,
        }
    }

    #[test]
    fn tiny_experiment_runs_end_to_end() {
        let cfg = fast_cfg();
        let points = run_experiment(&cfg).expect("experiment runs");
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].algos.len(), 4);
        let text = render(&points);
        assert!(text.contains("OBCCF"));
        assert!(text.contains("BBC"));
    }

    #[test]
    fn parallel_equals_serial() {
        let serial_cfg = Fig9Config {
            apps_per_point: 4,
            node_counts: vec![2, 3],
            ..fast_cfg()
        };
        let parallel_cfg = Fig9Config {
            threads: 4,
            ..serial_cfg.clone()
        };
        let serial = run_experiment(&serial_cfg).expect("serial run");
        let parallel = run_experiment(&parallel_cfg).expect("parallel run");
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert!(
                s.deterministic_eq(p),
                "serial {s:?} vs parallel {p:?} diverged"
            );
        }
    }

    #[test]
    fn worker_threads_resolution() {
        let mut cfg = fast_cfg();
        cfg.threads = 3;
        assert_eq!(cfg.worker_threads(), 3);
        cfg.threads = 0;
        assert!(cfg.worker_threads() >= 1);
    }
}
