//! Schema-versioned grid report codec: JSON lines and CSV.
//!
//! The `grid` binary streams one JSON object per line — a header line
//! describing the grid (schema version, axes, algorithm set, seeds)
//! followed by one line per completed [`GridPoint`] in point order — so
//! a killed run leaves a well-formed prefix that
//! [`read_report`] can recover and
//! [`run_grid_resumed`](crate::grid::run_grid_resumed) can complete.
//! The CSV rendering is a flat, spreadsheet-friendly projection of the
//! same records (one row per point × algorithm).
//!
//! The build environment has no crates.io access (the workspace links a
//! no-op `serde` shim, see `vendor/README.md`), so the codec is a small
//! hand-rolled JSON value type with a writer and a recursive-descent
//! parser — swap it for `serde_json` if registry access appears.
//!
//! # Schema stability
//!
//! [`GRID_SCHEMA_VERSION`] names the wire format. Any change to the
//! record layout must bump it, and the golden-file test in
//! `tests/grid.rs` breaks on purpose when that happens — update the
//! golden file together with the version.

use crate::grid::{GridConfig, GridPoint};
use crate::sweep::AlgoStats;
use flexray_gen::AggregatedGenStats;
use flexray_model::{ModelError, UtilSummary};

/// Schema identifier carried by every report header.
pub const GRID_SCHEMA: &str = "flexray-grid";
/// Version of the record layout; bump on any schema change (the golden
/// test enforces the pairing).
pub const GRID_SCHEMA_VERSION: u32 = 1;

// ---------------------------------------------------------------------
// Minimal JSON value type
// ---------------------------------------------------------------------

/// A JSON value. Object member order is preserved (insertion order), so
/// writing is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`; written via the shortest
    /// round-tripping form).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with ordered members.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member of an object by key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialises the value on one line (no insignificant whitespace).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] when the value contains a
    /// non-finite number: JSON has no NaN/Infinity literal, and writing
    /// `null` in its place would silently break the parse→write
    /// round-trip invariant. Producers must keep their numbers finite.
    pub fn write(&self) -> Result<String, ModelError> {
        let mut out = String::new();
        self.write_into(&mut out)?;
        Ok(out)
    }

    fn write_into(&self, out: &mut String) -> Result<(), ModelError> {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if !n.is_finite() {
                    return Err(ModelError::InvalidConfig(format!(
                        "non-finite number {n} cannot be written as JSON"
                    )));
                }
                // `{}` prints the shortest string that parses back
                // to the same f64, so parse→write round-trips.
                out.push_str(&format!("{n}"));
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out)?;
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(key.clone())
                        .write_into(out)
                        .expect("strings are always writable");
                    out.push(':');
                    value.write_into(out)?;
                }
                out.push('}');
            }
        }
        Ok(())
    }

    /// Parses one JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] describing the first
    /// syntax error.
    pub fn parse(text: &str) -> Result<Json, ModelError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(syntax(pos, "trailing characters after JSON value"));
        }
        Ok(value)
    }
}

fn syntax(pos: usize, msg: &str) -> ModelError {
    ModelError::InvalidConfig(format!("report JSON at byte {pos}: {msg}"))
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, what: u8) -> Result<(), ModelError> {
    if *pos < bytes.len() && bytes[*pos] == what {
        *pos += 1;
        Ok(())
    } else {
        Err(syntax(*pos, &format!("expected '{}'", what as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, ModelError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(syntax(*pos, "unexpected end of input")),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(syntax(*pos, "expected ',' or ']' in array")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(syntax(*pos, "expected ',' or '}' in object")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, ModelError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(syntax(*pos, &format!("expected '{lit}'")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, ModelError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number chars");
    let n: f64 = text
        .parse()
        .map_err(|_| syntax(start, &format!("invalid number '{text}'")))?;
    // Overflowing literals like `1e999` parse to infinity, which the
    // writer (rightly) refuses — reject them at the door instead.
    if !n.is_finite() {
        return Err(syntax(start, &format!("number '{text}' overflows f64")));
    }
    Ok(Json::Num(n))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ModelError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    let start = *pos;
    loop {
        match bytes.get(*pos) {
            None => return Err(syntax(start, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| syntax(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| syntax(*pos, "non-ascii \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| syntax(*pos, "invalid \\u escape"))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| syntax(*pos, "invalid \\u code point"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(syntax(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // copy the full UTF-8 scalar starting here
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| syntax(*pos, "invalid UTF-8"))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

// ---------------------------------------------------------------------
// Header
// ---------------------------------------------------------------------

/// The grid description carried by the first report line. Resume
/// compares the recovered header against the current configuration's,
/// so a partial report can only be completed by the grid that wrote it
/// (worker-thread count excepted — it does not affect the output).
#[derive(Debug, Clone, PartialEq)]
pub struct GridReportHeader {
    /// Record-layout version ([`GRID_SCHEMA_VERSION`]).
    pub version: u32,
    /// `(axis name, point values)` in axis order.
    pub axes: Vec<(String, Vec<String>)>,
    /// Applications (seeds) per grid point.
    pub apps_per_point: usize,
    /// Algorithm reporting names, in run order.
    pub algos: Vec<String>,
    /// Base RNG seed.
    pub seed0: u64,
    /// Fingerprint of everything else that shapes the output — the
    /// optimiser/SA parameters, the seed policy and the base generator
    /// configuration (their debug rendering; equality is all resume
    /// needs).
    pub params: String,
    /// Number of grid points.
    pub total_points: usize,
}

impl GridReportHeader {
    /// The header describing a grid configuration.
    #[must_use]
    pub fn of(cfg: &GridConfig) -> Self {
        let axes = cfg
            .axes
            .iter()
            .map(|axis| {
                let name = axis.name().to_owned();
                let values = (0..axis.len()).map(|i| axis.value(i)).collect();
                (name, values)
            })
            .collect();
        GridReportHeader {
            version: GRID_SCHEMA_VERSION,
            axes,
            apps_per_point: cfg.apps_per_point,
            algos: cfg.algos.iter().map(|a| a.name().to_owned()).collect(),
            seed0: cfg.seed0,
            params: {
                let mut params = format!(
                    "{:?} | {:?} | {:?} | base={:?}",
                    cfg.params, cfg.sa, cfg.seed_policy, cfg.base
                );
                if let Some(source) = &cfg.workload {
                    // fingerprint, not content: resume only needs to
                    // detect that the workload changed
                    params.push_str(&format!(
                        " | workload={}:{}",
                        source.name,
                        source.workload.fingerprint()
                    ));
                }
                params
            },
            total_points: cfg.total_points(),
        }
    }

    /// Serialises the header as the first report line (no newline).
    ///
    /// # Errors
    ///
    /// Propagates the non-finite-number error of [`Json::write`] (the
    /// header's numeric fields are all counts, so in practice this is
    /// infallible).
    pub fn to_line(&self) -> Result<String, ModelError> {
        Json::Obj(vec![
            ("schema".into(), Json::Str(GRID_SCHEMA.into())),
            ("version".into(), Json::Num(f64::from(self.version))),
            (
                "axes".into(),
                Json::Arr(
                    self.axes
                        .iter()
                        .map(|(name, values)| {
                            Json::Obj(vec![
                                ("name".into(), Json::Str(name.clone())),
                                (
                                    "values".into(),
                                    Json::Arr(
                                        values.iter().map(|v| Json::Str(v.clone())).collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "apps_per_point".into(),
                Json::Num(self.apps_per_point as f64),
            ),
            (
                "algos".into(),
                Json::Arr(self.algos.iter().map(|a| Json::Str(a.clone())).collect()),
            ),
            // as a string: u64 seeds beyond 2^53 would round through
            // the f64 number type and break resume header equality
            ("seed0".into(), Json::Str(self.seed0.to_string())),
            ("params".into(), Json::Str(self.params.clone())),
            ("total_points".into(), Json::Num(self.total_points as f64)),
        ])
        .write()
    }

    /// Parses a header line.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] on malformed JSON, a
    /// wrong schema identifier, or an unsupported version.
    pub fn parse(line: &str) -> Result<Self, ModelError> {
        let json = Json::parse(line)?;
        let schema = str_field(&json, "schema")?;
        if schema != GRID_SCHEMA {
            return Err(ModelError::InvalidConfig(format!(
                "report schema is '{schema}', expected '{GRID_SCHEMA}'"
            )));
        }
        let version = num_field(&json, "version")? as u32;
        if version != GRID_SCHEMA_VERSION {
            return Err(ModelError::InvalidConfig(format!(
                "report schema version {version} unsupported (this build writes \
                 {GRID_SCHEMA_VERSION})"
            )));
        }
        let axes = arr_field(&json, "axes")?
            .iter()
            .map(|axis| {
                let name = str_field(axis, "name")?.to_owned();
                let values = arr_field(axis, "values")?
                    .iter()
                    .map(|v| {
                        v.as_str()
                            .map(str::to_owned)
                            .ok_or_else(|| malformed("axis value is not a string"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok((name, values))
            })
            .collect::<Result<Vec<_>, ModelError>>()?;
        Ok(GridReportHeader {
            version,
            axes,
            apps_per_point: num_field(&json, "apps_per_point")? as usize,
            algos: arr_field(&json, "algos")?
                .iter()
                .map(|a| {
                    a.as_str()
                        .map(str::to_owned)
                        .ok_or_else(|| malformed("algorithm name is not a string"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            seed0: str_field(&json, "seed0")?
                .parse()
                .map_err(|_| malformed("field 'seed0' is not an integer string"))?,
            params: str_field(&json, "params")?.to_owned(),
            total_points: num_field(&json, "total_points")? as usize,
        })
    }
}

/// A "malformed record" error — shared by every JSONL schema built on
/// this codec (`flexray-grid`, `flexray-fuzz`, the `flexray-serve` job
/// and journal schemas).
#[must_use]
pub fn malformed(msg: &str) -> ModelError {
    ModelError::InvalidConfig(format!("malformed report record: {msg}"))
}

/// Member `key` of an object, or a "missing field" error.
///
/// # Errors
///
/// Returns [`ModelError::InvalidConfig`] when `json` is not an object
/// or lacks the field.
pub fn field<'a>(json: &'a Json, key: &str) -> Result<&'a Json, ModelError> {
    json.get(key)
        .ok_or_else(|| malformed(&format!("missing field '{key}'")))
}

/// Number member `key` of an object.
///
/// # Errors
///
/// Returns [`ModelError::InvalidConfig`] when the field is missing or
/// not a number.
pub fn num_field(json: &Json, key: &str) -> Result<f64, ModelError> {
    field(json, key)?
        .as_f64()
        .ok_or_else(|| malformed(&format!("field '{key}' is not a number")))
}

/// String member `key` of an object.
///
/// # Errors
///
/// Returns [`ModelError::InvalidConfig`] when the field is missing or
/// not a string.
pub fn str_field<'a>(json: &'a Json, key: &str) -> Result<&'a str, ModelError> {
    field(json, key)?
        .as_str()
        .ok_or_else(|| malformed(&format!("field '{key}' is not a string")))
}

/// Array member `key` of an object.
///
/// # Errors
///
/// Returns [`ModelError::InvalidConfig`] when the field is missing or
/// not an array.
pub fn arr_field<'a>(json: &'a Json, key: &str) -> Result<&'a [Json], ModelError> {
    field(json, key)?
        .as_arr()
        .ok_or_else(|| malformed(&format!("field '{key}' is not an array")))
}

// ---------------------------------------------------------------------
// Point records
// ---------------------------------------------------------------------

/// Serialises one grid point as a report line (no newline).
///
/// # Errors
///
/// Propagates the non-finite-number error of [`Json::write`]: a NaN or
/// infinite statistic (e.g. an average over zero samples) is a producer
/// bug surfaced here rather than silently written as `null`.
pub fn point_to_line(point: &GridPoint) -> Result<String, ModelError> {
    point_to_json(point).write()
}

/// The JSON value behind [`point_to_line`] — the form the
/// `flexray-serve` journal embeds as the `data` member of its point
/// records.
#[must_use]
pub fn point_to_json(point: &GridPoint) -> Json {
    let gen = &point.gen;
    Json::Obj(vec![
        ("point".into(), Json::Num(point.index as f64)),
        ("label".into(), Json::Str(point.label.clone())),
        (
            "coords".into(),
            Json::Obj(
                point
                    .coords
                    .iter()
                    .map(|(name, value)| (name.clone(), Json::Str(value.clone())))
                    .collect(),
            ),
        ),
        (
            "gen".into(),
            Json::Obj(vec![
                ("apps".into(), Json::Num(gen.apps as f64)),
                ("avg_tasks".into(), Json::Num(gen.avg_tasks)),
                ("avg_relay_tasks".into(), Json::Num(gen.avg_relay_tasks)),
                ("avg_st_messages".into(), Json::Num(gen.avg_st_messages)),
                ("avg_dyn_messages".into(), Json::Num(gen.avg_dyn_messages)),
                ("avg_graphs".into(), Json::Num(gen.avg_graphs)),
                (
                    "node_util".into(),
                    Json::Obj(vec![
                        ("min".into(), Json::Num(gen.node_util.min)),
                        ("mean".into(), Json::Num(gen.node_util.mean)),
                        ("max".into(), Json::Num(gen.node_util.max)),
                    ]),
                ),
                ("avg_bus_util".into(), Json::Num(gen.avg_bus_util)),
                (
                    "depth_histogram".into(),
                    Json::Arr(
                        gen.depth_histogram
                            .iter()
                            .map(|&n| Json::Num(n as f64))
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "algos".into(),
            Json::Arr(
                point
                    .algos
                    .iter()
                    .map(|(name, s)| {
                        Json::Obj(vec![
                            ("name".into(), Json::Str(name.clone())),
                            ("schedulable".into(), Json::Num(s.schedulable as f64)),
                            ("total".into(), Json::Num(s.total as f64)),
                            ("avg_deviation_pct".into(), Json::Num(s.avg_deviation_pct)),
                            ("avg_time_s".into(), Json::Num(s.avg_time_s)),
                            ("avg_evaluations".into(), Json::Num(s.avg_evaluations)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Parses one grid-point report line.
///
/// # Errors
///
/// Returns [`ModelError::InvalidConfig`] on malformed JSON or a missing
/// or mistyped field.
pub fn point_from_line(line: &str) -> Result<GridPoint, ModelError> {
    point_from_json(&Json::parse(line)?)
}

/// Parses one grid-point record from an already-parsed JSON value —
/// the form the `flexray-serve` journal uses, where point records are
/// embedded as the `data` member of a journal line.
///
/// # Errors
///
/// Returns [`ModelError::InvalidConfig`] on a missing or mistyped
/// field.
pub fn point_from_json(json: &Json) -> Result<GridPoint, ModelError> {
    let coords = match field(json, "coords")? {
        Json::Obj(members) => members
            .iter()
            .map(|(name, value)| {
                value
                    .as_str()
                    .map(|v| (name.clone(), v.to_owned()))
                    .ok_or_else(|| malformed("coordinate value is not a string"))
            })
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err(malformed("field 'coords' is not an object")),
    };
    let gen_json = field(json, "gen")?;
    let node_util = field(gen_json, "node_util")?;
    let gen = AggregatedGenStats {
        apps: num_field(gen_json, "apps")? as usize,
        avg_tasks: num_field(gen_json, "avg_tasks")?,
        avg_relay_tasks: num_field(gen_json, "avg_relay_tasks")?,
        avg_st_messages: num_field(gen_json, "avg_st_messages")?,
        avg_dyn_messages: num_field(gen_json, "avg_dyn_messages")?,
        avg_graphs: num_field(gen_json, "avg_graphs")?,
        node_util: UtilSummary {
            min: num_field(node_util, "min")?,
            mean: num_field(node_util, "mean")?,
            max: num_field(node_util, "max")?,
        },
        avg_bus_util: num_field(gen_json, "avg_bus_util")?,
        depth_histogram: arr_field(gen_json, "depth_histogram")?
            .iter()
            .map(|n| {
                n.as_f64()
                    .map(|n| n as usize)
                    .ok_or_else(|| malformed("histogram entry is not a number"))
            })
            .collect::<Result<Vec<_>, _>>()?,
    };
    let algos = arr_field(json, "algos")?
        .iter()
        .map(|algo| {
            Ok((
                str_field(algo, "name")?.to_owned(),
                AlgoStats {
                    schedulable: num_field(algo, "schedulable")? as usize,
                    total: num_field(algo, "total")? as usize,
                    avg_deviation_pct: num_field(algo, "avg_deviation_pct")?,
                    avg_time_s: num_field(algo, "avg_time_s")?,
                    avg_evaluations: num_field(algo, "avg_evaluations")?,
                },
            ))
        })
        .collect::<Result<Vec<_>, ModelError>>()?;
    Ok(GridPoint {
        index: num_field(json, "point")? as usize,
        label: str_field(json, "label")?.to_owned(),
        coords,
        algos,
        gen,
    })
}

// ---------------------------------------------------------------------
// Whole reports
// ---------------------------------------------------------------------

/// Renders a complete report: header line plus one line per point,
/// each newline-terminated.
///
/// # Errors
///
/// Propagates the non-finite-number error of [`Json::write`].
pub fn to_jsonl(header: &GridReportHeader, points: &[GridPoint]) -> Result<String, ModelError> {
    let mut out = header.to_line()?;
    out.push('\n');
    for point in points {
        out.push_str(&point_to_line(point)?);
        out.push('\n');
    }
    Ok(out)
}

/// Recovers `(header, completed points)` from a (possibly truncated)
/// JSON-lines report. A torn final line — the signature of a killed
/// run — is ignored; malformed lines elsewhere are errors.
///
/// # Errors
///
/// Returns [`ModelError::InvalidConfig`] on an empty report, a header
/// mismatch (see [`GridReportHeader::parse`]) or a malformed
/// non-final record.
pub fn from_jsonl(content: &str) -> Result<(GridReportHeader, Vec<GridPoint>), ModelError> {
    let mut lines = content.lines().enumerate();
    let Some((_, first)) = lines.next() else {
        return Err(ModelError::InvalidConfig("report is empty".into()));
    };
    let header = GridReportHeader::parse(first)?;
    let mut points = Vec::new();
    let mut rest = lines.peekable();
    while let Some((lineno, line)) = rest.next() {
        if line.trim().is_empty() {
            continue;
        }
        match point_from_line(line) {
            Ok(point) => points.push(point),
            // only a torn *final* line is recoverable
            Err(_) if rest.peek().is_none() && !content.ends_with('\n') => break,
            Err(e) => {
                return Err(ModelError::InvalidConfig(format!(
                    "report line {}: {e}",
                    lineno + 1
                )))
            }
        }
    }
    Ok((header, points))
}

/// Renders the CSV projection: one row per point × algorithm, with one
/// column per grid axis and the per-point generator statistics repeated
/// on each of the point's rows. The depth histogram is packed as
/// `depth:count` pairs joined by `|`.
#[must_use]
pub fn to_csv(header: &GridReportHeader, points: &[GridPoint]) -> String {
    let mut out = String::from("point,label");
    for (name, _) in &header.axes {
        out.push(',');
        out.push_str(name);
    }
    out.push_str(
        ",apps,avg_tasks,avg_relay_tasks,avg_st_messages,avg_dyn_messages,avg_graphs,\
         node_util_min,node_util_mean,node_util_max,avg_bus_util,depth_histogram,\
         algo,schedulable,total,avg_deviation_pct,avg_time_s,avg_evaluations\n",
    );
    for point in points {
        let hist = point
            .gen
            .depth_histogram
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(d, &n)| format!("{d}:{n}"))
            .collect::<Vec<_>>()
            .join("|");
        for (name, s) in &point.algos {
            out.push_str(&format!("{},{}", point.index, csv_cell(&point.label)));
            for (axis, _) in &header.axes {
                let value = point
                    .coords
                    .iter()
                    .find(|(n, _)| n == axis)
                    .map_or("", |(_, v)| v.as_str());
                out.push(',');
                out.push_str(&csv_cell(value));
            }
            let g = &point.gen;
            out.push_str(&format!(
                ",{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                g.apps,
                g.avg_tasks,
                g.avg_relay_tasks,
                g.avg_st_messages,
                g.avg_dyn_messages,
                g.avg_graphs,
                g.node_util.min,
                g.node_util.mean,
                g.node_util.max,
                g.avg_bus_util,
                csv_cell(&hist),
                csv_cell(name),
                s.schedulable,
                s.total,
                s.avg_deviation_pct,
                s.avg_time_s,
                s.avg_evaluations,
            ));
        }
    }
    out
}

/// Quotes a CSV cell when it contains a separator, quote or newline.
fn csv_cell(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_values_round_trip() {
        let value = Json::Obj(vec![
            ("s".into(), Json::Str("a \"quoted\"\nline\t\\".into())),
            (
                "a".into(),
                Json::Arr(vec![
                    Json::Num(1.0),
                    Json::Num(-0.25),
                    Json::Num(1e-9),
                    Json::Bool(true),
                    Json::Null,
                ]),
            ),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
            ("unicode".into(), Json::Str("µs — grüße".into())),
        ]);
        let text = value.write().expect("finite values");
        let back = Json::parse(&text).expect("parses");
        assert_eq!(back, value);
        // and the rendering is stable through a second cycle
        assert_eq!(back.write().expect("finite values"), text);
    }

    #[test]
    fn parser_accepts_whitespace_and_escapes() {
        let json = Json::parse(" { \"k\" : [ 1 , \"\\u0041\\n\" ] } ").expect("parses");
        assert_eq!(
            json.get("k").and_then(|v| v.as_arr()).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(
            json.get("k")
                .and_then(|v| v.as_arr())
                .and_then(|a| a[1].as_str()),
            Some("A\n")
        );
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "nul",
            "\"unterminated",
            "1 2",
            "{\"a\":1,}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn float_display_round_trips_through_parse() {
        for v in [0.0, 1.0, -1.5, 0.1, 1.0 / 3.0, 123_456.789, 1e-12] {
            let text = Json::Num(v).write().expect("finite values");
            let back = Json::parse(&text).expect("parses").as_f64().expect("num");
            assert_eq!(back.to_bits(), v.to_bits(), "{v} → {text}");
        }
    }

    #[test]
    fn non_finite_numbers_are_write_errors_not_null() {
        // Regression: these used to serialise as `null`, silently
        // breaking the parse→write round-trip invariant.
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = Json::Num(v).write().expect_err("non-finite must fail");
            assert!(
                err.to_string().contains("non-finite"),
                "error names the cause: {err}"
            );
            // nested occurrences are caught too
            let nested = Json::Obj(vec![("a".into(), Json::Arr(vec![Json::Num(v)]))]);
            assert!(nested.write().is_err());
        }
    }

    #[test]
    fn parser_cannot_produce_non_finite_numbers() {
        // The write-time guard is sufficient because no parsed document
        // can contain a non-finite number: the lexer only consumes
        // number characters, and `NaN`/`Infinity` literals are rejected.
        for bad in ["NaN", "Infinity", "-Infinity", "[nan]", "{\"a\":inf}"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
        // `1e999` overflows f64 to +inf in from_str — the one lexable
        // spelling of an infinite value — and must not slip through.
        assert!(
            Json::parse("1e999").is_err(),
            "overflowing literal must not parse to infinity"
        );
    }
}
