//! The vehicle cruise-controller case study (Section 7).
//!
//! The paper reports: BBC configures in under 5 seconds but the result
//! is unschedulable; OBCCF (137 s) and OBCEE (29 min) both find
//! schedulable configurations, with the OBCCF cost within 1.2 % of
//! OBCEE's.

use flexray_gen::cruise_controller;
use flexray_model::{ModelError, PhyParams};
use flexray_opt::{bbc, obc, simulated_annealing, DynSearch, OptParams, OptResult, SaParams};

/// Default WCET scale making BBC unschedulable but OBC schedulable (see
/// `flexray-gen::cruise_controller`).
pub const DEFAULT_WCET_US: f64 = 150.0;

/// Outcome of the case study.
#[derive(Debug, Clone)]
pub struct CruiseOutcome {
    /// Results in order BBC, OBCCF, OBCEE, SA.
    pub results: Vec<(String, OptResult)>,
}

impl CruiseOutcome {
    /// The result of one algorithm by name.
    #[must_use]
    pub fn result(&self, name: &str) -> Option<&OptResult> {
        self.results.iter().find(|(n, _)| n == name).map(|(_, r)| r)
    }
}

/// Runs all four algorithms on the cruise controller.
///
/// # Errors
///
/// Propagates model errors.
pub fn run_case_study(
    wcet_us: f64,
    params: &OptParams,
    sa: &SaParams,
) -> Result<CruiseOutcome, ModelError> {
    let (platform, app) = cruise_controller(wcet_us)?;
    let phy = PhyParams::bmw_like();
    let results = vec![
        ("BBC".to_owned(), bbc(&platform, &app, phy, params)),
        (
            "OBCCF".to_owned(),
            obc(&platform, &app, phy, params, DynSearch::CurveFit),
        ),
        (
            "OBCEE".to_owned(),
            obc(&platform, &app, phy, params, DynSearch::Exhaustive),
        ),
        (
            "SA".to_owned(),
            simulated_annealing(&platform, &app, phy, params, sa),
        ),
    ];
    Ok(CruiseOutcome { results })
}

/// Renders the case-study table.
#[must_use]
pub fn render(outcome: &CruiseOutcome) -> String {
    let rows: Vec<Vec<String>> = outcome
        .results
        .iter()
        .map(|(name, r)| {
            vec![
                name.clone(),
                if r.is_schedulable() { "yes" } else { "NO" }.to_owned(),
                format!("{:+.1}", r.cost.value()),
                format!("{:.2}", r.elapsed.as_secs_f64()),
                r.evaluations.to_string(),
            ]
        })
        .collect();
    crate::render_table(
        &[
            "algorithm",
            "schedulable",
            "cost (µs)",
            "time (s)",
            "analyses",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_params() -> (OptParams, SaParams) {
        // Default optimiser parameters (the calibration point), short SA.
        (
            OptParams::default(),
            SaParams {
                iterations: 80,
                ..SaParams::default()
            },
        )
    }

    #[test]
    fn bbc_unschedulable_obc_schedulable() {
        let (params, sa) = fast_params();
        let outcome = run_case_study(DEFAULT_WCET_US, &params, &sa).expect("case study");
        let bbc_r = outcome.result("BBC").expect("BBC ran");
        let obccf_r = outcome.result("OBCCF").expect("OBCCF ran");
        let obcee_r = outcome.result("OBCEE").expect("OBCEE ran");
        assert!(
            !bbc_r.is_schedulable(),
            "BBC should fail at this load: {:?}",
            bbc_r.cost
        );
        assert!(obccf_r.is_schedulable(), "OBCCF cost {:?}", obccf_r.cost);
        assert!(obcee_r.is_schedulable(), "OBCEE cost {:?}", obcee_r.cost);
    }

    #[test]
    fn obccf_close_to_obcee() {
        let (params, sa) = fast_params();
        let outcome = run_case_study(DEFAULT_WCET_US, &params, &sa).expect("case study");
        let cf = outcome.result("OBCCF").expect("ran").cost.value();
        let ee = outcome.result("OBCEE").expect("ran").cost.value();
        // the paper reports 1.2%; allow a broad band for the reproduction
        let dev = (cf - ee).abs() / ee.abs().max(1e-9) * 100.0;
        assert!(dev < 25.0, "OBCCF deviates {dev:.1}% from OBCEE");
    }

    #[test]
    fn render_mentions_all_algorithms() {
        let (params, sa) = fast_params();
        let outcome = run_case_study(DEFAULT_WCET_US, &params, &sa).expect("case study");
        let text = render(&outcome);
        for name in ["BBC", "OBCCF", "OBCEE", "SA"] {
            assert!(text.contains(name));
        }
    }
}
