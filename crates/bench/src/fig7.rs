//! Fig. 7 — influence of the DYN segment length on message response
//! times.
//!
//! The 45-task / 10 ST / 20 DYN workload of `flexray-gen` is analysed
//! for a range of dynamic-segment lengths with the static segment fixed
//! (the paper fixes STbus = 1286 µs and sweeps DYNbus from 2285.4 to
//! 13000 µs). The paper's observation — both very short and very long
//! bus cycles inflate response times, with a sweet spot in between — is
//! what the harness (and its tests) check.

use flexray_analysis::{analyse, AnalysisConfig};
use flexray_gen::fig7_system;
use flexray_model::{
    ActivityId, BusConfig, MessageClass, ModelError, NodeId, PhyParams, System, Time,
};
use flexray_opt::assign_frame_ids_by_criticality;

/// One sweep sample: dynamic-segment length and the response times of
/// the tracked messages.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Dynamic-segment length (µs).
    pub dyn_bus_us: f64,
    /// Bus cycle length (µs).
    pub gd_cycle_us: f64,
    /// Response time (µs) per tracked message.
    pub responses_us: Vec<f64>,
}

/// The swept system with its fixed static layout.
///
/// # Errors
///
/// Propagates model errors.
pub fn fig7_bus_template() -> Result<(System, Vec<ActivityId>), ModelError> {
    let (platform, app) = fig7_system()?;
    let phy = PhyParams::bmw_like(); // 2 µs minislots, 1 µs macroticks
    let mut bus = BusConfig::new(phy);
    // STbus ~ 1286 µs over 5 slots (one per node): 258 µs slots.
    bus.static_slot_len = Time::from_us(258.0);
    bus.static_slot_owners = (0..platform.len()).map(NodeId::new).collect();
    bus.frame_ids = assign_frame_ids_by_criticality(&platform, &app, &bus);
    bus.n_minislots = 1200;
    let sys = System::validated(platform, app, bus)?;
    let tracked: Vec<ActivityId> = sys
        .app
        .messages_of_class(MessageClass::Dynamic)
        .collect::<Vec<_>>()
        .into_iter()
        .step_by(4)
        .collect();
    Ok((sys, tracked))
}

/// Sweeps the dynamic-segment length over `n_points` between `min_us`
/// and `max_us` (paper: 2285.4–13000 µs).
///
/// # Errors
///
/// Propagates model/analysis errors.
pub fn sweep(min_us: f64, max_us: f64, n_points: usize) -> Result<Vec<SweepPoint>, ModelError> {
    let (mut sys, tracked) = fig7_bus_template()?;
    let minislot_us = sys.bus.phy.gd_minislot.as_us();
    let cfg = AnalysisConfig::default();
    let mut out = Vec::with_capacity(n_points);
    for i in 0..n_points {
        let frac = i as f64 / (n_points.saturating_sub(1).max(1)) as f64;
        // geometric spacing like the paper's x-axis
        let dyn_us = min_us * (max_us / min_us).powf(frac);
        let n_minislots = (dyn_us / minislot_us).round() as u32;
        sys.bus.n_minislots = n_minislots;
        if sys.bus.validate_for(&sys.app, sys.platform.len()).is_err() {
            continue;
        }
        let analysis = analyse(&sys, &cfg)?;
        out.push(SweepPoint {
            dyn_bus_us: f64::from(n_minislots) * minislot_us,
            gd_cycle_us: sys.bus.gd_cycle().as_us(),
            responses_us: tracked
                .iter()
                .map(|&m| analysis.response(m).as_us())
                .collect(),
        });
    }
    Ok(out)
}

/// Runs the paper's sweep and renders the series table.
///
/// # Errors
///
/// Propagates model/analysis errors.
pub fn run(n_points: usize) -> Result<String, ModelError> {
    let points = sweep(2285.4, 13_000.0, n_points)?;
    let n_msgs = points.first().map_or(0, |p| p.responses_us.len());
    let mut headers: Vec<String> = vec!["DYNbus(µs)".into(), "gdCycle(µs)".into()];
    headers.extend((0..n_msgs).map(|i| format!("R(msg{i})µs")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let mut row = vec![
                format!("{:.1}", p.dyn_bus_us),
                format!("{:.1}", p.gd_cycle_us),
            ];
            row.extend(p.responses_us.iter().map(|r| format!("{r:.0}")));
            row
        })
        .collect();
    Ok(crate::render_table(&header_refs, &rows))
}

/// Checks the paper's qualitative claim on a sweep: at least one tracked
/// message has a strict interior optimum (U-shape).
#[must_use]
pub fn has_u_shape(points: &[SweepPoint]) -> bool {
    let n_msgs = points.first().map_or(0, |p| p.responses_us.len());
    (0..n_msgs).any(|m| {
        let series: Vec<f64> = points.iter().map(|p| p.responses_us[m]).collect();
        let min = series.iter().copied().fold(f64::INFINITY, f64::min);
        let first = *series.first().expect("non-empty");
        let last = *series.last().expect("non-empty");
        min < first && min < last
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_points() {
        let points = sweep(2285.4, 13_000.0, 6).expect("sweep");
        assert!(points.len() >= 5);
        assert!(points[0].dyn_bus_us < points[points.len() - 1].dyn_bus_us);
        // cycle = ST + DYN
        for p in &points {
            assert!((p.gd_cycle_us - p.dyn_bus_us - 1290.0).abs() < 5.0);
        }
    }

    #[test]
    fn responses_show_u_shape() {
        let points = sweep(2285.4, 13_000.0, 8).expect("sweep");
        assert!(
            has_u_shape(&points),
            "expected an interior optimum; series: {points:?}"
        );
    }

    #[test]
    fn long_cycles_inflate_responses() {
        let points = sweep(2285.4, 13_000.0, 6).expect("sweep");
        let first = &points[0];
        let last = &points[points.len() - 1];
        // on average, the longest cycle is worse than the best point
        let avg = |p: &SweepPoint| p.responses_us.iter().sum::<f64>() / p.responses_us.len() as f64;
        let best = points.iter().map(avg).fold(f64::INFINITY, f64::min);
        assert!(avg(last) > best);
        let _ = first;
    }
}
