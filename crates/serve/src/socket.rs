//! The line-oriented JSONL TCP front-end of the serving daemon.
//!
//! One request per line, one reply per line. Requests are JSON
//! objects dispatched on their `req` field:
//!
//! * `{"req":"submit","spec":{…}}` — validate a job spec (the full
//!   `flexray-serve-job` object) and append its *canonical* line to
//!   the queue file. The append preserves the journal's
//!   append-only-or-refused fingerprint invariant: existing queue
//!   lines are never touched, the new line is written with a single
//!   `write_all` on an `O_APPEND` handle (a kill mid-`submit` leaves
//!   the queue whole or without the line, never torn).
//! * `{"req":"status","id":ID}` — the job's live view (`queued`,
//!   `running`, `done`, `failed`) from the status board, falling back
//!   to a queue scan for not-yet-drained jobs.
//! * `{"req":"cancel","id":ID}` — request cancellation; idempotent
//!   (`already_cancelled` tells a repeat from a first cancel). The
//!   job's unclaimed units short-circuit and it ends `failed
//!   (cancelled by request)`.
//! * `{"req":"drain"}` — block until every job submitted before this
//!   request has been covered by a completed drain pass.
//! * `{"req":"shutdown"}` — request a graceful shutdown: the drain
//!   finishes journaling in-flight points, writes a `stopped` record
//!   if work remains, and the daemon exits.
//!
//! Replies are `{"ok":true,…}` or `{"ok":false,"error":"…"}` with the
//! error naming the offending token. Malformed requests never kill
//! the connection — every line gets a reply. At most
//! [`MAX_CONNECTIONS`] connections are served concurrently; excess
//! connections get one `busy` error line and are closed.

use std::fs::{self, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use flexray_bench::report::{str_field, Json};

use crate::control::ServeControl;
use crate::spec::parse_job;

/// Concurrent connection cap; the accept loop answers excess
/// connections with a single `busy` error line.
pub const MAX_CONNECTIONS: usize = 16;

/// Pass/submit bookkeeping behind the `drain` request and the poll
/// loop's wakeup.
#[derive(Debug, Default)]
struct WakeState {
    /// Total submits acknowledged.
    submits: u64,
    /// Submits visible to the pass currently running.
    covering: u64,
    /// Submits covered by the last *completed* pass.
    drained_submits: u64,
    /// Completed drain passes.
    passes: u64,
    /// Work arrived; the poll loop should wake.
    kick: bool,
}

/// State shared between the socket listener threads and the daemon's
/// drain loop.
#[derive(Debug)]
pub struct SocketShared {
    queue: PathBuf,
    control: Arc<ServeControl>,
    /// Serialises queue-file read-check-append sequences.
    queue_lock: Mutex<()>,
    wake: Mutex<WakeState>,
    cond: Condvar,
}

impl SocketShared {
    /// Creates the shared block for a daemon serving `queue`.
    #[must_use]
    pub fn new(queue: PathBuf, control: Arc<ServeControl>) -> SocketShared {
        SocketShared {
            queue,
            control,
            queue_lock: Mutex::new(()),
            wake: Mutex::new(WakeState::default()),
            cond: Condvar::new(),
        }
    }

    /// Marks a drain pass started: submits acknowledged so far are
    /// covered by it; the wakeup kick is consumed.
    pub fn begin_pass(&self) {
        let mut wake = self.wake.lock().expect("wake lock");
        wake.covering = wake.submits;
        wake.kick = false;
    }

    /// Marks the running drain pass completed and wakes `drain`
    /// waiters and the poll loop.
    pub fn end_pass(&self) {
        let mut wake = self.wake.lock().expect("wake lock");
        wake.passes += 1;
        wake.drained_submits = wake.covering;
        drop(wake);
        self.cond.notify_all();
    }

    /// Blocks up to `max` waiting for new work or a shutdown request;
    /// returns `true` when woken by either (rather than the timeout).
    pub fn wait_for_work(&self, max: Duration) -> bool {
        let deadline = Instant::now() + max;
        let mut wake = self.wake.lock().expect("wake lock");
        loop {
            if wake.kick || self.control.is_shutdown() {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (next, _) = self
                .cond
                .wait_timeout(wake, deadline - now)
                .expect("wake lock");
            wake = next;
        }
    }
}

fn reply_ok(extra: Vec<(String, Json)>) -> String {
    let mut members = vec![("ok".to_owned(), Json::Bool(true))];
    members.extend(extra);
    // Only finite counts and strings go into replies; write cannot
    // fail on them.
    Json::Obj(members).write().expect("finite reply")
}

fn reply_err(error: &str) -> String {
    Json::Obj(vec![
        ("ok".to_owned(), Json::Bool(false)),
        ("error".to_owned(), Json::Str(error.to_owned())),
    ])
    .write()
    .expect("finite reply")
}

/// Whether the queue file holds a (parseable) job with this id.
fn queued_id(shared: &SocketShared, id: &str) -> Result<bool, String> {
    let _guard = shared.queue_lock.lock().expect("queue lock");
    let content = fs::read_to_string(&shared.queue)
        .map_err(|e| format!("read queue {}: {e}", shared.queue.display()))?;
    Ok(content.lines().any(|line| {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            return false;
        }
        parse_job(line).is_ok_and(|spec| spec.id == id)
    }))
}

fn submit(shared: &SocketShared, json: &Json) -> Result<String, String> {
    let spec_json = json.get("spec").ok_or("missing field 'spec'")?;
    let raw = spec_json
        .write()
        .map_err(|e| format!("unwritable spec: {e}"))?;
    let spec = parse_job(&raw).map_err(|e| format!("invalid spec: {e}"))?;
    let canonical = spec.to_line();
    {
        let _guard = shared.queue_lock.lock().expect("queue lock");
        let existing = fs::read_to_string(&shared.queue)
            .map_err(|e| format!("read queue {}: {e}", shared.queue.display()))?;
        for line in existing.lines() {
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            if parse_job(line).is_ok_and(|prior| prior.id == spec.id) {
                return Err(format!("duplicate job id '{}'", spec.id));
            }
        }
        // One write_all of one whole line on an O_APPEND handle: the
        // queue gains the complete line or nothing — never a torn
        // line. A missing final newline on the existing content (a
        // hand-edited queue) is healed by prefixing one, which leaves
        // every existing *line* — and so every journaled fingerprint —
        // unchanged.
        let mut payload = String::new();
        if !existing.is_empty() && !existing.ends_with('\n') {
            payload.push('\n');
        }
        payload.push_str(&canonical);
        payload.push('\n');
        let mut file = OpenOptions::new()
            .append(true)
            .open(&shared.queue)
            .map_err(|e| format!("open queue {}: {e}", shared.queue.display()))?;
        file.write_all(payload.as_bytes())
            .map_err(|e| format!("append to queue {}: {e}", shared.queue.display()))?;
    }
    {
        let mut wake = shared.wake.lock().expect("wake lock");
        wake.submits += 1;
        wake.kick = true;
    }
    shared.cond.notify_all();
    Ok(reply_ok(vec![
        ("id".to_owned(), Json::Str(spec.id)),
        ("queued".to_owned(), Json::Bool(true)),
    ]))
}

#[allow(clippy::cast_precision_loss)]
fn status(shared: &SocketShared, json: &Json) -> Result<String, String> {
    let id = str_field(json, "id").map_err(|e| e.to_string())?;
    if let Some(view) = shared.control.view(id) {
        let mut extra = vec![
            ("id".to_owned(), Json::Str(id.to_owned())),
            ("state".to_owned(), Json::Str(view.state)),
            ("kind".to_owned(), Json::Str(view.kind)),
            ("points".to_owned(), Json::Num(view.points as f64)),
            (
                "total_points".to_owned(),
                Json::Num(view.total_points as f64),
            ),
        ];
        if let Some(error) = view.error {
            extra.push(("error".to_owned(), Json::Str(error)));
        }
        return Ok(reply_ok(extra));
    }
    if queued_id(shared, id)? {
        return Ok(reply_ok(vec![
            ("id".to_owned(), Json::Str(id.to_owned())),
            ("state".to_owned(), Json::Str("queued".to_owned())),
        ]));
    }
    Err(format!("unknown job id '{id}'"))
}

fn cancel(shared: &SocketShared, json: &Json) -> Result<String, String> {
    let id = str_field(json, "id").map_err(|e| e.to_string())?;
    if shared.control.view(id).is_none() && !queued_id(shared, id)? {
        return Err(format!("unknown job id '{id}'"));
    }
    let newly = shared.control.cancel(id);
    Ok(reply_ok(vec![
        ("id".to_owned(), Json::Str(id.to_owned())),
        ("cancelled".to_owned(), Json::Bool(true)),
        ("already_cancelled".to_owned(), Json::Bool(!newly)),
    ]))
}

#[allow(clippy::cast_precision_loss)]
fn drain(shared: &SocketShared) -> Result<String, String> {
    let submitted = shared.wake.lock().expect("wake lock").submits;
    let mut wake = shared.wake.lock().expect("wake lock");
    loop {
        if shared.control.is_shutdown() {
            return Err("daemon is shutting down".to_owned());
        }
        if wake.passes >= 1 && wake.drained_submits >= submitted {
            let passes = wake.passes;
            return Ok(reply_ok(vec![
                ("drained".to_owned(), Json::Bool(true)),
                ("passes".to_owned(), Json::Num(passes as f64)),
            ]));
        }
        let (next, _) = shared
            .cond
            .wait_timeout(wake, Duration::from_millis(200))
            .expect("wake lock");
        wake = next;
    }
}

fn shutdown(shared: &SocketShared) -> String {
    shared.control.request_shutdown();
    {
        let mut wake = shared.wake.lock().expect("wake lock");
        wake.kick = true;
    }
    shared.cond.notify_all();
    reply_ok(vec![("shutdown".to_owned(), Json::Bool(true))])
}

fn process(shared: &SocketShared, line: &str) -> Result<String, String> {
    let json = Json::parse(line).map_err(|e| format!("malformed request: {e}"))?;
    let Json::Obj(members) = &json else {
        return Err("request is not a JSON object".to_owned());
    };
    let req = str_field(&json, "req").map_err(|e| e.to_string())?;
    let allowed: &[&str] = match req {
        "submit" => &["req", "spec"],
        "status" | "cancel" => &["req", "id"],
        "drain" | "shutdown" => &["req"],
        other => return Err(format!("unknown request '{other}'")),
    };
    for (key, _) in members {
        if !allowed.contains(&key.as_str()) {
            return Err(format!("unknown key '{key}' for request '{req}'"));
        }
    }
    match req {
        "submit" => submit(shared, &json),
        "status" => status(shared, &json),
        "cancel" => cancel(shared, &json),
        "drain" => drain(shared),
        _ => Ok(shutdown(shared)),
    }
}

/// Handles one request line and returns the reply line (no trailing
/// newline). Never panics on malformed input: every error becomes an
/// `{"ok":false,"error":…}` reply naming the offending token.
#[must_use]
pub fn handle_request(shared: &SocketShared, line: &str) -> String {
    match process(shared, line) {
        Ok(reply) => reply,
        Err(error) => reply_err(&error),
    }
}

fn serve_connection(shared: &SocketShared, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    let reader = BufReader::new(read_half);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let reply = handle_request(shared, &line);
        if writer
            .write_all(reply.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .is_err()
        {
            break;
        }
    }
}

/// Spawns the accept loop on its own thread: every connection gets a
/// serving thread (up to [`MAX_CONNECTIONS`] concurrently; excess
/// connections receive one `busy` error line and are closed). The
/// loop runs until the process exits.
pub fn spawn_listener(listener: TcpListener, shared: Arc<SocketShared>) {
    std::thread::spawn(move || {
        let live = Arc::new(AtomicUsize::new(0));
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            if live.load(Ordering::Relaxed) >= MAX_CONNECTIONS {
                let _ = stream
                    .write_all(b"{\"ok\":false,\"error\":\"busy: connection limit reached\"}\n");
                continue;
            }
            live.fetch_add(1, Ordering::Relaxed);
            let shared = Arc::clone(&shared);
            let live = Arc::clone(&live);
            std::thread::spawn(move || {
                serve_connection(&shared, stream);
                live.fetch_sub(1, Ordering::Relaxed);
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replies_are_single_json_lines() {
        assert_eq!(
            reply_ok(vec![("id".to_owned(), Json::Str("g1".to_owned()))]),
            r#"{"ok":true,"id":"g1"}"#
        );
        assert_eq!(
            reply_err("unknown request 'frob'"),
            r#"{"ok":false,"error":"unknown request 'frob'"}"#
        );
    }
}
