//! The concurrent job scheduler: up to `slots` jobs share the
//! work-stealing pool at once, yet the journal stays a deterministic
//! pure function of `(queue content, slots)`.
//!
//! # The static plan
//!
//! Determinism under concurrency comes from separating *what order
//! records take* from *what order units compute*. [`plan_events`]
//! builds a **static event plan** — a round-robin interleaving of
//! every job's `start`/unit/`point`/`end` events, admitting up to
//! `slots` jobs at a time — from nothing but the jobs' shapes (point
//! and unit counts). The pool then computes units in *any* order
//! (work-stealing, out-of-order completion), while the walk buffers
//! results and journals records strictly in plan order.
//!
//! Crucially the plan covers **all** queued jobs, including ones the
//! journal already shows as terminal, with the already-journaled
//! events *skipped during the walk* rather than dropped from the plan.
//! Dropping them would shift the admission interleave of the remaining
//! jobs, and a restarted drain would journal a different record order
//! than the uninterrupted run — breaking the byte-identity contract.
//! With the plan static, any prefix of the journal plus the restart's
//! continuation reproduces the reference byte-for-byte.
//!
//! # Stopping
//!
//! A stop request (stop file or socket `shutdown`) flips the pool's
//! quit flag: workers stop claiming units, in-flight units finish and
//! are consumed, the walk journals everything up to the first missing
//! unit and then appends a `stopped` record. The journal written is a
//! prefix of the reference (plus the `stopped` marker, which replay
//! ignores), so the run is resumable.
//!
//! Failures run to completion: a failed unit does not abort its job's
//! remaining units (their timing would be racy); the first error *in
//! unit order* becomes the job's `failed` status and later points are
//! suppressed — exactly the serial engine's semantics. A cancellation
//! request short-circuits the job's not-yet-claimed units to a fixed
//! `cancelled by request` failure.

use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};

use flexray_bench::fuzz::{fuzz_app, FuzzAppOutcome, FuzzPoint};
use flexray_bench::grid::{solve_app, AppRun, GridPoint};
use flexray_bench::report::{point_to_json, Json};
use flexray_model::ModelError;
use flexray_util::scoped_consume_until;

use crate::control::{JobView, ServeControl};
use crate::journal::{JobStatus, JournalSink, Record};
use crate::spec::{JobKind, JobSpec};

/// The shape of one job, as far as the plan cares: how many points it
/// journals and how many units make up each point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanShape {
    /// Points the job journals.
    pub points: usize,
    /// Units (app runs) per point.
    pub units_per_point: usize,
}

/// One event of the static plan. `job` indexes the input job slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Job admission: its `start` record's position in the journal.
    Start(usize),
    /// One unit's result is consumed (in per-job unit order).
    Unit {
        /// Job index.
        job: usize,
        /// Unit index within the job.
        unit: usize,
    },
    /// A point boundary: the point's record position in the journal.
    Point {
        /// Job index.
        job: usize,
        /// Point index within the job.
        point: usize,
    },
    /// Job completion: its `end` record's position in the journal.
    End(usize),
}

/// Builds the static event plan: round-robin over up to `slots`
/// concurrently admitted jobs, in job order, one unit per turn. A
/// finished job immediately frees its slot to the next pending job. A
/// pure function of `(shapes, slots)` — the whole determinism story
/// rests on that.
#[must_use]
pub fn plan_events(shapes: &[PlanShape], slots: usize) -> Vec<Event> {
    let slots = slots.max(1);
    let mut events = Vec::new();
    let mut pending = 0usize;
    // (job, next unit) per occupied slot, in admission order.
    let mut active: Vec<(usize, usize)> = Vec::new();
    let admit = |events: &mut Vec<Event>, active: &mut Vec<(usize, usize)>, pending: &mut usize| {
        while active.len() < slots && *pending < shapes.len() {
            let job = *pending;
            *pending += 1;
            events.push(Event::Start(job));
            if shapes[job].points * shapes[job].units_per_point == 0 {
                events.push(Event::End(job));
            } else {
                active.push((job, 0));
            }
        }
    };
    admit(&mut events, &mut active, &mut pending);
    let mut turn = 0usize;
    while !active.is_empty() {
        if turn >= active.len() {
            turn = 0;
        }
        let (job, unit) = active[turn];
        let shape = shapes[job];
        events.push(Event::Unit { job, unit });
        if (unit + 1) % shape.units_per_point == 0 {
            events.push(Event::Point {
                job,
                point: unit / shape.units_per_point,
            });
        }
        if unit + 1 == shape.points * shape.units_per_point {
            events.push(Event::End(job));
            active.remove(turn);
            // The freed slot admits the next pending job at the *end*
            // of the rotation; `turn` stays put — the job that shifted
            // into this slot takes the next turn.
            admit(&mut events, &mut active, &mut pending);
        } else {
            active[turn].1 = unit + 1;
            turn += 1;
        }
    }
    events
}

/// One job handed to [`run_schedule`]: the parsed spec plus what the
/// journal already knows about it.
#[derive(Debug, Clone)]
pub struct ScheduledJob {
    /// The parsed job spec.
    pub spec: JobSpec,
    /// Fingerprint of the raw queue line (for the `start` record).
    pub fp: String,
    /// Point data recovered from the journal, contiguous from point 0.
    pub recovered: Vec<Json>,
    /// Whether the journal already holds the job's `start` record.
    pub start_journaled: bool,
    /// The journaled terminal status, if any. Terminal jobs stay in
    /// the plan (their events are skipped) but compute nothing.
    pub terminal: Option<JobStatus>,
}

/// What [`run_schedule`] did for one job, index-aligned with its
/// input slice.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Points journaled by this drain, in point order.
    pub new_points: Vec<Json>,
    /// Optimiser candidate evaluations performed by this drain.
    pub evaluations: u64,
    /// Terminal status — `None` when the drain stopped with the job
    /// still in flight (resumable on restart).
    pub status: Option<JobStatus>,
}

fn units_per_point(spec: &JobSpec) -> usize {
    match &spec.kind {
        JobKind::Grid(cfg) => cfg.apps_per_point,
        JobKind::Fuzz(cfg) => cfg.apps_per_point,
    }
}

/// Whether a unit must actually compute: terminal jobs and units of
/// already-journaled points are skipped. Must match between plan-time
/// compute-list construction and the walk, record for record.
fn needs_compute(job: &ScheduledJob, unit: usize) -> bool {
    job.terminal.is_none() && unit >= job.recovered.len() * units_per_point(&job.spec)
}

enum Computed {
    Grid(AppRun),
    Fuzz(FuzzAppOutcome),
}

enum UnitOutcome {
    Computed(Computed, u64),
    Failed(String),
    Cancelled,
}

fn compute_unit(job: &ScheduledJob, unit: usize, control: &ServeControl) -> UnitOutcome {
    if control.is_cancelled(&job.spec.id) {
        return UnitOutcome::Cancelled;
    }
    let upp = units_per_point(&job.spec);
    let (point, app) = (unit / upp, unit % upp);
    match &job.spec.kind {
        JobKind::Grid(cfg) => match solve_app(cfg, &cfg.point(point), app) {
            Ok(run) => {
                let evals: u64 = run.0.iter().map(|r| r.evaluations as u64).sum();
                UnitOutcome::Computed(Computed::Grid(run), evals)
            }
            Err(e) => UnitOutcome::Failed(e.to_string()),
        },
        JobKind::Fuzz(cfg) => {
            let grid = cfg.grid();
            let spec = grid.point(point);
            match fuzz_app(cfg, &spec, app, grid.seed(spec.index, app)) {
                Ok(outcome) => {
                    let evals = outcome.evaluations as u64;
                    UnitOutcome::Computed(Computed::Fuzz(outcome), evals)
                }
                Err(e) => UnitOutcome::Failed(e.to_string()),
            }
        }
    }
}

/// Aggregates one point's unit outcomes into its journal `data`, in
/// the deterministic projection (wall-clock zeroed).
fn aggregate_point(spec: &JobSpec, point: usize, outcomes: Vec<Computed>) -> Json {
    match &spec.kind {
        JobKind::Grid(cfg) => {
            let runs: Vec<AppRun> = outcomes
                .into_iter()
                .map(|c| match c {
                    Computed::Grid(run) => run,
                    Computed::Fuzz(_) => unreachable!("grid job computes grid units"),
                })
                .collect();
            let mut point = GridPoint::from_apps(cfg, &cfg.point(point), runs);
            for (_, stats) in &mut point.algos {
                // Deterministic projection: wall-clock is the one
                // field of a point that is not a function of the
                // queue, so the journal zeroes it.
                stats.avg_time_s = 0.0;
            }
            point_to_json(&point)
        }
        JobKind::Fuzz(cfg) => {
            let apps: Vec<FuzzAppOutcome> = outcomes
                .into_iter()
                .map(|c| match c {
                    Computed::Fuzz(outcome) => outcome,
                    Computed::Grid(_) => unreachable!("fuzz job computes fuzz units"),
                })
                .collect();
            FuzzPoint::from_apps(&cfg.grid().point(point), apps).to_json()
        }
    }
}

struct WalkJob {
    current: Vec<Computed>,
    failed: Option<String>,
    new_points: Vec<Json>,
    evaluations: u64,
    status: Option<JobStatus>,
}

struct Walk {
    next_event: usize,
    next_compute: usize,
    buffer: Vec<Option<UnitOutcome>>,
    jobs: Vec<WalkJob>,
}

fn publish_view(control: &ServeControl, job: &ScheduledJob, walk_job: &WalkJob) {
    let points = job.recovered.len() + walk_job.new_points.len();
    let (state, error, points) = match &walk_job.status {
        None => ("running", None, points),
        Some(JobStatus::Done { points }) => ("done", None, *points),
        Some(JobStatus::Failed { error }) => ("failed", Some(error.clone()), points),
    };
    control.publish(
        &job.spec.id,
        JobView {
            kind: job.spec.kind_name.clone(),
            points,
            total_points: job.spec.total_points(),
            state: state.into(),
            error,
        },
    );
}

/// Processes plan events in order until one needs a unit result that
/// has not landed yet (the walk *stalls* there — a later consume call
/// resumes it). Journal-append errors abort the drain.
fn advance(
    walk: &mut Walk,
    events: &[Event],
    jobs: &[ScheduledJob],
    control: &ServeControl,
    journal: &mut dyn JournalSink,
) -> Result<(), ModelError> {
    while walk.next_event < events.len() {
        match events[walk.next_event] {
            Event::Start(j) => {
                let job = &jobs[j];
                if !job.start_journaled {
                    journal.append(&Record::Start {
                        job: job.spec.id.clone(),
                        kind: job.spec.kind_name.clone(),
                        fp: job.fp.clone(),
                        total_points: job.spec.total_points(),
                    })?;
                }
            }
            Event::Unit { job, unit } => {
                if needs_compute(&jobs[job], unit) {
                    let Some(outcome) = walk.buffer[walk.next_compute].take() else {
                        return Ok(()); // stall: result not landed yet
                    };
                    walk.next_compute += 1;
                    let walk_job = &mut walk.jobs[job];
                    match outcome {
                        UnitOutcome::Computed(computed, evals) => {
                            walk_job.evaluations += evals;
                            if walk_job.failed.is_none() {
                                walk_job.current.push(computed);
                            }
                        }
                        UnitOutcome::Failed(error) => {
                            if walk_job.failed.is_none() {
                                walk_job.failed = Some(error);
                            }
                        }
                        UnitOutcome::Cancelled => {
                            if walk_job.failed.is_none() {
                                walk_job.failed = Some("cancelled by request".into());
                            }
                        }
                    }
                }
            }
            Event::Point { job, point } => {
                let scheduled = &jobs[job];
                let fresh = scheduled.terminal.is_none()
                    && point >= scheduled.recovered.len()
                    && walk.jobs[job].failed.is_none();
                if fresh {
                    let outcomes = std::mem::take(&mut walk.jobs[job].current);
                    let data = aggregate_point(&scheduled.spec, point, outcomes);
                    journal.append(&Record::Point {
                        job: scheduled.spec.id.clone(),
                        data: data.clone(),
                    })?;
                    walk.jobs[job].new_points.push(data);
                    publish_view(control, scheduled, &walk.jobs[job]);
                } else {
                    // Recovered, terminal or failure-suppressed: any
                    // buffered outcomes are dropped, not journaled.
                    walk.jobs[job].current.clear();
                }
            }
            Event::End(j) => {
                let scheduled = &jobs[j];
                if scheduled.terminal.is_none() {
                    let walk_job = &mut walk.jobs[j];
                    let status = match walk_job.failed.take() {
                        Some(error) => JobStatus::Failed { error },
                        None => JobStatus::Done {
                            points: scheduled.spec.total_points(),
                        },
                    };
                    journal.append(&Record::End {
                        job: scheduled.spec.id.clone(),
                        status: status.clone(),
                    })?;
                    walk_job.status = Some(status);
                    publish_view(control, scheduled, &walk.jobs[j]);
                }
            }
        }
        walk.next_event += 1;
    }
    Ok(())
}

/// Runs the drain's execution phase: plans, computes, journals.
///
/// Returns `(per-job results, stopped)`, index-aligned with `jobs`;
/// `stopped` is `true` when a stop request halted the drain before
/// the plan completed (a `stopped` record was journaled and the run
/// is resumable).
///
/// # Errors
///
/// Returns the journal sink's error when an append fails (e.g. a full
/// disk) — the drain aborts; everything journaled before the failure
/// is durable and a restart resumes from it.
pub fn run_schedule(
    jobs: &[ScheduledJob],
    slots: usize,
    threads: usize,
    control: &ServeControl,
    stop_file: Option<&Path>,
    journal: &mut dyn JournalSink,
) -> Result<(Vec<JobResult>, bool), ModelError> {
    let shapes: Vec<PlanShape> = jobs
        .iter()
        .map(|job| PlanShape {
            points: job.spec.total_points(),
            units_per_point: units_per_point(&job.spec),
        })
        .collect();
    let events = plan_events(&shapes, slots);
    let compute: Vec<(usize, usize)> = events
        .iter()
        .filter_map(|event| match *event {
            Event::Unit { job, unit } if needs_compute(&jobs[job], unit) => Some((job, unit)),
            _ => None,
        })
        .collect();
    let mut walk = Walk {
        next_event: 0,
        next_compute: 0,
        buffer: (0..compute.len()).map(|_| None).collect(),
        jobs: jobs
            .iter()
            .map(|job| WalkJob {
                current: Vec::new(),
                failed: None,
                new_points: Vec::new(),
                evaluations: 0,
                status: job.terminal.clone(),
            })
            .collect(),
    };
    for (j, job) in jobs.iter().enumerate() {
        publish_view(control, job, &walk.jobs[j]);
    }

    let mut sink_err: Option<ModelError> = None;
    if let Err(e) = advance(&mut walk, &events, jobs, control, journal) {
        sink_err = Some(e);
    }
    if sink_err.is_none() && !compute.is_empty() {
        let quit = AtomicBool::new(false);
        if control.stop_requested(stop_file) {
            quit.store(true, Ordering::Relaxed);
        }
        let mut states = vec![(); threads.max(1).min(compute.len())];
        let compute = &compute;
        scoped_consume_until(
            &mut states,
            compute.len(),
            &quit,
            |(), i| {
                let (job, unit) = compute[i];
                compute_unit(&jobs[job], unit, control)
            },
            |i, outcome| {
                walk.buffer[i] = Some(outcome);
                if sink_err.is_none() {
                    if let Err(e) = advance(&mut walk, &events, jobs, control, journal) {
                        sink_err = Some(e);
                        quit.store(true, Ordering::Relaxed);
                    }
                }
                if !quit.load(Ordering::Relaxed) && control.stop_requested(stop_file) {
                    quit.store(true, Ordering::Relaxed);
                }
            },
        );
    }
    if let Some(e) = sink_err {
        return Err(e);
    }
    let stopped = walk.next_event < events.len();
    if stopped {
        journal.append(&Record::Stopped)?;
    }
    let results = walk
        .jobs
        .into_iter()
        .map(|walk_job| JobResult {
            new_points: walk_job.new_points,
            evaluations: walk_job.evaluations,
            status: walk_job.status,
        })
        .collect();
    Ok((results, stopped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::line_fp;
    use crate::spec::parse_job;

    fn shape(points: usize, units_per_point: usize) -> PlanShape {
        PlanShape {
            points,
            units_per_point,
        }
    }

    #[test]
    fn serial_plan_runs_jobs_back_to_back() {
        let events = plan_events(&[shape(2, 2), shape(1, 1)], 1);
        assert_eq!(
            events,
            vec![
                Event::Start(0),
                Event::Unit { job: 0, unit: 0 },
                Event::Unit { job: 0, unit: 1 },
                Event::Point { job: 0, point: 0 },
                Event::Unit { job: 0, unit: 2 },
                Event::Unit { job: 0, unit: 3 },
                Event::Point { job: 0, point: 1 },
                Event::End(0),
                Event::Start(1),
                Event::Unit { job: 1, unit: 0 },
                Event::Point { job: 1, point: 0 },
                Event::End(1),
            ]
        );
    }

    #[test]
    fn concurrent_plan_interleaves_fairly_and_keeps_per_job_unit_order() {
        let shapes = [shape(3, 2), shape(2, 1), shape(1, 4)];
        for slots in [2usize, 3, 17] {
            let events = plan_events(&shapes, slots);
            // Every unit appears exactly once, in per-job order.
            for (j, s) in shapes.iter().enumerate() {
                let units: Vec<usize> = events
                    .iter()
                    .filter_map(|e| match e {
                        Event::Unit { job, unit } if *job == j => Some(*unit),
                        _ => None,
                    })
                    .collect();
                let expected: Vec<usize> = (0..s.points * s.units_per_point).collect();
                assert_eq!(units, expected, "slots={slots} job={j}");
            }
            // Each point record sits right after its last unit, each
            // end right after the job's last event.
            for (k, event) in events.iter().enumerate() {
                if let Event::Point { job, point } = event {
                    let s = shapes[*job];
                    assert_eq!(
                        events[k - 1],
                        Event::Unit {
                            job: *job,
                            unit: (point + 1) * s.units_per_point - 1
                        },
                        "slots={slots}: point not adjacent to its closing unit"
                    );
                }
            }
            // No more than `slots` jobs are between start and end at
            // any moment.
            let mut open = 0usize;
            for event in &events {
                match event {
                    Event::Start(_) => {
                        open += 1;
                        assert!(
                            open <= slots.min(shapes.len()),
                            "slots={slots}: over-admitted"
                        );
                    }
                    Event::End(_) => open -= 1,
                    _ => {}
                }
            }
        }
        // With two slots the first two jobs genuinely interleave.
        let events = plan_events(&shapes, 2);
        let first_of_1 = events
            .iter()
            .position(|e| matches!(e, Event::Unit { job: 1, .. }))
            .expect("job 1 runs");
        let last_of_0 = events
            .iter()
            .rposition(|e| matches!(e, Event::Unit { job: 0, .. }))
            .expect("job 0 runs");
        assert!(
            first_of_1 < last_of_0,
            "two-slot plan did not interleave jobs 0 and 1"
        );
    }

    #[test]
    fn plan_admits_zero_unit_jobs_without_occupying_a_slot() {
        let events = plan_events(&[shape(0, 3), shape(1, 1)], 1);
        assert_eq!(
            events,
            vec![
                Event::Start(0),
                Event::End(0),
                Event::Start(1),
                Event::Unit { job: 1, unit: 0 },
                Event::Point { job: 1, point: 0 },
                Event::End(1),
            ]
        );
        assert!(plan_events(&[], 4).is_empty());
    }

    #[test]
    fn plan_is_a_pure_function_of_shapes_and_slots() {
        let shapes = [shape(4, 3), shape(2, 2), shape(5, 1), shape(1, 1)];
        for slots in [1usize, 2, 4] {
            assert_eq!(plan_events(&shapes, slots), plan_events(&shapes, slots));
        }
        // Unit sets are slot-invariant — only the interleaving moves.
        let count = |slots| plan_events(&shapes, slots).len();
        assert_eq!(count(1), count(2));
        assert_eq!(count(1), count(4));
    }

    struct FailingSink;

    impl JournalSink for FailingSink {
        fn append(&mut self, _: &Record) -> Result<(), ModelError> {
            Err(ModelError::InvalidConfig(
                "serve: append to journal /tank/serve.journal: No space left on device".into(),
            ))
        }
    }

    #[test]
    fn a_failing_journal_sink_aborts_the_drain_with_its_error_not_a_panic() {
        let line = r#"{"schema":"flexray-serve-job","version":1,"id":"g1","kind":"grid","args":["nodes=2","apps=1","mode=smoke","algos=bbc"]}"#;
        let jobs = vec![ScheduledJob {
            spec: parse_job(line).expect("valid spec"),
            fp: line_fp(line),
            recovered: Vec::new(),
            start_journaled: false,
            terminal: None,
        }];
        let control = ServeControl::default();
        let err = run_schedule(&jobs, 2, 1, &control, None, &mut FailingSink)
            .expect_err("sink failure must propagate");
        assert!(
            err.to_string().contains("/tank/serve.journal"),
            "error must name the journal path: {err}"
        );
    }
}
