//! The `flexray-serve` JSONL journal schema (v2).
//!
//! The journal is an append-only file of one JSON record per line:
//!
//! * a header — `{"schema":"flexray-serve","version":2}`;
//! * `{"rec":"rejected","line":N,"fp":"…","error":"…"}` — queue line
//!   `N` (1-based) failed to parse and was skipped;
//! * `{"rec":"start","job":ID,"kind":K,"fp":"…","total_points":N}` —
//!   a job began executing;
//! * `{"rec":"point","job":ID,"data":{…}}` — one completed point, in
//!   point order; `data` is the exact report line of the point's
//!   schema (`flexray-grid` point or `flexray-fuzz` point), in the
//!   *deterministic projection* (wall-clock fields zeroed);
//! * `{"rec":"end","job":ID,"status":"done","points":N}` or
//!   `{"rec":"end","job":ID,"status":"failed","error":"…"}`;
//! * `{"rec":"stopped"}` — the daemon exited a drain early and cleanly
//!   (stop file or `shutdown` request); every record before it is
//!   intact and the run is resumable. Replay ignores it: it marks *the
//!   journal stopped short*, not any change of job state.
//!
//! `fp` fingerprints the raw queue line ([`line_fp`]); replay refuses
//! a journal whose fingerprints disagree with the queue, so a journal
//! can only be replayed against the queue that wrote it (the queue is
//! append-only: existing lines must not change).
//!
//! [`read_journal`] recovers the longest valid newline-terminated
//! record prefix, tolerating exactly one torn final line (the
//! signature of a kill mid-append); [`JournalState::replay`] folds the
//! records into per-job progress with full structural validation
//! (start before point/end, contiguous point indices, nothing after
//! end).

use flexray_bench::report::{malformed, num_field, str_field, Json};
use flexray_model::{mix_words, ModelError};

/// Schema identifier carried by the journal header.
pub const SERVE_SCHEMA: &str = "flexray-serve";
/// Version of the journal record layout; bump on any schema change
/// (the golden test enforces the pairing). v2 added the `stopped`
/// record for clean early exits.
pub const SERVE_SCHEMA_VERSION: u32 = 2;

/// Fingerprint of one raw queue line, as the 16-hex-digit string
/// journal records carry: a [`mix_words`] fold over the line's bytes
/// (8 per word) and its length.
#[must_use]
pub fn line_fp(line: &str) -> String {
    let bytes = line.as_bytes();
    let mut words: Vec<u64> = Vec::with_capacity(bytes.len() / 8 + 2);
    words.push(bytes.len() as u64);
    for chunk in bytes.chunks(8) {
        let mut word = 0u64;
        for (i, &b) in chunk.iter().enumerate() {
            word |= u64::from(b) << (8 * i);
        }
        words.push(word);
    }
    format!("{:016x}", mix_words(&words))
}

/// Terminal status of a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// Every point completed and was journaled.
    Done {
        /// Number of journaled points.
        points: usize,
    },
    /// A unit failed; the journal holds the points completed before
    /// the failing one.
    Failed {
        /// The first failing unit's error, in unit order.
        error: String,
    },
}

/// One journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// The schema header (always the first record).
    Header {
        /// Record-layout version ([`SERVE_SCHEMA_VERSION`]).
        version: u32,
    },
    /// A queue line was rejected and skipped.
    Rejected {
        /// 1-based queue line number.
        line: usize,
        /// Fingerprint of the raw queue line.
        fp: String,
        /// The parse error.
        error: String,
    },
    /// A job began executing.
    Start {
        /// Job id.
        job: String,
        /// Job kind (`grid`/`sweep`/`fig9`/`fuzz`).
        kind: String,
        /// Fingerprint of the raw queue line.
        fp: String,
        /// Number of points the job will journal.
        total_points: usize,
    },
    /// One completed point (in point order).
    Point {
        /// Job id.
        job: String,
        /// The point's report-line JSON, deterministic projection.
        data: Json,
    },
    /// A job reached a terminal status.
    End {
        /// Job id.
        job: String,
        /// Terminal status.
        status: JobStatus,
    },
    /// The daemon exited this drain early and cleanly (stop file or
    /// socket `shutdown`); the run is resumable. Carries no state:
    /// replay skips it.
    Stopped,
}

impl Record {
    /// Serialises the record as one journal line (no newline).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] when the record carries a
    /// non-finite number (e.g. a point payload with a NaN statistic),
    /// which has no JSON representation.
    pub fn to_line(&self) -> Result<String, ModelError> {
        match self {
            Record::Header { version } => Json::Obj(vec![
                ("schema".into(), Json::Str(SERVE_SCHEMA.into())),
                ("version".into(), Json::Num(f64::from(*version))),
            ]),
            Record::Rejected { line, fp, error } => Json::Obj(vec![
                ("rec".into(), Json::Str("rejected".into())),
                ("line".into(), Json::Num(*line as f64)),
                ("fp".into(), Json::Str(fp.clone())),
                ("error".into(), Json::Str(error.clone())),
            ]),
            Record::Start {
                job,
                kind,
                fp,
                total_points,
            } => Json::Obj(vec![
                ("rec".into(), Json::Str("start".into())),
                ("job".into(), Json::Str(job.clone())),
                ("kind".into(), Json::Str(kind.clone())),
                ("fp".into(), Json::Str(fp.clone())),
                ("total_points".into(), Json::Num(*total_points as f64)),
            ]),
            Record::Point { job, data } => Json::Obj(vec![
                ("rec".into(), Json::Str("point".into())),
                ("job".into(), Json::Str(job.clone())),
                ("data".into(), data.clone()),
            ]),
            Record::End { job, status } => {
                let mut members = vec![
                    ("rec".into(), Json::Str("end".into())),
                    ("job".into(), Json::Str(job.clone())),
                ];
                match status {
                    JobStatus::Done { points } => {
                        members.push(("status".into(), Json::Str("done".into())));
                        members.push(("points".into(), Json::Num(*points as f64)));
                    }
                    JobStatus::Failed { error } => {
                        members.push(("status".into(), Json::Str("failed".into())));
                        members.push(("error".into(), Json::Str(error.clone())));
                    }
                }
                Json::Obj(members)
            }
            Record::Stopped => Json::Obj(vec![("rec".into(), Json::Str("stopped".into()))]),
        }
        .write()
    }

    /// Parses one journal line.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] on malformed JSON, an
    /// unknown `rec` tag, or a missing / mistyped field.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn parse(line: &str) -> Result<Record, ModelError> {
        let json = Json::parse(line)?;
        if let Some(schema) = json.get("schema") {
            let schema = schema
                .as_str()
                .ok_or_else(|| malformed("journal 'schema' is not a string"))?;
            if schema != SERVE_SCHEMA {
                return Err(malformed(&format!(
                    "journal schema is '{schema}', expected '{SERVE_SCHEMA}'"
                )));
            }
            let version = num_field(&json, "version")? as u32;
            if version != SERVE_SCHEMA_VERSION {
                return Err(malformed(&format!(
                    "journal schema version {version} unsupported (this build writes \
                     {SERVE_SCHEMA_VERSION})"
                )));
            }
            return Ok(Record::Header { version });
        }
        match str_field(&json, "rec")? {
            "rejected" => Ok(Record::Rejected {
                line: num_field(&json, "line")? as usize,
                fp: str_field(&json, "fp")?.to_owned(),
                error: str_field(&json, "error")?.to_owned(),
            }),
            "start" => Ok(Record::Start {
                job: str_field(&json, "job")?.to_owned(),
                kind: str_field(&json, "kind")?.to_owned(),
                fp: str_field(&json, "fp")?.to_owned(),
                total_points: num_field(&json, "total_points")? as usize,
            }),
            "point" => Ok(Record::Point {
                job: str_field(&json, "job")?.to_owned(),
                data: json
                    .get("data")
                    .ok_or_else(|| malformed("missing field 'data'"))?
                    .clone(),
            }),
            "end" => {
                let job = str_field(&json, "job")?.to_owned();
                let status = match str_field(&json, "status")? {
                    "done" => JobStatus::Done {
                        points: num_field(&json, "points")? as usize,
                    },
                    "failed" => JobStatus::Failed {
                        error: str_field(&json, "error")?.to_owned(),
                    },
                    other => {
                        return Err(malformed(&format!("unknown end status '{other}'")));
                    }
                };
                Ok(Record::End { job, status })
            }
            "stopped" => Ok(Record::Stopped),
            other => Err(malformed(&format!("unknown journal record '{other}'"))),
        }
    }
}

/// Recovers `(records, valid prefix byte length)` from raw journal
/// content.
///
/// Only complete, newline-terminated lines count; a torn final line
/// (no trailing newline — the signature of a kill mid-append) is
/// dropped, and the returned byte length is where appending must
/// resume (the daemon truncates the file to it). A malformed
/// newline-terminated line is an error: the journal is machine-written
/// and mid-file corruption must not be silently skipped.
///
/// Empty content yields no records — a fresh journal.
///
/// # Errors
///
/// Returns [`ModelError::InvalidConfig`] on a malformed complete line.
pub fn read_journal(content: &str) -> Result<(Vec<Record>, usize), ModelError> {
    let mut records = Vec::new();
    let mut valid_len = 0usize;
    let mut offset = 0usize;
    for line in content.split_inclusive('\n') {
        if !line.ends_with('\n') {
            break; // torn tail
        }
        let record = Record::parse(line.trim_end_matches('\n')).map_err(|e| {
            ModelError::InvalidConfig(format!(
                "journal byte {offset}: corrupt record (not a torn tail): {e}"
            ))
        })?;
        records.push(record);
        offset += line.len();
        valid_len = offset;
    }
    Ok((records, valid_len))
}

/// Where journal records go as they are produced.
///
/// The daemon's sink appends to the journal file (fsync'd per record);
/// tests substitute in-memory or failing sinks. An `Err` from
/// [`append`](JournalSink::append) must abort the drain — the scheduler
/// propagates it and the daemon exits with code 1 naming the journal
/// path, never panicking.
pub trait JournalSink {
    /// Durably appends one record.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] when the record cannot be
    /// serialised or the underlying medium refuses the write (e.g. a
    /// full disk); the message names the journal path.
    fn append(&mut self, record: &Record) -> Result<(), ModelError>;
}

/// Per-job progress recovered from the journal.
#[derive(Debug, Clone)]
pub struct JobProgress {
    /// Job kind from the start record.
    pub kind: String,
    /// Fingerprint of the raw queue line that defined the job.
    pub fp: String,
    /// Total points the start record announced.
    pub total_points: usize,
    /// Journaled point data, contiguous from point 0.
    pub points: Vec<Json>,
    /// Terminal status, if the job's end record was journaled.
    pub status: Option<JobStatus>,
}

/// The fold of a journal: per-job progress plus the rejected lines.
#[derive(Debug, Clone, Default)]
pub struct JournalState {
    /// `(job id, progress)` in start-record order.
    pub jobs: Vec<(String, JobProgress)>,
    /// `(queue line number, fp, error)` of journaled rejections.
    pub rejected: Vec<(usize, String, String)>,
}

impl JournalState {
    /// Progress of job `id`, if journaled.
    #[must_use]
    pub fn job(&self, id: &str) -> Option<&JobProgress> {
        self.jobs.iter().find(|(j, _)| j == id).map(|(_, p)| p)
    }

    /// Folds a record sequence into per-job progress, validating the
    /// journal's structural invariants.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] when the first record is
    /// not the header (or a header reappears), a point or end record
    /// precedes its start, a start or rejected record repeats, points
    /// arrive out of order, records follow a job's end, or a done
    /// record's point count disagrees with the journaled points.
    pub fn replay(records: &[Record]) -> Result<JournalState, ModelError> {
        let fail = |msg: String| Err(ModelError::InvalidConfig(format!("journal replay: {msg}")));
        let mut state = JournalState::default();
        for (k, record) in records.iter().enumerate() {
            match record {
                Record::Header { .. } => {
                    if k != 0 {
                        return fail(format!("header reappears at record {k}"));
                    }
                }
                _ if k == 0 => {
                    return fail("first record is not the schema header".into());
                }
                Record::Rejected { line, fp, error } => {
                    if state.rejected.iter().any(|(l, _, _)| l == line) {
                        return fail(format!("queue line {line} rejected twice"));
                    }
                    state.rejected.push((*line, fp.clone(), error.clone()));
                }
                Record::Start {
                    job,
                    kind,
                    fp,
                    total_points,
                } => {
                    if state.job(job).is_some() {
                        return fail(format!("job '{job}' started twice"));
                    }
                    state.jobs.push((
                        job.clone(),
                        JobProgress {
                            kind: kind.clone(),
                            fp: fp.clone(),
                            total_points: *total_points,
                            points: Vec::new(),
                            status: None,
                        },
                    ));
                }
                Record::Point { job, data } => {
                    let Some((_, progress)) = state.jobs.iter_mut().find(|(j, _)| j == job) else {
                        return fail(format!("point for job '{job}' before its start"));
                    };
                    if progress.status.is_some() {
                        return fail(format!("point for job '{job}' after its end"));
                    }
                    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                    let index = num_field(data, "point")? as usize;
                    if index != progress.points.len() {
                        return fail(format!(
                            "job '{job}' point {index} journaled after {} point(s)",
                            progress.points.len()
                        ));
                    }
                    if index >= progress.total_points {
                        return fail(format!(
                            "job '{job}' point {index} beyond its {} total",
                            progress.total_points
                        ));
                    }
                    progress.points.push(data.clone());
                }
                Record::End { job, status } => {
                    let Some((_, progress)) = state.jobs.iter_mut().find(|(j, _)| j == job) else {
                        return fail(format!("end for job '{job}' before its start"));
                    };
                    if progress.status.is_some() {
                        return fail(format!("job '{job}' ended twice"));
                    }
                    if let JobStatus::Done { points } = status {
                        if *points != progress.points.len() || *points != progress.total_points {
                            return fail(format!(
                                "job '{job}' done with {points} point(s) but journaled {} of {}",
                                progress.points.len(),
                                progress.total_points
                            ));
                        }
                    }
                    progress.status = Some(status.clone());
                }
                // A stopped marker only says the drain exited early; it
                // changes no job state and may appear any number of
                // times (one per interrupted drain).
                Record::Stopped => {}
            }
        }
        Ok(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(job: &str, index: usize) -> Record {
        Record::Point {
            job: job.into(),
            data: Json::Obj(vec![("point".into(), Json::Num(index as f64))]),
        }
    }

    fn journal_text(records: &[Record]) -> String {
        records
            .iter()
            .map(|r| r.to_line().expect("finite record") + "\n")
            .collect::<String>()
    }

    fn well_formed() -> Vec<Record> {
        vec![
            Record::Header {
                version: SERVE_SCHEMA_VERSION,
            },
            Record::Rejected {
                line: 2,
                fp: line_fp("garbage"),
                error: "malformed".into(),
            },
            Record::Start {
                job: "g1".into(),
                kind: "grid".into(),
                fp: line_fp("spec"),
                total_points: 2,
            },
            point("g1", 0),
            point("g1", 1),
            Record::End {
                job: "g1".into(),
                status: JobStatus::Done { points: 2 },
            },
        ]
    }

    #[test]
    fn records_round_trip_through_their_lines() {
        for record in well_formed() {
            let line = record.to_line().expect("finite record");
            assert_eq!(Record::parse(&line).expect("parses"), record, "{line}");
        }
        let failed = Record::End {
            job: "g1".into(),
            status: JobStatus::Failed {
                error: "boom \"quoted\"".into(),
            },
        };
        assert_eq!(
            Record::parse(&failed.to_line().expect("finite record")).expect("parses"),
            failed
        );
        let stopped = Record::Stopped;
        let line = stopped.to_line().expect("finite record");
        assert_eq!(line, "{\"rec\":\"stopped\"}");
        assert_eq!(Record::parse(&line).expect("parses"), stopped);
    }

    #[test]
    fn replay_ignores_stopped_markers_anywhere_after_the_header() {
        let mut records = well_formed();
        // One per interrupted drain: between jobs, mid-job, trailing.
        records.insert(2, Record::Stopped);
        records.insert(5, Record::Stopped);
        records.push(Record::Stopped);
        let state = JournalState::replay(&records).expect("stopped markers are transparent");
        let progress = state.job("g1").expect("job recovered");
        assert_eq!(progress.points.len(), 2);
        assert_eq!(progress.status, Some(JobStatus::Done { points: 2 }));
        // But not *before* the header: the header-first invariant wins.
        assert!(JournalState::replay(&[Record::Stopped]).is_err());
    }

    #[test]
    fn line_fp_is_deterministic_and_content_sensitive() {
        assert_eq!(line_fp("abc"), line_fp("abc"));
        assert_ne!(line_fp("abc"), line_fp("abd"));
        assert_ne!(line_fp("abc"), line_fp("abc "));
        assert_eq!(line_fp("abc").len(), 16);
    }

    #[test]
    fn torn_tail_recovers_to_the_valid_prefix_at_every_offset() {
        let text = journal_text(&well_formed());
        let (all, full_len) = read_journal(&text).expect("full journal reads");
        assert_eq!(all.len(), 6);
        assert_eq!(full_len, text.len());
        for cut in 0..text.len() {
            let (records, valid_len) = read_journal(&text[..cut])
                .unwrap_or_else(|e| panic!("cut {cut}: torn tail must recover, got {e}"));
            assert!(valid_len <= cut, "cut {cut}");
            assert_eq!(
                records,
                all[..records.len()],
                "cut {cut}: not a record prefix"
            );
            assert_eq!(
                text[..valid_len],
                journal_text(&records),
                "cut {cut}: valid_len does not cover exactly the recovered records"
            );
        }
    }

    #[test]
    fn complete_corrupt_lines_are_errors_not_torn_tails() {
        let mut text = journal_text(&well_formed());
        text.push_str("{\"rec\":\"mystery\"}\n");
        assert!(read_journal(&text).is_err(), "corrupt complete line");
        let mid = journal_text(&well_formed()).replace("\"rec\":\"start\"", "\"rec\":\"sturt\"");
        assert!(read_journal(&mid).is_err(), "corrupt mid-file line");
    }

    #[test]
    fn replay_validates_journal_structure() {
        let state = JournalState::replay(&well_formed()).expect("well-formed replays");
        assert_eq!(
            state.rejected,
            vec![(2, line_fp("garbage"), "malformed".to_owned())]
        );
        let progress = state.job("g1").expect("job recovered");
        assert_eq!(progress.points.len(), 2);
        assert_eq!(progress.status, Some(JobStatus::Done { points: 2 }));

        let header = Record::Header {
            version: SERVE_SCHEMA_VERSION,
        };
        let bad: Vec<(Vec<Record>, &str)> = vec![
            (vec![point("g1", 0)], "missing header"),
            (vec![header.clone(), header.clone()], "double header"),
            (vec![header.clone(), point("g1", 0)], "point before start"),
            (
                vec![
                    header.clone(),
                    Record::End {
                        job: "g1".into(),
                        status: JobStatus::Done { points: 0 },
                    },
                ],
                "end before start",
            ),
            (
                vec![
                    header.clone(),
                    Record::Start {
                        job: "g1".into(),
                        kind: "grid".into(),
                        fp: String::new(),
                        total_points: 2,
                    },
                    point("g1", 1),
                ],
                "point out of order",
            ),
            (
                vec![
                    header.clone(),
                    Record::Start {
                        job: "g1".into(),
                        kind: "grid".into(),
                        fp: String::new(),
                        total_points: 2,
                    },
                    point("g1", 0),
                    Record::End {
                        job: "g1".into(),
                        status: JobStatus::Done { points: 1 },
                    },
                ],
                "done with missing points",
            ),
        ];
        for (records, what) in bad {
            assert!(
                JournalState::replay(&records).is_err(),
                "accepted journal with {what}"
            );
        }
    }
}
