//! # flexray-serve
//!
//! A crash-safe analysis-as-a-service daemon over the DATE'07
//! optimisation stack: jobs (grid sweeps, single-axis sweeps, fig9
//! runs, fuzz campaigns) are read from a file-based JSONL job queue,
//! dispatched onto the shared work-stealing pool
//! ([`flexray_util::scoped_consume_with`], per-worker state; each
//! unit's candidate evaluations additionally fan out across the warm
//! multi-session `Evaluator` pool via `eval_threads`), and every
//! completed point is streamed to an append-only, schema-versioned
//! JSONL *journal* ([`journal`]) the moment it lands.
//!
//! The journal is the service contract:
//!
//! * **Crash safety** — the daemon may be SIGKILLed at any instant; a
//!   restart replays the journal, truncates the torn tail (at most the
//!   final, newline-less line), and continues exactly where the journal
//!   ends.
//! * **No recomputation** — jobs with an `end` record are never
//!   re-evaluated (their reports are rewritten from journal data);
//!   in-flight jobs resume from their last journaled point.
//! * **Determinism** — every journal record is a pure function of the
//!   queue content (wall-clock fields are zeroed: the *deterministic
//!   projection*), and points are journaled strictly in queue/point
//!   order, so a killed-and-replayed run's journal and reports are
//!   **byte-identical** to an uninterrupted run's. The kill-and-replay
//!   differential suite in `tests/` locks this down.
//!
//! [`spec`] defines the job-spec line format (`flexray-serve-job`
//! schema v1), [`journal`] the journal record format (`flexray-serve`
//! schema v2), [`scheduler`] the static-plan concurrent job scheduler
//! (up to `jobs=K` jobs share the pool while the journal stays a
//! deterministic function of `(queue, K)`), [`control`] the shared
//! shutdown/cancel/status surface, [`socket`] the line-oriented JSONL
//! TCP front-end (`submit`/`status`/`cancel`/`drain`/`shutdown`), and
//! [`daemon`] the queue-draining engine behind the `flexray-serve`
//! binary.

#![warn(missing_docs)]
#![warn(clippy::all)]
#![deny(deprecated)]

pub mod control;
pub mod daemon;
pub mod journal;
pub mod scheduler;
pub mod socket;
pub mod spec;

pub use control::{stop_path, JobView, ServeControl};
pub use daemon::{run_serve, run_serve_with, JobSummary, ServeConfig, ServeOutcome};
pub use journal::{
    read_journal, JobStatus, JournalSink, JournalState, Record, SERVE_SCHEMA, SERVE_SCHEMA_VERSION,
};
pub use scheduler::{plan_events, run_schedule, Event, JobResult, PlanShape, ScheduledJob};
pub use socket::{handle_request, spawn_listener, SocketShared};
pub use spec::{parse_job, JobKind, JobSpec, JOB_SCHEMA, JOB_SCHEMA_VERSION};
