//! The queue-draining engine behind the `flexray-serve` binary.
//!
//! [`run_serve`] performs one *drain*: it reads the job queue, replays
//! the journal (recovering completed and in-flight work), truncates
//! the journal's torn tail, then processes every queue line in order —
//! skipping blanks and `#` comments, journaling rejections for
//! malformed specs, and executing each job's remaining points on a
//! [`flexray_util::scoped_consume_with`] worker pool. Jobs whose `end`
//! record is journaled are **never recomputed**: their reports are
//! rewritten straight from journal data.
//!
//! Points stream to the journal the moment they complete, in point
//! order, via unbuffered `write_all` calls — a SIGKILL can lose at
//! most the final, newline-less line, which replay drops as the torn
//! tail. Failures are deterministic: every unit runs to completion
//! (no abort flag, whose timing a race could observe) and the first
//! error *in unit order* becomes the job's `failed` status, so a
//! killed-and-replayed run journals byte-identical records.

use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use flexray_bench::fuzz::{fuzz_app, FuzzPoint};
use flexray_bench::grid::{solve_app, GridPoint, PointSpec};
use flexray_bench::report::{point_to_json, GridReportHeader, Json};
use flexray_model::ModelError;
use flexray_util::scoped_consume_with;

use crate::journal::{
    line_fp, read_journal, JobStatus, JournalState, Record, SERVE_SCHEMA_VERSION,
};
use crate::spec::{parse_job, JobKind, JobSpec};

/// One drain's inputs: where the queue, journal and reports live, and
/// how many workers to dispatch units on.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The JSONL job queue (one job spec per line; `#` comments and
    /// blank lines are skipped). Append-only: existing lines must not
    /// change once journaled.
    pub queue: PathBuf,
    /// The append-only journal; created if absent, replayed if not.
    pub journal: PathBuf,
    /// Directory for per-job reports (`<id>.jsonl`); created if
    /// absent.
    pub reports: PathBuf,
    /// Worker threads for unit dispatch (0 = all cores). Results are
    /// bit-identical for any value.
    pub threads: usize,
}

/// What one drain did for one job.
#[derive(Debug, Clone)]
pub struct JobSummary {
    /// Job id.
    pub id: String,
    /// Job kind (`grid`/`sweep`/`fig9`/`fuzz`).
    pub kind: String,
    /// Points recovered from the journal (not recomputed).
    pub recovered: usize,
    /// Points computed by this drain.
    pub computed: usize,
    /// Optimiser candidate evaluations performed by this drain — a
    /// runtime metric, deliberately *not* journaled (a resumed job
    /// would journal only its post-restart share, breaking the
    /// byte-identity contract).
    pub evaluations: u64,
    /// The job's terminal status.
    pub status: JobStatus,
}

/// Everything one drain did.
#[derive(Debug, Clone, Default)]
pub struct ServeOutcome {
    /// Per-job summaries, in queue order.
    pub jobs: Vec<JobSummary>,
    /// `(queue line number, error)` of rejected lines, in queue order
    /// (journaled rejections included).
    pub rejected: Vec<(usize, String)>,
}

fn infra(what: &str, err: &dyn std::fmt::Display) -> ModelError {
    ModelError::InvalidConfig(format!("serve: {what}: {err}"))
}

/// The journal's append handle: unbuffered, one `write_all` per line,
/// so a kill never loses a record that was reported as written.
struct JournalWriter {
    file: File,
    path: PathBuf,
}

impl JournalWriter {
    fn append(&mut self, record: &Record) -> Result<(), ModelError> {
        let mut line = record.to_line()?;
        line.push('\n');
        self.file
            .write_all(line.as_bytes())
            .map_err(|e| infra(&format!("append to journal {}", self.path.display()), &e))
    }
}

/// Effective worker count: `threads`, or all cores when 0.
fn worker_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        threads
    }
}

/// Runs `n_points × apps` units on the worker pool and streams each
/// point's aggregated outcomes to `complete` as soon as every unit of
/// that point — and of all points before it — has succeeded.
///
/// All units run to completion regardless of failures; the first
/// error *in unit order* is returned as the failure message, so the
/// journaled prefix and the terminal status are pure functions of the
/// inputs no matter how the pool interleaves. Returns
/// `(points completed, evaluations, first failure)`; `complete`'s own
/// error (journal IO) aborts the drain.
fn drive_units<U, F, C>(
    threads: usize,
    n_points: usize,
    apps: usize,
    unit: F,
    mut complete: C,
) -> Result<(usize, u64, Option<String>), ModelError>
where
    U: Send,
    F: Fn(usize) -> Result<(U, u64), ModelError> + Sync,
    C: FnMut(usize, Vec<U>) -> Result<(), ModelError>,
{
    let n_units = n_points * apps;
    if n_units == 0 {
        return Ok((0, 0, None));
    }
    let mut states = vec![(); worker_threads(threads).clamp(1, n_units)];
    let mut buffer: Vec<Option<Result<(U, u64), ModelError>>> =
        (0..n_units).map(|_| None).collect();
    let mut next = 0usize;
    let mut current: Vec<U> = Vec::with_capacity(apps);
    let mut points_done = 0usize;
    let mut evaluations = 0u64;
    let mut failure: Option<String> = None;
    let mut sink_err: Option<ModelError> = None;
    scoped_consume_with(
        &mut states,
        n_units,
        |(), u| unit(u),
        |u, result| {
            buffer[u] = Some(result);
            while next < n_units {
                let Some(slot) = buffer[next].take() else {
                    break;
                };
                match slot {
                    Ok((outcome, evals)) => {
                        evaluations += evals;
                        if failure.is_none() {
                            current.push(outcome);
                            if current.len() == apps {
                                let outcomes = std::mem::take(&mut current);
                                if sink_err.is_none() {
                                    if let Err(e) = complete(points_done, outcomes) {
                                        sink_err = Some(e);
                                    }
                                }
                                points_done += 1;
                            }
                        }
                    }
                    Err(e) => {
                        if failure.is_none() {
                            failure = Some(e.to_string());
                        }
                    }
                }
                next += 1;
            }
        },
    );
    if let Some(e) = sink_err {
        return Err(e);
    }
    Ok((points_done, evaluations, failure))
}

/// Executes a job's points `skip..total`, journaling each as it lands.
/// Returns `(new point data, points computed, evaluations, status)`.
fn execute(
    spec: &JobSpec,
    skip: usize,
    threads: usize,
    journal: &mut JournalWriter,
) -> Result<(Vec<Json>, usize, u64, JobStatus), ModelError> {
    let total = spec.total_points();
    let mut new_points: Vec<Json> = Vec::new();
    let (computed, evaluations, failure) = match &spec.kind {
        JobKind::Grid(cfg) => {
            let specs: Vec<PointSpec> = (skip..total).map(|p| cfg.point(p)).collect();
            let apps = cfg.apps_per_point;
            drive_units(
                threads,
                total - skip,
                apps,
                |u| {
                    solve_app(cfg, &specs[u / apps], u % apps).map(|run| {
                        let evals: u64 = run.0.iter().map(|r| r.evaluations as u64).sum();
                        (run, evals)
                    })
                },
                |rel, runs| {
                    let mut point = GridPoint::from_apps(cfg, &specs[rel], runs);
                    for (_, stats) in &mut point.algos {
                        // Deterministic projection: wall-clock is the
                        // one field of a point that is not a function
                        // of the queue, so the journal zeroes it.
                        stats.avg_time_s = 0.0;
                    }
                    let data = point_to_json(&point);
                    journal.append(&Record::Point {
                        job: spec.id.clone(),
                        data: data.clone(),
                    })?;
                    new_points.push(data);
                    Ok(())
                },
            )?
        }
        JobKind::Fuzz(cfg) => {
            let grid = cfg.grid();
            let specs: Vec<PointSpec> = (skip..total).map(|p| grid.point(p)).collect();
            let apps = cfg.apps_per_point;
            drive_units(
                threads,
                total - skip,
                apps,
                |u| {
                    let spec = &specs[u / apps];
                    let app = u % apps;
                    fuzz_app(cfg, spec, app, grid.seed(spec.index, app)).map(|o| {
                        let evals = o.evaluations as u64;
                        (o, evals)
                    })
                },
                |rel, outcomes| {
                    let data = FuzzPoint::from_apps(&specs[rel], outcomes).to_json();
                    journal.append(&Record::Point {
                        job: spec.id.clone(),
                        data: data.clone(),
                    })?;
                    new_points.push(data);
                    Ok(())
                },
            )?
        }
    };
    let status = match failure {
        None => JobStatus::Done { points: total },
        Some(error) => JobStatus::Failed { error },
    };
    journal.append(&Record::End {
        job: spec.id.clone(),
        status: status.clone(),
    })?;
    Ok((new_points, computed, evaluations, status))
}

/// Writes `reports/<id>.jsonl` — the job's schema header followed by
/// its point lines, straight from journal data. The codec's
/// parse→write round trip is byte-stable, so a report rewritten from
/// the journal is byte-identical to one written live.
fn write_report<'a>(
    reports: &Path,
    spec: &JobSpec,
    points: impl Iterator<Item = &'a Json>,
) -> Result<(), ModelError> {
    let mut out = match &spec.kind {
        JobKind::Grid(cfg) => GridReportHeader::of(cfg).to_line()?,
        JobKind::Fuzz(cfg) => cfg.header_line()?,
    };
    out.push('\n');
    for data in points {
        out.push_str(&data.write()?);
        out.push('\n');
    }
    let path = reports.join(format!("{}.jsonl", spec.id));
    fs::write(&path, out).map_err(|e| infra(&format!("write report {}", path.display()), &e))
}

/// Performs one drain of the queue. See the module docs for the
/// crash-safety and determinism contract.
///
/// # Errors
///
/// Returns [`ModelError::InvalidConfig`] on IO failures, a corrupt
/// journal (a malformed record *before* the torn tail), or a queue
/// line that changed under the journal (fingerprint mismatch). Job
/// failures and rejected queue lines are *not* errors — they are
/// journaled and reported in the [`ServeOutcome`].
pub fn run_serve(cfg: &ServeConfig) -> Result<ServeOutcome, ModelError> {
    let queue = fs::read_to_string(&cfg.queue)
        .map_err(|e| infra(&format!("read queue {}", cfg.queue.display()), &e))?;
    let content = match fs::read_to_string(&cfg.journal) {
        Ok(content) => content,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => {
            return Err(infra(
                &format!("read journal {}", cfg.journal.display()),
                &e,
            ))
        }
    };
    let (records, valid_len) = read_journal(&content)?;
    let state = JournalState::replay(&records)?;
    fs::create_dir_all(&cfg.reports)
        .map_err(|e| infra(&format!("create reports dir {}", cfg.reports.display()), &e))?;

    // Not `truncate(true)`: the valid prefix must survive — only the
    // torn tail past `valid_len` is cut, by the `set_len` below.
    let file = OpenOptions::new()
        .create(true)
        .truncate(false)
        .write(true)
        .open(&cfg.journal)
        .map_err(|e| infra(&format!("open journal {}", cfg.journal.display()), &e))?;
    file.set_len(valid_len as u64)
        .map_err(|e| infra("truncate journal torn tail", &e))?;
    let mut journal = JournalWriter {
        file,
        path: cfg.journal.clone(),
    };
    journal
        .file
        .seek(SeekFrom::End(0))
        .map_err(|e| infra("seek journal", &e))?;
    if records.is_empty() {
        journal.append(&Record::Header {
            version: SERVE_SCHEMA_VERSION,
        })?;
    }

    let mut outcome = ServeOutcome::default();
    let mut seen: Vec<String> = Vec::new();
    for (n, raw) in queue.lines().enumerate() {
        let lineno = n + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fp = line_fp(raw);
        if let Some((_, journaled_fp, error)) = state.rejected.iter().find(|(l, _, _)| *l == lineno)
        {
            if *journaled_fp != fp {
                return Err(infra(
                    &format!("queue line {lineno}"),
                    &"line changed under the journal (rejected-record fingerprint mismatch)",
                ));
            }
            outcome.rejected.push((lineno, error.clone()));
            continue;
        }
        let spec = match parse_job(raw).and_then(|spec| {
            if seen.contains(&spec.id) {
                Err(ModelError::InvalidConfig(format!(
                    "duplicate job id '{}'",
                    spec.id
                )))
            } else {
                Ok(spec)
            }
        }) {
            Ok(spec) => spec,
            Err(e) => {
                let error = e.to_string();
                journal.append(&Record::Rejected {
                    line: lineno,
                    fp,
                    error: error.clone(),
                })?;
                outcome.rejected.push((lineno, error));
                continue;
            }
        };
        seen.push(spec.id.clone());

        let total = spec.total_points();
        let (prior, status) = match state.job(&spec.id) {
            Some(progress) => {
                if progress.fp != fp {
                    return Err(infra(
                        &format!("job '{}'", spec.id),
                        &"queue line changed under the journal (fingerprint mismatch)",
                    ));
                }
                if progress.kind != spec.kind_name || progress.total_points != total {
                    return Err(infra(
                        &format!("job '{}'", spec.id),
                        &"journal start record disagrees with the parsed spec",
                    ));
                }
                (progress.points.clone(), progress.status.clone())
            }
            None => {
                journal.append(&Record::Start {
                    job: spec.id.clone(),
                    kind: spec.kind_name.clone(),
                    fp,
                    total_points: total,
                })?;
                (Vec::new(), None)
            }
        };
        let recovered = prior.len();
        let (summary_status, computed, evaluations) = match status {
            Some(status) => {
                // Terminal in the journal: never recomputed. Done jobs
                // get their report rewritten from journal data.
                if let JobStatus::Done { .. } = &status {
                    write_report(&cfg.reports, &spec, prior.iter())?;
                }
                (status, 0, 0)
            }
            None => {
                let (new_points, computed, evaluations, status) =
                    execute(&spec, recovered, cfg.threads, &mut journal)?;
                if let JobStatus::Done { .. } = &status {
                    write_report(&cfg.reports, &spec, prior.iter().chain(new_points.iter()))?;
                }
                (status, computed, evaluations)
            }
        };
        outcome.jobs.push(JobSummary {
            id: spec.id,
            kind: spec.kind_name,
            recovered,
            computed,
            evaluations,
            status: summary_status,
        });
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    type Landed = Vec<(usize, Vec<usize>)>;

    fn run(threads: usize) -> (Landed, usize, u64, Option<String>) {
        let mut landed = Vec::new();
        let (points, evals, failure) = drive_units(
            threads,
            3,
            2,
            |u| {
                if u == 3 {
                    Err(ModelError::InvalidConfig(format!("unit {u} exploded")))
                } else {
                    Ok((u, 1))
                }
            },
            |rel, outcomes| {
                landed.push((rel, outcomes));
                Ok(())
            },
        )
        .expect("sink never fails here");
        (landed, points, evals, failure)
    }

    #[test]
    fn drive_units_streams_a_contiguous_prefix_and_fails_deterministically() {
        for threads in [1, 4] {
            let (landed, points, evals, failure) = run(threads);
            // Units 0,1 complete point 0; unit 3 fails, so point 1
            // never lands and point 2 is suppressed — regardless of
            // pool interleaving.
            assert_eq!(landed, vec![(0, vec![0, 1])], "threads={threads}");
            assert_eq!(points, 1, "threads={threads}");
            assert_eq!(evals, 5, "all five successful units count");
            assert_eq!(
                failure.as_deref(),
                Some("invalid configuration: unit 3 exploded"),
                "threads={threads}: first failure in unit order"
            );
        }
    }

    #[test]
    fn drive_units_handles_the_empty_job() {
        let (points, evals, failure) = drive_units(
            4,
            0,
            3,
            |_| -> Result<((), u64), ModelError> { unreachable!("no units") },
            |_, _| Ok(()),
        )
        .expect("empty drive succeeds");
        assert_eq!((points, evals, failure), (0, 0, None));
    }

    #[test]
    fn sink_errors_abort_the_drain() {
        let err = drive_units(
            1,
            1,
            1,
            |u| Ok((u, 0)),
            |_, _| Err(ModelError::InvalidConfig("journal io".into())),
        )
        .expect_err("sink error propagates");
        assert!(err.to_string().contains("journal io"));
    }
}
