//! The queue-draining engine behind the `flexray-serve` binary.
//!
//! [`run_serve_with`] performs one *drain*: it reads the job queue,
//! replays the journal (recovering completed and in-flight work),
//! truncates the journal's torn tail, journals a rejection for every
//! malformed queue line, then hands every job — terminal ones
//! included — to the static-plan scheduler ([`crate::scheduler`]),
//! which runs up to [`ServeConfig::jobs`] jobs concurrently over the
//! shared work-stealing pool. Jobs whose `end` record is journaled are
//! **never recomputed**: their reports are rewritten straight from
//! journal data.
//!
//! Points stream to the journal the moment their plan slot is reached,
//! via unbuffered `write_all` calls — a SIGKILL can lose at most the
//! final, newline-less line, which replay drops as the torn tail. The
//! journal's record order is the scheduler's static plan, a pure
//! function of `(queue content, jobs)`: a killed-and-replayed run
//! journals byte-identical records, and per-job reports are identical
//! for *any* `jobs`/`threads` setting.
//!
//! A stop request (the stop file `<journal>.stop`, or a socket
//! `shutdown`) is honoured *inside* the drain at unit boundaries: the
//! pool stops claiming units, in-flight units are journaled, and a
//! clean `stopped` record marks the early exit — resumable on restart.

use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use flexray_bench::report::{GridReportHeader, Json};
use flexray_model::ModelError;

use crate::control::{stop_path, ServeControl};
use crate::journal::{
    line_fp, read_journal, JobStatus, JournalSink, JournalState, Record, SERVE_SCHEMA_VERSION,
};
use crate::scheduler::{run_schedule, ScheduledJob};
use crate::spec::{parse_job, JobKind, JobSpec};

/// One drain's inputs: where the queue, journal and reports live, and
/// how wide to dispatch.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The JSONL job queue (one job spec per line; `#` comments and
    /// blank lines are skipped). Append-only: existing lines must not
    /// change once journaled.
    pub queue: PathBuf,
    /// The append-only journal; created if absent, replayed if not.
    pub journal: PathBuf,
    /// Directory for per-job reports (`<id>.jsonl`); created if
    /// absent.
    pub reports: PathBuf,
    /// Worker threads for unit dispatch (0 = all cores). Results are
    /// bit-identical for any value.
    pub threads: usize,
    /// Jobs scheduled concurrently (clamped to ≥ 1). The journal's
    /// record order depends on this (it is a pure function of the
    /// queue *and* this), but per-job reports do not.
    pub jobs: usize,
}

/// What one drain did for one job.
#[derive(Debug, Clone)]
pub struct JobSummary {
    /// Job id.
    pub id: String,
    /// Job kind (`grid`/`sweep`/`fig9`/`fuzz`).
    pub kind: String,
    /// Points recovered from the journal (not recomputed).
    pub recovered: usize,
    /// Points computed by this drain.
    pub computed: usize,
    /// Optimiser candidate evaluations performed by this drain — a
    /// runtime metric, deliberately *not* journaled (a resumed job
    /// would journal only its post-restart share, breaking the
    /// byte-identity contract).
    pub evaluations: u64,
    /// The job's terminal status — `None` when the drain stopped with
    /// the job still in flight (resumable on restart).
    pub status: Option<JobStatus>,
}

/// Everything one drain did.
#[derive(Debug, Clone, Default)]
pub struct ServeOutcome {
    /// Per-job summaries, in queue order.
    pub jobs: Vec<JobSummary>,
    /// `(queue line number, error)` of rejected lines, in queue order
    /// (journaled rejections included).
    pub rejected: Vec<(usize, String)>,
    /// Whether a stop request ended the drain before the plan
    /// completed (a `stopped` record was journaled; restart resumes).
    pub stopped: bool,
}

fn infra(what: &str, err: &dyn std::fmt::Display) -> ModelError {
    ModelError::InvalidConfig(format!("serve: {what}: {err}"))
}

/// The journal's append handle: unbuffered, one `write_all` per line,
/// so a kill never loses a record that was reported as written.
struct JournalWriter {
    file: File,
    path: PathBuf,
}

impl JournalSink for JournalWriter {
    fn append(&mut self, record: &Record) -> Result<(), ModelError> {
        let mut line = record.to_line()?;
        line.push('\n');
        self.file
            .write_all(line.as_bytes())
            .map_err(|e| infra(&format!("append to journal {}", self.path.display()), &e))
    }
}

/// Effective worker count: `threads`, or all cores when 0.
fn worker_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        threads
    }
}

/// Writes `reports/<id>.jsonl` — the job's schema header followed by
/// its point lines, straight from journal data. The codec's
/// parse→write round trip is byte-stable, so a report rewritten from
/// the journal is byte-identical to one written live.
fn write_report<'a>(
    reports: &Path,
    spec: &JobSpec,
    points: impl Iterator<Item = &'a Json>,
) -> Result<(), ModelError> {
    let mut out = match &spec.kind {
        JobKind::Grid(cfg) => GridReportHeader::of(cfg).to_line()?,
        JobKind::Fuzz(cfg) => cfg.header_line()?,
    };
    out.push('\n');
    for data in points {
        out.push_str(&data.write()?);
        out.push('\n');
    }
    let path = reports.join(format!("{}.jsonl", spec.id));
    fs::write(&path, out).map_err(|e| infra(&format!("write report {}", path.display()), &e))
}

/// Parses the queue against the replayed journal state: journals a
/// rejection for every *new* malformed line (all of them up front,
/// before any job starts), verifies fingerprints of already-journaled
/// lines, and assembles the scheduler's job list.
fn parse_queue(
    queue: &str,
    state: &JournalState,
    journal: &mut dyn JournalSink,
    outcome: &mut ServeOutcome,
) -> Result<Vec<ScheduledJob>, ModelError> {
    let mut jobs: Vec<ScheduledJob> = Vec::new();
    for (n, raw) in queue.lines().enumerate() {
        let lineno = n + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fp = line_fp(raw);
        if let Some((_, journaled_fp, error)) = state.rejected.iter().find(|(l, _, _)| *l == lineno)
        {
            if *journaled_fp != fp {
                return Err(infra(
                    &format!("queue line {lineno}"),
                    &"line changed under the journal (rejected-record fingerprint mismatch)",
                ));
            }
            outcome.rejected.push((lineno, error.clone()));
            continue;
        }
        let spec = match parse_job(raw).and_then(|spec| {
            if jobs.iter().any(|job| job.spec.id == spec.id) {
                Err(ModelError::InvalidConfig(format!(
                    "duplicate job id '{}'",
                    spec.id
                )))
            } else {
                Ok(spec)
            }
        }) {
            Ok(spec) => spec,
            Err(e) => {
                let error = e.to_string();
                journal.append(&Record::Rejected {
                    line: lineno,
                    fp,
                    error: error.clone(),
                })?;
                outcome.rejected.push((lineno, error));
                continue;
            }
        };
        let (recovered, start_journaled, terminal) = match state.job(&spec.id) {
            Some(progress) => {
                if progress.fp != fp {
                    return Err(infra(
                        &format!("job '{}'", spec.id),
                        &"queue line changed under the journal (fingerprint mismatch)",
                    ));
                }
                if progress.kind != spec.kind_name || progress.total_points != spec.total_points() {
                    return Err(infra(
                        &format!("job '{}'", spec.id),
                        &"journal start record disagrees with the parsed spec",
                    ));
                }
                (progress.points.clone(), true, progress.status.clone())
            }
            None => (Vec::new(), false, None),
        };
        jobs.push(ScheduledJob {
            spec,
            fp,
            recovered,
            start_journaled,
            terminal,
        });
    }
    Ok(jobs)
}

/// Performs one drain of the queue with a default (inert) control
/// block. See [`run_serve_with`].
///
/// # Errors
///
/// See [`run_serve_with`].
pub fn run_serve(cfg: &ServeConfig) -> Result<ServeOutcome, ModelError> {
    run_serve_with(cfg, &ServeControl::default())
}

/// Performs one drain of the queue. See the module docs for the
/// crash-safety and determinism contract. `control` carries shutdown,
/// cancellation and status-board state shared with a socket front-end.
///
/// # Errors
///
/// Returns [`ModelError::InvalidConfig`] on IO failures (including a
/// journal append failing mid-drain — e.g. a full disk — with the
/// journal path named), a corrupt journal (a malformed record *before*
/// the torn tail), or a queue line that changed under the journal
/// (fingerprint mismatch). Job failures and rejected queue lines are
/// *not* errors — they are journaled and reported in the
/// [`ServeOutcome`].
pub fn run_serve_with(
    cfg: &ServeConfig,
    control: &ServeControl,
) -> Result<ServeOutcome, ModelError> {
    let queue = fs::read_to_string(&cfg.queue)
        .map_err(|e| infra(&format!("read queue {}", cfg.queue.display()), &e))?;
    let content = match fs::read_to_string(&cfg.journal) {
        Ok(content) => content,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => {
            return Err(infra(
                &format!("read journal {}", cfg.journal.display()),
                &e,
            ))
        }
    };
    let (records, valid_len) = read_journal(&content)?;
    let state = JournalState::replay(&records)?;
    fs::create_dir_all(&cfg.reports)
        .map_err(|e| infra(&format!("create reports dir {}", cfg.reports.display()), &e))?;

    // Not `truncate(true)`: the valid prefix must survive — only the
    // torn tail past `valid_len` is cut, by the `set_len` below.
    let file = OpenOptions::new()
        .create(true)
        .truncate(false)
        .write(true)
        .open(&cfg.journal)
        .map_err(|e| infra(&format!("open journal {}", cfg.journal.display()), &e))?;
    file.set_len(valid_len as u64)
        .map_err(|e| infra("truncate journal torn tail", &e))?;
    let mut journal = JournalWriter {
        file,
        path: cfg.journal.clone(),
    };
    journal
        .file
        .seek(SeekFrom::End(0))
        .map_err(|e| infra("seek journal", &e))?;
    if records.is_empty() {
        journal.append(&Record::Header {
            version: SERVE_SCHEMA_VERSION,
        })?;
    }

    let mut outcome = ServeOutcome::default();
    let jobs = parse_queue(&queue, &state, &mut journal, &mut outcome)?;

    let stop_file = stop_path(&cfg.journal);
    let (results, stopped) = run_schedule(
        &jobs,
        cfg.jobs.max(1),
        worker_threads(cfg.threads),
        control,
        Some(&stop_file),
        &mut journal,
    )?;
    outcome.stopped = stopped;

    for (job, result) in jobs.iter().zip(&results) {
        if let Some(JobStatus::Done { .. }) = &result.status {
            write_report(
                &cfg.reports,
                &job.spec,
                job.recovered.iter().chain(result.new_points.iter()),
            )?;
        }
        outcome.jobs.push(JobSummary {
            id: job.spec.id.clone(),
            kind: job.spec.kind_name.clone(),
            recovered: job.recovered.len(),
            computed: result.new_points.len(),
            evaluations: result.evaluations,
            status: result.status.clone(),
        });
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_threads_resolves_zero_to_all_cores() {
        assert!(worker_threads(0) >= 1);
        assert_eq!(worker_threads(3), 3);
    }

    #[test]
    fn journal_writer_errors_name_the_journal_path() {
        // A directory cannot be written as a file: the append must
        // surface an error naming the journal path, never panic.
        let dir = std::env::temp_dir();
        let file = OpenOptions::new()
            .read(true)
            .open(&dir)
            .expect("open dir read-only");
        let mut writer = JournalWriter {
            file,
            path: dir.clone(),
        };
        let err = writer
            .append(&Record::Header {
                version: SERVE_SCHEMA_VERSION,
            })
            .expect_err("writing a read-only handle fails");
        assert!(
            err.to_string().contains(&dir.display().to_string()),
            "error must name the journal path: {err}"
        );
    }
}
