//! The `flexray-serve-job` JSONL job-spec schema (v1).
//!
//! One job per queue line:
//!
//! ```json
//! {"schema":"flexray-serve-job","version":1,"id":"g1","kind":"grid","args":["nodes=2,3","apps=1","mode=smoke"]}
//! ```
//!
//! `kind` selects the harness and `args` reuses the `key=value`
//! grammar of the corresponding `flexray-bench` binary (`grid`,
//! `sweep`, `fig9`, `fuzz`), parsed by the same strict helpers
//! ([`parse_algo_set`], [`parse_thread_count`], [`search_mode`]) —
//! every malformed token is rejected with an error *naming the token*,
//! and the daemon journals the rejection instead of crashing.
//!
//! Grid jobs also take `clusters=…` (the multi-cluster axis) and
//! `workload=FILE`, which imports a workgraph interchange file
//! ([`flexray_bench::workload`]) as the job's single fixed scenario —
//! the file is read when the spec line is parsed, and the report
//! header pins the workload's fingerprint.
//!
//! Keys the daemon owns — `threads` (unit dispatch is the daemon's),
//! `out`/`csv` (reports live under the daemon's report directory) and
//! `resume` (the journal is the resume mechanism) — are rejected.
//! `eval_threads` *is* allowed: it sizes the warm multi-session
//! `Evaluator` pool each unit's candidate evaluations fan out across,
//! and is bit-identical for any value.
//!
//! `sweep` and `fig9` jobs desugar to grid configurations exactly like
//! their binaries do (a single-axis grid, and the node-count grid with
//! the historical per-node-count seed offsets, respectively), so all
//! four kinds reduce to two execution plans: [`JobKind::Grid`] and
//! [`JobKind::Fuzz`].

use flexray_bench::fuzz::FuzzConfig;
use flexray_bench::grid::{GridConfig, SeedPolicy, WorkloadSource};
use flexray_bench::report::{arr_field, malformed, num_field, str_field, Json};
use flexray_bench::sweep::{parse_algo_set, parse_thread_count, search_mode, Algo, SweepAxis};
use flexray_bench::workload::Workload;
use flexray_gen::GeneratorConfig;
use flexray_model::ModelError;

/// Schema identifier carried by every job-spec line.
pub const JOB_SCHEMA: &str = "flexray-serve-job";
/// Version of the job-spec layout; bump on any schema change (the
/// golden test enforces the pairing).
pub const JOB_SCHEMA_VERSION: u32 = 1;

/// The execution plan a job desugars to.
#[derive(Debug, Clone)]
pub enum JobKind {
    /// A factorial grid (also the plan of `sweep` and `fig9` jobs).
    /// Boxed (like `Fuzz`) to keep the enum small: an imported
    /// workload makes a grid configuration arbitrarily large.
    Grid(Box<GridConfig>),
    /// An execution-order fuzz campaign.
    Fuzz(Box<FuzzConfig>),
}

/// One parsed job.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Unique job identifier (also the report file stem); restricted
    /// to `[A-Za-z0-9._-]`.
    pub id: String,
    /// The `kind` token as spelled in the spec
    /// (`grid`/`sweep`/`fig9`/`fuzz`).
    pub kind_name: String,
    /// The raw `key=value` argument tokens, in spec order.
    pub args: Vec<String>,
    /// The desugared execution plan.
    pub kind: JobKind,
}

impl JobSpec {
    /// Serialises the spec as one canonical queue line (no newline).
    #[must_use]
    pub fn to_line(&self) -> String {
        Json::Obj(vec![
            ("schema".into(), Json::Str(JOB_SCHEMA.into())),
            ("version".into(), Json::Num(f64::from(JOB_SCHEMA_VERSION))),
            ("id".into(), Json::Str(self.id.clone())),
            ("kind".into(), Json::Str(self.kind_name.clone())),
            (
                "args".into(),
                Json::Arr(self.args.iter().map(|a| Json::Str(a.clone())).collect()),
            ),
        ])
        .write()
        .expect("spec lines hold only strings and a small integer version")
    }

    /// Number of points the job will journal.
    #[must_use]
    pub fn total_points(&self) -> usize {
        match &self.kind {
            JobKind::Grid(cfg) => cfg.total_points(),
            JobKind::Fuzz(cfg) => cfg.total_points(),
        }
    }
}

/// Parses and desugars one job-spec line.
///
/// # Errors
///
/// Returns [`ModelError::InvalidConfig`] naming the offending token on
/// malformed JSON, a wrong schema or version, a missing or invalid
/// `id`, an unknown top-level member, an unknown `kind`, or any bad
/// `args` token (unknown key, bad value, daemon-managed key,
/// inconsistent resulting configuration).
pub fn parse_job(line: &str) -> Result<JobSpec, ModelError> {
    let json = Json::parse(line)?;
    let Json::Obj(members) = &json else {
        return Err(malformed("job spec is not a JSON object"));
    };
    for (key, _) in members {
        if !matches!(key.as_str(), "schema" | "version" | "id" | "kind" | "args") {
            return Err(malformed(&format!("unknown job-spec key '{key}'")));
        }
    }
    let schema = str_field(&json, "schema")?;
    if schema != JOB_SCHEMA {
        return Err(malformed(&format!(
            "job schema is '{schema}', expected '{JOB_SCHEMA}'"
        )));
    }
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let version = num_field(&json, "version")? as u32;
    if version != JOB_SCHEMA_VERSION {
        return Err(malformed(&format!(
            "job schema version {version} unsupported (this build reads {JOB_SCHEMA_VERSION})"
        )));
    }
    let id = str_field(&json, "id")?.to_owned();
    if id.is_empty()
        || !id
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
    {
        return Err(malformed(&format!(
            "job id '{id}' is not a non-empty [A-Za-z0-9._-] name"
        )));
    }
    let kind_name = str_field(&json, "kind")?.to_owned();
    let args: Vec<String> = arr_field(&json, "args")?
        .iter()
        .map(|a| {
            a.as_str()
                .map(str::to_owned)
                .ok_or_else(|| malformed("job arg is not a string"))
        })
        .collect::<Result<Vec<_>, _>>()?;

    let kind = match kind_name.as_str() {
        "grid" => JobKind::Grid(Box::new(parse_grid_args(&args, false)?)),
        "sweep" => JobKind::Grid(Box::new(parse_grid_args(&args, true)?)),
        "fig9" => JobKind::Grid(Box::new(parse_fig9_args(&args)?)),
        "fuzz" => JobKind::Fuzz(Box::new(parse_fuzz_args(&args)?)),
        other => {
            return Err(malformed(&format!(
                "unknown job kind '{other}' (expected grid, sweep, fig9 or fuzz)"
            )))
        }
    };
    match &kind {
        JobKind::Grid(cfg) => cfg.validate()?,
        JobKind::Fuzz(cfg) => cfg.validate()?,
    }
    Ok(JobSpec {
        id,
        kind_name,
        args,
        kind,
    })
}

/// Splits one `key=value` token; errors name the token.
fn key_value(arg: &str) -> Result<(&str, &str), ModelError> {
    arg.split_once('=')
        .ok_or_else(|| malformed(&format!("expected key=value, got '{arg}'")))
        .and_then(|(key, value)| {
            if matches!(key, "threads" | "out" | "csv" | "resume") {
                Err(malformed(&format!(
                    "daemon-managed key '{key}' is not allowed in a job spec"
                )))
            } else {
                Ok((key, value))
            }
        })
}

/// Parses a non-empty comma-separated value list; errors name the key.
fn parse_values<T: std::str::FromStr>(key: &str, s: &str) -> Result<Vec<T>, ModelError> {
    let values: Result<Vec<T>, _> = s.split(',').map(str::parse).collect();
    match values {
        Ok(v) if !v.is_empty() => Ok(v),
        _ => Err(malformed(&format!(
            "invalid value list '{s}' for key '{key}'"
        ))),
    }
}

fn bad_value(key: &str, value: &str) -> ModelError {
    malformed(&format!("invalid value '{value}' for key '{key}'"))
}

/// The `grid` (and, with `single_axis`, `sweep`) argument grammar —
/// the `grid` binary's options minus the daemon-managed keys.
fn parse_grid_args(args: &[String], single_axis: bool) -> Result<GridConfig, ModelError> {
    let mut cfg = GridConfig {
        axes: Vec::new(),
        threads: 1,
        ..GridConfig::default()
    };
    let mut eval_threads: Option<usize> = None;
    for arg in args {
        let (key, value) = key_value(arg)?;
        match key {
            "nodes" => cfg
                .axes
                .push(SweepAxis::NodeCount(parse_values(key, value)?)),
            "depth" => cfg
                .axes
                .push(SweepAxis::GraphDepth(parse_values(key, value)?)),
            "gateway" => cfg
                .axes
                .push(SweepAxis::GatewayFraction(parse_values(key, value)?)),
            "busutil" => cfg.axes.push(SweepAxis::BusUtil(parse_values(key, value)?)),
            "clusters" => cfg
                .axes
                .push(SweepAxis::Clusters(parse_values(key, value)?)),
            "workload" => {
                let text = std::fs::read_to_string(value)
                    .map_err(|e| malformed(&format!("cannot read workload file '{value}': {e}")))?;
                let workload = Workload::import(&text)
                    .map_err(|e| malformed(&format!("workload file '{value}': {e}")))?;
                let name = std::path::Path::new(value)
                    .file_stem()
                    .map_or_else(|| value.to_owned(), |s| s.to_string_lossy().into_owned());
                cfg.workload = Some(WorkloadSource { name, workload });
            }
            "apps" => cfg.apps_per_point = value.parse().map_err(|_| bad_value(key, value))?,
            "mode" => match search_mode(value) {
                Some((params, sa)) => {
                    cfg.params = params;
                    cfg.sa = sa;
                }
                None => return Err(bad_value(key, value)),
            },
            "eval_threads" => eval_threads = Some(parse_thread_count(value)?),
            "seed0" => cfg.seed0 = value.parse().map_err(|_| bad_value(key, value))?,
            "algos" => cfg.algos = parse_algo_set(value)?,
            _ => return Err(malformed(&format!("unknown grid key '{key}'"))),
        }
    }
    if let Some(threads) = eval_threads {
        cfg.params.eval_threads = threads;
    }
    if cfg.axes.is_empty() && cfg.workload.is_none() {
        return Err(malformed("a grid job needs at least one axis"));
    }
    if single_axis && cfg.axes.len() != 1 {
        return Err(malformed(&format!(
            "a sweep job takes exactly one axis, got {}",
            cfg.axes.len()
        )));
    }
    Ok(cfg)
}

/// The `fig9` argument grammar, desugared exactly like
/// `fig9::run_experiment`: a node-count grid over the paper base with
/// the historical `seed0 + 1000·n + i` seed schedule.
fn parse_fig9_args(args: &[String]) -> Result<GridConfig, ModelError> {
    let mut node_counts: Vec<usize> = vec![2, 3, 4, 5];
    let mut apps_per_point = 5usize;
    let mut params = flexray_opt::OptParams::default();
    let mut sa = flexray_opt::SaParams::default();
    let mut seed0 = 42u64;
    let mut eval_threads: Option<usize> = None;
    for arg in args {
        let (key, value) = key_value(arg)?;
        match key {
            "nodes" => node_counts = parse_values(key, value)?,
            "apps" => apps_per_point = value.parse().map_err(|_| bad_value(key, value))?,
            "mode" => match search_mode(value) {
                Some((p, s)) => {
                    params = p;
                    sa = s;
                }
                None => return Err(bad_value(key, value)),
            },
            "eval_threads" => eval_threads = Some(parse_thread_count(value)?),
            "seed0" => seed0 = value.parse().map_err(|_| bad_value(key, value))?,
            _ => return Err(malformed(&format!("unknown fig9 key '{key}'"))),
        }
    }
    if let Some(threads) = eval_threads {
        params.eval_threads = threads;
    }
    Ok(GridConfig {
        base: GeneratorConfig::paper(2),
        axes: vec![SweepAxis::NodeCount(node_counts.clone())],
        apps_per_point,
        algos: Algo::ALL.to_vec(),
        params,
        sa,
        seed0,
        seed_policy: SeedPolicy::PointOffsets(
            node_counts.iter().map(|&n| 1000 * n as u64).collect(),
        ),
        threads: 1,
        workload: None,
    })
}

/// The `fuzz` argument grammar — the `fuzz` binary's options minus the
/// daemon-managed keys.
fn parse_fuzz_args(args: &[String]) -> Result<FuzzConfig, ModelError> {
    let mut cfg = FuzzConfig {
        axes: Vec::new(),
        threads: 1,
        ..FuzzConfig::default()
    };
    let mut eval_threads: Option<usize> = None;
    for arg in args {
        let (key, value) = key_value(arg)?;
        match key {
            "nodes" => cfg
                .axes
                .push(SweepAxis::NodeCount(parse_values(key, value)?)),
            "depth" => cfg
                .axes
                .push(SweepAxis::GraphDepth(parse_values(key, value)?)),
            "gateway" => cfg
                .axes
                .push(SweepAxis::GatewayFraction(parse_values(key, value)?)),
            "busutil" => cfg.axes.push(SweepAxis::BusUtil(parse_values(key, value)?)),
            "apps" => cfg.apps_per_point = value.parse().map_err(|_| bad_value(key, value))?,
            "orders" => cfg.order_seeds = parse_values(key, value)?,
            "reps" => cfg.reps = value.parse().map_err(|_| bad_value(key, value))?,
            "compress" => match value {
                "on" => cfg.compress = true,
                "off" => cfg.compress = false,
                _ => return Err(bad_value(key, value)),
            },
            "mode" => match search_mode(value) {
                Some((params, _)) => cfg.params = params,
                None => return Err(bad_value(key, value)),
            },
            "eval_threads" => eval_threads = Some(parse_thread_count(value)?),
            "seed0" => cfg.seed0 = value.parse().map_err(|_| bad_value(key, value))?,
            _ => return Err(malformed(&format!("unknown fuzz key '{key}'"))),
        }
    }
    if let Some(threads) = eval_threads {
        cfg.params.eval_threads = threads;
    }
    if cfg.axes.is_empty() {
        return Err(malformed("a fuzz job needs at least one axis"));
    }
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(id: &str, kind: &str, args: &[&str]) -> String {
        let args = args
            .iter()
            .map(|a| format!("\"{a}\""))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"schema\":\"{JOB_SCHEMA}\",\"version\":{JOB_SCHEMA_VERSION},\
             \"id\":\"{id}\",\"kind\":\"{kind}\",\"args\":[{args}]}}"
        )
    }

    #[test]
    fn grid_job_round_trips_through_the_canonical_line() {
        let spec =
            parse_job(&line("g1", "grid", &["nodes=2,3", "apps=1", "mode=smoke"])).expect("parses");
        assert_eq!(spec.id, "g1");
        assert_eq!(spec.total_points(), 2);
        let JobKind::Grid(cfg) = &spec.kind else {
            panic!("grid plan expected")
        };
        assert_eq!(cfg.apps_per_point, 1);
        assert_eq!(cfg.threads, 1, "unit dispatch belongs to the daemon");
        let reparsed = parse_job(&spec.to_line()).expect("canonical line parses");
        assert_eq!(reparsed.to_line(), spec.to_line());
    }

    #[test]
    fn sweep_and_fig9_desugar_to_grids() {
        let sweep = parse_job(&line("s1", "sweep", &["depth=3,5", "mode=smoke"])).expect("parses");
        assert!(matches!(&sweep.kind, JobKind::Grid(cfg) if cfg.axes.len() == 1));
        assert!(parse_job(&line("s2", "sweep", &["depth=3", "nodes=2", "mode=smoke"])).is_err());

        let fig9 =
            parse_job(&line("f1", "fig9", &["nodes=2,3", "apps=1", "mode=smoke"])).expect("parses");
        let JobKind::Grid(cfg) = &fig9.kind else {
            panic!("grid plan expected")
        };
        assert_eq!(cfg.algos.len(), 4);
        assert_eq!(
            cfg.seed_policy,
            SeedPolicy::PointOffsets(vec![2000, 3000]),
            "fig9 keeps its historical node-count seed schedule"
        );
    }

    #[test]
    fn grid_jobs_take_the_clusters_axis_and_workload_files() {
        let spec = parse_job(&line(
            "c1",
            "grid",
            &["clusters=1,2", "apps=1", "mode=smoke"],
        ))
        .expect("parses");
        assert_eq!(spec.total_points(), 2);
        let JobKind::Grid(cfg) = &spec.kind else {
            panic!("grid plan expected")
        };
        assert!(matches!(cfg.axes[0], SweepAxis::Clusters(_)));

        let generated = flexray_gen::generate(&GeneratorConfig::clustered(5, 2), 3)
            .expect("clustered scenario");
        let dir = std::env::temp_dir().join("flexray-serve-spec-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("hand.jsonl");
        std::fs::write(
            &path,
            Workload::of_generated(&generated).export().expect("export"),
        )
        .expect("write workgraph");
        let arg = format!("workload={}", path.display());
        let spec = parse_job(&line("w1", "grid", &[&arg, "apps=1", "mode=smoke"])).expect("parses");
        assert_eq!(spec.total_points(), 1, "a workload job is one fixed point");
        let JobKind::Grid(cfg) = &spec.kind else {
            panic!("grid plan expected")
        };
        assert_eq!(cfg.workload.as_ref().expect("workload source").name, "hand");

        let err = parse_job(&line("w2", "grid", &["workload=/no/such/file.jsonl"]))
            .expect_err("missing file rejected");
        assert!(
            err.to_string().contains("/no/such/file.jsonl"),
            "error must name the file: {err}"
        );
    }

    #[test]
    fn fuzz_jobs_parse_their_own_grammar() {
        let spec = parse_job(&line(
            "z1",
            "fuzz",
            &[
                "nodes=2",
                "orders=1,2",
                "reps=2",
                "compress=off",
                "mode=smoke",
            ],
        ))
        .expect("parses");
        let JobKind::Fuzz(cfg) = &spec.kind else {
            panic!("fuzz plan expected")
        };
        assert_eq!(cfg.order_seeds, vec![1, 2]);
        assert!(!cfg.compress);
    }

    #[test]
    fn rejections_name_the_offending_token() {
        let cases: Vec<(String, &str)> = vec![
            ("not json".into(), "JSON"),
            (
                line("g", "grid", &["nodes=2"]).replace("flexray-serve-job", "mystery"),
                "'mystery'",
            ),
            (
                line("g", "grid", &["nodes=2"]).replace(":1,", ":9,"),
                "version 9",
            ),
            (line("bad id!", "grid", &["nodes=2"]), "'bad id!'"),
            (line("g", "mystery", &["nodes=2"]), "'mystery'"),
            (line("g", "grid", &["nodes=2", "bogus=1"]), "'bogus'"),
            (line("g", "grid", &["nodes=zero"]), "'zero'"),
            (line("g", "grid", &["nodes=2", "mode=warp"]), "'warp'"),
            (line("g", "grid", &["nodes=2", "threads=4"]), "'threads'"),
            (line("g", "grid", &["nodes=2", "out=x"]), "'out'"),
            (line("g", "grid", &["nodes=2", "resume=x"]), "'resume'"),
            (line("g", "grid", &["apps=1"]), "axis"),
            (line("g", "grid", &["nodes=2", "algos=bbc,warp"]), "warp"),
            (
                line("z", "fuzz", &["nodes=2", "orders=1,1"]),
                "order seed 1",
            ),
            (line("z", "fuzz", &["nodes=2", "csv=x"]), "'csv'"),
            (
                line("g", "grid", &["nodes=2"]).replace("\"args\"", "\"junk\""),
                "'junk'",
            ),
        ];
        for (bad, token) in cases {
            let err = parse_job(&bad).expect_err(&format!("accepted {bad:?}"));
            assert!(
                err.to_string().contains(token),
                "error for {bad:?} does not name {token:?}: {err}"
            );
        }
    }
}
