//! Shared runtime control surface of a serving daemon: the shutdown
//! flag a socket `shutdown` request sets, the cancellation set a
//! socket `cancel` request feeds, and the per-job status board the
//! scheduler publishes for `status` queries.
//!
//! One [`ServeControl`] is shared (behind an `Arc`) between the drain
//! loop, the scheduler's worker pool and the socket listener threads.
//! It is deliberately *advisory*: the journal stays the single source
//! of truth for progress; the status board is a best-effort live view.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Externally visible state of one job, published for `status`
/// queries over the socket.
#[derive(Debug, Clone, PartialEq)]
pub struct JobView {
    /// Job kind (`grid`/`sweep`/`fig9`/`fuzz`).
    pub kind: String,
    /// Points journaled so far (recovered + computed).
    pub points: usize,
    /// Total points the job will journal.
    pub total_points: usize,
    /// `running`, `done` or `failed`.
    pub state: String,
    /// The failure error, when `state` is `failed`.
    pub error: Option<String>,
}

#[derive(Debug, Default)]
struct ControlInner {
    cancelled: BTreeSet<String>,
    status: BTreeMap<String, JobView>,
}

/// The daemon's shared control block: shutdown flag, cancellation set
/// and job status board. See the module docs.
#[derive(Debug, Default)]
pub struct ServeControl {
    shutdown: AtomicBool,
    inner: Mutex<ControlInner>,
}

impl ServeControl {
    /// Requests a graceful shutdown: workers stop claiming new units,
    /// in-flight units finish and are journaled, the drain exits.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }

    /// Whether a shutdown has been requested.
    #[must_use]
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Whether the drain should stop early: a shutdown request, or the
    /// stop file existing.
    #[must_use]
    pub fn stop_requested(&self, stop_file: Option<&Path>) -> bool {
        self.is_shutdown() || stop_file.is_some_and(Path::exists)
    }

    /// Marks job `id` cancelled. Idempotent: returns `false` when the
    /// job was already cancelled.
    pub fn cancel(&self, id: &str) -> bool {
        self.inner
            .lock()
            .expect("control lock")
            .cancelled
            .insert(id.to_owned())
    }

    /// Whether job `id` has been cancelled.
    #[must_use]
    pub fn is_cancelled(&self, id: &str) -> bool {
        self.inner
            .lock()
            .expect("control lock")
            .cancelled
            .contains(id)
    }

    /// Publishes the live view of job `id` to the status board.
    pub fn publish(&self, id: &str, view: JobView) {
        self.inner
            .lock()
            .expect("control lock")
            .status
            .insert(id.to_owned(), view);
    }

    /// The published view of job `id`, if any.
    #[must_use]
    pub fn view(&self, id: &str) -> Option<JobView> {
        self.inner
            .lock()
            .expect("control lock")
            .status
            .get(id)
            .cloned()
    }
}

/// The stop-file path for a journal: `<journal>.stop`. Touching it
/// makes the daemon finish in-flight units, journal a clean `stopped`
/// record and exit; deleting it and restarting resumes the drain.
#[must_use]
pub fn stop_path(journal: &Path) -> PathBuf {
    let mut name = journal.as_os_str().to_owned();
    name.push(".stop");
    PathBuf::from(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_is_idempotent_and_queryable() {
        let control = ServeControl::default();
        assert!(!control.is_cancelled("g1"));
        assert!(control.cancel("g1"), "first cancel is new");
        assert!(!control.cancel("g1"), "second cancel is a repeat");
        assert!(control.is_cancelled("g1"));
        assert!(!control.is_cancelled("g2"));
    }

    #[test]
    fn shutdown_flag_and_stop_file_both_request_a_stop() {
        let control = ServeControl::default();
        assert!(!control.stop_requested(None));
        let missing = PathBuf::from("/nonexistent/serve.journal.stop");
        assert!(!control.stop_requested(Some(&missing)));
        control.request_shutdown();
        assert!(control.is_shutdown());
        assert!(control.stop_requested(None));
    }

    #[test]
    fn status_board_returns_the_latest_published_view() {
        let control = ServeControl::default();
        assert!(control.view("g1").is_none());
        let view = JobView {
            kind: "grid".into(),
            points: 1,
            total_points: 4,
            state: "running".into(),
            error: None,
        };
        control.publish("g1", view.clone());
        assert_eq!(control.view("g1"), Some(view));
    }

    #[test]
    fn stop_path_appends_the_stop_suffix() {
        assert_eq!(
            stop_path(Path::new("/tmp/serve.journal")),
            PathBuf::from("/tmp/serve.journal.stop")
        );
    }
}
