//! `flexray-serve` — the crash-safe analysis-as-a-service daemon.
//!
//! ```text
//! flexray-serve queue=jobs.jsonl journal=serve.journal reports=out/ \
//!     [threads=N] [poll=SECS]
//! ```
//!
//! Drains the job queue once (or, with `poll=SECS`, keeps polling the
//! queue for appended jobs until the stop file `<journal>.stop`
//! appears). Every drain replays the journal first, so the daemon may
//! be SIGKILLed at any instant and restarted: completed jobs are never
//! recomputed, in-flight jobs resume from their last journaled point,
//! and the final journal and reports are byte-identical to an
//! uninterrupted run's.
//!
//! Exit codes: `0` — queue drained (rejected lines and failed jobs are
//! journaled outcomes, not daemon errors); `1` — infrastructure error
//! (IO, corrupt journal, queue changed under the journal); `2` — usage
//! error.

use std::path::PathBuf;
use std::process::ExitCode;

use flexray_serve::{run_serve, JobStatus, ServeConfig, ServeOutcome};

const USAGE: &str = "usage: flexray-serve queue=FILE journal=FILE reports=DIR \
                     [threads=N] [poll=SECS]\n\
                     \n\
                     queue=FILE    JSONL job queue (append-only; '#' comments, blank lines ok)\n\
                     journal=FILE  append-only progress journal (created if absent)\n\
                     reports=DIR   per-job report directory (created if absent)\n\
                     threads=N     worker threads for unit dispatch (0 = all cores; default 0)\n\
                     poll=SECS     keep polling the queue every SECS seconds until the stop\n\
                     \x20             file <journal>.stop exists (default: drain once)";

struct Cli {
    serve: ServeConfig,
    poll: Option<u64>,
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut queue: Option<PathBuf> = None;
    let mut journal: Option<PathBuf> = None;
    let mut reports: Option<PathBuf> = None;
    let mut threads = 0usize;
    let mut poll: Option<u64> = None;
    for arg in args {
        let Some((key, value)) = arg.split_once('=') else {
            return Err(format!("expected key=value, got '{arg}'"));
        };
        match key {
            "queue" => queue = Some(PathBuf::from(value)),
            "journal" => journal = Some(PathBuf::from(value)),
            "reports" => reports = Some(PathBuf::from(value)),
            "threads" => {
                threads = value
                    .parse()
                    .map_err(|_| format!("invalid thread count '{value}'"))?;
            }
            "poll" => {
                let secs: u64 = value
                    .parse()
                    .map_err(|_| format!("invalid poll interval '{value}'"))?;
                poll = Some(secs);
            }
            _ => return Err(format!("unknown option '{key}'")),
        }
    }
    let serve = ServeConfig {
        queue: queue.ok_or("missing required option queue=FILE")?,
        journal: journal.ok_or("missing required option journal=FILE")?,
        reports: reports.ok_or("missing required option reports=DIR")?,
        threads,
    };
    Ok(Cli { serve, poll })
}

fn report(outcome: &ServeOutcome) {
    for (line, error) in &outcome.rejected {
        eprintln!("serve: line {line} rejected: {error}");
    }
    for job in &outcome.jobs {
        let status = match &job.status {
            JobStatus::Done { .. } => "done".to_owned(),
            JobStatus::Failed { error } => format!("failed ({error})"),
        };
        eprintln!(
            "serve: job {}: kind={} recovered={} computed={} evaluations={} status={status}",
            job.id, job.kind, job.recovered, job.computed, job.evaluations
        );
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") || args.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    let cli = match parse_cli(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("flexray-serve: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let stop_file = {
        let mut name = cli.serve.journal.as_os_str().to_owned();
        name.push(".stop");
        PathBuf::from(name)
    };
    loop {
        match run_serve(&cli.serve) {
            Ok(outcome) => report(&outcome),
            Err(e) => {
                eprintln!("flexray-serve: {e}");
                return ExitCode::from(1);
            }
        }
        let Some(secs) = cli.poll else {
            return ExitCode::SUCCESS;
        };
        if stop_file.exists() {
            eprintln!("serve: stop file {} found, exiting", stop_file.display());
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(std::time::Duration::from_secs(secs));
    }
}
