//! `flexray-serve` — the crash-safe analysis-as-a-service daemon.
//!
//! ```text
//! flexray-serve queue=jobs.jsonl journal=serve.journal reports=out/ \
//!     [threads=N] [jobs=K] [poll=SECS] [socket=ADDR]
//! ```
//!
//! Drains the job queue once (or, with `poll=SECS` and/or
//! `socket=ADDR`, keeps draining as work arrives). Every drain replays
//! the journal first, so the daemon may be SIGKILLed at any instant
//! and restarted: completed jobs are never recomputed, in-flight jobs
//! resume from their last journaled point, and the final journal and
//! reports are byte-identical to an uninterrupted run's.
//!
//! `jobs=K` schedules up to `K` jobs concurrently over the shared
//! worker pool; the journal's record order is a pure function of the
//! queue and `K`, and per-job reports do not depend on `K` at all.
//!
//! `socket=ADDR` serves the line-oriented JSONL control protocol
//! (`submit`/`status`/`cancel`/`drain`/`shutdown`) on a local TCP
//! socket; the bound address is announced on stderr as
//! `serve: listening on ADDR`.
//!
//! The stop file `<journal>.stop` is honoured *inside* a drain at unit
//! boundaries: in-flight units finish and are journaled, a clean
//! `stopped` record marks the early exit, and a restart resumes.
//!
//! Exit codes: `0` — queue drained, stopped via the stop file, or shut
//! down via the socket (rejected lines and failed jobs are journaled
//! outcomes, not daemon errors); `1` — infrastructure error (IO, a
//! journal append failing mid-drain, corrupt journal, queue changed
//! under the journal); `2` — usage error.

use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use flexray_serve::{
    run_serve_with, spawn_listener, stop_path, JobStatus, ServeConfig, ServeControl, ServeOutcome,
    SocketShared,
};

const USAGE: &str = "usage: flexray-serve queue=FILE journal=FILE reports=DIR \
                     [threads=N] [jobs=K] [poll=SECS] [socket=ADDR]\n\
                     \n\
                     queue=FILE    JSONL job queue (append-only; '#' comments, blank lines ok)\n\
                     journal=FILE  append-only progress journal (created if absent)\n\
                     reports=DIR   per-job report directory (created if absent)\n\
                     threads=N     worker threads for unit dispatch (0 = all cores; default 0)\n\
                     jobs=K        jobs scheduled concurrently (default 1; must be >= 1)\n\
                     poll=SECS     keep polling the queue every SECS seconds (must be >= 1)\n\
                     \x20             until the stop file <journal>.stop exists\n\
                     socket=ADDR   serve the JSONL control protocol (submit/status/cancel/\n\
                     \x20             drain/shutdown) on a TCP socket bound to ADDR";

#[derive(Debug)]
struct Cli {
    serve: ServeConfig,
    poll: Option<u64>,
    socket: Option<String>,
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut queue: Option<PathBuf> = None;
    let mut journal: Option<PathBuf> = None;
    let mut reports: Option<PathBuf> = None;
    let mut threads = 0usize;
    let mut jobs = 1usize;
    let mut poll: Option<u64> = None;
    let mut socket: Option<String> = None;
    for arg in args {
        let Some((key, value)) = arg.split_once('=') else {
            return Err(format!("expected key=value, got '{arg}'"));
        };
        match key {
            "queue" => queue = Some(PathBuf::from(value)),
            "journal" => journal = Some(PathBuf::from(value)),
            "reports" => reports = Some(PathBuf::from(value)),
            "threads" => {
                threads = value
                    .parse()
                    .map_err(|_| format!("invalid thread count '{value}'"))?;
            }
            "jobs" => {
                jobs = value
                    .parse()
                    .map_err(|_| format!("invalid job concurrency '{value}'"))?;
                if jobs == 0 {
                    return Err(format!("job concurrency must be at least 1, got '{value}'"));
                }
            }
            "poll" => {
                let secs: u64 = value
                    .parse()
                    .map_err(|_| format!("invalid poll interval '{value}'"))?;
                if secs == 0 {
                    return Err(format!(
                        "poll interval must be at least 1 second, got '{value}' (a zero \
                         interval would busy-wait)"
                    ));
                }
                poll = Some(secs);
            }
            "socket" => socket = Some(value.to_owned()),
            _ => return Err(format!("unknown option '{key}'")),
        }
    }
    let serve = ServeConfig {
        queue: queue.ok_or("missing required option queue=FILE")?,
        journal: journal.ok_or("missing required option journal=FILE")?,
        reports: reports.ok_or("missing required option reports=DIR")?,
        threads,
        jobs,
    };
    Ok(Cli {
        serve,
        poll,
        socket,
    })
}

fn report(outcome: &ServeOutcome) {
    for (line, error) in &outcome.rejected {
        eprintln!("serve: line {line} rejected: {error}");
    }
    for job in &outcome.jobs {
        let status = match &job.status {
            Some(JobStatus::Done { .. }) => "done".to_owned(),
            Some(JobStatus::Failed { error }) => format!("failed ({error})"),
            None => "stopped (resumable)".to_owned(),
        };
        eprintln!(
            "serve: job {}: kind={} recovered={} computed={} evaluations={} status={status}",
            job.id, job.kind, job.recovered, job.computed, job.evaluations
        );
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") || args.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    let cli = match parse_cli(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("flexray-serve: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let control = Arc::new(ServeControl::default());
    let stop_file = stop_path(&cli.serve.journal);
    let shared = match &cli.socket {
        Some(addr) => {
            let listener = match TcpListener::bind(addr) {
                Ok(listener) => listener,
                Err(e) => {
                    eprintln!("flexray-serve: bind socket {addr}: {e}");
                    return ExitCode::from(1);
                }
            };
            match listener.local_addr() {
                Ok(local) => eprintln!("serve: listening on {local}"),
                Err(e) => {
                    eprintln!("flexray-serve: socket address: {e}");
                    return ExitCode::from(1);
                }
            }
            let shared = Arc::new(SocketShared::new(
                cli.serve.queue.clone(),
                Arc::clone(&control),
            ));
            spawn_listener(listener, Arc::clone(&shared));
            Some(shared)
        }
        None => None,
    };
    loop {
        // Pre-pass check: a stop file present before the drain starts
        // means exit now, not journal yet another stopped record.
        if stop_file.exists() {
            eprintln!("serve: stop file {} found, exiting", stop_file.display());
            return ExitCode::SUCCESS;
        }
        if let Some(shared) = &shared {
            shared.begin_pass();
        }
        let outcome = match run_serve_with(&cli.serve, &control) {
            Ok(outcome) => outcome,
            Err(e) => {
                eprintln!("flexray-serve: {e}");
                return ExitCode::from(1);
            }
        };
        if let Some(shared) = &shared {
            shared.end_pass();
        }
        report(&outcome);
        if outcome.stopped {
            eprintln!("serve: stopped early (resumable), exiting");
            return ExitCode::SUCCESS;
        }
        if control.is_shutdown() {
            eprintln!("serve: shutdown requested, exiting");
            return ExitCode::SUCCESS;
        }
        match (&shared, cli.poll) {
            (None, None) => return ExitCode::SUCCESS,
            (None, Some(secs)) => std::thread::sleep(Duration::from_secs(secs)),
            (Some(shared), poll) => {
                // Wake on submit/shutdown, the poll interval, or the
                // stop file appearing while idle.
                let deadline = poll.map(|secs| Instant::now() + Duration::from_secs(secs));
                loop {
                    if shared.wait_for_work(Duration::from_millis(200))
                        || stop_file.exists()
                        || deadline.is_some_and(|d| Instant::now() >= d)
                    {
                        break;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    const REQUIRED: [&str; 3] = ["queue=q.jsonl", "journal=j.jsonl", "reports=out"];

    #[test]
    fn parse_cli_accepts_the_full_option_set() {
        let mut all = args(&REQUIRED);
        all.extend(args(&[
            "threads=4",
            "jobs=2",
            "poll=3",
            "socket=127.0.0.1:0",
        ]));
        let cli = parse_cli(&all).expect("full option set parses");
        assert_eq!(cli.serve.threads, 4);
        assert_eq!(cli.serve.jobs, 2);
        assert_eq!(cli.poll, Some(3));
        assert_eq!(cli.socket.as_deref(), Some("127.0.0.1:0"));
        let minimal = parse_cli(&args(&REQUIRED)).expect("defaults parse");
        assert_eq!(minimal.serve.jobs, 1, "default is serial job order");
        assert_eq!(minimal.poll, None);
        assert!(minimal.socket.is_none());
    }

    #[test]
    fn parse_cli_rejects_a_zero_poll_interval_naming_the_value() {
        let mut all = args(&REQUIRED);
        all.push("poll=0".to_owned());
        let err = parse_cli(&all).expect_err("poll=0 would busy-wait");
        assert!(err.contains("'0'"), "error must name the value: {err}");
        assert!(
            err.contains("poll interval"),
            "error names the option: {err}"
        );
    }

    #[test]
    fn parse_cli_rejects_zero_job_concurrency_naming_the_value() {
        let mut all = args(&REQUIRED);
        all.push("jobs=0".to_owned());
        let err = parse_cli(&all).expect_err("jobs=0 schedules nothing");
        assert!(err.contains("'0'"), "error must name the value: {err}");
        assert!(
            err.contains("job concurrency"),
            "error names the option: {err}"
        );
    }
}
