//! Golden-file schema tests for the `flexray-serve-job` queue format
//! and the `flexray-serve` journal format, mirroring the
//! `flexray-grid` golden suite: run with `GOLDEN_REGEN=1` to
//! regenerate after an intentional schema change (and bump the
//! matching `*_SCHEMA_VERSION`).

use std::fs;
use std::path::PathBuf;

use flexray_serve::{parse_job, run_serve, JobStatus, Record, ServeConfig};

/// Canonical spec lines covering every job kind and the arg grammar.
const SPECS: [&str; 4] = [
    r#"{"schema":"flexray-serve-job","version":1,"id":"g1","kind":"grid","args":["nodes=2,3","busutil=0.2","apps=2","mode=smoke","algos=bbc,obccf","seed0=7"]}"#,
    r#"{"schema":"flexray-serve-job","version":1,"id":"s1","kind":"sweep","args":["depth=3,5","mode=smoke","eval_threads=2"]}"#,
    r#"{"schema":"flexray-serve-job","version":1,"id":"f1","kind":"fig9","args":["nodes=2,3","apps=1","mode=smoke"]}"#,
    r#"{"schema":"flexray-serve-job","version":1,"id":"z1","kind":"fuzz","args":["nodes=2","apps=1","orders=1,2","reps=2","compress=off","mode=smoke"]}"#,
];

/// The tiny deterministic workload whose journal is the golden file.
const QUEUE: &str = concat!(
    r#"{"schema":"flexray-serve-job","version":1,"id":"g1","kind":"grid","args":["nodes=2","apps=1","mode=smoke","algos=bbc"]}"#,
    "\n",
    "garbage line\n",
    r#"{"schema":"flexray-serve-job","version":1,"id":"z1","kind":"fuzz","args":["nodes=2","apps=1","orders=1","reps=2","mode=smoke"]}"#,
    "\n",
);

fn workdir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    if dir.exists() {
        fs::remove_dir_all(&dir).expect("clear stale workdir");
    }
    fs::create_dir_all(&dir).expect("create workdir");
    dir
}

#[test]
fn job_spec_lines_match_the_golden_file() {
    let canonical: String = SPECS
        .iter()
        .map(|line| {
            let spec = parse_job(line).expect("golden spec parses");
            assert_eq!(
                &spec.to_line(),
                line,
                "golden specs are written in canonical form"
            );
            spec.to_line() + "\n"
        })
        .collect();
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden");
        fs::create_dir_all(dir).expect("golden dir");
        fs::write(format!("{dir}/serve_jobs.jsonl"), canonical).expect("write jobs golden");
        return;
    }
    assert_eq!(
        canonical,
        include_str!("golden/serve_jobs.jsonl"),
        "job-spec schema drifted: bump JOB_SCHEMA_VERSION and regenerate the golden file"
    );
}

#[test]
fn journal_of_the_reference_workload_matches_the_golden_file() {
    let dir = workdir("schema_journal");
    fs::write(dir.join("jobs.jsonl"), QUEUE).expect("write queue");
    let cfg = ServeConfig {
        queue: dir.join("jobs.jsonl"),
        journal: dir.join("serve.journal"),
        reports: dir.join("out"),
        threads: 1,
        jobs: 1,
    };
    run_serve(&cfg).expect("drain succeeds");
    let journal = fs::read_to_string(dir.join("serve.journal")).expect("read journal");
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden");
        fs::create_dir_all(dir).expect("golden dir");
        fs::write(format!("{dir}/serve_journal.jsonl"), journal).expect("write journal golden");
        return;
    }
    assert_eq!(
        journal,
        include_str!("golden/serve_journal.jsonl"),
        "journal schema drifted: bump SERVE_SCHEMA_VERSION and regenerate the golden file"
    );
}

#[test]
fn malformed_queue_lines_are_journaled_and_skipped_not_fatal() {
    let dir = workdir("schema_reject");
    // A bad line *between* two good jobs: the daemon must reject it
    // with an error naming the token, journal the rejection, and still
    // run both neighbours.
    let queue = concat!(
        r#"{"schema":"flexray-serve-job","version":1,"id":"a","kind":"grid","args":["nodes=2","apps=1","mode=smoke","algos=bbc"]}"#,
        "\n",
        r#"{"schema":"flexray-serve-job","version":1,"id":"b","kind":"grid","args":["nodes=2","apps=1","mode=smoke","threads=4"]}"#,
        "\n",
        r#"{"schema":"flexray-serve-job","version":1,"id":"c","kind":"grid","args":["nodes=2","apps=1","mode=smoke","algos=bbc"]}"#,
        "\n",
    );
    fs::write(dir.join("jobs.jsonl"), queue).expect("write queue");
    let cfg = ServeConfig {
        queue: dir.join("jobs.jsonl"),
        journal: dir.join("serve.journal"),
        reports: dir.join("out"),
        threads: 1,
        jobs: 1,
    };
    let outcome = run_serve(&cfg).expect("bad lines must not kill the drain");
    assert_eq!(outcome.rejected.len(), 1);
    let (line, error) = &outcome.rejected[0];
    assert_eq!(*line, 2);
    assert!(
        error.contains("'threads'"),
        "rejection must name the token: {error}"
    );
    assert_eq!(outcome.jobs.len(), 2, "both good neighbours ran");
    assert!(outcome
        .jobs
        .iter()
        .all(|j| matches!(j.status, Some(JobStatus::Done { .. }))));

    let journal = fs::read_to_string(dir.join("serve.journal")).expect("read journal");
    let rejected = journal
        .lines()
        .filter_map(|l| Record::parse(l).ok())
        .filter(|r| matches!(r, Record::Rejected { line: 2, .. }))
        .count();
    assert_eq!(rejected, 1, "the rejection must be journaled");
}
