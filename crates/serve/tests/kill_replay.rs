//! Kill-and-replay differential suite: the daemon is spawned as a
//! child process, SIGKILLed at randomized journal offsets, and
//! restarted — the final journal and reports must be byte-identical
//! to an uninterrupted run's, and completed jobs must never be
//! recomputed (evaluation counters are checked).

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::time::{Duration, Instant};

/// A multi-kind workload: grid, fig9 and fuzz jobs, a malformed line
/// and a comment. Tiny smoke-mode configs keep the 1-CPU debug-build
/// runtime in check.
const QUEUE: &str = concat!(
    "# kill-and-replay workload\n",
    r#"{"schema":"flexray-serve-job","version":1,"id":"g1","kind":"grid","args":["nodes=2,3","apps=1","mode=smoke","algos=bbc,obccf"]}"#,
    "\n",
    "not a job spec\n",
    r#"{"schema":"flexray-serve-job","version":1,"id":"f1","kind":"fig9","args":["nodes=2","apps=1","mode=smoke"]}"#,
    "\n",
    r#"{"schema":"flexray-serve-job","version":1,"id":"z1","kind":"fuzz","args":["nodes=2,3","apps=1","orders=1","reps=2","mode=smoke"]}"#,
    "\n",
);

const JOB_IDS: [&str; 3] = ["g1", "f1", "z1"];

fn workdir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    if dir.exists() {
        fs::remove_dir_all(&dir).expect("clear stale workdir");
    }
    fs::create_dir_all(&dir).expect("create workdir");
    fs::write(dir.join("jobs.jsonl"), QUEUE).expect("write queue");
    dir
}

fn serve(dir: &Path, threads: usize, jobs: usize) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_flexray-serve"));
    cmd.arg(format!("queue={}", dir.join("jobs.jsonl").display()))
        .arg(format!("journal={}", dir.join("serve.journal").display()))
        .arg(format!("reports={}", dir.join("out").display()))
        .arg(format!("threads={threads}"))
        .arg(format!("jobs={jobs}"));
    cmd
}

fn drain(dir: &Path, threads: usize, jobs: usize) -> Output {
    let output = serve(dir, threads, jobs)
        .output()
        .expect("spawn flexray-serve");
    assert!(
        output.status.success(),
        "drain failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    output
}

fn journal_bytes(dir: &Path) -> Vec<u8> {
    fs::read(dir.join("serve.journal")).expect("read journal")
}

fn report_bytes(dir: &Path, id: &str) -> Vec<u8> {
    fs::read(dir.join("out").join(format!("{id}.jsonl")))
        .unwrap_or_else(|e| panic!("read report {id}: {e}"))
}

/// Per-job `computed=` / `evaluations=` counters parsed from the
/// daemon's stderr summaries.
fn counters(output: &Output, id: &str) -> (u64, u64) {
    let stderr = String::from_utf8_lossy(&output.stderr);
    let line = stderr
        .lines()
        .find(|l| l.starts_with(&format!("serve: job {id}:")))
        .unwrap_or_else(|| panic!("no summary for job {id} in: {stderr}"));
    let field = |key: &str| -> u64 {
        line.split_whitespace()
            .find_map(|tok| tok.strip_prefix(key))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("no {key} counter in: {line}"))
    };
    (field("computed="), field("evaluations="))
}

/// Runs the workload start-to-finish with no kills and returns the
/// journal plus all report files.
fn reference(dir: &Path, threads: usize, jobs: usize) -> (Vec<u8>, Vec<(String, Vec<u8>)>) {
    let output = drain(dir, threads, jobs);
    for id in JOB_IDS {
        let (computed, evaluations) = counters(&output, id);
        assert!(computed > 0, "{id}: reference run must compute");
        assert!(evaluations > 0, "{id}: reference run must evaluate");
    }
    let reports = JOB_IDS
        .iter()
        .map(|id| ((*id).to_owned(), report_bytes(dir, id)))
        .collect();
    (journal_bytes(dir), reports)
}

/// Spawns the daemon and SIGKILLs it once the journal reaches
/// `offset` bytes. Returns false if the daemon finished first.
fn kill_at(dir: &Path, threads: usize, jobs: usize, offset: usize) -> bool {
    let journal = dir.join("serve.journal");
    let mut child = serve(dir, threads, jobs)
        .spawn()
        .expect("spawn flexray-serve");
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let grown = fs::metadata(&journal).map_or(0, |m| m.len() as usize);
        if grown >= offset {
            // `Child::kill` is SIGKILL on unix: no cleanup handler
            // runs, exactly the crash the journal must survive.
            child.kill().expect("kill daemon");
            child.wait().expect("reap daemon");
            return true;
        }
        if child.try_wait().expect("poll daemon").is_some() {
            return false;
        }
        assert!(Instant::now() < deadline, "daemon hung before {offset}B");
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn killed_and_replayed_runs_are_byte_identical_to_uninterrupted_runs() {
    let dir = workdir("kill_replay");
    let (ref_journal, ref_reports) = reference(&dir, 1, 1);
    assert!(ref_journal.len() > 2, "workload journaled nothing");

    // Randomized kill offsets from a seeded LCG (deterministic suite),
    // plus the first record boundary — a torn tail of zero bytes.
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut offsets: Vec<usize> = (0..3)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            1 + (state >> 33) as usize % (ref_journal.len() - 1)
        })
        .collect();
    let first_boundary = ref_journal
        .iter()
        .position(|&b| b == b'\n')
        .expect("journal has lines")
        + 1;
    offsets.push(first_boundary);

    for offset in offsets {
        fs::remove_file(dir.join("serve.journal")).ok();
        fs::remove_dir_all(dir.join("out")).ok();

        let killed = kill_at(&dir, 2, 1, offset);
        let torn = journal_bytes(&dir);
        assert!(
            torn.len() >= ref_journal.len().min(offset) || !killed,
            "offset {offset}: journal shorter than the kill trigger"
        );
        assert_eq!(
            torn,
            ref_journal[..torn.len()],
            "offset {offset}: a killed journal must be a byte-prefix of the reference"
        );

        // Restart: replay + finish. Different thread count on purpose —
        // the journal must not depend on it.
        drain(&dir, 1, 1);
        assert_eq!(
            journal_bytes(&dir),
            ref_journal,
            "offset {offset}: replayed journal differs"
        );
        for (id, data) in &ref_reports {
            assert_eq!(
                &report_bytes(&dir, id),
                data,
                "offset {offset}: replayed report {id} differs"
            );
        }
    }
}

/// The concurrent half of the differential suite: for K∈{2,4} the
/// journal is a *different* deterministic interleaving (a pure
/// function of `(queue, K)`), kills + restarts still converge to the
/// byte-identical per-K journal, and every per-job report is
/// byte-identical to the serial (K=1) run's.
#[test]
fn concurrent_schedules_are_crash_safe_and_report_identical_to_serial() {
    let dir = workdir("kill_replay_concurrent");
    let (serial_journal, serial_reports) = reference(&dir, 1, 1);

    let mut state = 0xA076_1D64_78BD_642Fu64;
    for jobs in [2usize, 4] {
        fs::remove_file(dir.join("serve.journal")).ok();
        fs::remove_dir_all(dir.join("out")).ok();
        let (k_journal, k_reports) = reference(&dir, 2, jobs);
        assert_ne!(
            k_journal, serial_journal,
            "jobs={jobs}: concurrent plan did not interleave the journal"
        );
        for (id, data) in &k_reports {
            let serial = serial_reports
                .iter()
                .find(|(s, _)| s == id)
                .map(|(_, d)| d)
                .expect("serial report");
            assert_eq!(
                data, serial,
                "jobs={jobs}: report {id} depends on the job concurrency"
            );
        }

        for _ in 0..2 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let offset = 1 + (state >> 33) as usize % (k_journal.len() - 1);
            fs::remove_file(dir.join("serve.journal")).ok();
            fs::remove_dir_all(dir.join("out")).ok();

            kill_at(&dir, 2, jobs, offset);
            let torn = journal_bytes(&dir);
            assert_eq!(
                torn,
                k_journal[..torn.len()],
                "jobs={jobs} offset {offset}: killed journal is not a byte-prefix"
            );

            // Restart at the same K but a different thread count: the
            // journal is a function of (queue, K), not of threads.
            drain(&dir, 1, jobs);
            assert_eq!(
                journal_bytes(&dir),
                k_journal,
                "jobs={jobs} offset {offset}: replayed journal differs"
            );
            for (id, data) in &serial_reports {
                assert_eq!(
                    &report_bytes(&dir, id),
                    data,
                    "jobs={jobs} offset {offset}: replayed report {id} differs from serial"
                );
            }
        }
    }
}

#[test]
fn completed_jobs_are_never_recomputed() {
    let dir = workdir("kill_replay_norecompute");
    let (ref_journal, _) = reference(&dir, 2, 2);

    // A drain over a fully-journaled queue must recover everything:
    // zero points computed, zero optimiser evaluations, and not a
    // byte appended to the journal.
    let output = drain(&dir, 2, 2);
    for id in JOB_IDS {
        assert_eq!(
            counters(&output, id),
            (0, 0),
            "{id}: completed job was re-evaluated"
        );
    }
    assert_eq!(
        journal_bytes(&dir),
        ref_journal,
        "replay mutated the journal"
    );

    // Killing mid-run and restarting must recover *exactly* the
    // journaled points: the restart's recovered total equals the
    // torn journal's complete point records, nothing less.
    fs::remove_file(dir.join("serve.journal")).ok();
    fs::remove_dir_all(dir.join("out")).ok();
    let mid = ref_journal.len() / 2;
    kill_at(&dir, 2, 2, mid);
    let torn = String::from_utf8_lossy(&journal_bytes(&dir)).into_owned();
    // Only newline-terminated lines count — the torn tail is dropped
    // by replay, exactly as read_journal specifies.
    let complete = &torn[..torn.rfind('\n').map_or(0, |k| k + 1)];
    let torn_points = complete
        .lines()
        .filter(|l| l.starts_with("{\"rec\":\"point\""))
        .count() as u64;
    let output = drain(&dir, 2, 2);
    let stderr = String::from_utf8_lossy(&output.stderr).into_owned();
    let recovered: u64 = JOB_IDS
        .iter()
        .map(|id| {
            stderr
                .lines()
                .find(|l| l.starts_with(&format!("serve: job {id}:")))
                .expect("summary")
                .split_whitespace()
                .find_map(|tok| tok.strip_prefix("recovered="))
                .and_then(|v| v.parse::<u64>().ok())
                .expect("recovered counter")
        })
        .sum();
    assert_eq!(
        recovered, torn_points,
        "restart must recover exactly the journaled points"
    );
}
