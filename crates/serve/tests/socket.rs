//! Socket front-end suite: strict protocol error replies (in-process,
//! via [`handle_request`]) and the live TCP daemon (spawned binary) —
//! submit/status/cancel/drain/shutdown round trips, plus a
//! kill-mid-`submit` crash test proving the queue file is never torn.

use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use flexray_serve::{handle_request, parse_job, ServeControl, SocketShared};

/// A tiny fuzz job spec (the fastest kind in smoke mode).
fn spec(id: &str) -> String {
    format!(
        r#"{{"schema":"flexray-serve-job","version":1,"id":"{id}","kind":"fuzz","args":["nodes=2","apps=1","orders=1","reps=1","mode=smoke"]}}"#
    )
}

fn workdir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    if dir.exists() {
        fs::remove_dir_all(&dir).expect("clear stale workdir");
    }
    fs::create_dir_all(&dir).expect("create workdir");
    dir
}

fn shared(dir: &Path) -> SocketShared {
    SocketShared::new(dir.join("jobs.jsonl"), Arc::new(ServeControl::default()))
}

// ---------------------------------------------------------------- //
// In-process protocol strictness                                    //
// ---------------------------------------------------------------- //

#[test]
fn malformed_requests_get_error_replies_naming_the_offending_token() {
    let dir = workdir("socket_strict");
    fs::write(dir.join("jobs.jsonl"), "# empty\n").expect("write queue");
    let shared = shared(&dir);
    let cases: [(&str, &str); 7] = [
        ("not json at all", "malformed request"),
        ("[1,2,3]", "not a JSON object"),
        (r#"{"spec":{}}"#, "'req'"),
        (r#"{"req":"frobnicate"}"#, "unknown request 'frobnicate'"),
        (r#"{"req":"submit"}"#, "'spec'"),
        (r#"{"req":"status"}"#, "'id'"),
        (
            r#"{"req":"drain","force":true}"#,
            "unknown key 'force' for request 'drain'",
        ),
    ];
    for (line, needle) in cases {
        let reply = handle_request(&shared, line);
        assert!(
            reply.starts_with(r#"{"ok":false,"error":""#),
            "{line}: not an error reply: {reply}"
        );
        assert!(
            reply.contains(needle),
            "{line}: error must name the offending token ({needle}): {reply}"
        );
    }
    assert_eq!(
        fs::read_to_string(dir.join("jobs.jsonl")).expect("read queue"),
        "# empty\n",
        "rejected requests must not touch the queue"
    );
}

#[test]
fn submit_appends_the_canonical_line_and_refuses_duplicates() {
    let dir = workdir("socket_submit");
    fs::write(dir.join("jobs.jsonl"), "# header comment\n").expect("write queue");
    let shared = shared(&dir);
    let request = format!(r#"{{"req":"submit","spec":{}}}"#, spec("a1"));
    let reply = handle_request(&shared, &request);
    assert!(reply.contains(r#""ok":true"#), "submit failed: {reply}");
    assert!(
        reply.contains(r#""id":"a1""#),
        "reply names the id: {reply}"
    );
    let queue = fs::read_to_string(dir.join("jobs.jsonl")).expect("read queue");
    assert_eq!(
        queue,
        format!("# header comment\n{}\n", spec("a1")),
        "submit must append exactly the canonical spec line"
    );

    let reply = handle_request(&shared, &request);
    assert!(
        reply.contains(r#""ok":false"#) && reply.contains("duplicate job id 'a1'"),
        "duplicate submit must be refused naming the id: {reply}"
    );
    assert_eq!(
        fs::read_to_string(dir.join("jobs.jsonl")).expect("read queue"),
        queue,
        "refused submit must not touch the queue"
    );

    let reply = handle_request(&shared, r#"{"req":"submit","spec":{"schema":"nope"}}"#);
    assert!(
        reply.contains(r#""ok":false"#),
        "invalid spec must be refused: {reply}"
    );
}

#[test]
fn submit_heals_a_missing_final_newline_without_touching_existing_lines() {
    let dir = workdir("socket_newline");
    // A hand-edited queue may lack the final newline; the appended
    // line must start on a fresh line so the existing line's bytes —
    // and its journaled fingerprint — survive unchanged.
    fs::write(dir.join("jobs.jsonl"), spec("a1")).expect("write queue");
    let shared = shared(&dir);
    let reply = handle_request(
        &shared,
        &format!(r#"{{"req":"submit","spec":{}}}"#, spec("b1")),
    );
    assert!(reply.contains(r#""ok":true"#), "submit failed: {reply}");
    let queue = fs::read_to_string(dir.join("jobs.jsonl")).expect("read queue");
    assert_eq!(queue, format!("{}\n{}\n", spec("a1"), spec("b1")));
}

#[test]
fn status_and_cancel_know_queued_jobs_and_refuse_unknown_ids() {
    let dir = workdir("socket_status");
    fs::write(dir.join("jobs.jsonl"), format!("{}\n", spec("q1"))).expect("write queue");
    let shared = shared(&dir);

    let reply = handle_request(&shared, r#"{"req":"status","id":"ghost"}"#);
    assert!(
        reply.contains(r#""ok":false"#) && reply.contains("unknown job id 'ghost'"),
        "unknown id must be refused by name: {reply}"
    );
    let reply = handle_request(&shared, r#"{"req":"status","id":"q1"}"#);
    assert!(
        reply.contains(r#""state":"queued""#),
        "not-yet-drained job must report queued: {reply}"
    );

    let reply = handle_request(&shared, r#"{"req":"cancel","id":"ghost"}"#);
    assert!(
        reply.contains(r#""ok":false"#) && reply.contains("unknown job id 'ghost'"),
        "cancel of unknown id must be refused by name: {reply}"
    );
    let first = handle_request(&shared, r#"{"req":"cancel","id":"q1"}"#);
    assert!(
        first.contains(r#""cancelled":true"#) && first.contains(r#""already_cancelled":false"#),
        "first cancel: {first}"
    );
    let second = handle_request(&shared, r#"{"req":"cancel","id":"q1"}"#);
    assert!(
        second.contains(r#""cancelled":true"#) && second.contains(r#""already_cancelled":true"#),
        "cancel must be idempotent: {second}"
    );
}

#[test]
fn drain_returns_once_a_pass_covers_the_prior_submits() {
    let dir = workdir("socket_drain");
    fs::write(dir.join("jobs.jsonl"), "#\n").expect("write queue");
    let shared = Arc::new(shared(&dir));
    // A completed pass with no submits satisfies an immediate drain.
    shared.begin_pass();
    shared.end_pass();
    let reply = handle_request(&shared, r#"{"req":"drain"}"#);
    assert!(
        reply.contains(r#""drained":true"#),
        "immediate drain: {reply}"
    );

    // After a submit, drain blocks until a pass started *after* the
    // submit completes.
    let request = format!(r#"{{"req":"submit","spec":{}}}"#, spec("d1"));
    assert!(handle_request(&shared, &request).contains(r#""ok":true"#));
    let waiter = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || handle_request(&shared, r#"{"req":"drain"}"#))
    };
    std::thread::sleep(Duration::from_millis(100));
    assert!(!waiter.is_finished(), "drain must wait for a covering pass");
    shared.begin_pass();
    shared.end_pass();
    let reply = waiter.join().expect("drain waiter");
    assert!(
        reply.contains(r#""drained":true"#),
        "covered drain: {reply}"
    );
}

// ---------------------------------------------------------------- //
// Live daemon over TCP                                              //
// ---------------------------------------------------------------- //

struct Daemon {
    child: Child,
    stderr: BufReader<std::process::ChildStderr>,
    addr: String,
}

fn spawn_daemon(dir: &Path) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_flexray-serve"))
        .arg(format!("queue={}", dir.join("jobs.jsonl").display()))
        .arg(format!("journal={}", dir.join("serve.journal").display()))
        .arg(format!("reports={}", dir.join("out").display()))
        .arg("threads=1")
        .arg("jobs=2")
        .arg("socket=127.0.0.1:0")
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn flexray-serve");
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
    let addr = loop {
        let mut line = String::new();
        assert!(
            stderr.read_line(&mut line).expect("read stderr") > 0,
            "daemon exited before announcing its socket"
        );
        if let Some(rest) = line.trim().strip_prefix("serve: listening on ") {
            break rest.to_owned();
        }
    };
    Daemon {
        child,
        stderr,
        addr,
    }
}

struct ClientConn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

fn connect(addr: &str) -> ClientConn {
    let stream = TcpStream::connect(addr).expect("connect to daemon");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("read timeout");
    let reader = BufReader::new(stream.try_clone().expect("clone stream"));
    ClientConn {
        reader,
        writer: stream,
    }
}

impl ClientConn {
    fn request(&mut self, line: &str) -> String {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("send request");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read reply");
        reply.trim_end().to_owned()
    }
}

fn wait_exit(mut child: Child, deadline: Duration) -> std::process::ExitStatus {
    let end = Instant::now() + deadline;
    loop {
        if let Some(status) = child.try_wait().expect("poll daemon") {
            return status;
        }
        assert!(Instant::now() < end, "daemon did not exit in time");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn daemon_serves_submit_drain_status_shutdown_over_tcp() {
    let dir = workdir("socket_live");
    fs::write(dir.join("jobs.jsonl"), "# socket workload\n").expect("write queue");
    let daemon = spawn_daemon(&dir);
    let mut conn = connect(&daemon.addr);

    for id in ["s1", "s2"] {
        let reply = conn.request(&format!(r#"{{"req":"submit","spec":{}}}"#, spec(id)));
        assert!(
            reply.contains(r#""ok":true"#) && reply.contains(&format!(r#""id":"{id}""#)),
            "submit {id}: {reply}"
        );
    }
    let reply = conn.request(&format!(r#"{{"req":"submit","spec":{}}}"#, spec("s1")));
    assert!(
        reply.contains("duplicate job id 's1'"),
        "duplicate over TCP: {reply}"
    );

    let reply = conn.request(r#"{"req":"drain"}"#);
    assert!(reply.contains(r#""drained":true"#), "drain: {reply}");
    for id in ["s1", "s2"] {
        let reply = conn.request(&format!(r#"{{"req":"status","id":"{id}"}}"#));
        assert!(
            reply.contains(r#""state":"done""#),
            "status {id} after drain: {reply}"
        );
        let report = dir.join("out").join(format!("{id}.jsonl"));
        assert!(report.exists(), "report {id} missing after drain");
    }

    let reply = conn.request(r#"{"req":"shutdown"}"#);
    assert!(reply.contains(r#""shutdown":true"#), "shutdown: {reply}");
    let status = wait_exit(daemon.child, Duration::from_secs(60));
    assert!(status.success(), "graceful shutdown must exit 0: {status}");
}

#[test]
fn a_kill_mid_submit_never_tears_the_queue_file() {
    let dir = workdir("socket_kill_submit");
    fs::write(dir.join("jobs.jsonl"), "# crash workload\n").expect("write queue");
    let mut daemon = spawn_daemon(&dir);
    let mut conn = connect(&daemon.addr);

    // Fire a burst of submits and SIGKILL the daemon after the second
    // acknowledgement — later submits race the kill arbitrarily.
    let ids = ["c1", "c2", "c3", "c4", "c5"];
    for id in ids {
        conn.writer
            .write_all(format!(r#"{{"req":"submit","spec":{}}}{}"#, spec(id), "\n").as_bytes())
            .expect("send submit");
    }
    let mut acked: Vec<String> = Vec::new();
    for id in ids.iter().take(2) {
        let mut reply = String::new();
        conn.reader.read_line(&mut reply).expect("read ack");
        assert!(reply.contains(r#""ok":true"#), "ack {id}: {reply}");
        acked.push((*id).to_owned());
    }
    daemon.child.kill().expect("SIGKILL daemon");
    daemon.child.wait().expect("reap daemon");
    drop(daemon.stderr);

    // The queue must be whole: newline-terminated, every non-comment
    // line a complete, parseable spec — and every acknowledged submit
    // present. A torn (partial) line would fail the parse.
    let queue = fs::read_to_string(dir.join("jobs.jsonl")).expect("read queue");
    assert!(queue.ends_with('\n'), "queue is torn: no final newline");
    let mut present: Vec<String> = Vec::new();
    for line in queue.lines() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let parsed =
            parse_job(line).unwrap_or_else(|e| panic!("torn or corrupt queue line '{line}': {e}"));
        present.push(parsed.id);
    }
    for id in &acked {
        assert!(
            present.contains(id),
            "acknowledged submit {id} missing from the queue"
        );
    }

    // A restart drains whatever landed, cleanly.
    let status = Command::new(env!("CARGO_BIN_EXE_flexray-serve"))
        .arg(format!("queue={}", dir.join("jobs.jsonl").display()))
        .arg(format!("journal={}", dir.join("serve.journal").display()))
        .arg(format!("reports={}", dir.join("out").display()))
        .arg("threads=1")
        .arg("jobs=2")
        .status()
        .expect("restart daemon");
    assert!(status.success(), "post-crash drain must succeed: {status}");
}
