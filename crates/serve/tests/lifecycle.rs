//! Daemon lifecycle suite: usage errors exit 2 naming the value,
//! journal-sink infrastructure errors exit 1 naming the journal path,
//! the stop file halts a drain at a job-unit boundary with a clean
//! resumable journal, and cancellation fails the job deterministically.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::time::{Duration, Instant};

use flexray_serve::{run_serve_with, JobStatus, ServeConfig, ServeControl};

const QUEUE: &str = concat!(
    "# lifecycle workload\n",
    r#"{"schema":"flexray-serve-job","version":1,"id":"g1","kind":"grid","args":["nodes=2,3","apps=1","mode=smoke","algos=bbc,obccf"]}"#,
    "\n",
    r#"{"schema":"flexray-serve-job","version":1,"id":"z1","kind":"fuzz","args":["nodes=2,3","apps=1","orders=1","reps=2","mode=smoke"]}"#,
    "\n",
);

fn workdir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    if dir.exists() {
        fs::remove_dir_all(&dir).expect("clear stale workdir");
    }
    fs::create_dir_all(&dir).expect("create workdir");
    dir
}

fn serve_cmd(dir: &Path, extra: &[&str]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_flexray-serve"));
    cmd.arg(format!("queue={}", dir.join("jobs.jsonl").display()))
        .arg(format!("journal={}", dir.join("serve.journal").display()))
        .arg(format!("reports={}", dir.join("out").display()))
        .arg("threads=1");
    for arg in extra {
        cmd.arg(arg);
    }
    cmd
}

fn run(dir: &Path, extra: &[&str]) -> Output {
    serve_cmd(dir, extra).output().expect("spawn flexray-serve")
}

/// Journal content with `{"rec":"stopped"}` lines removed — the
/// resumable projection a stopped run must share with the reference.
fn without_stopped(journal: &[u8]) -> String {
    String::from_utf8_lossy(journal)
        .lines()
        .filter(|l| !l.starts_with(r#"{"rec":"stopped""#))
        .fold(String::new(), |mut acc, l| {
            acc.push_str(l);
            acc.push('\n');
            acc
        })
}

#[test]
fn usage_errors_exit_2_naming_the_offending_value() {
    let dir = workdir("lifecycle_usage");
    fs::write(dir.join("jobs.jsonl"), QUEUE).expect("write queue");
    for (arg, needle) in [("poll=0", "poll interval"), ("jobs=0", "job concurrency")] {
        let output = run(&dir, &[arg]);
        assert_eq!(output.status.code(), Some(2), "{arg} must be a usage error");
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains(needle) && stderr.contains("'0'"),
            "{arg}: error must name the option and the value: {stderr}"
        );
        assert!(
            !dir.join("serve.journal").exists(),
            "{arg}: a usage error must not touch the journal"
        );
    }
}

#[test]
fn an_unwritable_journal_path_exits_1_naming_the_path() {
    let dir = workdir("lifecycle_journal_err");
    fs::write(dir.join("jobs.jsonl"), QUEUE).expect("write queue");
    // Point the journal at a directory: every open/read of it fails,
    // standing in for a full or broken disk.
    fs::create_dir(dir.join("serve.journal")).expect("journal as dir");
    let output = run(&dir, &[]);
    assert_eq!(
        output.status.code(),
        Some(1),
        "journal IO failure must be an infrastructure error (exit 1), got {:?}",
        output.status
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    let journal = dir.join("serve.journal");
    assert!(
        stderr.contains(&journal.display().to_string()),
        "error must name the journal path: {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "journal IO failure must not panic: {stderr}"
    );
}

#[test]
fn the_stop_file_halts_the_drain_resumably_and_the_restart_converges() {
    // Reference: the same workload, uninterrupted.
    let ref_dir = workdir("lifecycle_stop_ref");
    fs::write(ref_dir.join("jobs.jsonl"), QUEUE).expect("write queue");
    let output = run(&ref_dir, &["jobs=2"]);
    assert!(output.status.success(), "reference drain failed");
    let ref_journal = fs::read(ref_dir.join("serve.journal")).expect("reference journal");

    let dir = workdir("lifecycle_stop");
    fs::write(dir.join("jobs.jsonl"), QUEUE).expect("write queue");
    let stop = dir.join("serve.journal.stop");
    let journal = dir.join("serve.journal");

    // Drop the stop file as soon as the journal exists — the drain is
    // already past its pre-pass check, so the stop lands at a unit
    // boundary inside the drain.
    let mut child = serve_cmd(&dir, &["jobs=2"]).spawn().expect("spawn daemon");
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        if journal.exists() {
            fs::write(&stop, "").expect("write stop file");
            break;
        }
        if child.try_wait().expect("poll daemon").is_some() {
            panic!("daemon exited before creating the journal");
        }
        assert!(
            Instant::now() < deadline,
            "daemon never created the journal"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    let status = child.wait().expect("wait daemon");
    assert!(
        status.success(),
        "a stop-file exit is a clean exit, got {status}"
    );

    let stopped_journal = fs::read(&journal).expect("stopped journal");
    let stopped_text = String::from_utf8_lossy(&stopped_journal).into_owned();
    assert!(
        stopped_text.ends_with('\n'),
        "stopped journal must not have a torn tail"
    );
    if stopped_text.contains(r#"{"rec":"stopped"}"#) {
        // Stopped mid-drain (the common case): minus the stopped
        // marker, the journal is a byte-prefix of the reference.
        let resumable = without_stopped(&stopped_journal);
        let reference = String::from_utf8_lossy(&ref_journal);
        assert!(
            reference.starts_with(&resumable),
            "resumable journal must be a prefix of the reference:\n{resumable}"
        );
        assert_ne!(
            resumable.len(),
            reference.len(),
            "a stopped record on a completed drain makes no sense"
        );
    }

    // Restart with the stop file removed: the drain converges to the
    // reference (stopped markers are replay no-ops and excluded from
    // the byte comparison).
    fs::remove_file(&stop).expect("remove stop file");
    let output = run(&dir, &["jobs=2"]);
    assert!(output.status.success(), "resumed drain failed");
    let final_journal = fs::read(&journal).expect("final journal");
    assert_eq!(
        without_stopped(&final_journal),
        String::from_utf8_lossy(&ref_journal),
        "resumed journal must converge to the reference"
    );
    for id in ["g1", "z1"] {
        let ours = fs::read(dir.join("out").join(format!("{id}.jsonl")))
            .unwrap_or_else(|e| panic!("read report {id}: {e}"));
        let theirs = fs::read(ref_dir.join("out").join(format!("{id}.jsonl")))
            .unwrap_or_else(|e| panic!("read reference report {id}: {e}"));
        assert_eq!(ours, theirs, "report {id} differs after a stop/resume");
    }

    // A stop file present at startup exits before the drain starts.
    fs::write(&stop, "").expect("re-create stop file");
    let output = run(&dir, &["jobs=2"]);
    assert!(output.status.success(), "pre-pass stop exit must be clean");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("stop file") && stderr.contains(&stop.display().to_string()),
        "pre-pass stop must name the stop file: {stderr}"
    );
    assert_eq!(
        fs::read(&journal).expect("journal after pre-pass stop"),
        final_journal,
        "a pre-pass stop must not touch the journal"
    );
}

#[test]
fn a_cancelled_job_fails_deterministically_and_the_rest_complete() {
    let dir = workdir("lifecycle_cancel");
    fs::write(dir.join("jobs.jsonl"), QUEUE).expect("write queue");
    let cfg = ServeConfig {
        queue: dir.join("jobs.jsonl"),
        journal: dir.join("serve.journal"),
        reports: dir.join("out"),
        threads: 1,
        jobs: 2,
    };
    let control = ServeControl::default();
    assert!(control.cancel("g1"), "first cancel is new");
    let outcome = run_serve_with(&cfg, &control).expect("drain");
    let by_id = |id: &str| {
        outcome
            .jobs
            .iter()
            .find(|j| j.id == id)
            .unwrap_or_else(|| panic!("job {id} missing"))
    };
    match &by_id("g1").status {
        Some(JobStatus::Failed { error }) => {
            assert_eq!(error, "cancelled by request", "cancel reason: {error}");
        }
        other => panic!("cancelled job must fail, got {other:?}"),
    }
    assert!(
        matches!(by_id("z1").status, Some(JobStatus::Done { .. })),
        "uncancelled jobs must still complete"
    );
    assert!(
        !dir.join("out").join("g1.jsonl").exists(),
        "a cancelled job must not write a report"
    );
    assert!(
        dir.join("out").join("z1.jsonl").exists(),
        "completed job must write its report"
    );

    // The failure is journaled: a re-drain recovers it without
    // recomputing (the cancel set is empty on the fresh control).
    let redrained = run_serve_with(&cfg, &ServeControl::default()).expect("re-drain");
    let replayed = redrained
        .jobs
        .iter()
        .find(|j| j.id == "g1")
        .expect("g1 replay");
    match &replayed.status {
        Some(JobStatus::Failed { error }) => assert_eq!(error, "cancelled by request"),
        other => panic!("journaled cancel must replay as failed, got {other:?}"),
    }
    assert_eq!(replayed.computed, 0, "cancelled job must not be recomputed");
}
