//! Property tests for the journal semantics, driven in-process
//! through [`run_serve`]:
//!
//! * **torn-tail recovery** — truncating a real journal at *every*
//!   byte offset recovers a valid record prefix;
//! * **replay idempotence** — draining an already-drained queue
//!   changes nothing and computes nothing;
//! * **completion monotonicity** — restarting from any record-boundary
//!   prefix never re-computes a point the prefix already holds, and
//!   always converges to the byte-identical final journal;
//! * **corruption detection** — a malformed record *before* the tail
//!   is a hard error, not a silent skip.

use std::fs;
use std::path::{Path, PathBuf};

use flexray_serve::{read_journal, run_serve, JobStatus, Record, ServeConfig, ServeOutcome};

const QUEUE: &str = concat!(
    r#"{"schema":"flexray-serve-job","version":1,"id":"g1","kind":"grid","args":["nodes=2","apps=1","mode=smoke","algos=bbc"]}"#,
    "\n",
    "garbage line\n",
    r#"{"schema":"flexray-serve-job","version":1,"id":"z1","kind":"fuzz","args":["nodes=2","apps=1","orders=1","reps=2","mode=smoke"]}"#,
    "\n",
);

fn workdir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    if dir.exists() {
        fs::remove_dir_all(&dir).expect("clear stale workdir");
    }
    fs::create_dir_all(&dir).expect("create workdir");
    fs::write(dir.join("jobs.jsonl"), QUEUE).expect("write queue");
    dir
}

fn config(dir: &Path) -> ServeConfig {
    ServeConfig {
        queue: dir.join("jobs.jsonl"),
        journal: dir.join("serve.journal"),
        reports: dir.join("out"),
        threads: 1,
        jobs: 1,
    }
}

fn drain(cfg: &ServeConfig) -> ServeOutcome {
    run_serve(cfg).expect("drain succeeds")
}

fn journal(dir: &Path) -> String {
    fs::read_to_string(dir.join("serve.journal")).expect("read journal")
}

#[test]
fn torn_tails_recover_to_a_valid_record_prefix_at_every_byte_offset() {
    let dir = workdir("props_torn");
    let cfg = config(&dir);
    drain(&cfg);
    let reference = journal(&dir);
    let (all, full_len) = read_journal(&reference).expect("reference journal reads");
    assert_eq!(full_len, reference.len());
    for cut in 0..reference.len() {
        let (records, valid_len) = read_journal(&reference[..cut])
            .unwrap_or_else(|e| panic!("cut {cut}: torn tail must recover, got {e}"));
        assert!(valid_len <= cut, "cut {cut}: valid_len past the content");
        assert_eq!(
            records,
            all[..records.len()],
            "cut {cut}: recovered records are not a prefix"
        );
        assert_eq!(
            reference[..valid_len].matches('\n').count(),
            records.len(),
            "cut {cut}: valid_len and record count disagree"
        );
    }
}

#[test]
fn replay_is_idempotent_and_completion_is_monotone() {
    let dir = workdir("props_monotone");
    let cfg = config(&dir);
    let first = drain(&cfg);
    assert!(
        first.jobs.iter().all(|j| j.computed > 0),
        "reference drain must compute"
    );
    let reference = journal(&dir);
    let reports: Vec<(String, String)> = first
        .jobs
        .iter()
        .map(|j| {
            let path = dir.join("out").join(format!("{}.jsonl", j.id));
            (j.id.clone(), fs::read_to_string(path).expect("report"))
        })
        .collect();

    // Idempotence: a second drain recovers everything and appends
    // nothing.
    let second = drain(&cfg);
    assert_eq!(
        journal(&dir),
        reference,
        "idempotent drain grew the journal"
    );
    for job in &second.jobs {
        assert_eq!(job.computed, 0, "{}: re-entered the queue", job.id);
        assert_eq!(job.evaluations, 0, "{}: re-evaluated", job.id);
        assert!(matches!(job.status, Some(JobStatus::Done { .. })));
    }

    // Monotonicity: from every record-boundary prefix, a drain
    // converges to the byte-identical journal and reports, and jobs
    // whose end record the prefix holds are never recomputed.
    let boundaries: Vec<usize> = reference
        .char_indices()
        .filter(|&(_, c)| c == '\n')
        .map(|(k, _)| k + 1)
        .collect();
    for &cut in std::iter::once(&0usize).chain(&boundaries) {
        fs::write(dir.join("serve.journal"), &reference[..cut]).expect("write prefix");
        fs::remove_dir_all(dir.join("out")).ok();
        let (records, _) = read_journal(&reference[..cut]).expect("prefix reads");
        let ended: Vec<&str> = records
            .iter()
            .filter_map(|r| match r {
                Record::End { job, .. } => Some(job.as_str()),
                _ => None,
            })
            .collect();
        let outcome = drain(&cfg);
        assert_eq!(journal(&dir), reference, "prefix {cut}: journal diverged");
        for (id, data) in &reports {
            let path = dir.join("out").join(format!("{id}.jsonl"));
            assert_eq!(
                &fs::read_to_string(path).expect("report"),
                data,
                "prefix {cut}: report {id} diverged"
            );
        }
        for job in &outcome.jobs {
            if ended.contains(&job.id.as_str()) {
                assert_eq!(
                    (job.computed, job.evaluations),
                    (0, 0),
                    "prefix {cut}: completed job {} re-entered the queue",
                    job.id
                );
            }
        }
    }
}

#[test]
fn corrupt_records_before_the_tail_are_hard_errors() {
    let dir = workdir("props_corrupt");
    let cfg = config(&dir);
    drain(&cfg);
    let reference = journal(&dir);

    // Corrupting a mid-journal record must fail the drain loudly.
    let corrupted = reference.replacen("\"rec\":\"start\"", "\"rec\":\"sturt\"", 1);
    assert_ne!(corrupted, reference, "workload journaled no start record");
    fs::write(dir.join("serve.journal"), &corrupted).expect("write corrupted");
    let err = run_serve(&cfg).expect_err("corrupt journal must not drain");
    assert!(
        err.to_string().contains("corrupt record"),
        "unexpected error: {err}"
    );

    // Changing a journaled queue line is caught by its fingerprint.
    fs::write(dir.join("serve.journal"), &reference).expect("restore journal");
    fs::write(
        dir.join("jobs.jsonl"),
        QUEUE.replacen("nodes=2", "nodes=3", 1),
    )
    .expect("tamper with queue");
    let err = run_serve(&cfg).expect_err("tampered queue must not drain");
    assert!(
        err.to_string().contains("fingerprint"),
        "unexpected error: {err}"
    );
}
