//! Generator parameters matching the experimental setup of Section 7.

use flexray_model::PhyParams;

/// Parameters of the synthetic benchmark generator.
///
/// The defaults reproduce the envelope of the paper's experiments:
/// 10 tasks per node grouped in graphs of 5, half the graphs
/// time-triggered, node utilisation drawn in 30–60 % and bus utilisation
/// in 10–70 %.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Number of processing nodes (the paper sweeps 2–7).
    pub n_nodes: usize,
    /// Tasks mapped on each node (paper: 10).
    pub tasks_per_node: usize,
    /// Tasks per task graph (paper: 5).
    pub graph_size: usize,
    /// Fraction of graphs that are time-triggered (paper: 0.5).
    pub tt_fraction: f64,
    /// Per-node utilisation range (paper: 0.30–0.60).
    pub node_util: (f64, f64),
    /// Bus utilisation range (paper: 0.10–0.70).
    pub bus_util: (f64, f64),
    /// Graph periods are drawn from this pool (µs). A harmonic pool
    /// keeps the hyperperiod small.
    pub period_pool_us: Vec<f64>,
    /// Time-triggered graphs: deadline = `tt_deadline_factor · period`.
    pub tt_deadline_factor: f64,
    /// Event-triggered graphs: deadline = `et_deadline_factor · period`.
    /// Defaults to 3.0: the paper leaves graph deadlines unspecified, and
    /// this value lets the SA reference solve most 2–5-node instances
    /// (mirroring the paper's reported solvability) while the basic
    /// configuration increasingly fails on larger systems.
    pub et_deadline_factor: f64,
    /// Probability that a non-root task gets a second predecessor
    /// (fan-in), shaping the random DAGs.
    pub fan_in_prob: f64,
    /// Physical layer of the generated cluster.
    pub phy: PhyParams,
}

impl GeneratorConfig {
    /// The paper's setup for a given node count.
    #[must_use]
    pub fn paper(n_nodes: usize) -> Self {
        GeneratorConfig {
            n_nodes,
            tasks_per_node: 10,
            graph_size: 5,
            tt_fraction: 0.5,
            node_util: (0.30, 0.60),
            bus_util: (0.10, 0.70),
            period_pool_us: vec![10_000.0, 20_000.0, 40_000.0],
            tt_deadline_factor: 1.0,
            et_deadline_factor: 3.0,
            fan_in_prob: 0.3,
            phy: PhyParams::bmw_like(),
        }
    }

    /// A reduced setup for fast unit tests: fewer, smaller graphs.
    #[must_use]
    pub fn small(n_nodes: usize) -> Self {
        GeneratorConfig {
            tasks_per_node: 4,
            graph_size: 4,
            ..GeneratorConfig::paper(n_nodes)
        }
    }

    /// Total number of tasks the generator will emit.
    #[must_use]
    pub fn total_tasks(&self) -> usize {
        self.n_nodes * self.tasks_per_node
    }

    /// Number of task graphs (`total_tasks / graph_size`, at least one).
    #[must_use]
    pub fn n_graphs(&self) -> usize {
        (self.total_tasks() / self.graph_size.max(1)).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let cfg = GeneratorConfig::paper(5);
        assert_eq!(cfg.total_tasks(), 50);
        assert_eq!(cfg.n_graphs(), 10);
        assert_eq!(cfg.tt_fraction, 0.5);
        assert_eq!(cfg.node_util, (0.30, 0.60));
        assert_eq!(cfg.bus_util, (0.10, 0.70));
        assert_eq!(cfg.tt_deadline_factor, 1.0);
        assert_eq!(cfg.et_deadline_factor, 3.0);
    }

    #[test]
    fn small_is_smaller() {
        let cfg = GeneratorConfig::small(2);
        assert!(cfg.total_tasks() < GeneratorConfig::paper(2).total_tasks());
        assert!(cfg.n_graphs() >= 1);
    }
}
